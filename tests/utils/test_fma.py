"""Tests for the error-free transformations and the software FMA."""

from __future__ import annotations

import numpy as np

from repro.utils.fma import fast_two_sum, fma, split, two_prod, two_sum


class TestTwoSum:
    def test_exact_decomposition_scalar(self):
        a, b = 1.0, 2.0**-60
        s, e = two_sum(a, b)
        assert s == 1.0
        assert e == 2.0**-60

    def test_exact_decomposition_random(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal(1000) * 10.0 ** rng.integers(-20, 20, 1000)
        b = rng.standard_normal(1000) * 10.0 ** rng.integers(-20, 20, 1000)
        s, e = two_sum(a, b)
        # s is the rounded sum and s + e equals a + b exactly; verify via
        # exact rational comparison on a sample.
        assert np.array_equal(s, a + b)
        for i in range(0, 1000, 97):
            from fractions import Fraction

            exact = Fraction(float(a[i])) + Fraction(float(b[i]))
            assert Fraction(float(s[i])) + Fraction(float(e[i])) == exact

    def test_order_independence(self):
        a, b = 1e16, 1.0
        s1, e1 = two_sum(a, b)
        s2, e2 = two_sum(b, a)
        assert s1 == s2
        assert e1 == e2

    def test_zero_inputs(self):
        s, e = two_sum(0.0, 0.0)
        assert s == 0.0 and e == 0.0


class TestFastTwoSum:
    def test_valid_when_first_larger(self):
        from fractions import Fraction

        a, b = 1e10, 0.12345
        s, e = fast_two_sum(a, b)
        assert Fraction(float(s)) + Fraction(float(e)) == Fraction(a) + Fraction(b)

    def test_matches_two_sum_when_ordered(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal(200) * 1e8
        b = rng.standard_normal(200)
        s1, e1 = fast_two_sum(a, b)
        s2, e2 = two_sum(a, b)
        np.testing.assert_array_equal(s1, s2)
        np.testing.assert_array_equal(e1, e2)


class TestSplit:
    def test_parts_recombine_exactly(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal(500) * 10.0 ** rng.integers(-30, 30, 500)
        hi, lo = split(x)
        np.testing.assert_array_equal(hi + lo, x)

    def test_parts_have_at_most_26_bits(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal(200)
        hi, lo = split(x)
        # A 26-bit significand value multiplied by itself must be exact.
        np.testing.assert_array_equal(hi * hi, np.array([float(v) * float(v) for v in hi]))

    def test_large_values_used_by_crt_tables(self):
        # Values up to ~2^159 (the largest CRT product) must split exactly.
        x = np.array([2.0**159 + 2.0**120, 2.0**100, -(2.0**80)])
        hi, lo = split(x)
        np.testing.assert_array_equal(hi + lo, x)


class TestTwoProd:
    def test_exact_product(self):
        from fractions import Fraction

        rng = np.random.default_rng(4)
        a = rng.standard_normal(300)
        b = rng.standard_normal(300)
        p, e = two_prod(a, b)
        for i in range(0, 300, 29):
            exact = Fraction(float(a[i])) * Fraction(float(b[i]))
            assert Fraction(float(p[i])) + Fraction(float(e[i])) == exact

    def test_error_zero_for_small_integers(self):
        a = np.array([3.0, -7.0, 11.0])
        b = np.array([5.0, 9.0, -13.0])
        p, e = two_prod(a, b)
        np.testing.assert_array_equal(p, a * b)
        np.testing.assert_array_equal(e, np.zeros(3))


class TestFma:
    def test_exact_when_representable(self):
        # q * (-p) + x with integer operands: result is an exact integer.
        q = np.array([123456789.0, 987654321.0])
        p = 251.0
        x = np.array([123456789.0 * 251 + 17, 987654321.0 * 251 - 42])
        y = fma(q, -p, x)
        np.testing.assert_array_equal(y, np.array([17.0, -42.0]))

    def test_catastrophic_cancellation_preserved(self):
        # fl(a*b) rounds; FMA must retain the difference from c.
        a, b = 1.0 + 2.0**-30, 1.0 - 2.0**-30
        c = -1.0
        result = fma(a, b, c)
        assert result == -(2.0**-60)

    def test_matches_exact_rational_fma_randomised(self):
        from fractions import Fraction

        rng = np.random.default_rng(5)
        a = rng.standard_normal(200)
        b = rng.standard_normal(200)
        c = rng.standard_normal(200)
        result = fma(a, b, c)
        for i in range(0, 200, 17):
            exact = Fraction(float(a[i])) * Fraction(float(b[i])) + Fraction(float(c[i]))
            computed = Fraction(float(result[i]))
            if exact == 0:
                assert computed == 0
            else:
                rel = abs(computed - exact) / abs(exact)
                assert rel <= Fraction(1, 2**52)

    def test_broadcasting(self):
        a = np.ones((3, 1))
        b = np.ones((1, 4)) * 2.0
        c = np.zeros((3, 4))
        assert fma(a, b, c).shape == (3, 4)
