"""Tests for shared input validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.utils.validation import check_gemm_operands, ensure_2d, require_finite


class TestEnsure2d:
    def test_accepts_2d(self):
        x = ensure_2d([[1.0, 2.0], [3.0, 4.0]])
        assert x.shape == (2, 2)

    @pytest.mark.parametrize("bad", [np.zeros(3), np.zeros((2, 2, 2)), 5.0])
    def test_rejects_wrong_rank(self, bad):
        with pytest.raises(ValidationError):
            ensure_2d(bad)

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            ensure_2d(np.zeros((0, 4)))


class TestRequireFinite:
    def test_accepts_finite(self):
        require_finite(np.array([[1.0, -2.0]]))

    @pytest.mark.parametrize("bad_value", [np.nan, np.inf, -np.inf])
    def test_rejects_non_finite(self, bad_value):
        with pytest.raises(ValidationError):
            require_finite(np.array([[1.0, bad_value]]))


class TestCheckGemmOperands:
    def test_happy_path_casts_dtype(self):
        a, b = check_gemm_operands(np.ones((3, 4), dtype=np.float32), np.ones((4, 5)))
        assert a.dtype == np.float64 and b.dtype == np.float64
        assert a.flags["C_CONTIGUOUS"] and b.flags["C_CONTIGUOUS"]

    def test_inner_dimension_mismatch(self):
        with pytest.raises(ValidationError):
            check_gemm_operands(np.ones((3, 4)), np.ones((5, 6)))

    def test_nan_rejected_by_default(self):
        a = np.ones((2, 2))
        b = np.ones((2, 2))
        b[0, 0] = np.nan
        with pytest.raises(ValidationError):
            check_gemm_operands(a, b)

    def test_nan_allowed_when_disabled(self):
        a = np.ones((2, 2))
        b = np.ones((2, 2))
        b[0, 0] = np.nan
        _, b_out = check_gemm_operands(a, b, check_finite=False)
        assert np.isnan(b_out[0, 0])

    def test_requested_dtype_respected(self):
        a, b = check_gemm_operands(np.ones((2, 3)), np.ones((3, 2)), dtype=np.float32)
        assert a.dtype == np.float32
