"""Tests for the array double-double arithmetic."""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from repro.utils.doubledouble import (
    dd_abs,
    dd_add,
    dd_add_fp,
    dd_from_fp,
    dd_mul,
    dd_mul_fp,
    dd_neg,
    dd_sub,
    dd_sum,
    dd_to_fp,
)


def _to_fraction(dd):
    hi, lo = dd
    return Fraction(float(np.asarray(hi).ravel()[0])) + Fraction(float(np.asarray(lo).ravel()[0]))


class TestConstruction:
    def test_from_to_roundtrip(self):
        x = np.array([1.5, -2.25, 1e300])
        dd = dd_from_fp(x)
        np.testing.assert_array_equal(dd_to_fp(dd), x)
        np.testing.assert_array_equal(dd[1], np.zeros(3))

    def test_neg_and_abs(self):
        dd = dd_from_fp(np.array([-3.0, 4.0]))
        np.testing.assert_array_equal(dd_to_fp(dd_neg(dd)), np.array([3.0, -4.0]))
        np.testing.assert_array_equal(dd_to_fp(dd_abs(dd)), np.array([3.0, 4.0]))


class TestAddMul:
    def test_add_keeps_small_terms(self):
        big = dd_from_fp(np.array([1.0]))
        tiny = dd_from_fp(np.array([2.0**-70]))
        total = dd_add(big, tiny)
        assert _to_fraction(total) == Fraction(1) + Fraction(2) ** -70

    def test_add_fp(self):
        acc = dd_from_fp(np.array([1e20]))
        acc = dd_add_fp(acc, np.array([1.0]))
        acc = dd_add_fp(acc, np.array([-1e20]))
        assert dd_to_fp(acc)[0] == 1.0

    def test_sub(self):
        x = dd_from_fp(np.array([5.0]))
        y = dd_from_fp(np.array([3.0]))
        assert dd_to_fp(dd_sub(x, y))[0] == 2.0

    def test_mul_exactness_against_fractions(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            a, b = rng.standard_normal(2)
            product = dd_mul(dd_from_fp(np.array([a])), dd_from_fp(np.array([b])))
            exact = Fraction(float(a)) * Fraction(float(b))
            got = _to_fraction(product)
            if exact == 0:
                assert got == 0
            else:
                assert abs(got - exact) / abs(exact) < Fraction(1, 2**100)

    def test_mul_fp(self):
        x = dd_from_fp(np.array([1.0 + 2.0**-40]))
        y = dd_mul_fp(x, np.array([3.0]))
        assert _to_fraction(y) == (Fraction(1) + Fraction(2) ** -40) * 3

    def test_low_part_stays_small(self):
        rng = np.random.default_rng(1)
        x = dd_from_fp(rng.standard_normal(100))
        y = dd_from_fp(rng.standard_normal(100))
        hi, lo = dd_add(x, y)
        nonzero = hi != 0
        assert np.all(np.abs(lo[nonzero]) <= np.abs(hi[nonzero]) * 2.0**-52)


class TestDdSum:
    def test_sum_exceeds_fp64_precision(self):
        # Sum 1 + 2^-60 * ones(1000): plain float64 loses the tail entirely.
        hi_terms = np.concatenate([[1.0], np.full(1000, 2.0**-60)])
        lo_terms = np.zeros_like(hi_terms)
        hi, lo = dd_sum(hi_terms, lo_terms, axis=0)
        exact = Fraction(1) + 1000 * Fraction(2) ** -60
        assert Fraction(float(hi)) + Fraction(float(lo)) == exact

    def test_sum_along_axis(self):
        hi_terms = np.ones((4, 3))
        lo_terms = np.zeros((4, 3))
        hi, lo = dd_sum(hi_terms, lo_terms, axis=0)
        np.testing.assert_array_equal(hi, np.full(3, 4.0))
        np.testing.assert_array_equal(lo, np.zeros(3))
