"""Tests for exponent helpers and directed-rounding reductions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.utils.fp import (
    exponent_floor,
    next_power_of_two_exponent,
    pow2,
    round_up_sum_of_squares,
    ufp,
    upper_bound_inflation,
)


class TestPow2:
    def test_exact_for_wide_exponent_range(self):
        exps = np.array([-1000, -60, -1, 0, 1, 53, 500, 1023])
        values = pow2(exps)
        for e, v in zip(exps, values, strict=True):
            assert v == 2.0 ** int(e)

    def test_scalar_input(self):
        assert pow2(np.int64(10)) == 1024.0


class TestExponentFloor:
    @pytest.mark.parametrize(
        "x, expected",
        [(1.0, 0), (1.5, 0), (2.0, 1), (3.99, 1), (0.5, -1), (0.49, -2), (-8.0, 3), (2.0**-1060, -1060)],
    )
    def test_values(self, x, expected):
        assert exponent_floor(np.array([x]))[0] == expected

    def test_matches_log2_floor_on_random(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(1000) * 10.0 ** rng.integers(-250, 250, 1000)
        x = x[x != 0]
        got = exponent_floor(x)
        want = np.floor(np.log2(np.abs(x)))
        # log2-based computation can be off by one exactly at powers of two;
        # exclude those and require equality elsewhere.
        is_pow2 = np.abs(x) == ufp(x)
        np.testing.assert_array_equal(got[~is_pow2], want[~is_pow2].astype(np.int64))

    def test_zero_sentinel(self):
        assert exponent_floor(np.array([0.0]))[0] == -1075


class TestUfp:
    def test_values(self):
        np.testing.assert_array_equal(
            ufp(np.array([1.0, 1.9, 2.0, -5.0, 0.3])), np.array([1.0, 1.0, 2.0, 4.0, 0.25])
        )

    def test_zero(self):
        assert ufp(np.array([0.0]))[0] == 0.0


class TestNextPowerOfTwoExponent:
    def test_values(self):
        x = np.array([1.0, 1.0001, 2.0, 3.0, 0.25, 0.3])
        np.testing.assert_array_equal(
            next_power_of_two_exponent(x), np.array([0, 1, 1, 2, -2, -1])
        )


class TestRoundUpSumOfSquares:
    def test_is_upper_bound(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((50, 400)) * np.exp(rng.standard_normal((50, 400)))
        bound = round_up_sum_of_squares(x, axis=1)
        # Compare against a higher-precision sum (math.fsum row by row).
        import math

        for i in range(50):
            exact = math.fsum(float(v) ** 2 for v in x[i])
            assert bound[i] >= exact

    def test_axis_0(self):
        x = np.arange(12, dtype=np.float64).reshape(3, 4)
        bound = round_up_sum_of_squares(x, axis=0)
        assert bound.shape == (4,)
        assert np.all(bound >= np.sum(x * x, axis=0))

    def test_inflation_factor_monotone(self):
        assert upper_bound_inflation(10) <= upper_bound_inflation(1000)
        assert upper_bound_inflation(0) >= 1.0

    def test_inflation_negative_n_rejected(self):
        with pytest.raises(ValidationError):
            upper_bound_inflation(-1)
