"""Tests for the engine registry and the OpCounter ledger."""

from __future__ import annotations

import pytest

from repro.engines import (
    Bf16MatrixEngine,
    Fp16MatrixEngine,
    Fp32MatrixEngine,
    Fp64MatrixEngine,
    Int8MatrixEngine,
    OpCounter,
    Tf32MatrixEngine,
    available_engines,
    get_engine,
)
from repro.engines.registry import register_engine
from repro.errors import EngineError


class TestRegistry:
    def test_available_engines(self):
        assert set(available_engines()) >= {"int8", "fp16", "bf16", "tf32", "fp32", "fp64"}

    @pytest.mark.parametrize(
        "name, cls",
        [
            ("int8", Int8MatrixEngine),
            ("fp16", Fp16MatrixEngine),
            ("bf16", Bf16MatrixEngine),
            ("tf32", Tf32MatrixEngine),
            ("fp32", Fp32MatrixEngine),
            ("fp64", Fp64MatrixEngine),
        ],
    )
    def test_get_engine_types(self, name, cls):
        assert isinstance(get_engine(name), cls)

    def test_get_engine_kwargs_forwarded(self):
        engine = get_engine("int8", use_blas=False)
        assert engine.use_blas is False

    def test_case_insensitive(self):
        assert isinstance(get_engine("INT8"), Int8MatrixEngine)

    def test_unknown_engine(self):
        with pytest.raises(EngineError):
            get_engine("fp8")

    def test_register_custom_engine(self):
        class Custom(Fp64MatrixEngine):
            name = "custom"

        register_engine("custom-test", Custom)
        assert isinstance(get_engine("custom-test"), Custom)


class TestOpCounter:
    def test_record_and_merge(self):
        a = OpCounter()
        a.record_matmul(4, 5, 6, in_bytes=1, out_bytes=4)
        a.record_elementwise(100, in_bytes=8, out_bytes=8)
        b = OpCounter()
        b.record_matmul(2, 2, 2, in_bytes=8, out_bytes=8)
        merged = a.merge(b)
        assert merged.matmul_calls == 2
        assert merged.mac_ops == 4 * 5 * 6 + 8
        assert merged.elementwise_ops == 100
        assert merged.bytes_read == (4 * 6 + 6 * 5) * 1 + 100 * 8 + (2 * 2 + 2 * 2) * 8
        # merging must not mutate the inputs
        assert a.matmul_calls == 1 and b.matmul_calls == 1

    def test_as_dict_keys(self):
        counter = OpCounter()
        counter.record_matmul(1, 1, 1, 1, 1)
        d = counter.as_dict()
        assert set(d) == {
            "matmul_calls",
            "mac_ops",
            "flops",
            "elementwise_ops",
            "bytes_read",
            "bytes_written",
            "cache_hits",
            "cache_misses",
            "cache_evictions",
            "cache_bytes_inserted",
            "cache_bytes_evicted",
            "emulated_calls",
            "fault_events",
        }
        assert d["flops"] == 2 * d["mac_ops"]
