"""Tests for the stacked-GEMV engine op (generic fallback and INT8 override)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engines.base import MatrixEngine
from repro.engines.int8 import Int8MatrixEngine
from repro.errors import EngineError, OverflowRiskError


def _random_stacks(rng, n_stack=5, m=7, k=11):
    a = rng.integers(-128, 129, size=(n_stack, m, k)).astype(np.float64)
    v = rng.integers(-128, 129, size=(n_stack, k)).astype(np.float64)
    return a, v


class TestGenericFallback:
    def test_matches_per_slice_matmul(self):
        rng = np.random.default_rng(0)
        a, v = _random_stacks(rng)
        engine = Int8MatrixEngine()
        # Route through the *generic* base implementation explicitly.
        out = MatrixEngine.matvec_stack(engine, a, v)
        ref = np.stack(
            [Int8MatrixEngine().matmul(a[i], v[i][:, None])[:, 0] for i in range(5)]
        )
        np.testing.assert_array_equal(out, ref)

    def test_ledger_matches_n_separate_gemvs(self):
        rng = np.random.default_rng(1)
        a, v = _random_stacks(rng, n_stack=4, m=6, k=9)
        stacked = Int8MatrixEngine()
        MatrixEngine.matvec_stack(stacked, a, v)
        separate = Int8MatrixEngine()
        for i in range(4):
            separate.matmul(a[i], v[i][:, None])
        assert stacked.counter.as_dict() == separate.counter.as_dict()


class TestInt8FusedOverride:
    @pytest.mark.parametrize("use_blas", [True, False])
    def test_matches_generic_fallback(self, use_blas):
        rng = np.random.default_rng(2)
        a, v = _random_stacks(rng, n_stack=8, m=13, k=17)
        fused = Int8MatrixEngine(use_blas=use_blas)
        out = fused.matvec_stack(a, v)
        generic = Int8MatrixEngine(use_blas=use_blas)
        ref = MatrixEngine.matvec_stack(generic, a, v)
        np.testing.assert_array_equal(out, ref)
        assert out.dtype == np.int32
        assert fused.counter.as_dict() == generic.counter.as_dict()

    def test_trusted_int8_skips_validation_same_result(self):
        rng = np.random.default_rng(3)
        a = rng.integers(-128, 128, size=(6, 10, 12), dtype=np.int8)
        v = rng.integers(-128, 128, size=(6, 12), dtype=np.int8)
        engine = Int8MatrixEngine()
        np.testing.assert_array_equal(
            engine.matvec_stack(a, v, trusted=True),
            Int8MatrixEngine().matvec_stack(a, v, trusted=False),
        )

    def test_trusted_flag_ignored_for_non_int8(self):
        # A float stack with out-of-range values must be rejected even when
        # the caller claims it is trusted.
        a = np.full((2, 3, 4), 300.0)
        v = np.ones((2, 4))
        with pytest.raises(EngineError, match="outside"):
            Int8MatrixEngine().matvec_stack(a, v, trusted=True)

    def test_plus_128_wraps_like_the_hardware_cast(self):
        a = np.full((1, 2, 3), 128.0)
        v = np.ones((1, 3))
        out = Int8MatrixEngine().matvec_stack(a, v)
        np.testing.assert_array_equal(out, np.full((1, 2), -384, dtype=np.int32))

    def test_strict_k_rejects_oversized_inner_dim(self):
        a = np.zeros((1, 1, 2**17 + 1), dtype=np.int8)
        v = np.zeros((1, 2**17 + 1), dtype=np.int8)
        with pytest.raises(OverflowRiskError, match="2\\*\\*17"):
            Int8MatrixEngine().matvec_stack(a, v, trusted=True)

    def test_int32_wraparound_matches_matmul_stack_at_boundary(self):
        # k = 2**17 with all-(-128) entries reaches exactly +2**31, the one
        # harmless wraparound case of Section 4.3; the einsum accumulation
        # must wrap bit-identically to the float64 path's reduction.
        k = 2**17
        a = np.full((1, 1, k), -128, dtype=np.int8)
        v = np.full((1, k), -128, dtype=np.int8)
        engine = Int8MatrixEngine(strict_k=False)
        out = engine.matvec_stack(a, v, trusted=True)
        ref = Int8MatrixEngine(strict_k=False).matmul_stack(
            a, v[:, :, None], trusted=True
        )[:, :, 0]
        np.testing.assert_array_equal(out, ref)
        assert out[0, 0] == np.int32(-(2**31))


class TestShapeValidation:
    @pytest.mark.parametrize(
        "a_shape, v_shape, match",
        [
            ((3, 4), (3, 4), "3-D matrix stack"),
            ((2, 3, 4), (2, 3, 4), "2-D vector stack"),
            ((2, 3, 4), (3, 4), "stack sizes mismatch"),
            ((0, 3, 4), (0, 4), "non-empty stack"),
            ((2, 3, 4), (2, 5), "inner dimensions mismatch"),
        ],
    )
    def test_bad_shapes_raise(self, a_shape, v_shape, match):
        with pytest.raises(EngineError, match=match):
            Int8MatrixEngine().matvec_stack(np.zeros(a_shape), np.zeros(v_shape))
