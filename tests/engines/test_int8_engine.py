"""Tests for the INT8 matrix-engine simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engines.int8 import Int8MatrixEngine
from repro.errors import EngineError, OverflowRiskError


class TestBasicProducts:
    def test_small_product_exact(self):
        engine = Int8MatrixEngine()
        a = np.array([[1, 2], [3, -4]], dtype=np.int8)
        b = np.array([[5, -6], [7, 8]], dtype=np.int8)
        c = engine.matmul(a, b)
        np.testing.assert_array_equal(c, a.astype(np.int64) @ b.astype(np.int64))
        assert c.dtype == np.int32

    def test_blas_and_integer_paths_agree(self):
        rng = np.random.default_rng(0)
        a = rng.integers(-128, 128, (37, 90)).astype(np.int8)
        b = rng.integers(-128, 128, (90, 23)).astype(np.int8)
        fast = Int8MatrixEngine(use_blas=True).matmul(a, b)
        ref = Int8MatrixEngine(use_blas=False).matmul(a, b)
        np.testing.assert_array_equal(fast, ref)

    def test_float_integer_valued_input_accepted(self):
        engine = Int8MatrixEngine()
        a = np.array([[1.0, -2.0]])
        b = np.array([[3.0], [4.0]])
        assert engine.matmul(a, b)[0, 0] == -5

    def test_plus_128_wraps_to_minus_128(self):
        engine = Int8MatrixEngine()
        a = np.array([[128.0]])
        b = np.array([[1.0]])
        assert engine.matmul(a, b)[0, 0] == -128


class TestInputValidation:
    def test_non_integer_float_rejected(self):
        engine = Int8MatrixEngine()
        with pytest.raises(EngineError):
            engine.matmul(np.array([[1.5]]), np.array([[1.0]]))

    def test_out_of_range_rejected(self):
        engine = Int8MatrixEngine()
        with pytest.raises(EngineError):
            engine.matmul(np.array([[300.0]]), np.array([[1.0]]))
        with pytest.raises(EngineError):
            engine.matmul(np.array([[1.0]]), np.array([[-129.0]]))

    def test_shape_mismatch_rejected(self):
        engine = Int8MatrixEngine()
        with pytest.raises(EngineError):
            engine.matmul(np.ones((2, 3), dtype=np.int8), np.ones((4, 2), dtype=np.int8))

    def test_non_2d_rejected(self):
        engine = Int8MatrixEngine()
        with pytest.raises(EngineError):
            engine.matmul(np.ones(3, dtype=np.int8), np.ones((3, 2), dtype=np.int8))


class TestOverflowBehaviour:
    def test_strict_k_refuses_large_inner_dimension(self):
        engine = Int8MatrixEngine(strict_k=True)
        a = np.zeros((1, 2**17 + 1), dtype=np.int8)
        b = np.zeros((2**17 + 1, 1), dtype=np.int8)
        with pytest.raises(OverflowRiskError):
            engine.matmul(a, b)

    def test_wraparound_matches_int32_semantics(self):
        # Construct a product that exceeds 2^31 and check both paths wrap to
        # the same two's-complement value.
        engine_fast = Int8MatrixEngine(use_blas=True, strict_k=False)
        engine_ref = Int8MatrixEngine(use_blas=False, strict_k=False)
        k = 2**17 + 8
        a = np.full((1, k), 127, dtype=np.int8)
        b = np.full((k, 1), 127, dtype=np.int8)
        fast = engine_fast.matmul(a, b)
        ref = engine_ref.matmul(a, b)
        exact = 127 * 127 * k
        wrapped = ((exact + 2**31) % 2**32) - 2**31
        assert fast[0, 0] == wrapped
        assert ref[0, 0] == wrapped

    def test_boundary_2_31_wraps_to_negative(self):
        # Exactly 2^31 (the case discussed in Section 4.3) wraps to -2^31,
        # which is congruent to 0 modulo 256.
        engine = Int8MatrixEngine(use_blas=True, strict_k=False)
        k = 2**17
        a = np.full((1, k), 128, dtype=np.float64)  # wraps to -128 on cast
        b = np.full((k, 1), 128, dtype=np.float64)
        c = engine.matmul(a, b)
        assert c[0, 0] == -(2**31)
        assert int(c[0, 0]) % 256 == 0


class TestMatmulStack:
    def test_matches_per_slice_matmul_both_paths(self):
        rng = np.random.default_rng(3)
        a = rng.integers(-128, 128, (5, 17, 33)).astype(np.int8)
        b = rng.integers(-128, 128, (5, 33, 9)).astype(np.int8)
        for use_blas in (True, False):
            stacked = Int8MatrixEngine(use_blas=use_blas).matmul_stack(a, b)
            loop_engine = Int8MatrixEngine(use_blas=use_blas)
            for i in range(5):
                np.testing.assert_array_equal(stacked[i], loop_engine.matmul(a[i], b[i]))
            assert stacked.dtype == np.int32

    def test_trusted_skips_validation_but_matches(self):
        rng = np.random.default_rng(4)
        a = rng.integers(-128, 128, (4, 8, 12)).astype(np.int8)
        b = rng.integers(-128, 128, (4, 12, 6)).astype(np.int8)
        engine = Int8MatrixEngine()
        np.testing.assert_array_equal(
            engine.matmul_stack(a, b, trusted=True), engine.matmul_stack(a, b)
        )

    def test_trusted_flag_ignored_for_non_int8_dtypes(self):
        """Only stacks already in the engine's input representation may skip
        validation; float inputs are validated even when declared trusted."""
        engine = Int8MatrixEngine()
        bad = np.full((1, 2, 2), 300.0)
        ok = np.ones((1, 2, 2))
        with pytest.raises(EngineError):
            engine.matmul_stack(bad, ok, trusted=True)
        # Integer-valued floats still go through the +128 wrap.
        c = engine.matmul_stack(np.full((1, 1, 1), 128.0), ok[:, :1, :1], trusted=True)
        assert c[0, 0, 0] == -128

    def test_ledger_equals_n_single_calls(self):
        a = np.zeros((3, 8, 16), dtype=np.int8)
        b = np.zeros((3, 16, 4), dtype=np.int8)
        stacked = Int8MatrixEngine()
        stacked.matmul_stack(a, b)
        single = Int8MatrixEngine()
        for i in range(3):
            single.matmul(a[i], b[i])
        assert stacked.counter.as_dict() == single.counter.as_dict()

    def test_shape_validation(self):
        engine = Int8MatrixEngine()
        with pytest.raises(EngineError):
            engine.matmul_stack(np.ones((2, 2), dtype=np.int8), np.ones((2, 2, 2), dtype=np.int8))
        with pytest.raises(EngineError):
            engine.matmul_stack(np.ones((2, 2, 3), dtype=np.int8), np.ones((3, 3, 2), dtype=np.int8))
        with pytest.raises(EngineError):
            engine.matmul_stack(np.ones((2, 2, 3), dtype=np.int8), np.ones((2, 4, 2), dtype=np.int8))
        with pytest.raises(EngineError):
            engine.matmul_stack(
                np.empty((0, 2, 3), dtype=np.int8), np.empty((0, 3, 2), dtype=np.int8)
            )

    def test_strict_k_refused_above_threshold(self):
        engine = Int8MatrixEngine(strict_k=True)
        k = 2**17 + 1
        with pytest.raises(OverflowRiskError):
            engine.matmul_stack(
                np.zeros((1, 1, k), dtype=np.int8), np.zeros((1, k, 1), dtype=np.int8)
            )


class TestWraparoundSkipBoundary:
    """The stacked path skips the INT32 wraparound reduction exactly when it
    is unreachable: |a|,|b| <= 128 bounds every inner product by k * 2**14,
    which stays strictly below 2**31 for k < 2**17 and reaches +/-2**31 only
    at k = 2**17 (Section 4.3)."""

    def test_k_at_boundary_wraps(self):
        k = 2**17
        a = np.full((1, 1, k), -128, dtype=np.int8)
        b = np.full((1, k, 2), -128, dtype=np.int8)
        c = Int8MatrixEngine().matmul_stack(a, b, trusted=True)
        # (-128) * (-128) * 2**17 = +2**31, which wraps to -2**31.
        assert c[0, 0, 0] == -(2**31) and c[0, 0, 1] == -(2**31)
        ref = Int8MatrixEngine(use_blas=False).matmul_stack(a, b, trusted=True)
        np.testing.assert_array_equal(c, ref)

    def test_k_just_below_boundary_skips_reduction_exactly(self):
        k = 2**17 - 1
        a = np.full((1, 1, k), -128, dtype=np.int8)
        b = np.full((1, k, 2), 127, dtype=np.int8)
        c = Int8MatrixEngine().matmul_stack(a, b, trusted=True)
        # Largest-magnitude reachable product below the boundary: exact, no
        # reduction needed, and it must agree with the integer reference.
        assert c[0, 0, 0] == -128 * 127 * k
        ref = Int8MatrixEngine(use_blas=False).matmul_stack(a, b, trusted=True)
        np.testing.assert_array_equal(c, ref)

    def test_above_boundary_with_strict_k_off_matches_reference(self):
        k = 2**17 + 64
        a = np.full((1, 1, k), 127, dtype=np.int8)
        b = np.full((1, k, 1), 127, dtype=np.int8)
        fast = Int8MatrixEngine(strict_k=False).matmul_stack(a, b, trusted=True)
        ref = Int8MatrixEngine(use_blas=False, strict_k=False).matmul_stack(
            a, b, trusted=True
        )
        np.testing.assert_array_equal(fast, ref)
        wrapped = ((127 * 127 * k + 2**31) % 2**32) - 2**31
        assert fast[0, 0, 0] == wrapped


class TestGenericStackFallback:
    def test_base_class_fallback_matches_loop_and_ledger(self):
        from repro.engines.native import Fp64MatrixEngine

        rng = np.random.default_rng(5)
        a = rng.standard_normal((3, 6, 7))
        b = rng.standard_normal((3, 7, 4))
        stacked_engine = Fp64MatrixEngine()
        stacked = stacked_engine.matmul_stack(a, b)
        loop_engine = Fp64MatrixEngine()
        for i in range(3):
            np.testing.assert_array_equal(stacked[i], loop_engine.matmul(a[i], b[i]))
        assert stacked_engine.counter.as_dict() == loop_engine.counter.as_dict()


class TestCounter:
    def test_counter_records_work(self):
        engine = Int8MatrixEngine()
        a = np.zeros((8, 16), dtype=np.int8)
        b = np.zeros((16, 4), dtype=np.int8)
        engine.matmul(a, b)
        engine.matmul(a, b)
        assert engine.counter.matmul_calls == 2
        assert engine.counter.mac_ops == 2 * 8 * 16 * 4
        assert engine.counter.flops == 4 * 8 * 16 * 4
        assert engine.counter.bytes_read == 2 * (8 * 16 + 16 * 4)
        assert engine.counter.bytes_written == 2 * 8 * 4 * 4

    def test_counter_reset(self):
        engine = Int8MatrixEngine()
        engine.matmul(np.zeros((2, 2), dtype=np.int8), np.zeros((2, 2), dtype=np.int8))
        engine.reset_counter()
        assert engine.counter.matmul_calls == 0
        assert engine.counter.mac_ops == 0
