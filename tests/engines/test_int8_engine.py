"""Tests for the INT8 matrix-engine simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engines.int8 import Int8MatrixEngine
from repro.errors import EngineError, OverflowRiskError


class TestBasicProducts:
    def test_small_product_exact(self):
        engine = Int8MatrixEngine()
        a = np.array([[1, 2], [3, -4]], dtype=np.int8)
        b = np.array([[5, -6], [7, 8]], dtype=np.int8)
        c = engine.matmul(a, b)
        np.testing.assert_array_equal(c, a.astype(np.int64) @ b.astype(np.int64))
        assert c.dtype == np.int32

    def test_blas_and_integer_paths_agree(self):
        rng = np.random.default_rng(0)
        a = rng.integers(-128, 128, (37, 90)).astype(np.int8)
        b = rng.integers(-128, 128, (90, 23)).astype(np.int8)
        fast = Int8MatrixEngine(use_blas=True).matmul(a, b)
        ref = Int8MatrixEngine(use_blas=False).matmul(a, b)
        np.testing.assert_array_equal(fast, ref)

    def test_float_integer_valued_input_accepted(self):
        engine = Int8MatrixEngine()
        a = np.array([[1.0, -2.0]])
        b = np.array([[3.0], [4.0]])
        assert engine.matmul(a, b)[0, 0] == -5

    def test_plus_128_wraps_to_minus_128(self):
        engine = Int8MatrixEngine()
        a = np.array([[128.0]])
        b = np.array([[1.0]])
        assert engine.matmul(a, b)[0, 0] == -128


class TestInputValidation:
    def test_non_integer_float_rejected(self):
        engine = Int8MatrixEngine()
        with pytest.raises(EngineError):
            engine.matmul(np.array([[1.5]]), np.array([[1.0]]))

    def test_out_of_range_rejected(self):
        engine = Int8MatrixEngine()
        with pytest.raises(EngineError):
            engine.matmul(np.array([[300.0]]), np.array([[1.0]]))
        with pytest.raises(EngineError):
            engine.matmul(np.array([[1.0]]), np.array([[-129.0]]))

    def test_shape_mismatch_rejected(self):
        engine = Int8MatrixEngine()
        with pytest.raises(EngineError):
            engine.matmul(np.ones((2, 3), dtype=np.int8), np.ones((4, 2), dtype=np.int8))

    def test_non_2d_rejected(self):
        engine = Int8MatrixEngine()
        with pytest.raises(EngineError):
            engine.matmul(np.ones(3, dtype=np.int8), np.ones((3, 2), dtype=np.int8))


class TestOverflowBehaviour:
    def test_strict_k_refuses_large_inner_dimension(self):
        engine = Int8MatrixEngine(strict_k=True)
        a = np.zeros((1, 2**17 + 1), dtype=np.int8)
        b = np.zeros((2**17 + 1, 1), dtype=np.int8)
        with pytest.raises(OverflowRiskError):
            engine.matmul(a, b)

    def test_wraparound_matches_int32_semantics(self):
        # Construct a product that exceeds 2^31 and check both paths wrap to
        # the same two's-complement value.
        engine_fast = Int8MatrixEngine(use_blas=True, strict_k=False)
        engine_ref = Int8MatrixEngine(use_blas=False, strict_k=False)
        k = 2**17 + 8
        a = np.full((1, k), 127, dtype=np.int8)
        b = np.full((k, 1), 127, dtype=np.int8)
        fast = engine_fast.matmul(a, b)
        ref = engine_ref.matmul(a, b)
        exact = 127 * 127 * k
        wrapped = ((exact + 2**31) % 2**32) - 2**31
        assert fast[0, 0] == wrapped
        assert ref[0, 0] == wrapped

    def test_boundary_2_31_wraps_to_negative(self):
        # Exactly 2^31 (the case discussed in Section 4.3) wraps to -2^31,
        # which is congruent to 0 modulo 256.
        engine = Int8MatrixEngine(use_blas=True, strict_k=False)
        k = 2**17
        a = np.full((1, k), 128, dtype=np.float64)  # wraps to -128 on cast
        b = np.full((k, 1), 128, dtype=np.float64)
        c = engine.matmul(a, b)
        assert c[0, 0] == -(2**31)
        assert int(c[0, 0]) % 256 == 0


class TestCounter:
    def test_counter_records_work(self):
        engine = Int8MatrixEngine()
        a = np.zeros((8, 16), dtype=np.int8)
        b = np.zeros((16, 4), dtype=np.int8)
        engine.matmul(a, b)
        engine.matmul(a, b)
        assert engine.counter.matmul_calls == 2
        assert engine.counter.mac_ops == 2 * 8 * 16 * 4
        assert engine.counter.flops == 4 * 8 * 16 * 4
        assert engine.counter.bytes_read == 2 * (8 * 16 + 16 * 4)
        assert engine.counter.bytes_written == 2 * 8 * 4 * 4

    def test_counter_reset(self):
        engine = Int8MatrixEngine()
        engine.matmul(np.zeros((2, 2), dtype=np.int8), np.zeros((2, 2), dtype=np.int8))
        engine.reset_counter()
        assert engine.counter.matmul_calls == 0
        assert engine.counter.mac_ops == 0
