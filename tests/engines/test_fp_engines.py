"""Tests for the FP16/BF16/TF32 and native FP32/FP64 engines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engines.lowprec_fp import Bf16MatrixEngine, Fp16MatrixEngine, Tf32MatrixEngine
from repro.engines.native import Fp32MatrixEngine, Fp64MatrixEngine
from repro.errors import EngineError


class TestNativeEngines:
    def test_fp64_matches_numpy(self, rng):
        a = rng.standard_normal((17, 23))
        b = rng.standard_normal((23, 11))
        c = Fp64MatrixEngine().matmul(a, b)
        np.testing.assert_array_equal(c, a @ b)
        assert c.dtype == np.float64

    def test_fp32_dtype_and_accuracy(self, rng):
        a = rng.standard_normal((17, 23))
        b = rng.standard_normal((23, 11))
        c = Fp32MatrixEngine().matmul(a, b)
        assert c.dtype == np.float32
        assert np.allclose(c, a @ b, rtol=1e-5)

    def test_non_numeric_rejected(self):
        with pytest.raises(EngineError):
            Fp64MatrixEngine().matmul(np.array([["x", "y"]]), np.ones((2, 1)))


class TestLowPrecisionEngines:
    @pytest.mark.parametrize(
        "engine_cls, sig_bits",
        [(Fp16MatrixEngine, 11), (Bf16MatrixEngine, 8), (Tf32MatrixEngine, 11)],
    )
    def test_input_rounding_limits_accuracy(self, rng, engine_cls, sig_bits):
        a = rng.standard_normal((30, 50)).astype(np.float32)
        b = rng.standard_normal((50, 20)).astype(np.float32)
        c = engine_cls().matmul(a, b)
        exact = a.astype(np.float64) @ b.astype(np.float64)
        rel = np.abs(c - exact) / np.linalg.norm(exact, np.inf)
        # error dominated by input rounding: bounded by a modest multiple of
        # 2^-sig_bits, and definitely non-zero.
        assert np.max(rel) < 50 * 2.0**-sig_bits
        assert np.max(np.abs(c - exact)) > 0

    def test_accuracy_ordering_tf32_vs_bf16(self, rng):
        a = rng.standard_normal((40, 64)).astype(np.float32)
        b = rng.standard_normal((64, 24)).astype(np.float32)
        exact = a.astype(np.float64) @ b.astype(np.float64)
        err_tf32 = np.max(np.abs(Tf32MatrixEngine().matmul(a, b) - exact))
        err_bf16 = np.max(np.abs(Bf16MatrixEngine().matmul(a, b) - exact))
        assert err_tf32 < err_bf16

    def test_output_dtype_fp32(self, rng):
        a = rng.standard_normal((4, 4)).astype(np.float32)
        for cls in (Fp16MatrixEngine, Bf16MatrixEngine, Tf32MatrixEngine):
            assert cls().matmul(a, a).dtype == np.float32

    def test_fp16_exact_on_grid_values(self):
        # Small integers are exactly representable in FP16, so the product
        # is exact (FP32 accumulation of exact terms).
        a = np.arange(6, dtype=np.float32).reshape(2, 3)
        b = np.arange(6, dtype=np.float32).reshape(3, 2)
        c = Fp16MatrixEngine().matmul(a, b)
        np.testing.assert_array_equal(c, a @ b)

    def test_counter_tracks_input_byte_width(self):
        engine = Fp16MatrixEngine()
        engine.matmul(np.ones((4, 8), dtype=np.float32), np.ones((8, 2), dtype=np.float32))
        # FP16 inputs occupy 2 bytes each, FP32 output 4 bytes.
        assert engine.counter.bytes_read == (4 * 8 + 8 * 2) * 2
        assert engine.counter.bytes_written == 4 * 2 * 4
