"""Shared pytest fixtures.

Ensures the ``src`` layout is importable even when the package has not been
installed (e.g. a fresh checkout without ``pip install -e .``), and provides
small deterministic workloads used across the suite.
"""

from __future__ import annotations

import pathlib
import sys

import numpy as np
import pytest

_SRC = pathlib.Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_pair(rng):
    """A small FP64 (A, B) pair with a mild exponent spread."""
    a = (rng.random((48, 64)) - 0.5) * np.exp(0.5 * rng.standard_normal((48, 64)))
    b = (rng.random((64, 40)) - 0.5) * np.exp(0.5 * rng.standard_normal((64, 40)))
    return a, b


@pytest.fixture
def small_pair_fp32(rng):
    """A small FP32 (A, B) pair."""
    a = ((rng.random((40, 56)) - 0.5) * np.exp(0.5 * rng.standard_normal((40, 56)))).astype(
        np.float32
    )
    b = ((rng.random((56, 32)) - 0.5) * np.exp(0.5 * rng.standard_normal((56, 32)))).astype(
        np.float32
    )
    return a, b
