"""Tests for the FP16/BF16/TF32 value-grid conversions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.formats.lowprec import (
    round_to_bf16,
    round_to_fp16,
    round_to_format,
    round_to_tf32,
    truncate_significand,
)
from repro.types import BF16, FP16, FP32, FP64, TF32


class TestTruncateSignificand:
    def test_keep_24_bits_is_identity(self):
        x = np.array([1.1, -2.7, 3.14159], dtype=np.float32)
        np.testing.assert_array_equal(truncate_significand(x, 24), x)

    def test_values_on_grid_are_preserved(self):
        # 1 + k*2^-7 values are exactly representable with 8 significand bits.
        x = (1.0 + np.arange(16) * 2.0**-7).astype(np.float32)
        np.testing.assert_array_equal(truncate_significand(x, 8), x)

    def test_rounding_error_bounded_by_ulp(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(2000).astype(np.float32)
        for bits in (8, 11, 16):
            y = truncate_significand(x, bits)
            rel = np.abs(y.astype(np.float64) - x.astype(np.float64)) / np.abs(x)
            assert np.max(rel) <= 2.0 ** (-bits)

    def test_round_to_nearest_even_tie(self):
        # 1 + 2^-8 is exactly halfway between BF16 neighbours 1 and 1 + 2^-7;
        # RNE must pick the even one (1.0).
        x = np.array([1.0 + 2.0**-8], dtype=np.float32)
        assert truncate_significand(x, 8)[0] == np.float32(1.0)
        # 1 + 3*2^-8 is halfway between 1 + 2^-7 and 1 + 2^-6; even is 1 + 2^-6.
        x = np.array([1.0 + 3 * 2.0**-8], dtype=np.float32)
        assert truncate_significand(x, 8)[0] == np.float32(1.0 + 2.0**-6)

    def test_sign_preserved(self):
        x = np.array([-1.3, -0.0, 0.0, 2.6], dtype=np.float32)
        y = truncate_significand(x, 8)
        np.testing.assert_array_equal(np.signbit(y), np.signbit(x))

    def test_non_finite_passthrough(self):
        x = np.array([np.inf, -np.inf, np.nan], dtype=np.float32)
        y = truncate_significand(x, 11)
        assert np.isinf(y[0]) and np.isinf(y[1]) and np.isnan(y[2])

    @pytest.mark.parametrize("bad", [0, 25, -3])
    def test_invalid_bit_count(self, bad):
        with pytest.raises(ConfigurationError):
            truncate_significand(np.zeros(1, dtype=np.float32), bad)


class TestNamedConversions:
    def test_bf16_matches_manual_truncation(self):
        x = np.array([3.14159, -1e-3, 123.456], dtype=np.float32)
        np.testing.assert_array_equal(round_to_bf16(x), truncate_significand(x, 8))

    def test_tf32_precision_between_bf16_and_fp32(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal(500).astype(np.float32)
        err_bf16 = np.max(np.abs(round_to_bf16(x) - x))
        err_tf32 = np.max(np.abs(round_to_tf32(x) - x))
        assert err_tf32 < err_bf16

    def test_fp16_overflow_to_inf(self):
        x = np.array([1e6], dtype=np.float32)
        assert np.isinf(round_to_fp16(x).astype(np.float64))[0]

    def test_fp16_dtype(self):
        assert round_to_fp16(np.ones(3, dtype=np.float32)).dtype == np.float16

    def test_round_to_format_dispatch(self):
        x = np.array([1.2345678], dtype=np.float64)
        assert round_to_format(x, FP64).dtype == np.float64
        assert round_to_format(x, FP32).dtype == np.float32
        assert round_to_format(x, FP16).dtype == np.float16
        np.testing.assert_array_equal(round_to_format(x, BF16), round_to_bf16(x))
        np.testing.assert_array_equal(round_to_format(x, TF32), round_to_tf32(x))

    def test_round_to_format_rejects_int(self):
        with pytest.raises(ConfigurationError):
            round_to_format(np.ones(2), "int8")
