"""Package-level smoke tests: public API surface and version metadata."""

from __future__ import annotations

import numpy as np
import pytest

import repro


def test_version_string():
    assert isinstance(repro.__version__, str)
    parts = repro.__version__.split(".")
    assert len(parts) >= 2
    assert all(p.isdigit() for p in parts)


def test_public_api_exports():
    for name in repro.__all__:
        assert hasattr(repro, name), f"__all__ names missing attribute {name}"


def test_top_level_emulated_dgemm_roundtrip():
    rng = np.random.default_rng(0)
    a = rng.standard_normal((32, 24))
    b = rng.standard_normal((24, 16))
    c = repro.emulated_dgemm(a, b, num_moduli=14)
    assert c.shape == (32, 16)
    assert c.dtype == np.float64
    assert np.allclose(c, a @ b, rtol=1e-9, atol=1e-12)


def test_top_level_emulated_sgemm_roundtrip():
    rng = np.random.default_rng(1)
    a = rng.standard_normal((20, 30)).astype(np.float32)
    b = rng.standard_normal((30, 12)).astype(np.float32)
    c = repro.emulated_sgemm(a, b, num_moduli=8)
    assert c.dtype == np.float32
    assert np.allclose(c.astype(np.float64), a.astype(np.float64) @ b.astype(np.float64),
                       rtol=1e-3, atol=1e-6)


def test_exceptions_are_exported_and_subclass_reproerror():
    assert issubclass(repro.ConfigurationError, repro.ReproError)
    assert issubclass(repro.ValidationError, repro.ReproError)
    assert issubclass(repro.ValidationError, ValueError)
    assert issubclass(repro.EngineError, repro.ReproError)
    assert issubclass(repro.ModuliError, repro.ReproError)
    assert issubclass(repro.OverflowRiskError, repro.ReproError)
    assert issubclass(repro.PerfModelError, repro.ReproError)


def test_get_format_reachable_from_top_level():
    assert repro.get_format("double") is repro.FP64
    assert repro.get_format("float32") is repro.FP32
    with pytest.raises(repro.ConfigurationError):
        repro.get_format("fp128")
