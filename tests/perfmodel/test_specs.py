"""Tests for the GPU specification database."""

from __future__ import annotations

import pytest

from repro.errors import PerfModelError
from repro.perfmodel.specs import FIGURE1_GPUS, GPUS, get_gpu


class TestDatabase:
    def test_evaluation_gpus_present(self):
        for name in ("A100", "GH200", "RTX5080"):
            assert name in GPUS

    def test_figure1_gpus_resolvable_and_ordered_by_year(self):
        years = [get_gpu(name).year for name in FIGURE1_GPUS]
        assert years == sorted(years)

    def test_lookup_case_insensitive(self):
        assert get_gpu("gh200").name == "GH200"

    def test_unknown_gpu(self):
        with pytest.raises(PerfModelError):
            get_gpu("TPUv4")

    def test_positive_specs(self):
        for spec in GPUS.values():
            assert spec.fp64 > 0 and spec.fp32 > 0 and spec.fp16_tc > 0
            assert spec.int8_tops > 0
            assert spec.bandwidth_gbps > 0 and spec.tdp_watts > 0
            assert 0 < spec.idle_fraction < 1
            assert 0 < spec.tensor_efficiency <= 1
            assert 0 < spec.vector_efficiency <= 1

    def test_int8_much_faster_than_fp64_on_recent_gpus(self):
        """The premise of the paper (Figure 1): INT8 engines vastly outpace FP64."""
        for name in ("A100", "GH200", "RTX5080"):
            spec = get_gpu(name)
            assert spec.int8_tops > 10 * (spec.fp64_tc or spec.fp64)

    def test_rtx5080_fp64_is_weak(self):
        """Section 5: on RTX 5080 'FP32 is 64x faster than FP64'."""
        spec = get_gpu("RTX5080")
        assert spec.fp32 / spec.fp64 == pytest.approx(64, rel=0.05)

    def test_bf16x9_support_flags(self):
        assert get_gpu("RTX5080").supports_bf16x9
        assert not get_gpu("A100").supports_bf16x9
        assert not get_gpu("GH200").supports_bf16x9


class TestPeakLookup:
    def test_engine_names(self):
        spec = get_gpu("A100")
        for engine in ("fp64", "fp64_simt", "fp32", "tf32", "fp16", "bf16", "int8"):
            assert spec.peak_for(engine) > 0

    def test_sustained_below_raw(self):
        spec = get_gpu("GH200")
        assert spec.peak_for("int8") < spec.peak_for("int8", sustained=False)
        assert spec.peak_for("int8", sustained=False) == spec.int8_tops * 1e12

    def test_fp64_prefers_tensor_core_path(self):
        spec = get_gpu("A100")
        assert spec.peak_for("fp64", sustained=False) == spec.fp64_tc * 1e12
        assert spec.peak_for("fp64_simt", sustained=False) == spec.fp64 * 1e12

    def test_unknown_engine(self):
        with pytest.raises(PerfModelError):
            get_gpu("A100").peak_for("int4")

    def test_bandwidth_units(self):
        assert get_gpu("A100").bandwidth_bytes_per_s == pytest.approx(2039e9)
