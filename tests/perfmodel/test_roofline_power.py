"""Tests for the roofline time model and the power model."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import PerfModelError
from repro.perfmodel.breakdown import phase_breakdown
from repro.perfmodel.costmodel import method_cost
from repro.perfmodel.power import modeled_energy, modeled_power, power_efficiency
from repro.perfmodel.roofline import modeled_tflops, modeled_time, phase_times
from repro.perfmodel.specs import get_gpu


class TestRoofline:
    def test_time_positive_and_monotone_in_size(self):
        t_small = modeled_time("DGEMM", "GH200", 1024, 1024, 1024)
        t_large = modeled_time("DGEMM", "GH200", 8192, 8192, 8192)
        assert 0 < t_small < t_large

    def test_tflops_never_exceed_sustained_peak(self):
        gpu = get_gpu("GH200")
        for n in (1024, 4096, 16384):
            assert modeled_tflops("DGEMM", gpu, n, n, n) <= gpu.peak_for("fp64") / 1e12 + 1e-9
            assert modeled_tflops("SGEMM", gpu, n, n, n, target="fp32") <= gpu.peak_for("fp32") / 1e12 + 1e-9

    def test_native_gemm_approaches_peak_for_large_n(self):
        gpu = get_gpu("A100")
        tflops = modeled_tflops("DGEMM", gpu, 16384, 16384, 16384)
        assert tflops > 0.95 * gpu.peak_for("fp64") / 1e12

    def test_emulation_overhead_hurts_small_sizes(self):
        """Small problems must favour native DGEMM (the paper's crossover)."""
        native = modeled_tflops("DGEMM", "GH200", 1024, 1024, 1024)
        emulated = modeled_tflops("OS II-fast-15", "GH200", 1024, 1024, 1024)
        assert emulated < native

    def test_prebuilt_cost_accepted(self):
        cost = method_cost("DGEMM", 512, 512, 512)
        assert modeled_time(cost, "A100") == modeled_time("DGEMM", "A100", 512, 512, 512)

    def test_missing_size_rejected(self):
        with pytest.raises(PerfModelError):
            modeled_time("DGEMM", "A100")

    def test_phase_times_cover_all_phases(self):
        cost = method_cost("OS II-fast-12", 1024, 1024, 1024)
        times = phase_times(cost, "GH200")
        assert len(times) == len(cost.phases)
        assert all(t > 0 for _, t in times)

    def test_bf16x9_fallback_on_hopper(self):
        """Without native BF16x9 support the method behaves like SGEMM."""
        hopper = modeled_tflops("BF16x9", "GH200", 8192, 8192, 8192, target="fp32")
        sgemm = modeled_tflops("SGEMM", "GH200", 8192, 8192, 8192, target="fp32")
        assert hopper == pytest.approx(sgemm, rel=0.15)

    def test_kernel_overhead_matters_only_for_small_problems(self):
        gpu = get_gpu("GH200")
        no_overhead = dataclasses.replace(gpu, kernel_overhead_s=0.0)
        small_with = modeled_time("OS II-fast-15", gpu, 256, 256, 256)
        small_without = modeled_time("OS II-fast-15", no_overhead, 256, 256, 256)
        large_with = modeled_time("OS II-fast-15", gpu, 16384, 16384, 16384)
        large_without = modeled_time("OS II-fast-15", no_overhead, 16384, 16384, 16384)
        assert (small_with - small_without) / small_without > 0.2
        assert (large_with - large_without) / large_without < 0.01


class TestPower:
    def test_energy_and_power_positive(self):
        energy = modeled_energy("OS II-fast-15", "GH200", 4096, 4096, 4096)
        power = modeled_power("OS II-fast-15", "GH200", 4096, 4096, 4096)
        assert energy > 0
        gpu = get_gpu("GH200")
        assert gpu.idle_fraction * gpu.tdp_watts <= power <= gpu.tdp_watts

    def test_power_efficiency_consistent_with_time_and_energy(self):
        eff = power_efficiency("DGEMM", "A100", 8192, 8192, 8192)
        time = modeled_time("DGEMM", "A100", 8192, 8192, 8192)
        energy = modeled_energy("DGEMM", "A100", 8192, 8192, 8192)
        flops = 2 * 8192**3
        assert eff == pytest.approx(flops / energy / 1e9)
        assert energy <= get_gpu("A100").tdp_watts * time * 1.0001

    def test_compute_bound_gemm_runs_near_tdp(self):
        gpu = get_gpu("GH200")
        power = modeled_power("DGEMM", gpu, 16384, 16384, 16384)
        assert power > 0.9 * gpu.tdp_watts

    def test_memory_bound_phase_draws_less_power(self):
        """A small INT8 GEMM is memory/overhead bound and therefore cheap in
        power — the effect behind the paper's Section 5.4 observation."""
        gpu = get_gpu("RTX5080")
        small = modeled_power("OS II-fast-8", gpu, 512, 512, 512, target="fp32")
        large = modeled_power("OS II-fast-8", gpu, 16384, 16384, 16384, target="fp32")
        assert small < large

    def test_missing_size_rejected(self):
        with pytest.raises(PerfModelError):
            power_efficiency("DGEMM", "A100")


class TestBreakdown:
    def test_fractions_sum_to_one(self):
        for gpu in ("GH200", "RTX5080"):
            fractions = phase_breakdown("OS II-fast-15", gpu, 2048, 2048, 2048)
            assert sum(fractions.values()) == pytest.approx(1.0)
            assert all(0 <= v <= 1 for v in fractions.values())

    def test_seconds_mode(self):
        seconds = phase_breakdown(
            "OS II-fast-15", "GH200", 2048, 2048, 2048, as_fractions=False
        )
        assert sum(seconds.values()) == pytest.approx(
            modeled_time("OS II-fast-15", "GH200", 2048, 2048, 2048)
        )

    def test_matmul_fraction_grows_with_problem_size(self):
        """Figures 6-7: conversions fade as n grows; GEMM dominates."""
        small = phase_breakdown("OS II-fast-15", "GH200", 1024, 1024, 1024)
        large = phase_breakdown("OS II-fast-15", "GH200", 16384, 16384, 16384)
        assert large["matmul"] > small["matmul"]
        assert large["matmul"] > 0.5

    def test_non_gemm_overhead_larger_on_rtx5080(self):
        """Section 5.3: weak FP64 makes the conversion phases relatively more
        expensive on RTX 5080 than on GH200."""
        rtx = phase_breakdown("OS II-fast-15", "RTX5080", 8192, 8192, 8192)
        gh = phase_breakdown("OS II-fast-15", "GH200", 8192, 8192, 8192)
        non_gemm = lambda d: 1.0 - d["matmul"]
        assert non_gemm(rtx) > non_gemm(gh)

    def test_accurate_mode_scale_phase_heavier(self):
        fast = phase_breakdown("OS II-fast-15", "GH200", 4096, 4096, 4096)
        accu = phase_breakdown("OS II-accu-15", "GH200", 4096, 4096, 4096)
        assert accu["scale"] > fast["scale"]
