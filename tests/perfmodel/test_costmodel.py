"""Tests for the per-phase cost model."""

from __future__ import annotations

import pytest

from repro.errors import PerfModelError
from repro.perfmodel.costmodel import method_cost
from repro.types import FP32, FP64


class TestGenericProperties:
    @pytest.mark.parametrize(
        "method, target",
        [
            ("DGEMM", FP64),
            ("SGEMM", FP32),
            ("TF32GEMM", FP32),
            ("BF16x9", FP32),
            ("cuMpSGEMM", FP32),
            ("ozIMMU_EF-9", FP64),
            ("OS II-fast-15", FP64),
            ("OS II-accu-15", FP64),
            ("OS II-fast-8", FP32),
        ],
    )
    def test_costs_positive_and_credit_useful_flops(self, method, target):
        cost = method_cost(method, 512, 512, 512, target=target)
        assert cost.useful_flops == 2 * 512**3
        assert cost.total_ops() > 0
        assert cost.total_bytes() > 0
        assert all(p.ops >= 0 and p.bytes_moved >= 0 and p.kernels >= 1 for p in cost.phases)

    def test_invalid_size(self):
        with pytest.raises(PerfModelError):
            method_cost("DGEMM", 0, 4, 4)


class TestMethodSpecificCounts:
    def test_native_dgemm_single_gemm(self):
        cost = method_cost("DGEMM", 100, 200, 300)
        assert len(cost.phases) == 1
        assert cost.phases[0].engine == "fp64"
        assert cost.phases[0].ops == 2 * 100 * 200 * 300

    def test_ozaki2_int8_work_scales_with_moduli(self):
        small = method_cost("OS II-fast-8", 256, 256, 256)
        large = method_cost("OS II-fast-16", 256, 256, 256)
        int8_ops = lambda c: sum(p.ops for p in c.phases if p.engine == "int8")
        assert int8_ops(large) == pytest.approx(2 * int8_ops(small))
        assert int8_ops(small) == 8 * 2 * 256**3

    def test_ozaki2_accurate_has_extra_int8_gemm(self):
        fast = method_cost("OS II-fast-10", 128, 128, 128)
        accu = method_cost("OS II-accu-10", 128, 128, 128)
        int8_kernels = lambda c: sum(p.kernels for p in c.phases if p.engine == "int8")
        assert int8_kernels(accu) == int8_kernels(fast) + 1

    def test_ozimmu_triangular_gemm_count(self):
        cost = method_cost("ozIMMU_EF-9", 64, 64, 64)
        matmul = [p for p in cost.phases if p.name == "matmul"][0]
        assert matmul.kernels == 45
        assert matmul.ops == 45 * 2 * 64**3

    def test_bf16x9_nine_products(self):
        cost = method_cost("BF16x9", 64, 64, 64, target=FP32)
        matmul = [p for p in cost.phases if p.name == "matmul"][0]
        assert matmul.kernels == 9
        assert matmul.engine == "bf16"

    def test_cumpsgemm_three_products(self):
        cost = method_cost("cuMpSGEMM", 64, 64, 64, target=FP32)
        matmul = [p for p in cost.phases if p.name == "matmul"][0]
        assert matmul.kernels == 3
        assert matmul.engine == "fp16"

    def test_ozaki2_phase_names_match_breakdown_figures(self):
        cost = method_cost("OS II-fast-12", 128, 128, 128)
        names = {p.name for p in cost.phases}
        assert {"scale", "convert_A", "convert_B", "matmul", "accumulate",
                "reconstruct", "unscale"} <= names

    def test_sgemm_target_uses_fp32_pipeline_for_conversions(self):
        cost = method_cost("OS II-fast-8", 128, 128, 128, target=FP32)
        non_gemm_engines = {p.engine for p in cost.phases if p.engine != "int8"}
        assert non_gemm_engines == {"fp32"}

    def test_gemm_dominates_asymptotically(self):
        """For large n the INT8 GEMM work must dominate all O(n^2) phases."""
        cost = method_cost("OS II-fast-15", 16384, 16384, 16384)
        int8_ops = sum(p.ops for p in cost.phases if p.engine == "int8")
        other_ops = sum(p.ops for p in cost.phases if p.engine != "int8")
        assert int8_ops > 20 * other_ops
