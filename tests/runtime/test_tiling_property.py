"""Property test: m/n output tiling never changes a single bit of the result.

The runtime's memory-budget tiling partitions the output; every element of
``C`` is produced by exactly the same sequence of integer products and
fixed-order floating-point accumulations whether or not the output was
tiled, so the results must be bitwise equal — for any problem shape, any
budget (including degenerate ones forcing 1x1 tiles) and any worker count.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.config import Ozaki2Config
from repro.core.gemm import ozaki2_gemm
from repro.workloads.generators import phi_matrix

COMMON_SETTINGS = dict(max_examples=25, deadline=None)

dims = st.integers(min_value=1, max_value=28)
moduli = st.integers(min_value=2, max_value=16)
budgets = st.floats(min_value=1e-6, max_value=0.01)
workers = st.sampled_from([1, 2, 3])


@given(m=dims, k=dims, n=dims, num_moduli=moduli, budget=budgets, parallelism=workers, seed=st.integers(0, 2**16))
@settings(**COMMON_SETTINGS)
def test_tiling_preserves_exactness(m, k, n, num_moduli, budget, parallelism, seed):
    a = phi_matrix(m, k, phi=0.5, seed=seed)
    b = phi_matrix(k, n, phi=0.5, seed=seed + 1)

    baseline = ozaki2_gemm(a, b, config=Ozaki2Config.for_dgemm(num_moduli))
    tiled = ozaki2_gemm(
        a,
        b,
        config=Ozaki2Config.for_dgemm(
            num_moduli, memory_budget_mb=budget, parallelism=parallelism
        ),
    )
    np.testing.assert_array_equal(tiled, baseline)


@given(m=dims, k=dims, n=dims, budget=budgets, seed=st.integers(0, 2**16))
@settings(**COMMON_SETTINGS)
def test_tiling_preserves_exactness_sgemm(m, k, n, budget, seed):
    a = phi_matrix(m, k, phi=0.5, precision="fp32", seed=seed)
    b = phi_matrix(k, n, phi=0.5, precision="fp32", seed=seed + 1)

    config = Ozaki2Config.for_sgemm(8)
    baseline = ozaki2_gemm(a, b, config=config)
    tiled = ozaki2_gemm(a, b, config=config.replace(memory_budget_mb=budget))
    np.testing.assert_array_equal(tiled, baseline)
