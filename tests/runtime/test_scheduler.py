"""Tests for the worker-pool scheduler: determinism, clones, ledger merging."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import Ozaki2Config
from repro.core.gemm import PhaseTimes, ozaki2_gemm
from repro.engines.base import OpCounter
from repro.engines.int8 import Int8MatrixEngine
from repro.runtime.plan import build_plan
from repro.runtime.scheduler import Scheduler, execute_plan
from repro.workloads import phi_pair


class TestEngineClone:
    def test_clone_preserves_settings_fresh_counter(self):
        engine = Int8MatrixEngine(use_blas=False, strict_k=False)
        engine.matmul(np.ones((2, 3)), np.ones((3, 2)))
        clone = engine.clone()
        assert clone.use_blas is False
        assert clone.strict_k is False
        assert clone.counter.matmul_calls == 0
        assert engine.counter.matmul_calls == 1
        clone.matmul(np.ones((2, 3)), np.ones((3, 2)))
        assert engine.counter.matmul_calls == 1  # independent ledgers


class TestOpCounterArithmetic:
    def test_absorb_and_difference(self):
        a = OpCounter()
        a.record_matmul(4, 5, 6, in_bytes=1, out_bytes=4)
        snapshot = a.copy()
        b = OpCounter()
        b.record_matmul(2, 2, 2, in_bytes=1, out_bytes=4)
        b.record_elementwise(10, in_bytes=8, out_bytes=8)
        a.absorb(b)
        assert a.matmul_calls == 2
        assert a.mac_ops == 4 * 5 * 6 + 8
        assert a.elementwise_ops == 10
        delta = a.difference(snapshot)
        assert delta.as_dict() == b.as_dict()
        assert snapshot.matmul_calls == 1  # copy is independent


class TestSchedulerMap:
    def test_serial_map_uses_primary_engine(self):
        sched = Scheduler(parallelism=1)
        engines = sched.map(lambda eng, _: id(eng), range(4))
        assert set(engines) == {id(sched.engine)}
        assert not sched.is_parallel

    def test_parallel_map_preserves_order(self):
        with Scheduler(parallelism=4) as sched:
            out = sched.map(lambda eng, i: i * i, range(20))
        assert out == [i * i for i in range(20)]

    def test_parallel_counters_merge_to_serial_totals(self):
        a_s = np.ones((3, 4, 5), dtype=np.int8)
        b_s = np.ones((3, 5, 6), dtype=np.int8)

        def task(engine, i):
            return engine.matmul(a_s[i], b_s[i])

        with Scheduler(parallelism=3) as sched:
            sched.map(task, range(3))
            sched.merge_counters()
            assert sched.engine.counter.matmul_calls == 3
            assert sched.engine.counter.mac_ops == 3 * 4 * 6 * 5

    def test_merge_counters_idempotent(self):
        with Scheduler(parallelism=2) as sched:
            sched.map(
                lambda eng, i: eng.matmul(np.ones((2, 2)), np.ones((2, 2))), range(4)
            )
            sched.merge_counters()
            first = sched.engine.counter.matmul_calls
            sched.merge_counters()
            assert sched.engine.counter.matmul_calls == first == 4

    def test_closed_scheduler_rejects_work(self):
        sched = Scheduler(parallelism=2)
        sched.close()
        with pytest.raises(RuntimeError):
            sched.map(lambda eng, i: i, [1])


class TestExecutePlanDeterminism:
    @pytest.fixture
    def slices(self, rng):
        n_mod, m, k, n = 6, 24, 40, 20
        a_s = rng.integers(-100, 100, size=(n_mod, m, k)).astype(np.int8)
        b_s = rng.integers(-100, 100, size=(n_mod, k, n)).astype(np.int8)
        return a_s, b_s

    def _run(self, a_s, b_s, *, parallelism, memory_budget_mb=None, max_block_k=64):
        from repro.crt.constants import build_constant_table

        n_mod, m, k = a_s.shape
        n = b_s.shape[2]
        table = build_constant_table(n_mod, 64)
        config = Ozaki2Config.for_dgemm(n_mod)
        plan = build_plan(
            m,
            k,
            n,
            n_mod,
            max_block_k=max_block_k,
            memory_budget_mb=memory_budget_mb,
            parallelism=parallelism,
        )
        times = PhaseTimes()
        with Scheduler(parallelism=parallelism) as sched:
            c_pp = execute_plan(sched, plan, a_s, b_s, table, config, times)
            calls = sched.engine.counter.matmul_calls
        return c_pp, times, calls, plan

    def test_parallel_bit_identical_to_serial(self, slices):
        a_s, b_s = slices
        serial, _, serial_calls, _ = self._run(a_s, b_s, parallelism=1)
        for workers in (2, 4, 8):
            parallel, _, calls, _ = self._run(a_s, b_s, parallelism=workers)
            np.testing.assert_array_equal(parallel, serial)
            assert calls == serial_calls

    def test_tiled_bit_identical_and_counts(self, slices):
        a_s, b_s = slices
        serial, _, _, _ = self._run(a_s, b_s, parallelism=1)
        tiled, _, calls, plan = self._run(
            a_s, b_s, parallelism=3, memory_budget_mb=0.003
        )
        np.testing.assert_array_equal(tiled, serial)
        assert plan.num_tiles > 1
        assert calls == plan.total_tasks

    def test_phase_times_populated(self, slices):
        a_s, b_s = slices
        _, times, _, _ = self._run(a_s, b_s, parallelism=2)
        assert times.seconds["matmul"] > 0.0
        assert times.seconds["accumulate"] > 0.0
        assert times.seconds["reconstruct"] > 0.0

    def test_shape_mismatch_rejected(self, slices):
        a_s, b_s = slices
        from repro.crt.constants import build_constant_table

        table = build_constant_table(a_s.shape[0], 64)
        config = Ozaki2Config.for_dgemm(a_s.shape[0])
        plan = build_plan(99, a_s.shape[2], b_s.shape[2], a_s.shape[0])
        with Scheduler() as sched:
            with pytest.raises(ValueError):
                execute_plan(sched, plan, a_s, b_s, table, config)


class TestGemmLevelParallelism:
    def test_gemm_parallel_matches_serial_bitwise(self):
        a, b = phi_pair(48, 96, 40, phi=0.5, seed=21)
        serial = ozaki2_gemm(a, b, config=Ozaki2Config.for_dgemm(15, parallelism=1))
        # Worker counts must be explicit positives at the config level (the
        # CLI's --parallel 0 convenience maps to os.cpu_count() before this).
        for workers in (2, 3, 4):
            parallel = ozaki2_gemm(
                a, b, config=Ozaki2Config.for_dgemm(15, parallelism=workers)
            )
            np.testing.assert_array_equal(parallel, serial)

    def test_gemm_accurate_mode_parallel_matches_serial(self):
        a, b = phi_pair(32, 64, 28, phi=1.0, seed=22)
        config = Ozaki2Config.for_dgemm(12, mode="accurate")
        serial = ozaki2_gemm(a, b, config=config)
        parallel = ozaki2_gemm(a, b, config=config.replace(parallelism=4))
        np.testing.assert_array_equal(parallel, serial)

    def test_gemm_counter_same_under_parallelism(self):
        a, b = phi_pair(24, 48, 24, phi=0.5, seed=23)
        serial = ozaki2_gemm(
            a, b, config=Ozaki2Config.for_dgemm(9), return_details=True
        )
        parallel = ozaki2_gemm(
            a, b, config=Ozaki2Config.for_dgemm(9, parallelism=4), return_details=True
        )
        assert (
            parallel.int8_counter.as_dict() == serial.int8_counter.as_dict()
        )

    def test_external_scheduler_reuse(self):
        a, b = phi_pair(24, 32, 24, phi=0.5, seed=24)
        config = Ozaki2Config.for_dgemm(8, parallelism=2)
        expected = ozaki2_gemm(a, b, config=config)
        with Scheduler(parallelism=2) as sched:
            c1 = ozaki2_gemm(a, b, config=config, scheduler=sched)
            c2 = ozaki2_gemm(a, b, config=config, scheduler=sched)
            np.testing.assert_array_equal(c1, expected)
            np.testing.assert_array_equal(c2, expected)
            # Two GEMMs' worth of calls on one shared ledger.
            assert sched.engine.counter.matmul_calls == 16
