"""Tests for the batched GEMM API: loop equivalence, ledgers, grouping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import Ozaki2Config
from repro.core.gemm import Ozaki2Result, ozaki2_gemm
from repro.engines.int8 import Int8MatrixEngine
from repro.runtime import Scheduler, ozaki2_gemm_batched
from repro.workloads import phi_pair


def _mixed_batch(seed: int = 0):
    """8 problems of mixed sizes (with repeated shapes to exercise grouping)."""
    shapes = [
        (32, 48, 24),
        (32, 48, 24),
        (16, 20, 12),
        (64, 32, 8),
        (32, 48, 24),
        (16, 20, 12),
        (8, 8, 8),
        (40, 64, 56),
    ]
    As, Bs = [], []
    for j, (m, k, n) in enumerate(shapes):
        a, b = phi_pair(m, k, n, phi=0.5, seed=seed + j)
        As.append(a)
        Bs.append(b)
    return As, Bs


class TestBatchedEquivalence:
    def test_batched_bit_identical_to_serial_loop_8_mixed(self):
        As, Bs = _mixed_batch()
        config = Ozaki2Config.for_dgemm(15)
        batched = ozaki2_gemm_batched(As, Bs, config=config)
        assert len(batched) == 8
        for a, b, c in zip(As, Bs, batched):
            np.testing.assert_array_equal(c, ozaki2_gemm(a, b, config=config))

    def test_batched_parallel_bit_identical(self):
        As, Bs = _mixed_batch(seed=100)
        config = Ozaki2Config.for_dgemm(10, parallelism=4)
        serial_cfg = config.replace(parallelism=1)
        batched = ozaki2_gemm_batched(As, Bs, config=config)
        for a, b, c in zip(As, Bs, batched):
            np.testing.assert_array_equal(c, ozaki2_gemm(a, b, config=serial_cfg))

    def test_batched_sgemm(self):
        As, Bs = [], []
        for j in range(3):
            a, b = phi_pair(24, 32, 20, phi=0.5, precision="fp32", seed=j)
            As.append(a)
            Bs.append(b)
        config = Ozaki2Config.for_sgemm(8)
        batched = ozaki2_gemm_batched(As, Bs, config=config)
        for a, b, c in zip(As, Bs, batched):
            assert c.dtype == np.float32
            np.testing.assert_array_equal(c, ozaki2_gemm(a, b, config=config))

    def test_batched_accurate_mode(self):
        As, Bs = _mixed_batch(seed=50)
        As, Bs = As[:3], Bs[:3]
        config = Ozaki2Config.for_dgemm(12, mode="accurate")
        batched = ozaki2_gemm_batched(As, Bs, config=config)
        for a, b, c in zip(As, Bs, batched):
            np.testing.assert_array_equal(c, ozaki2_gemm(a, b, config=config))

    def test_batched_with_memory_budget(self):
        As, Bs = _mixed_batch(seed=7)
        config = Ozaki2Config.for_dgemm(8, memory_budget_mb=0.01)
        reference_cfg = config.replace(memory_budget_mb=None)
        batched = ozaki2_gemm_batched(As, Bs, config=config)
        for a, b, c in zip(As, Bs, batched):
            np.testing.assert_array_equal(c, ozaki2_gemm(a, b, config=reference_cfg))


class TestBatchedDetails:
    def test_per_item_results_and_counters(self):
        As, Bs = _mixed_batch(seed=9)
        config = Ozaki2Config.for_dgemm(9, parallelism=2)
        results = ozaki2_gemm_batched(As, Bs, config=config, return_details=True)
        assert all(isinstance(r, Ozaki2Result) for r in results)
        for a, b, r in zip(As, Bs, results):
            assert r.c.shape == (a.shape[0], b.shape[1])
            # Fast mode, no k-blocking: exactly N INT8 GEMMs per item.
            assert r.int8_counter.matmul_calls == 9
            assert r.int8_counter.mac_ops == 9 * a.shape[0] * a.shape[1] * b.shape[1]
            assert r.num_k_blocks == 1
            assert r.method_name == "OS II-fast-9"

    def test_accurate_mode_counters_match_loop(self):
        """Accurate mode issues an extra engine GEMM during scaling; the
        per-item batched ledgers must attribute it, matching a serial loop."""
        As, Bs = _mixed_batch(seed=13)
        As, Bs = As[:3], Bs[:3]
        config = Ozaki2Config.for_dgemm(8, mode="accurate")
        batched = ozaki2_gemm_batched(As, Bs, config=config, return_details=True)
        for a, b, r in zip(As, Bs, batched):
            loop = ozaki2_gemm(a, b, config=config, return_details=True)
            assert r.int8_counter.as_dict() == loop.int8_counter.as_dict()
            assert r.int8_counter.matmul_calls == 9  # N GEMMs + 1 scale GEMM

    def test_batch_ledger_lands_on_primary_engine(self):
        As, Bs = _mixed_batch(seed=3)
        engine = Int8MatrixEngine()
        ozaki2_gemm_batched(
            As, Bs, config=Ozaki2Config.for_dgemm(7, parallelism=3), engine=engine
        )
        assert engine.counter.matmul_calls == 7 * len(As)

    def test_phase_times_cover_all_phases(self):
        As, Bs = _mixed_batch(seed=4)
        results = ozaki2_gemm_batched(
            As, Bs, config=Ozaki2Config.for_dgemm(8), return_details=True
        )
        for r in results:
            for key in ("scale", "convert_A", "convert_B", "matmul", "unscale"):
                assert r.phase_times.seconds[key] > 0.0


class TestBatchedValidation:
    def test_empty_batch(self):
        assert ozaki2_gemm_batched([], []) == []

    def test_length_mismatch(self):
        a, b = phi_pair(8, 8, 8, phi=0.5, seed=0)
        with pytest.raises(ValueError):
            ozaki2_gemm_batched([a, a], [b])

    def test_invalid_item_rejected(self):
        a, b = phi_pair(8, 8, 8, phi=0.5, seed=0)
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            ozaki2_gemm_batched([a, np.ones((3, 4))], [b, np.ones((5, 6))])

    def test_external_scheduler_not_closed(self):
        As, Bs = _mixed_batch(seed=2)
        with Scheduler(parallelism=2) as sched:
            first = ozaki2_gemm_batched(
                As[:2], Bs[:2], config=Ozaki2Config.for_dgemm(6), scheduler=sched
            )
            second = ozaki2_gemm_batched(
                As[:2], Bs[:2], config=Ozaki2Config.for_dgemm(6), scheduler=sched
            )
        for c1, c2 in zip(first, second):
            np.testing.assert_array_equal(c1, c2)
