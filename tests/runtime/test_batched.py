"""Tests for the batched GEMM API: loop equivalence, ledgers, grouping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import Ozaki2Config
from repro.core.gemm import Ozaki2Result, ozaki2_gemm
from repro.engines.int8 import Int8MatrixEngine
from repro.runtime import Scheduler, ozaki2_gemm_batched
from repro.workloads import phi_pair


def _mixed_batch(seed: int = 0):
    """8 problems of mixed sizes (with repeated shapes to exercise grouping)."""
    shapes = [
        (32, 48, 24),
        (32, 48, 24),
        (16, 20, 12),
        (64, 32, 8),
        (32, 48, 24),
        (16, 20, 12),
        (8, 8, 8),
        (40, 64, 56),
    ]
    As, Bs = [], []
    for j, (m, k, n) in enumerate(shapes):
        a, b = phi_pair(m, k, n, phi=0.5, seed=seed + j)
        As.append(a)
        Bs.append(b)
    return As, Bs


class TestBatchedEquivalence:
    def test_batched_bit_identical_to_serial_loop_8_mixed(self):
        As, Bs = _mixed_batch()
        config = Ozaki2Config.for_dgemm(15)
        batched = ozaki2_gemm_batched(As, Bs, config=config)
        assert len(batched) == 8
        for a, b, c in zip(As, Bs, batched, strict=True):
            np.testing.assert_array_equal(c, ozaki2_gemm(a, b, config=config))

    def test_batched_parallel_bit_identical(self):
        As, Bs = _mixed_batch(seed=100)
        config = Ozaki2Config.for_dgemm(10, parallelism=4)
        serial_cfg = config.replace(parallelism=1)
        batched = ozaki2_gemm_batched(As, Bs, config=config)
        for a, b, c in zip(As, Bs, batched, strict=True):
            np.testing.assert_array_equal(c, ozaki2_gemm(a, b, config=serial_cfg))

    def test_batched_sgemm(self):
        As, Bs = [], []
        for j in range(3):
            a, b = phi_pair(24, 32, 20, phi=0.5, precision="fp32", seed=j)
            As.append(a)
            Bs.append(b)
        config = Ozaki2Config.for_sgemm(8)
        batched = ozaki2_gemm_batched(As, Bs, config=config)
        for a, b, c in zip(As, Bs, batched, strict=True):
            assert c.dtype == np.float32
            np.testing.assert_array_equal(c, ozaki2_gemm(a, b, config=config))

    def test_batched_accurate_mode(self):
        As, Bs = _mixed_batch(seed=50)
        As, Bs = As[:3], Bs[:3]
        config = Ozaki2Config.for_dgemm(12, mode="accurate")
        batched = ozaki2_gemm_batched(As, Bs, config=config)
        for a, b, c in zip(As, Bs, batched, strict=True):
            np.testing.assert_array_equal(c, ozaki2_gemm(a, b, config=config))

    def test_batched_with_memory_budget(self):
        As, Bs = _mixed_batch(seed=7)
        config = Ozaki2Config.for_dgemm(8, memory_budget_mb=0.01)
        reference_cfg = config.replace(memory_budget_mb=None)
        batched = ozaki2_gemm_batched(As, Bs, config=config)
        for a, b, c in zip(As, Bs, batched, strict=True):
            np.testing.assert_array_equal(c, ozaki2_gemm(a, b, config=reference_cfg))


class TestBatchedDetails:
    def test_per_item_results_and_counters(self):
        As, Bs = _mixed_batch(seed=9)
        config = Ozaki2Config.for_dgemm(9, parallelism=2)
        results = ozaki2_gemm_batched(As, Bs, config=config, return_details=True)
        assert all(isinstance(r, Ozaki2Result) for r in results)
        for a, b, r in zip(As, Bs, results, strict=True):
            assert r.c.shape == (a.shape[0], b.shape[1])
            # Fast mode, no k-blocking: exactly N INT8 GEMMs per item.
            assert r.int8_counter.matmul_calls == 9
            assert r.int8_counter.mac_ops == 9 * a.shape[0] * a.shape[1] * b.shape[1]
            assert r.num_k_blocks == 1
            assert r.method_name == "OS II-fast-9"

    def test_accurate_mode_counters_match_loop(self):
        """Accurate mode issues an extra engine GEMM during scaling; the
        per-item batched ledgers must attribute it, matching a serial loop."""
        As, Bs = _mixed_batch(seed=13)
        As, Bs = As[:3], Bs[:3]
        config = Ozaki2Config.for_dgemm(8, mode="accurate")
        batched = ozaki2_gemm_batched(As, Bs, config=config, return_details=True)
        for a, b, r in zip(As, Bs, batched, strict=True):
            loop = ozaki2_gemm(a, b, config=config, return_details=True)
            assert r.int8_counter.as_dict() == loop.int8_counter.as_dict()
            assert r.int8_counter.matmul_calls == 9  # N GEMMs + 1 scale GEMM

    def test_batch_ledger_lands_on_primary_engine(self):
        As, Bs = _mixed_batch(seed=3)
        engine = Int8MatrixEngine()
        ozaki2_gemm_batched(
            As, Bs, config=Ozaki2Config.for_dgemm(7, parallelism=3), engine=engine
        )
        assert engine.counter.matmul_calls == 7 * len(As)

    def test_phase_times_cover_all_phases(self):
        As, Bs = _mixed_batch(seed=4)
        results = ozaki2_gemm_batched(
            As, Bs, config=Ozaki2Config.for_dgemm(8), return_details=True
        )
        for r in results:
            for key in ("scale", "convert_A", "convert_B", "matmul", "unscale"):
                assert r.phase_times.seconds[key] > 0.0


class TestBatchedPrepared:
    """Prepared operands and shared-matrix reuse inside a batch."""

    def test_prepared_items_bit_identical(self):
        from repro.core.operand import prepare_a, prepare_b

        config = Ozaki2Config.for_dgemm(10)
        a, b = phi_pair(24, 32, 20, phi=0.5, seed=40)
        a2, b2 = phi_pair(24, 32, 20, phi=0.5, seed=41)
        pa, pb = prepare_a(a, config), prepare_b(b, config)
        batched = ozaki2_gemm_batched([pa, pa, a2], [pb, b2, pb], config=config)
        for (x, y), c in zip([(a, b), (a, b2), (a2, b)], batched, strict=True):
            np.testing.assert_array_equal(c, ozaki2_gemm(x, y, config=config))

    def test_prepared_items_report_zero_convert(self):
        from repro.core.operand import prepare_a

        config = Ozaki2Config.for_dgemm(8)
        a, b = phi_pair(16, 24, 12, phi=0.5, seed=42)
        results = ozaki2_gemm_batched(
            [prepare_a(a, config), a], [b, b], config=config, return_details=True
        )
        assert results[0].phase_times.seconds["convert_A"] == 0.0
        assert results[1].phase_times.seconds["convert_A"] > 0.0
        np.testing.assert_array_equal(results[0].c, results[1].c)

    def test_shared_matrix_object_converted_once(self, monkeypatch):
        """Items passing the same array object share one conversion pass."""
        import repro.runtime.batched as batched_mod

        calls = []
        original = batched_mod.truncate_scaled

        def counting(x, scale, side):
            calls.append(side)
            return original(x, scale, side)

        monkeypatch.setattr(batched_mod, "truncate_scaled", counting)
        config = Ozaki2Config.for_dgemm(8)
        a, b = phi_pair(16, 24, 12, phi=0.5, seed=43)
        _, b2 = phi_pair(16, 24, 12, phi=0.5, seed=44)
        ozaki2_gemm_batched([a, a, a], [b, b2, b], config=config)
        # One left-side truncation for the shared A, two right-side ones
        # (b appears twice as the same object and is shared as well).
        assert calls.count("left") == 1
        assert calls.count("right") == 2

    def test_shared_matrix_bit_identical_to_loop(self):
        config = Ozaki2Config.for_dgemm(9)
        a, b = phi_pair(20, 28, 16, phi=0.5, seed=45)
        _, b2 = phi_pair(20, 28, 16, phi=0.5, seed=46)
        batched = ozaki2_gemm_batched([a, a], [b, b2], config=config)
        np.testing.assert_array_equal(batched[0], ozaki2_gemm(a, b, config=config))
        np.testing.assert_array_equal(batched[1], ozaki2_gemm(a, b2, config=config))

    def test_shared_matrix_not_deduped_in_accurate_mode(self):
        """Accurate-mode scales depend on the partner, so identical A objects
        must still convert per item — results must match the serial loop."""
        config = Ozaki2Config.for_dgemm(10, mode="accurate")
        a, b = phi_pair(16, 20, 12, phi=0.5, seed=47)
        _, b2 = phi_pair(16, 20, 12, phi=0.5, seed=48)
        batched = ozaki2_gemm_batched([a, a], [b, b2], config=config)
        np.testing.assert_array_equal(batched[0], ozaki2_gemm(a, b, config=config))
        np.testing.assert_array_equal(batched[1], ozaki2_gemm(a, b2, config=config))

    def test_prepared_rejects_accurate_mode(self):
        from repro.core.operand import prepare_a
        from repro.errors import ConfigurationError

        config = Ozaki2Config.for_dgemm(10)
        a, b = phi_pair(8, 8, 8, phi=0.5, seed=49)
        prep = prepare_a(a, config)
        with pytest.raises(ConfigurationError):
            ozaki2_gemm_batched([prep], [b], config=config.replace(mode="accurate"))


class TestBatchedValidation:
    def test_empty_batch(self):
        assert ozaki2_gemm_batched([], []) == []

    def test_empty_batch_with_details_and_config(self):
        """Regression: an empty batch returns [] cleanly for every flavour
        (no shape-grouping or scheduler setup on zero items)."""
        config = Ozaki2Config.for_dgemm(8, parallelism=2, memory_budget_mb=1.0)
        assert ozaki2_gemm_batched([], [], config=config) == []
        assert ozaki2_gemm_batched([], [], config=config, return_details=True) == []

    def test_empty_numpy_sequences(self):
        """Empty numpy arrays as the batch containers are not ambiguous."""
        assert ozaki2_gemm_batched(np.empty((0, 4, 4)), np.empty((0, 4, 4))) == []

    def test_single_item_batch_identical_to_gemm(self):
        """Regression: a batch of one goes through the same pipeline as
        ozaki2_gemm — same bits, same op ledger, same k-block count."""
        a, b = phi_pair(24, 32, 20, phi=0.5, seed=60)
        for config in (
            Ozaki2Config.for_dgemm(11),
            Ozaki2Config.for_dgemm(9, mode="accurate"),
            Ozaki2Config.for_sgemm(8),
        ):
            single = ozaki2_gemm_batched([a], [b], config=config, return_details=True)
            assert len(single) == 1
            loop = ozaki2_gemm(a, b, config=config, return_details=True)
            np.testing.assert_array_equal(single[0].c, loop.c)
            assert single[0].int8_counter.as_dict() == loop.int8_counter.as_dict()
            assert single[0].num_k_blocks == loop.num_k_blocks

    def test_length_mismatch(self):
        a, b = phi_pair(8, 8, 8, phi=0.5, seed=0)
        with pytest.raises(ValueError):
            ozaki2_gemm_batched([a, a], [b])

    def test_invalid_item_rejected(self):
        a, b = phi_pair(8, 8, 8, phi=0.5, seed=0)
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            ozaki2_gemm_batched([a, np.ones((3, 4))], [b, np.ones((5, 6))])

    def test_external_scheduler_not_closed(self):
        As, Bs = _mixed_batch(seed=2)
        with Scheduler(parallelism=2) as sched:
            first = ozaki2_gemm_batched(
                As[:2], Bs[:2], config=Ozaki2Config.for_dgemm(6), scheduler=sched
            )
            second = ozaki2_gemm_batched(
                As[:2], Bs[:2], config=Ozaki2Config.for_dgemm(6), scheduler=sched
            )
        for c1, c2 in zip(first, second, strict=True):
            np.testing.assert_array_equal(c1, c2)
