"""Tests for execution planning (tiles, k-blocks, parallelism resolution)."""

from __future__ import annotations

import pytest

from repro.config import Ozaki2Config
from repro.errors import OverflowRiskError
from repro.runtime.plan import (
    ExecutionPlan,
    build_plan,
    modulus_chunk_ranges,
    plan_for_config,
    resolve_parallelism,
)


class TestResolveParallelism:
    def test_none_and_one_are_serial(self):
        assert resolve_parallelism(None) == 1
        assert resolve_parallelism(1) == 1

    def test_zero_means_cpu_count(self):
        assert resolve_parallelism(0) >= 1

    def test_literal_counts(self):
        assert resolve_parallelism(7) == 7

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_parallelism(-2)


class TestKBlocks:
    def test_single_block_without_blocking_need(self):
        plan = build_plan(8, 100, 8, 4, max_block_k=128)
        assert plan.k_ranges == ((0, 100),)
        assert plan.num_k_blocks == 1

    def test_blocks_cover_k_exactly(self):
        plan = build_plan(8, 300, 8, 4, max_block_k=128)
        assert plan.k_ranges == ((0, 128), (128, 256), (256, 300))
        assert plan.num_k_blocks == 3

    def test_block_k_disabled_raises_beyond_threshold(self):
        with pytest.raises(OverflowRiskError):
            build_plan(8, 300, 8, 4, block_k=False, max_block_k=128)

    def test_block_k_disabled_single_range_below_threshold(self):
        plan = build_plan(8, 100, 8, 4, block_k=False, max_block_k=128)
        assert plan.k_ranges == ((0, 100),)

    def test_task_counts(self):
        plan = build_plan(8, 300, 8, 5, max_block_k=128)
        assert plan.tasks_per_tile == 15
        assert plan.total_tasks == 15


class TestMemoryBudgetTiling:
    def test_no_budget_single_tile(self):
        plan = build_plan(512, 64, 384, 15)
        assert plan.m_tiles == ((0, 512),)
        assert plan.n_tiles == ((0, 384),)
        assert plan.num_tiles == 1

    def test_budget_forces_tiling(self):
        plan = build_plan(256, 64, 256, 15, memory_budget_mb=0.25)
        assert plan.num_tiles > 1

    def test_tiles_partition_output(self):
        plan = build_plan(200, 32, 130, 8, memory_budget_mb=0.05)
        covered = set()
        for (m0, m1), (n0, n1) in plan.tiles():
            assert 0 <= m0 < m1 <= 200
            assert 0 <= n0 < n1 <= 130
            for i in range(m0, m1):
                for j in range(n0, n1):
                    assert (i, j) not in covered
                    covered.add((i, j))
        assert len(covered) == 200 * 130

    def test_tile_workspace_respects_budget(self):
        budget_mb = 0.125
        num_moduli = 12
        plan = build_plan(512, 32, 512, num_moduli, memory_budget_mb=budget_mb)
        per_element = num_moduli * 17 + 24
        for (m0, m1), (n0, n1) in plan.tiles():
            assert (m1 - m0) * (n1 - n0) * per_element <= budget_mb * 2**20

    def test_tiny_budget_still_plans(self):
        plan = build_plan(4, 4, 4, 2, memory_budget_mb=1e-6)
        assert plan.num_tiles == 16  # 1x1 tiles, never fails

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            build_plan(0, 4, 4, 2)
        with pytest.raises(ValueError):
            build_plan(4, 4, 4, 2, max_block_k=0)


class TestModulusChunks:
    def test_serial_is_one_fused_chunk(self):
        assert modulus_chunk_ranges(15, 1) == ((0, 15),)

    @pytest.mark.parametrize("n_mod", [2, 7, 15, 20])
    @pytest.mark.parametrize("workers", [1, 2, 3, 4, 8, 32])
    def test_chunks_partition_the_moduli(self, n_mod, workers):
        chunks = modulus_chunk_ranges(n_mod, workers)
        # Contiguous, ordered, exhaustive, no empty chunks.
        assert chunks[0][0] == 0 and chunks[-1][1] == n_mod
        for (lo, hi), (lo2, _) in zip(chunks, chunks[1:], strict=False):
            assert hi == lo2
        assert all(hi > lo for lo, hi in chunks)
        assert len(chunks) == min(n_mod, max(1, workers))
        # Near-equal sizes: max and min differ by at most one modulus.
        sizes = [hi - lo for lo, hi in chunks]
        assert max(sizes) - min(sizes) <= 1

    def test_invalid_moduli_count_rejected(self):
        with pytest.raises(ValueError):
            modulus_chunk_ranges(0, 2)

    def test_plan_property_uses_recorded_parallelism(self):
        plan = build_plan(32, 16, 32, 10, parallelism=4)
        assert plan.modulus_chunks == modulus_chunk_ranges(10, 4)
        serial = build_plan(32, 16, 32, 10, parallelism=1)
        assert serial.modulus_chunks == ((0, 10),)


class TestPlanForConfig:
    def test_reads_runtime_knobs_from_config(self):
        config = Ozaki2Config(parallelism=3, memory_budget_mb=0.1, num_moduli=6)
        plan = plan_for_config(64, 32, 64, config)
        assert isinstance(plan, ExecutionPlan)
        assert plan.parallelism == 3
        assert plan.num_moduli == 6
        assert plan.num_tiles > 1

    def test_defaults_are_serial_single_tile(self):
        plan = plan_for_config(64, 32, 64, Ozaki2Config())
        assert plan.parallelism == 1
        assert plan.num_tiles == 1
        assert plan.num_k_blocks == 1
