"""Process-parallel scheduler: bit-identity, ledgers, failure paths, shm.

The process executor must be a drop-in replacement for the thread pool:
for any problem, any worker count and either kernel path, the result is
bitwise equal to the strictly serial run and the merged op ledger is
indistinguishable from it.  The property test sweeps that whole grid.

The failure-path tests pin the hardening guarantees: a task that raises
inside a worker surfaces as :class:`WorkerTaskError` and leaves the
scheduler usable; dead worker processes surface as :class:`WorkerError`
and the next use lazily rebuilds the pool; shared-memory segments never
outlive the run (no ``resource_tracker`` leak warnings).
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import Ozaki2Config
from repro.core.gemm import ozaki2_gemm
from repro.core.operand import prepare_a, prepare_b
from repro.errors import ConfigurationError
from repro.runtime import TileSource, live_segment_names
from repro.runtime.plan import resolve_executor
from repro.runtime.process import WorkerTaskError
from repro.runtime.scheduler import Scheduler
from repro.runtime.shm import SharedArray, attach_view
from repro.workloads.generators import phi_matrix

pytestmark = pytest.mark.filterwarnings(
    "ignore:parallelism=:RuntimeWarning"  # CI hosts are small; that is the point
)

dims = st.integers(min_value=1, max_value=24)


@given(
    m=dims,
    k=dims,
    n=dims,
    executor=st.sampled_from(["thread", "process"]),
    parallelism=st.sampled_from([1, 2, 4]),
    fused=st.booleans(),
    prepared=st.booleans(),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=12, deadline=None)
def test_executors_bit_identical_with_equal_ledgers(
    m, k, n, executor, parallelism, fused, prepared, seed
):
    a = phi_matrix(m, k, phi=0.5, seed=seed)
    b = phi_matrix(k, n, phi=0.5, seed=seed + 1)
    base = Ozaki2Config(num_moduli=15, fused_kernels=fused)
    config = base.replace(parallelism=parallelism, executor=executor)

    if prepared:
        operands = (prepare_a(a, base), prepare_b(b, base))
    else:
        operands = (a, b)
    serial = ozaki2_gemm(*operands, config=base, return_details=True)
    result = ozaki2_gemm(*operands, config=config, return_details=True)

    np.testing.assert_array_equal(result.c, serial.c)
    assert result.ledger.as_dict() == serial.ledger.as_dict(), (
        f"op ledger diverged for executor={executor} "
        f"parallelism={parallelism} fused={fused} prepared={prepared}"
    )
    assert live_segment_names() == ()


def test_out_of_core_streams_past_the_memory_budget():
    """Stacks bigger than the budget stream through tiles, bit-identically."""
    a = phi_matrix(160, 120, phi=0.5, seed=5)
    b = phi_matrix(120, 140, phi=0.5, seed=6)
    reference = ozaki2_gemm(a, b, config=Ozaki2Config(num_moduli=15))

    budget_mb = 0.05
    for executor in ("thread", "process"):
        config = Ozaki2Config(
            num_moduli=15,
            parallelism=2,
            executor=executor,
            memory_budget_mb=budget_mb,
        )
        with TileSource(strip_elements=2048) as tiles:
            oa = tiles.prepare_a(a, config)
            ob = tiles.prepare_b(b, config)
            # The point of the exercise: the staged stacks do NOT fit the
            # budget, so execution must tile/stream rather than materialise.
            assert isinstance(oa.slices, np.memmap)
            assert oa.slices.nbytes + ob.slices.nbytes > budget_mb * 2**20
            staged = list(tiles._files)
            result = ozaki2_gemm(oa, ob, config=config)
        np.testing.assert_array_equal(result, reference)
        assert all(not os.path.exists(path) for path in staged)
    assert live_segment_names() == ()


def test_tilesource_preparation_is_bit_identical_to_in_core():
    a = phi_matrix(90, 70, phi=0.5, seed=9)
    config = Ozaki2Config(num_moduli=15)
    in_core = prepare_a(a, config)
    with TileSource(strip_elements=512) as tiles:  # many strips
        staged = tiles.prepare_a(a, config)
        np.testing.assert_array_equal(np.asarray(staged.slices), in_core.slices)
        np.testing.assert_array_equal(staged.scale, in_core.scale)


def test_tilesource_rejects_accurate_mode_and_bad_operands():
    with TileSource() as tiles:
        with pytest.raises(ConfigurationError):
            tiles.prepare_a(np.ones((4, 4)), Ozaki2Config(mode="accurate"))
        with pytest.raises(ConfigurationError):
            tiles.prepare_a(np.ones((4, 4), dtype=np.float32), Ozaki2Config())
    with pytest.raises(ConfigurationError):
        tiles.prepare_a(np.ones((4, 4)), Ozaki2Config())  # closed


def test_worker_task_error_leaves_scheduler_usable():
    a = phi_matrix(40, 32, phi=0.5, seed=1)
    b = phi_matrix(32, 28, phi=0.5, seed=2)
    config = Ozaki2Config(num_moduli=15, parallelism=2, executor="process")
    serial = ozaki2_gemm(a, b, config=Ozaki2Config(num_moduli=15))
    with Scheduler(parallelism=2, executor="process") as sched:
        with pytest.raises(WorkerTaskError):
            sched.run_process_tasks([("no-such-task", {})])
        # The pool survived the in-task failure: the same scheduler still
        # serves a full GEMM, bit-identically.
        again = ozaki2_gemm(a, b, config=config, scheduler=sched)
    np.testing.assert_array_equal(again, serial)
    assert live_segment_names() == ()


def test_dead_workers_are_survived_by_a_rebuilt_pool():
    """Worker death mid-dispatch is recovered transparently, on the ledger.

    The lost wave's counters die un-absorbed with the pool, and the whole
    wave re-executes on a rebuilt pool — so the result *and* the ledger's
    work counters stay identical to the serial run, with the recovery
    recorded only in ``fault_events``.
    """
    a = phi_matrix(36, 30, phi=0.5, seed=3)
    b = phi_matrix(30, 26, phi=0.5, seed=4)
    config = Ozaki2Config(num_moduli=15, parallelism=2, executor="process")
    serial = ozaki2_gemm(a, b, config=Ozaki2Config(num_moduli=15), return_details=True)
    with Scheduler(parallelism=2, executor="process") as sched:
        pool = sched._ensure_process_pool()
        for proc in pool._procs:
            proc.terminate()
            proc.join()
        again = ozaki2_gemm(a, b, config=config, scheduler=sched, return_details=True)
        health = sched.health()
    np.testing.assert_array_equal(again.c, serial.c)
    assert again.fault_events["pool_failure"] == 1
    assert again.fault_events["wave_retry"] == 1
    assert not again.degraded and not health["degraded"]
    work = {
        k: v
        for k, v in again.ledger.as_dict().items()
        if k != "fault_events"
    }
    serial_work = {
        k: v
        for k, v in serial.ledger.as_dict().items()
        if k != "fault_events"
    }
    assert work == serial_work
    assert live_segment_names() == ()


def test_repeated_pool_failures_degrade_to_thread_path_recorded():
    """More pool failures than ``max_pool_rebuilds`` ⇒ recorded degradation."""
    a = phi_matrix(36, 30, phi=0.5, seed=3)
    b = phi_matrix(30, 26, phi=0.5, seed=4)
    config = Ozaki2Config(
        num_moduli=15, parallelism=2, executor="process", max_pool_rebuilds=0
    )
    serial = ozaki2_gemm(a, b, config=Ozaki2Config(num_moduli=15))
    with Scheduler(parallelism=2, executor="process", max_pool_rebuilds=0) as sched:
        pool = sched._ensure_process_pool()
        for proc in pool._procs:
            proc.terminate()
            proc.join()
        again = ozaki2_gemm(a, b, config=config, scheduler=sched, return_details=True)
        assert sched.degraded and not sched.uses_processes
        assert sched.health()["degraded_reason"]
    np.testing.assert_array_equal(again.c, serial)
    assert again.degraded
    assert again.fault_events["degraded_to_thread"] == 1
    assert live_segment_names() == ()


def test_scheduler_close_is_idempotent_and_final():
    sched = Scheduler(parallelism=2, executor="process")
    sched._ensure_process_pool()
    sched.close()
    sched.close()
    with pytest.raises(RuntimeError):
        sched._ensure_process_pool()
    assert live_segment_names() == ()


def test_shared_array_roundtrip_and_unlink():
    payload = np.arange(24, dtype=np.int8).reshape(2, 3, 4)
    handle = SharedArray.copy_from(payload)
    assert handle.name in live_segment_names()
    with attach_view(handle.descriptor) as view:
        np.testing.assert_array_equal(view, payload)
    handle.close()
    handle.close()  # idempotent
    assert handle.name not in live_segment_names()


def test_resolve_executor():
    assert resolve_executor("thread", 4) == "thread"
    assert resolve_executor("process", 4) == "process"
    assert resolve_executor("auto", 1) == "thread"
    assert resolve_executor("auto", 4) == "process"
    with pytest.raises(ValueError):
        resolve_executor("greenlet", 2)


def test_config_validates_executor():
    assert Ozaki2Config(executor="auto").executor == "auto"
    with pytest.raises(ConfigurationError):
        Ozaki2Config(executor="fibers")
