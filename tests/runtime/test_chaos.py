"""Chaos suite: fault scenarios × executors must stay bit-identical.

Every scenario arms a seeded :class:`repro.faults.FaultPlan` and runs the
same GEMM under both executors.  The resilience contract under test:

* the result is **bitwise equal** to the fault-free serial run, always;
* the ledger's *work* counters (GEMM calls, MACs, bytes, cache events)
  equal the fault-free run's — recoveries live only in the
  ``fault_events`` histogram, which must show exactly the expected
  recovery (and nothing under the thread executor, whose runs never
  consult the process-backend sites);
* degradation (process → thread) is recorded on the scheduler, the
  ledger and the result — never silent.

When ``REPRO_CHAOS_ARTIFACT`` names a file, the sweep appends one row per
scenario × executor (the CI chaos job archives it).
"""

from __future__ import annotations

import os
from typing import Dict, List

import numpy as np
import pytest

from repro import faults
from repro.config import Ozaki2Config
from repro.core.gemm import ozaki2_gemm
from repro.core.operand import prepare_a
from repro.faults import InjectedFault
from repro.runtime import TileSource, live_segment_names
from repro.runtime.process import WorkerTaskError
from repro.runtime.scheduler import Scheduler
from repro.workloads.generators import phi_matrix

pytestmark = pytest.mark.filterwarnings(
    "ignore:parallelism=:RuntimeWarning"  # CI hosts are small; that is the point
)

_MATRIX_ROWS: List[str] = []


@pytest.fixture(scope="session", autouse=True)
def _chaos_artifact():
    """Archive the scenario matrix when the CI chaos job asks for it."""
    yield
    path = os.environ.get("REPRO_CHAOS_ARTIFACT")
    if path and _MATRIX_ROWS:
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(_MATRIX_ROWS) + "\n")


@pytest.fixture(autouse=True)
def _disarmed():
    faults.uninstall()
    yield
    faults.uninstall()


def _work(ledger_dict: Dict[str, object]) -> Dict[str, object]:
    """The ledger minus the fault_events histogram (the work comparator)."""
    return {k: v for k, v in ledger_dict.items() if k != "fault_events"}


#: (name, spec, expected fault_events under the process executor).
#: Counts are minimums for per-worker sites (how many workers fire before
#: the recovery wave depends on task distribution) and exact for
#: parent-side sites.  ``worker.crash:times=1`` crashes every *fresh*
#: worker's first task too, so the pool fails past ``max_pool_rebuilds``
#: (default 2) and the run must degrade — the deepest recovery path.
SCENARIOS = [
    ("baseline", None, {}),
    ("task-error", "worker.task_error:times=1", {"task_retry": 1}),
    (
        "worker-crash",
        "worker.crash:times=1",
        {"pool_failure": 3, "wave_retry": 2, "degraded_to_thread": 1},
    ),
    ("pool-spawn", "pool.spawn:times=1", {"pool_failure": 1, "wave_retry": 1}),
    (
        "pool-spawn-degrade",
        "pool.spawn:times=99",
        {"pool_failure": 3, "wave_retry": 2, "degraded_to_thread": 1},
    ),
    ("shm-alloc", "shm.alloc:times=1", {"shm_fallback": 1}),
]


@pytest.mark.parametrize("executor", ["thread", "process"])
@pytest.mark.parametrize("name,spec,expected", SCENARIOS, ids=[s[0] for s in SCENARIOS])
def test_chaos_scenarios_stay_bit_identical(name, spec, expected, executor):
    a = phi_matrix(36, 30, phi=0.5, seed=21)
    b = phi_matrix(30, 26, phi=0.5, seed=22)
    serial = ozaki2_gemm(
        a, b, config=Ozaki2Config(num_moduli=15), return_details=True
    )
    config = Ozaki2Config(num_moduli=15, parallelism=2, executor=executor)

    if spec is None:
        result = ozaki2_gemm(a, b, config=config, return_details=True)
    else:
        with faults.inject(spec, seed=13):
            result = ozaki2_gemm(a, b, config=config, return_details=True)

    np.testing.assert_array_equal(result.c, serial.c)
    assert _work(result.ledger.as_dict()) == _work(serial.ledger.as_dict()), (
        f"work counters diverged for scenario={name} executor={executor}"
    )
    events = dict(result.fault_events)
    if executor == "thread":
        # The thread path never consults the process-backend sites: arming
        # them must be a no-op, not a behaviour change.
        assert events == {}
        assert not result.degraded
    else:
        assert events.keys() == expected.keys(), events
        for event, minimum in expected.items():
            assert events[event] >= minimum, (name, events)
        assert result.degraded == ("degraded_to_thread" in expected)
    assert live_segment_names() == ()
    _MATRIX_ROWS.append(
        f"{name:<20} executor={executor:<8} ok "
        f"events={sorted(events.items())!r}"
    )


def test_tile_read_fault_is_retried_out_of_core():
    """A worker failing to map a staged operand retries bit-identically."""
    a = phi_matrix(48, 40, phi=0.5, seed=31)
    b = phi_matrix(40, 36, phi=0.5, seed=32)
    serial = ozaki2_gemm(
        a, b, config=Ozaki2Config(num_moduli=15), return_details=True
    )
    config = Ozaki2Config(num_moduli=15, parallelism=2, executor="process")
    with TileSource(strip_elements=2048) as tiles:
        oa = tiles.prepare_a(a, config)
        ob = tiles.prepare_b(b, config)
        with faults.inject("tile.read:times=1", seed=5):
            result = ozaki2_gemm(oa, ob, config=config, return_details=True)
    np.testing.assert_array_equal(result.c, serial.c)
    assert result.fault_events.get("task_retry", 0) >= 1
    assert _work(result.ledger.as_dict()) == _work(serial.ledger.as_dict())
    assert live_segment_names() == ()


def test_tile_stage_fault_is_restaged_bit_identically():
    """One staging write fault per strip is absorbed by an in-place rewrite."""
    a = phi_matrix(90, 70, phi=0.5, seed=9)
    config = Ozaki2Config(num_moduli=15)
    in_core = prepare_a(a, config)
    with faults.inject("tile.stage:times=1", seed=2):
        with TileSource(strip_elements=512) as tiles:
            staged = tiles.prepare_a(a, config)
            np.testing.assert_array_equal(np.asarray(staged.slices), in_core.slices)
            np.testing.assert_array_equal(staged.scale, in_core.scale)


def test_tile_stage_persistent_failure_propagates():
    """A strip failing twice in a row is a real storage fault: it surfaces."""
    a = phi_matrix(20, 16, phi=0.5, seed=9)
    with faults.inject("tile.stage"):  # unlimited fires: retry fails too
        with TileSource() as tiles:
            with pytest.raises(InjectedFault):
                tiles.prepare_a(a, Ozaki2Config(num_moduli=15))


def test_exhausted_task_retries_record_and_raise():
    """Retries that never succeed surface WorkerTaskError — accounted."""
    with Scheduler(parallelism=2, executor="process") as sched:
        base = _work(sched.engine.counter.as_dict())
        with pytest.raises(WorkerTaskError):
            sched.run_process_tasks([("no-such-task", {})])
        assert sched.engine.counter.fault_events.get("task_retry") == 1
        # The failed attempts shipped zero-work counter deltas home: the
        # work ledger is untouched, honest about what never happened.
        assert _work(sched.engine.counter.as_dict()) == base
        assert not sched.degraded
    assert live_segment_names() == ()
