"""Bit-identity of the fused kernel path against the per-modulus loop.

The fused path (``Ozaki2Config.fused_kernels=True``, the default) issues the
``N`` residue GEMMs as stacked engine calls over modulus chunks, converts
residues in a single broadcast pass and vectorises the accumulation.  Every
one of those steps is exact integer arithmetic (or preserves the seed
path's floating-point operation order where it is not), so the results —
and the merged op ledgers — must be bit-for-bit identical to the
pre-fusion per-modulus loop across every configuration axis: compute mode,
residue kernel, target precision, prepared operands, k-blocked shapes and
worker counts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import Ozaki2Config
from repro.core.gemm import ozaki2_gemm
from repro.core.operand import prepare_a, prepare_b
from repro.runtime.batched import ozaki2_gemm_batched
from repro.workloads import phi_pair

PARALLELISMS = (1, 4)


def _pair(precision="fp64", seed=7, shape=(48, 96, 40)):
    m, k, n = shape
    return phi_pair(m, k, n, phi=0.5, precision=precision, seed=seed)


def _run_both(a, b, config):
    """Return (fused, loop) Ozaki2Results for one configuration."""
    fused = ozaki2_gemm(a, b, config=config.replace(fused_kernels=True), return_details=True)
    loop = ozaki2_gemm(a, b, config=config.replace(fused_kernels=False), return_details=True)
    return fused, loop


def _assert_identical(fused, loop):
    np.testing.assert_array_equal(fused.c, loop.c)
    assert fused.c.dtype == loop.c.dtype
    assert fused.int8_counter.as_dict() == loop.int8_counter.as_dict()
    np.testing.assert_array_equal(fused.mu, loop.mu)
    np.testing.assert_array_equal(fused.nu, loop.nu)


class TestFusedBitIdentity:
    @pytest.mark.parametrize("parallelism", PARALLELISMS)
    @pytest.mark.parametrize("mode", ["fast", "accurate"])
    @pytest.mark.parametrize("kernel", ["exact", "fast_fma"])
    @pytest.mark.parametrize(
        "precision,num_moduli", [("fp64", 15), ("fp32", 8)]
    )
    def test_modes_kernels_precisions_parallelism(
        self, precision, num_moduli, kernel, mode, parallelism
    ):
        a, b = _pair(precision=precision)
        config = Ozaki2Config(
            precision=precision,
            num_moduli=num_moduli,
            mode=mode,
            residue_kernel=kernel,
            parallelism=parallelism,
        )
        fused, loop = _run_both(a, b, config)
        _assert_identical(fused, loop)

    @pytest.mark.parametrize("parallelism", PARALLELISMS)
    def test_prepared_operands(self, parallelism):
        a, b = _pair()
        config = Ozaki2Config.for_dgemm(12, parallelism=parallelism)
        raw_loop = ozaki2_gemm(
            a, b, config=config.replace(fused_kernels=False), return_details=True
        )
        a_prep, b_prep = prepare_a(a, config), prepare_b(b, config)
        for lhs, rhs in ((a_prep, b), (a, b_prep), (a_prep, b_prep)):
            fused = ozaki2_gemm(lhs, rhs, config=config, return_details=True)
            np.testing.assert_array_equal(fused.c, raw_loop.c)
            loop = ozaki2_gemm(
                lhs, rhs, config=config.replace(fused_kernels=False), return_details=True
            )
            _assert_identical(fused, loop)

    @pytest.mark.parametrize("parallelism", PARALLELISMS)
    def test_k_blocked_shapes(self, monkeypatch, parallelism):
        """Shrink the blocking threshold so small problems exercise multiple
        k-blocks through both task decompositions."""
        import repro.core.gemm as gemm_mod

        monkeypatch.setattr(gemm_mod, "MAX_K_WITHOUT_BLOCKING", 40)
        a, b = _pair(shape=(24, 100, 20))
        config = Ozaki2Config.for_dgemm(10, parallelism=parallelism)
        fused, loop = _run_both(a, b, config)
        assert fused.num_k_blocks == loop.num_k_blocks == 3
        _assert_identical(fused, loop)

    @pytest.mark.parametrize("parallelism", PARALLELISMS)
    def test_memory_budget_tiling(self, parallelism):
        a, b = _pair()
        config = Ozaki2Config.for_dgemm(
            9, parallelism=parallelism, memory_budget_mb=0.05
        )
        fused, loop = _run_both(a, b, config)
        _assert_identical(fused, loop)

    def test_fused_parallel_matches_fused_serial(self):
        """The bit-identical-for-every-worker-count guarantee must keep
        holding under modulus-chunk tasks."""
        a, b = _pair()
        serial = ozaki2_gemm(a, b, config=Ozaki2Config.for_dgemm(15, parallelism=1))
        for workers in (2, 3, 4, 8):
            parallel = ozaki2_gemm(
                a, b, config=Ozaki2Config.for_dgemm(15, parallelism=workers)
            )
            np.testing.assert_array_equal(parallel, serial)

    @pytest.mark.parametrize("parallelism", PARALLELISMS)
    def test_batched_fused_matches_loop(self, parallelism):
        a0, b0 = _pair(seed=1)
        a1, b1 = _pair(seed=2)
        config = Ozaki2Config.for_dgemm(11, parallelism=parallelism)
        fused = ozaki2_gemm_batched(
            [a0, a1, a0], [b0, b1, b0], config=config, return_details=True
        )
        loop = ozaki2_gemm_batched(
            [a0, a1, a0],
            [b0, b1, b0],
            config=config.replace(fused_kernels=False),
            return_details=True,
        )
        for f, l in zip(fused, loop, strict=True):
            np.testing.assert_array_equal(f.c, l.c)
            assert f.int8_counter.as_dict() == l.int8_counter.as_dict()
