"""Regression tests for the paper's textual claims (Sections 5.1-5.4).

Each test names the claim it checks.  Accuracy claims are verified by
actually running the methods (at reduced sizes); performance and power
claims are verified against the analytic GPU model (see DESIGN.md for the
hardware substitution).
"""

from __future__ import annotations

import numpy as np

from repro import emulated_dgemm, emulated_sgemm
from repro.accuracy import reference_gemm, summarize_errors
from repro.baselines import native_sgemm, tf32_gemm
from repro.perfmodel import get_gpu, modeled_tflops, phase_breakdown, power_efficiency
from repro.workloads import phi_pair


class TestSection51Accuracy:
    def test_hpl_phi_can_use_14_or_15_moduli(self):
        """'These results imply that HPL can employ emulation with 14 or 15
        moduli' (phi = 0.5)."""
        a, b = phi_pair(96, 256, 96, phi=0.5, seed=1)
        ref = reference_gemm(a, b)
        native = summarize_errors(a @ b, ref)
        emulated_15 = summarize_errors(emulated_dgemm(a, b, num_moduli=15), ref)
        assert emulated_15.median <= 3 * native.median
        assert emulated_15.max <= 10 * native.max

    def test_fast_mode_limiting_accuracy_degrades_with_phi(self):
        """'For larger phi, the limiting accuracy of OS II-fast-N got worse
        as phi increased.'"""
        errors = []
        for phi in (0.5, 2.0, 4.0):
            a, b = phi_pair(64, 128, 56, phi=phi, seed=int(10 * phi))
            ref = reference_gemm(a, b)
            errors.append(summarize_errors(emulated_dgemm(a, b, num_moduli=12), ref).median)
        assert errors[0] < errors[1] < errors[2]

    def test_accurate_mode_tolerates_large_phi_better(self):
        """'OS II-accu-N exhibits smaller truncation errors compared to those
        of OS II-fast-N' for large phi."""
        a, b = phi_pair(64, 128, 56, phi=4.0, seed=17)
        ref = reference_gemm(a, b)
        fast = summarize_errors(emulated_dgemm(a, b, num_moduli=13, mode="fast"), ref).median
        accu = summarize_errors(emulated_dgemm(a, b, num_moduli=13, mode="accurate"), ref).median
        assert accu <= fast

    def test_ozaki2_intermediate_between_tf32_and_fp32(self):
        """'Ozaki scheme II achieved accuracy between those of SGEMM and
        TF32GEMM ... an intermediate-precision approach.'"""
        a, b = phi_pair(96, 192, 80, phi=0.5, precision="fp32", seed=2)
        ref = reference_gemm(a, b)
        sgemm = summarize_errors(native_sgemm(a, b), ref).median
        tf32 = summarize_errors(tf32_gemm(a, b), ref).median
        os2_5 = summarize_errors(emulated_sgemm(a, b, num_moduli=5), ref).median
        assert sgemm < os2_5 < tf32 * 100
        assert os2_5 < tf32 * 10 or os2_5 < sgemm * 1000

    def test_sgemm_level_with_7_or_8_moduli(self):
        """'OS II-fast-N with N in {7, 8} returned results with SGEMM-level
        accuracy' for phi <= 1."""
        for phi in (0.5, 1.0):
            a, b = phi_pair(80, 160, 72, phi=phi, precision="fp32", seed=int(phi * 3))
            ref = reference_gemm(a, b)
            native = summarize_errors(native_sgemm(a, b), ref).median
            emu8 = summarize_errors(emulated_sgemm(a, b, num_moduli=8), ref).median
            assert emu8 <= 5 * native


class TestSection52Throughput:
    def test_dgemm_emulation_faster_than_native_at_16384_on_gh200(self):
        """'For n >= 8192, OS II-fast-N and OS II-accu-N outperformed DGEMM'
        and 'approximately 1.4x faster than DGEMM' at n = 16384."""
        native = modeled_tflops("DGEMM", "GH200", 16384, 16384, 16384)
        for method in ("OS II-fast-14", "OS II-accu-14", "OS II-fast-15"):
            assert modeled_tflops(method, "GH200", 16384, 16384, 16384) > native
        ratio = modeled_tflops("OS II-fast-14", "GH200", 16384, 16384, 16384) / native
        assert 1.2 <= ratio <= 1.8

    def test_dgemm_emulation_huge_speedup_on_rtx5080(self):
        """'OS II-fast-14 ... achieved 18.5x speedup compared to DGEMM' on
        RTX 5080 (weak FP64)."""
        native = modeled_tflops("DGEMM", "RTX5080", 8192, 8192, 8192)
        emulated = modeled_tflops("OS II-fast-14", "RTX5080", 8192, 8192, 8192)
        assert emulated / native > 10

    def test_emulation_slower_than_dgemm_for_small_n_on_gh200(self):
        """Figure 4: the crossover — emulation loses at n = 1024."""
        assert modeled_tflops("OS II-fast-15", "GH200", 1024, 1024, 1024) < modeled_tflops(
            "DGEMM", "GH200", 1024, 1024, 1024
        )

    def test_ozaki2_more_than_2x_faster_than_ozimmu(self):
        """Abstract: 'more than 2x higher performance ... compared to
        conventional emulation methods.'"""
        for gpu in ("A100", "GH200", "RTX5080"):
            os2 = modeled_tflops("OS II-fast-15", gpu, 16384, 16384, 16384)
            ozimmu = modeled_tflops("ozIMMU_EF-9", gpu, 16384, 16384, 16384)
            assert os2 > 2 * ozimmu

    def test_sgemm_emulation_speedup_on_gh200(self):
        """'Ozaki scheme II achieved a 2.3-3.0x speedup compared to SGEMM'
        at n = 16384 on GH200."""
        sgemm = modeled_tflops("SGEMM", "GH200", 16384, 16384, 16384, target="fp32")
        for n_mod in (7, 8, 9):
            ratio = (
                modeled_tflops(f"OS II-fast-{n_mod}", "GH200", 16384, 16384, 16384, target="fp32")
                / sgemm
            )
            assert 1.8 <= ratio <= 3.5

    def test_sgemm_emulation_between_sgemm_and_tf32(self):
        """'Ozaki scheme II demonstrated performance between those of SGEMM
        and TF32GEMM.'"""
        n = 16384
        sgemm = modeled_tflops("SGEMM", "GH200", n, n, n, target="fp32")
        tf32 = modeled_tflops("TF32GEMM", "GH200", n, n, n, target="fp32")
        os2 = modeled_tflops("OS II-fast-8", "GH200", n, n, n, target="fp32")
        assert sgemm < os2 < tf32


class TestSection53Breakdown:
    def test_rtx5080_non_matmul_share_large_for_dgemm_emulation(self):
        """'For DGEMM emulation on RTX 5080 ... non-matrix multiplication
        components accounted for around 50% of the entire computation time'
        at n = 8192."""
        fractions = phase_breakdown("OS II-fast-15", "RTX5080", 8192, 8192, 8192)
        non_matmul = 1.0 - fractions["matmul"]
        assert 0.3 <= non_matmul <= 0.7

    def test_gh200_matmul_dominates_at_large_n(self):
        """'On A100 and GH200, for sufficiently large n, matrix
        multiplication is the major computation.'"""
        fractions = phase_breakdown("OS II-fast-15", "GH200", 16384, 16384, 16384)
        assert fractions["matmul"] > 0.5

    def test_conversion_share_shrinks_with_n(self):
        """'As n increases, computations except for matrix multiplication
        gradually become negligible.'"""
        share = lambda n: 1.0 - phase_breakdown("OS II-fast-15", "GH200", n, n, n)["matmul"]
        assert share(1024) > share(4096) > share(16384)

    def test_accurate_mode_conversion_costs_more(self):
        """'The conversion of input matrices in accurate mode includes matrix
        multiplication and accounts more computation time.'"""
        fast = phase_breakdown("OS II-fast-8", "GH200", 4096, 4096, 4096, target="fp32")
        accu = phase_breakdown("OS II-accu-8", "GH200", 4096, 4096, 4096, target="fp32")
        assert accu["scale"] > fast["scale"]


class TestSection54Power:
    def test_dgemm_emulation_power_gain_on_gh200(self):
        """'OS II-fast-N ... achieved 20%-43% improvements ... compared to
        DGEMM for N in {14..17} and n = 16384' (band relaxed for the model)."""
        native = power_efficiency("DGEMM", "GH200", 16384, 16384, 16384)
        for n_mod in (14, 15, 16, 17):
            gain = (
                power_efficiency(f"OS II-fast-{n_mod}", "GH200", 16384, 16384, 16384) / native - 1.0
            )
            assert 0.1 <= gain <= 1.0

    def test_sgemm_emulation_power_gain_on_gh200(self):
        """'OS II-fast-N with N in {7, 8, 9} achieved 103%-154% improvements
        ... compared to SGEMM for n = 16384' (band relaxed for the model)."""
        native = power_efficiency("SGEMM", "GH200", 16384, 16384, 16384, target="fp32")
        for n_mod in (7, 8, 9):
            gain = (
                power_efficiency(
                    f"OS II-fast-{n_mod}", "GH200", 16384, 16384, 16384, target="fp32"
                )
                / native
                - 1.0
            )
            assert 0.5 <= gain <= 3.0

    def test_power_efficiency_gap_narrower_than_throughput_gap_at_small_n(self):
        """Section 5.4: 'for smaller problem sizes, the results of Ozaki
        scheme II reached those of existing emulation, DGEMM, and SGEMM'
        because INT8 GEMM is power-efficient even when slow."""
        n = 1024
        thr_ratio = modeled_tflops("OS II-fast-15", "GH200", n, n, n) / modeled_tflops(
            "DGEMM", "GH200", n, n, n
        )
        pow_ratio = power_efficiency("OS II-fast-15", "GH200", n, n, n) / power_efficiency(
            "DGEMM", "GH200", n, n, n
        )
        assert pow_ratio > thr_ratio

    def test_int8_power_advantage_exceeds_throughput_advantage_rtx5080(self):
        """'The performance ratio between INT8 GEMM and SGEMM at n = 1024 was
        5.3x, while the power efficiency ratio was as high as 13.3x' —
        qualitatively: the efficiency ratio exceeds the performance ratio."""
        gpu = get_gpu("RTX5080")
        n = 1024
        perf_ratio = modeled_tflops("OS II-fast-2", gpu, n, n, n, target="fp32") / modeled_tflops(
            "SGEMM", gpu, n, n, n, target="fp32"
        )
        power_ratio = power_efficiency(
            "OS II-fast-2", gpu, n, n, n, target="fp32"
        ) / power_efficiency("SGEMM", gpu, n, n, n, target="fp32")
        assert power_ratio > perf_ratio
