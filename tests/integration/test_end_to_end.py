"""Integration tests spanning workloads, emulation, baselines and accuracy."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Ozaki2Config, emulated_dgemm, emulated_sgemm, ozaki2_gemm
from repro.accuracy import max_relative_error, reference_gemm, summarize_errors
from repro.baselines import (
    bf16x9_gemm,
    cumpsgemm_fp16tcec,
    get_method,
    native_sgemm,
    ozimmu_gemm,
    tf32_gemm,
)
from repro.workloads import WorkloadSpec, phi_pair


class TestDgemmEmulationAcrossWorkloads:
    @pytest.mark.parametrize("phi", [0.5, 1.0, 2.0])
    @pytest.mark.parametrize("mode", ["fast", "accurate"])
    def test_reaches_fp64_accuracy_with_enough_moduli(self, phi, mode):
        a, b = phi_pair(64, 128, 56, phi=phi, seed=int(phi * 100))
        ref = reference_gemm(a, b)
        native = max_relative_error(a @ b, ref)
        emulated = max_relative_error(
            emulated_dgemm(a, b, num_moduli=16, mode=mode), ref
        )
        assert emulated <= 5 * native

    def test_rectangular_workload_spec(self):
        spec = WorkloadSpec(m=96, k=48, n=32, phi=1.0, seed=4)
        a, b = spec.generate()
        ref = reference_gemm(a, b)
        err = max_relative_error(emulated_dgemm(a, b, num_moduli=15), ref)
        assert err < 1e-11

    def test_emulation_beats_native_with_many_moduli(self):
        """With 18+ moduli the emulation is *more* accurate than one FP64
        GEMM (its only remaining error is the final rounding)."""
        a, b = phi_pair(48, 200, 40, phi=0.5, seed=77)
        ref = reference_gemm(a, b)
        native = summarize_errors(a @ b, ref).median
        emulated = summarize_errors(emulated_dgemm(a, b, num_moduli=19), ref).median
        assert emulated <= native


class TestSgemmEmulationAcrossMethods:
    def test_full_method_comparison_ordering(self):
        """Reproduces the qualitative accuracy ordering of Figure 3 (bottom):
        TF32 << {SGEMM, BF16x9, cuMpSGEMM, OS II-fast-8} and OS II-fast-4 at
        TF32-like accuracy."""
        a, b = phi_pair(96, 192, 80, phi=0.5, precision="fp32", seed=55)
        ref = reference_gemm(a, b)
        errors = {
            "SGEMM": summarize_errors(native_sgemm(a, b), ref).median,
            "TF32GEMM": summarize_errors(tf32_gemm(a, b), ref).median,
            "BF16x9": summarize_errors(bf16x9_gemm(a, b), ref).median,
            "cuMpSGEMM": summarize_errors(cumpsgemm_fp16tcec(a, b), ref).median,
            "OS II-fast-8": summarize_errors(emulated_sgemm(a, b, num_moduli=8), ref).median,
            "OS II-fast-5": summarize_errors(emulated_sgemm(a, b, num_moduli=5), ref).median,
        }
        assert errors["TF32GEMM"] > 50 * errors["SGEMM"]
        for name in ("BF16x9", "cuMpSGEMM", "OS II-fast-8"):
            assert errors[name] <= 10 * errors["SGEMM"]
        # Few moduli give TF32-like (intermediate) accuracy: worse than
        # SGEMM, not worse than TF32.
        assert errors["SGEMM"] < errors["OS II-fast-5"] <= errors["TF32GEMM"] * 10

    def test_registry_and_direct_call_agree(self):
        a, b = phi_pair(32, 64, 24, phi=0.5, precision="fp32", seed=66)
        direct = emulated_sgemm(a, b, num_moduli=7, mode="accurate")
        via_registry = get_method("OS II-accu-7", target="fp32")(a, b)
        np.testing.assert_array_equal(direct, via_registry)


class TestLargeKBlocking:
    def test_blocked_path_matches_unblocked_results(self, monkeypatch):
        """Force a tiny blocking threshold and check the result is unchanged
        (exercises the k-blocking path without a 2^17-wide matrix)."""
        import repro.core.gemm as gemm_mod

        a, b = phi_pair(24, 600, 20, phi=0.5, seed=88)
        expected = emulated_dgemm(a, b, num_moduli=14)
        monkeypatch.setattr(gemm_mod, "MAX_K_WITHOUT_BLOCKING", 128)
        blocked = emulated_dgemm(a, b, num_moduli=14)
        np.testing.assert_allclose(blocked, expected, rtol=1e-13)
        result = ozaki2_gemm(
            a, b, config=Ozaki2Config.for_dgemm(14), return_details=True
        )
        assert result.num_k_blocks == 5


class TestOzakiFamilyConsistency:
    def test_scheme_one_and_two_agree_at_high_accuracy(self):
        a, b = phi_pair(40, 96, 36, phi=0.5, seed=99)
        c1 = ozimmu_gemm(a, b, 9)
        c2 = emulated_dgemm(a, b, num_moduli=17)
        ref = reference_gemm(a, b)
        assert max_relative_error(c1, ref) < 1e-10
        assert max_relative_error(c2, ref) < 1e-12
        assert np.allclose(c1, c2, rtol=1e-9)
