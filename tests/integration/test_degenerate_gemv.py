"""Degenerate inputs to the GEMV path are pinned to match the GEMM route.

The residue-GEMV fast path advertises *behavioural* identity with the
``n = 1`` GEMM route, not just bitwise-equal happy paths: empty vectors,
1x1 systems and non-contiguous (strided) vectors must raise the same
precise :class:`~repro.errors.ValidationError`\\ s — or succeed with the
same bits — as routing the equivalent ``(k, 1)`` column through
:func:`repro.ozaki2_gemm`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import cg_solve, jacobi_solve, pcg_solve, prepared_matvec
from repro.config import Ozaki2Config
from repro.core.gemm import ozaki2_gemm
from repro.core.gemv import prepared_gemv
from repro.core.operand import prepare_a
from repro.errors import ValidationError
from repro.workloads import phi_pair

CONFIG = Ozaki2Config.for_dgemm(15)


def _routes(a, v, config=CONFIG):
    """Run both routes; return (outcome, payload) pairs for comparison."""
    results = []
    for fn in (
        lambda: prepared_gemv(a, v, config=config),
        lambda: np.asarray(ozaki2_gemm(a, v[:, None], config=config)).ravel(),
    ):
        try:
            results.append(("ok", fn()))
        except ValidationError as exc:
            results.append(("error", str(exc)))
    return results


class TestEmptyVector:
    def test_length_0_raises_the_gemm_routes_exact_message(self):
        a = phi_pair(4, 0 + 4, 1, seed=0)[0]
        empty = np.zeros(0)
        fast, ref = _routes(a, empty)
        assert fast[0] == ref[0] == "error"
        assert fast[1] == ref[1]
        assert "B has a zero dimension (shape (0, 1))" in fast[1]

    def test_empty_matrix_side_raises_identically(self):
        empty_a = np.zeros((0, 5))
        v = np.zeros(5)
        fast, ref = _routes(empty_a, v)
        assert fast[0] == ref[0] == "error"
        assert fast[1] == ref[1]
        assert "A has a zero dimension" in fast[1]


class TestOneByOneSystem:
    def test_gemv_succeeds_identically(self):
        a, b = phi_pair(1, 1, 1, seed=1)
        v = b[:, 0]
        fast, ref = _routes(a, v)
        assert fast[0] == ref[0] == "ok"
        np.testing.assert_array_equal(fast[1], ref[1])
        assert fast[1].shape == (1,)

    def test_prepared_1x1_matches_too(self):
        a, b = phi_pair(1, 1, 1, seed=2)
        prep = prepare_a(a, config=CONFIG)
        v = b[:, 0]
        np.testing.assert_array_equal(
            prepared_gemv(prep, v, config=CONFIG),
            np.asarray(ozaki2_gemm(prep, v[:, None], config=CONFIG)).ravel(),
        )

    @pytest.mark.parametrize("precond", ["none", "ilu0", "ssor"])
    def test_solvers_handle_1x1_systems(self, precond):
        a = np.array([[4.0]])
        b = np.array([8.0])
        jac = jacobi_solve(a, b, config=CONFIG, tol=1e-12, precond=precond)
        assert jac.converged
        np.testing.assert_allclose(jac.x, [2.0], rtol=1e-10)
        pcg = pcg_solve(a, b, config=CONFIG, tol=1e-12, precond=precond)
        assert pcg.converged
        np.testing.assert_allclose(pcg.x, [2.0], rtol=1e-10)


class TestStridedVector:
    def test_non_contiguous_x_succeeds_identically(self):
        a, b = phi_pair(12, 16, 2, seed=3)
        interleaved = np.ascontiguousarray(b.T).ravel()
        strided = interleaved[::2][:16]
        assert not strided.flags["C_CONTIGUOUS"] or strided.strides[0] != 8
        fast, ref = _routes(a, strided)
        assert fast[0] == ref[0] == "ok"
        np.testing.assert_array_equal(fast[1], ref[1])
        # And both equal the contiguous-copy result — strides are invisible.
        np.testing.assert_array_equal(
            fast[1], prepared_gemv(a, np.ascontiguousarray(strided), config=CONFIG)
        )

    def test_reversed_view_succeeds_identically(self):
        a, b = phi_pair(9, 11, 1, seed=4)
        rev = b[:, 0][::-1]
        fast, ref = _routes(a, rev)
        assert fast[0] == ref[0] == "ok"
        np.testing.assert_array_equal(fast[1], ref[1])

    def test_prepared_matvec_accepts_strided_x_on_both_routes(self):
        a, b = phi_pair(10, 10, 1, seed=5)
        prep = prepare_a(a, config=CONFIG)
        rev = b[:, 0][::-1]
        fast = prepared_matvec(prep, rev, CONFIG.replace(gemv_fast_path=True))
        slow = prepared_matvec(prep, rev, CONFIG.replace(gemv_fast_path=False))
        np.testing.assert_array_equal(fast, slow)


class TestNonVectorInputs:
    def test_2d_x_rejected_by_matvec_on_both_routes(self):
        a, b = phi_pair(6, 6, 1, seed=6)
        prep = prepare_a(a, config=CONFIG)
        for flag in (True, False):
            with pytest.raises(ValidationError, match="1-D vector"):
                prepared_matvec(prep, b, CONFIG.replace(gemv_fast_path=flag))

    def test_cg_rejects_mismatched_rhs_identically_for_both_routes(self):
        a, b = phi_pair(8, 8, 1, seed=7)
        a = a @ a.T + 8 * np.eye(8)
        bad = np.zeros(5)
        for flag in (True, False):
            with pytest.raises(ValidationError, match="right-hand side"):
                cg_solve(a, bad, config=CONFIG.replace(gemv_fast_path=flag))
