"""Integration tests of the adaptive-moduli subsystem.

Covers the wiring the unit/property suites do not: per-item selection in
the batched runtime, the engine ledger's per-call moduli histogram, the
progressive solver ladder, prepared-operand re-derivation corner cases,
the accumulation workspace cache, the parallelism="auto" clamp, the cost
model's predicted savings, and the CLI surfaces.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.apps.solvers import (
    cg_solve,
    iterative_refinement_solve,
    jacobi_solve,
)
from repro.cli import main
from repro.config import MAX_MODULI, Ozaki2Config
from repro.core.accumulation import accumulate_residue_products
from repro.core.gemm import ozaki2_gemm
from repro.core.gemv import prepared_gemv
from repro.core.operand import ResidueOperand, prepare_a
from repro.crt.constants import build_constant_table
from repro.engines.base import OpCounter
from repro.engines.int8 import Int8MatrixEngine
from repro.errors import ConfigurationError
from repro.perfmodel import adaptive_moduli_savings
from repro.runtime import ozaki2_gemm_batched
from repro.workloads import linear_system, phi_pair


AUTO = Ozaki2Config(num_moduli="auto")


class TestBatchedAuto:
    def test_per_item_selection_mixed_shapes(self):
        a1, b1 = phi_pair(48, 16, 40, phi=0.5, seed=0)
        a2, b2 = phi_pair(32, 300, 24, phi=0.5, seed=1)
        results = ozaki2_gemm_batched(
            [a1, a2], [b1, b2], config=AUTO, return_details=True
        )
        counts = [r.config.num_moduli for r in results]
        assert all(2 <= c <= MAX_MODULI for c in counts)
        # Each item must be bitwise the fixed-count run at its own count.
        for (a, b), result in zip([(a1, b1), (a2, b2)], results, strict=True):
            fixed = ozaki2_gemm(a, b, Ozaki2Config(num_moduli=result.config.num_moduli))
            assert np.array_equal(result.c, fixed)
        # Per-item ledgers carry the per-call count histogram.
        for result in results:
            assert result.int8_counter.emulated_calls == {result.config.num_moduli: 1}

    def test_same_object_aliasing_still_shares_conversion(self):
        a, b = phi_pair(40, 24, 40, phi=0.5, seed=2)
        results = ozaki2_gemm_batched([a, a], [b, b], config=AUTO, return_details=True)
        assert np.array_equal(results[0].c, results[1].c)
        # The aliased item reports a zero-cost convert phase.
        assert results[1].phase_times.seconds["convert_A"] == 0.0

    def test_prepared_sides_in_auto_batch(self):
        a, b1 = phi_pair(40, 24, 32, phi=0.5, seed=3)
        b2 = phi_pair(40, 24, 32, phi=0.5, seed=4)[1]
        prep = prepare_a(a, config=AUTO)
        results = ozaki2_gemm_batched([prep, prep], [b1, b2], config=AUTO)
        loop = [ozaki2_gemm(a, bx, config=AUTO) for bx in (b1, b2)]
        assert all(np.array_equal(x, y) for x, y in zip(results, loop, strict=True))


class TestEmulatedLedger:
    def test_gemm_and_gemv_routes_record_identically(self):
        a, b = phi_pair(32, 20, 1, phi=0.5, seed=5)
        prep = prepare_a(a)
        gemm_engine, gemv_engine = Int8MatrixEngine(), Int8MatrixEngine()
        ozaki2_gemm(prep, b, engine=gemm_engine)
        prepared_gemv(prep, b[:, 0], engine=gemv_engine)
        assert gemm_engine.counter.emulated_calls == {15: 1}
        assert gemm_engine.counter == gemv_engine.counter

    def test_counter_dict_arithmetic(self):
        first, second = OpCounter(), OpCounter()
        first.record_emulated(15, count=2)
        second.record_emulated(15)
        second.record_emulated(10)
        merged = first.merge(second)
        assert merged.emulated_calls == {15: 3, 10: 1}
        delta = merged.difference(first)
        assert delta.emulated_calls == {15: 1, 10: 1}
        snapshot = merged.copy()
        snapshot.record_emulated(15)
        assert merged.emulated_calls == {15: 3, 10: 1}  # copy is independent
        merged.reset()
        assert merged.emulated_calls == {}

    def test_unfused_and_fused_ledgers_stay_equal(self):
        a, b = phi_pair(24, 16, 24, phi=0.5, seed=6)
        fused_engine, loop_engine = Int8MatrixEngine(), Int8MatrixEngine()
        ozaki2_gemm(a, b, Ozaki2Config(fused_kernels=True), engine=fused_engine)
        ozaki2_gemm(a, b, Ozaki2Config(fused_kernels=False), engine=loop_engine)
        assert fused_engine.counter == loop_engine.counter


class TestProgressiveSolvers:
    def test_progressive_cg_matches_residual_check(self):
        a, b, _ = linear_system(96, kind="ill_spd", cond=1e3, seed=0)
        fixed = cg_solve(a, b, tol=1e-8)
        prog = cg_solve(a, b, tol=1e-8, progressive=True)
        assert fixed.converged and prog.converged
        assert prog.residual_norm <= 1e-8
        assert prog.method.startswith("cg-prog(")
        # Ladder invariants: non-descending, ends at the full count, and
        # the convergence claim came from a full-count iteration.
        assert prog.moduli_history == sorted(prog.moduli_history)
        assert prog.moduli_history[-1] == fixed.moduli_history[-1] == 15
        assert len(prog.moduli_history) == prog.iterations

    def test_progressive_jacobi_and_ir(self):
        a, b, x_true = linear_system(64, kind="diag_dominant", seed=1)
        jac = jacobi_solve(a, b, tol=1e-10, progressive=True)
        assert jac.converged and jac.moduli_history[-1] == 15
        assert np.allclose(jac.x, x_true, atol=1e-6)
        ir = iterative_refinement_solve(a, b, progressive=True)
        assert ir.converged and ir.moduli_history[-1] == 15

    def test_plain_solves_record_constant_history(self):
        a, b, _ = linear_system(48, kind="spd", seed=2)
        result = cg_solve(a, b, tol=1e-8)
        assert set(result.moduli_history) == {15}
        assert "prog" not in result.method

    def test_progressive_with_auto_full_count(self):
        a, b, _ = linear_system(48, kind="spd", seed=3)
        result = cg_solve(
            a, b, tol=1e-8, config=Ozaki2Config(num_moduli="auto"), progressive=True
        )
        assert result.converged
        # The full count is the auto selection, and the ladder tops out there.
        assert result.moduli_history[-1] == int(result.method.split("-")[-1].rstrip(")"))


class TestResolveFor:
    def test_widening_is_supported(self):
        a = phi_pair(24, 16, 8, phi=0.5, seed=7)[0]
        prep = prepare_a(a, config=Ozaki2Config(num_moduli=8))
        widened = prep.resolve_for(14)
        fresh = prepare_a(a, config=Ozaki2Config(num_moduli=14))
        assert np.array_equal(widened.slices, fresh.slices)
        assert np.array_equal(widened.scale, fresh.scale)

    def test_cache_returns_same_object(self):
        a = phi_pair(16, 12, 8, phi=0.5, seed=8)[0]
        prep = prepare_a(a)
        assert prep.resolve_for(15) is prep
        derived = prep.resolve_for(10)
        assert prep.resolve_for(10) is derived
        # The cache is shared across derivations of the same source.
        assert derived.resolve_for(15) is not None

    def test_hand_constructed_operand_cannot_re_derive(self):
        a = phi_pair(12, 10, 8, phi=0.5, seed=9)[0]
        prep = prepare_a(a)
        bare = ResidueOperand(
            side="A", scale=prep.scale, slices=prep.slices, config=prep.config
        )
        with pytest.raises(ConfigurationError, match="re-derived"):
            bare.resolve_for(10)
        # ... and auto selection against it fails with a clear message.
        with pytest.raises(Exception, match="max-abs"):
            ozaki2_gemm(bare, phi_pair(12, 10, 8, seed=9)[1], config=AUTO)

    def test_operand_config_must_be_concrete(self):
        a = phi_pair(12, 10, 8, phi=0.5, seed=10)[0]
        prep = prepare_a(a)
        with pytest.raises(ConfigurationError, match="concrete"):
            ResidueOperand(
                side="A", scale=prep.scale, slices=prep.slices, config=AUTO
            )

    def test_fixed_count_mismatch_still_rejected(self):
        a, b = phi_pair(12, 10, 8, phi=0.5, seed=11)
        prep = prepare_a(a, config=Ozaki2Config(num_moduli=10))
        with pytest.raises(ConfigurationError, match="num_moduli"):
            ozaki2_gemm(prep, b, config=Ozaki2Config(num_moduli=12))


class TestAccumulationWorkspace:
    def test_workspace_reuse_is_value_safe(self):
        table = build_constant_table(6, 64)
        rng = np.random.default_rng(0)
        stacks = [
            rng.integers(-(2**20), 2**20, size=(6, 9, 7)).astype(np.int64)
            for _ in range(3)
        ]
        vectorized = [accumulate_residue_products(s, table) for s in stacks]
        reference = [
            accumulate_residue_products(s, table, vectorized=False) for s in stacks
        ]
        for (c1v, c2v), (c1r, c2r) in zip(vectorized, reference, strict=True):
            assert np.array_equal(c1v, c1r)
            if c2r is None:
                assert c2v is None
            else:
                assert np.array_equal(c2v, c2r)

    def test_shapes_do_not_cross_contaminate(self):
        table = build_constant_table(4, 64)
        small = np.ones((4, 2, 3), dtype=np.int64)
        large = 7 * np.ones((4, 5, 5), dtype=np.int64)
        c1_small_first, _ = accumulate_residue_products(small, table)
        accumulate_residue_products(large, table)
        c1_small_again, _ = accumulate_residue_products(small, table)
        assert np.array_equal(c1_small_first, c1_small_again)


class TestParallelismAuto:
    def test_auto_clamps_to_cpu_count(self):
        import os

        assert Ozaki2Config(parallelism="auto").parallelism == max(
            1, os.cpu_count() or 1
        )

    def test_oversubscription_warns(self):
        import os

        workers = (os.cpu_count() or 1) + 123
        with pytest.warns(RuntimeWarning, match="over-subscribes"):
            Ozaki2Config(parallelism=workers)
        # Deduplication is the warnings module's default per-call-site
        # behaviour, so standard filters keep full control.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            Ozaki2Config(parallelism=workers)
            Ozaki2Config(parallelism=workers)
        assert len([w for w in caught if issubclass(w.category, RuntimeWarning)]) == 2

    def test_bad_string_rejected(self):
        with pytest.raises(ConfigurationError, match="parallelism"):
            Ozaki2Config(parallelism="many")


class TestCostModelSavings:
    def test_predicted_savings_monotone(self):
        saving = adaptive_moduli_savings(256, 32, 256, 15, 10)
        assert saving["predicted_ops_speedup"] > 1.0
        assert saving["predicted_bytes_speedup"] > 1.0
        equal = adaptive_moduli_savings(256, 32, 256, 15, 15)
        assert equal["predicted_ops_speedup"] == pytest.approx(1.0)


class TestCli:
    def test_run_moduli_auto(self, capsys):
        assert main(["run", "--size", "48", "--moduli", "auto", "--check"]) == 0
        out = capsys.readouterr().out
        assert "OS II-fast-" in out

    def test_run_rejects_bad_moduli(self):
        with pytest.raises(SystemExit):
            main(["run", "--size", "32", "--moduli", "lots"])

    def test_solve_progressive_cg(self, capsys):
        code = main(
            ["solve", "cg", "--size", "64", "--progressive", "--tol", "1e-8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "moduli schedule" in out

    def test_solve_auto_moduli(self, capsys):
        assert main(["solve", "jacobi", "--size", "48", "--moduli", "auto"]) == 0
        out = capsys.readouterr().out
        assert "OS II-fast-" in out
