"""Tests for the conclusion's extensions (dd / mixed GEMM), the LU app,
the a-priori error bounds and the CLI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accuracy import (
    max_relative_error,
    ozaki2_error_bound,
    reference_gemm,
    required_moduli_for_bound,
)
from repro.apps import blocked_lu, lu_backward_error, lu_with_method
from repro.cli import main as cli_main
from repro.errors import ConfigurationError, ValidationError
from repro.extensions import dd_gemm, mixed_gemm
from repro.workloads import phi_pair


class TestDdGemm:
    def test_more_accurate_than_fp64_gemm(self):
        a, b = phi_pair(24, 64, 20, phi=0.5, seed=1)
        ref = reference_gemm(a, b)
        hi, lo = dd_gemm(a, b)
        dd_err = max_relative_error(hi + lo, ref)
        # hi alone should already be at FP64 level; hi+lo matches the
        # reference to the last bit of float64.
        fp64_err = max_relative_error(a @ b, ref)
        assert dd_err <= fp64_err
        assert dd_err <= 1e-15

    def test_lo_part_is_small_correction(self):
        a, b = phi_pair(16, 32, 12, phi=0.5, seed=2)
        hi, lo = dd_gemm(a, b)
        nonzero = hi != 0
        assert np.all(np.abs(lo[nonzero]) <= np.abs(hi[nonzero]) * 2.0**-50)

    def test_captures_beyond_fp64_bits(self):
        # Product whose exact value needs more than 53 bits: (2^30 + 1)^2.
        a = np.array([[2.0**30 + 1.0]])
        b = np.array([[2.0**30 + 1.0]])
        hi, lo = dd_gemm(a, b, num_slices=16)
        exact = (2**30 + 1) ** 2
        assert int(hi[0, 0]) + int(lo[0, 0]) == exact

    def test_fewer_slices_lower_precision(self):
        a, b = phi_pair(16, 32, 12, phi=0.5, seed=3)
        ref = reference_gemm(a, b)
        err_few = max_relative_error(sum(dd_gemm(a, b, num_slices=6)), ref)
        err_many = max_relative_error(sum(dd_gemm(a, b, num_slices=16)), ref)
        assert err_many <= err_few

    def test_invalid_slices(self):
        with pytest.raises(ConfigurationError):
            dd_gemm(np.ones((2, 2)), np.ones((2, 2)), num_slices=2)


class TestMixedGemm:
    def test_fp32_times_fp64(self):
        a64, b64 = phi_pair(24, 48, 20, phi=0.5, seed=4)
        a32 = a64.astype(np.float32)
        ref = reference_gemm(a32.astype(np.float64), b64)
        c = mixed_gemm(a32, b64, "fp32", "fp64")
        assert c.dtype == np.float64
        assert max_relative_error(c, ref) < 1e-9

    def test_fp16_times_fp32_targets_fp32(self):
        a, b = phi_pair(20, 40, 16, phi=0.5, precision="fp32", seed=5)
        c = mixed_gemm(a, b, "fp16", "fp32")
        assert c.dtype == np.float32
        # the reference must also see the FP16-rounded A
        from repro.formats.lowprec import round_to_fp16

        ref = reference_gemm(round_to_fp16(a).astype(np.float64), b.astype(np.float64))
        assert max_relative_error(c, ref) < 1e-3

    def test_explicit_output_format_and_moduli(self):
        a, b = phi_pair(16, 32, 12, phi=0.5, seed=6)
        c = mixed_gemm(a, b, "fp64", "fp64", out_format="fp32", num_moduli=8)
        assert c.dtype == np.float32

    def test_invalid_formats(self):
        with pytest.raises(ConfigurationError):
            mixed_gemm(np.ones((2, 2)), np.ones((2, 2)), "int8", "fp64")
        with pytest.raises(ConfigurationError):
            mixed_gemm(np.ones((2, 2)), np.ones((2, 2)), "fp64", "fp64", out_format="fp16")


class TestLuApp:
    def test_native_lu_small_backward_error(self, rng):
        a = rng.standard_normal((96, 96))
        p, lower, upper = blocked_lu(a, block=32)
        assert lu_backward_error(a, p, lower, upper) < 1e-13
        # L unit lower triangular, U upper triangular.
        assert np.allclose(np.diag(lower), 1.0)
        assert np.allclose(np.triu(lower, 1), 0.0)
        assert np.allclose(np.tril(upper, -1), 0.0)

    def test_emulated_lu_matches_native(self, rng):
        a = rng.standard_normal((80, 80))
        err_native, _ = lu_with_method(a, method="DGEMM", block=32)
        err_emulated, _ = lu_with_method(a, method="OS II-fast-15", block=32)
        assert err_emulated < 10 * max(err_native, 1e-15)

    def test_non_square_rejected(self):
        with pytest.raises(ValidationError):
            blocked_lu(np.ones((4, 6)))

    def test_singular_detected(self):
        with pytest.raises(ValidationError):
            blocked_lu(np.zeros((8, 8)), block=4)

    def test_pivoting_permutes_rows(self, rng):
        a = rng.standard_normal((40, 40))
        a[[0, 20], :] = a[[20, 0], :]
        p, lower, upper = blocked_lu(a, block=16, pivot=True)
        assert lu_backward_error(a, p, lower, upper) < 1e-13
        assert not np.array_equal(p, np.eye(40)) or True  # permutation may or may not be identity


class TestErrorBounds:
    @pytest.mark.parametrize("num_moduli", [10, 14, 17])
    def test_bound_dominates_measured_error(self, num_moduli):
        from repro import emulated_dgemm

        a, b = phi_pair(32, 64, 28, phi=1.0, seed=7)
        ref = reference_gemm(a, b)
        c = emulated_dgemm(a, b, num_moduli=num_moduli)
        bound = ozaki2_error_bound(a, b, num_moduli)
        measured = np.abs(c - ref)
        assert np.all(measured <= bound)

    def test_bound_shrinks_with_moduli(self):
        a, b = phi_pair(16, 32, 12, phi=0.5, seed=8)
        b10 = ozaki2_error_bound(a, b, 10)
        b16 = ozaki2_error_bound(a, b, 16)
        assert np.all(b16 < b10)

    def test_required_moduli_consistent_with_planner_range(self):
        a, b = phi_pair(32, 64, 28, phi=0.5, seed=9)
        n = required_moduli_for_bound(a, b, target_relative=2.0**-45)
        assert 12 <= n <= 20

    def test_invalid_target(self):
        with pytest.raises(ConfigurationError):
            required_moduli_for_bound(np.ones((2, 2)), np.ones((2, 2)), target_relative=2.0)


class TestCli:
    def test_figures_subcommand(self, capsys):
        assert cli_main(["figures", "--only", "1,headline"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "Headline claims" in out

    def test_figures_unknown_id(self, capsys):
        assert cli_main(["figures", "--only", "42"]) == 2

    def test_accuracy_subcommand(self, capsys):
        code = cli_main(
            [
                "accuracy",
                "--methods",
                "DGEMM,OS II-fast-12",
                "--phi",
                "0.5",
                "--k",
                "64",
                "--m",
                "32",
                "--n",
                "24",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "OS II-fast-12" in out

    def test_throughput_subcommand(self, capsys):
        assert cli_main(["throughput", "--sizes", "1024", "--gpus", "GH200"]) == 0
        assert "GH200" in capsys.readouterr().out

    def test_run_subcommand_with_prepared_a(self, capsys):
        code = cli_main(
            ["run", "--size", "48", "--batch", "3", "--prepare-a", "--check"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "prepared=A" in out
        assert "max_rel_error" in out

    def test_run_subcommand_with_prepared_both(self, capsys):
        assert cli_main(["run", "--size", "32", "--batch", "2", "--prepare-a", "--prepare-b"]) == 0
        assert "prepared=AB" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "argv",
        [
            ["run", "--size", "32", "--parallel", "-2"],
            ["run", "--size", "32", "--memory-budget-mb", "0"],
            ["run", "--size", "32", "--memory-budget-mb", "-1.5"],
        ],
    )
    def test_run_invalid_runtime_knobs_exit_nonzero_one_line(self, argv, capsys):
        """Invalid knobs must produce a one-line error and a non-zero exit,
        not a traceback."""
        code = cli_main(argv)
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert len(err.strip().splitlines()) == 1
        assert "Traceback" not in err

    def test_solve_subcommand_jacobi(self, capsys):
        code = cli_main(["solve", "--solver", "jacobi", "--size", "48"])
        assert code == 0
        out = capsys.readouterr().out
        assert "jacobi(OS II-fast-15)" in out
        assert "converged            True" in out

    def test_solve_subcommand_cg(self, capsys):
        code = cli_main(
            ["solve", "--solver", "cg", "--size", "32", "--tol", "1e-8", "--moduli", "12"]
        )
        assert code == 0
        assert "cg(OS II-fast-12)" in capsys.readouterr().out

    def test_solve_subcommand_ir(self, capsys):
        assert cli_main(["solve", "--solver", "ir", "--size", "40"]) == 0
        assert "ir(" in capsys.readouterr().out

    def test_solve_positional_solver_form(self, capsys):
        code = cli_main(["solve", "cg", "--size", "32", "--tol", "1e-8"])
        assert code == 0
        assert "cg(OS II-fast-15)" in capsys.readouterr().out

    def test_solve_cg_with_ilu0_precond(self, capsys):
        code = cli_main(["solve", "cg", "--precond", "ilu0", "--size", "48"])
        assert code == 0
        out = capsys.readouterr().out
        assert "pcg+ilu0(OS II-fast-15)" in out
        assert "precondition once" in out

    def test_solve_pcg_defaults_to_ilu0_on_ill_conditioned_family(self, capsys):
        code = cli_main(["solve", "pcg", "--size", "48"])
        assert code == 0
        out = capsys.readouterr().out
        assert "pcg+ilu0(OS II-fast-15)" in out
        assert "ill_spd" in out

    def test_solve_jacobi_with_ssor_precond(self, capsys):
        code = cli_main(
            ["solve", "jacobi", "--size", "48", "--precond", "ssor", "--omega", "1.2"]
        )
        assert code == 0
        assert "jacobi+ssor(OS II-fast-15)" in capsys.readouterr().out

    def test_solve_no_gemv_fast_comparator_route(self, capsys):
        code = cli_main(["solve", "jacobi", "--size", "48", "--no-gemv-fast"])
        assert code == 0
        out = capsys.readouterr().out
        assert "n=1 GEMM route" in out
        assert "converged            True" in out

    def test_solve_gemv_routes_agree_on_iteration_count(self, capsys):
        assert cli_main(["solve", "jacobi", "--size", "40"]) == 0
        fast = capsys.readouterr().out
        assert cli_main(["solve", "jacobi", "--size", "40", "--no-gemv-fast"]) == 0
        slow = capsys.readouterr().out
        pick = lambda text: next(  # noqa: E731
            line for line in text.splitlines() if "converged" in line
        )
        assert pick(fast) == pick(slow)

    def test_solve_fp32_default_tolerance_is_reachable(self, capsys):
        """fp32 emulation has a ~1e-7 residual floor; the default tolerance
        must scale with the precision so fp32 solves can succeed."""
        code = cli_main(["solve", "--solver", "jacobi", "--size", "48",
                         "--precision", "fp32"])
        assert code == 0
        out = capsys.readouterr().out
        assert "converged            True" in out
        assert "tol 1.0e-05" in out

    def test_solve_non_convergence_exits_nonzero(self, capsys):
        code = cli_main(
            ["solve", "--solver", "jacobi", "--size", "48", "--max-iter", "1",
             "--tol", "1e-15"]
        )
        assert code == 1
        assert "did not reach" in capsys.readouterr().err

    def test_gemm_subcommand(self, tmp_path, capsys, rng):
        a = rng.standard_normal((12, 16))
        b = rng.standard_normal((16, 8))
        pa, pb, pc = tmp_path / "a.npy", tmp_path / "b.npy", tmp_path / "c.npy"
        np.save(pa, a)
        np.save(pb, b)
        code = cli_main(
            ["gemm", str(pa), str(pb), "--method", "OS II-fast-14", "--out", str(pc), "--check"]
        )
        assert code == 0
        saved = np.load(pc)
        assert np.allclose(saved, a @ b, rtol=1e-8)
        assert "max relative error" in capsys.readouterr().out
