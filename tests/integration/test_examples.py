"""Smoke-tests for the runnable examples (deliverable b).

Each example's ``main`` is imported and executed at a reduced problem size so
the whole suite stays fast; the assertions check that the examples run to
completion and print the tables they promise.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys


_EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"


def _load_example(name: str):
    path = _EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamplesRun:
    def test_quickstart(self, capsys):
        module = _load_example("quickstart.py")
        module.main(96)
        out = capsys.readouterr().out
        assert "DGEMM emulation accuracy" in out
        assert "OS II-fast-15" in out
        assert "CPU wall-clock breakdown" in out

    def test_hpl_lu(self, capsys):
        module = _load_example("hpl_lu_factorization.py")
        module.main(128, 64)
        out = capsys.readouterr().out
        assert "backward error" in out
        assert "OS II-fast-15" in out

    def test_precision_selection(self, capsys):
        module = _load_example("precision_selection.py")
        module.main(96, 1.0)
        out = capsys.readouterr().out
        assert "planner suggestion" in out
        assert "GH200_model_TFLOPS" in out

    def test_quantum_chemistry(self, capsys):
        module = _load_example("quantum_chemistry_density.py")
        module.main(64, 16)
        out = capsys.readouterr().out
        assert "Canonical purification" in out
        assert "idempotency_error" in out

    def test_reproduce_figures_cli(self, capsys, monkeypatch):
        module = _load_example("reproduce_paper_figures.py")
        monkeypatch.setattr(sys, "argv", ["reproduce_paper_figures.py", "--only", "1,headline"])
        module.main()
        out = capsys.readouterr().out
        assert "Figure 1" in out and "Headline claims" in out
