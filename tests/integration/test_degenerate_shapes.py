"""Degenerate GEMM shapes (m == 0, k == 0, n == 0) are pinned behaviour.

The library rejects empty operands with a precise
:class:`~repro.errors.ValidationError` from ``check_gemm_operands`` /
``ensure_2d`` — consistently across :func:`repro.ozaki2_gemm`, the batched
runtime, operand preparation, and every baseline of the method registry —
rather than leaving the outcome to whatever NumPy happens to do.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ozaki2_gemm, ozaki2_gemm_batched, prepare_a, prepare_b
from repro.baselines.registry import get_method
from repro.errors import ValidationError

#: (A shape, B shape) triples covering each degenerate dimension.
DEGENERATE_SHAPES = [
    pytest.param((0, 5), (5, 4), id="m=0"),
    pytest.param((3, 0), (0, 4), id="k=0"),
    pytest.param((3, 5), (5, 0), id="n=0"),
    pytest.param((0, 0), (0, 0), id="all=0"),
]

#: One representative method per registry family.
METHODS = [
    "DGEMM",
    "SGEMM",
    "TF32GEMM",
    "BF16x9",
    "cuMpSGEMM",
    "ozIMMU_EF-4",
    "OS II-fast-8",
    "OS II-accu-8",
]


@pytest.mark.parametrize("shape_a, shape_b", DEGENERATE_SHAPES)
@pytest.mark.parametrize("method", METHODS)
def test_every_baseline_raises_validation_error(method, shape_a, shape_b):
    spec = get_method(method)
    with pytest.raises(ValidationError, match="zero dimension"):
        spec(np.ones(shape_a), np.ones(shape_b))


@pytest.mark.parametrize("shape_a, shape_b", DEGENERATE_SHAPES)
def test_ozaki2_gemm_raises_validation_error(shape_a, shape_b):
    with pytest.raises(ValidationError, match="zero dimension"):
        ozaki2_gemm(np.ones(shape_a), np.ones(shape_b))


@pytest.mark.parametrize("shape_a, shape_b", DEGENERATE_SHAPES)
def test_batched_raises_validation_error(shape_a, shape_b):
    with pytest.raises(ValidationError, match="zero dimension"):
        ozaki2_gemm_batched([np.ones(shape_a)], [np.ones(shape_b)])


@pytest.mark.parametrize("shape_a, shape_b", DEGENERATE_SHAPES)
def test_degenerate_item_anywhere_in_batch_raises(shape_a, shape_b):
    good_a, good_b = np.ones((3, 5)), np.ones((5, 4))
    with pytest.raises(ValidationError, match="zero dimension"):
        ozaki2_gemm_batched(
            [good_a, np.ones(shape_a)], [good_b, np.ones(shape_b)]
        )


def test_prepare_rejects_degenerate_operands():
    with pytest.raises(ValidationError, match="zero dimension"):
        prepare_a(np.ones((0, 4)))
    with pytest.raises(ValidationError, match="zero dimension"):
        prepare_b(np.ones((4, 0)))


def test_error_message_names_the_operand_and_shape():
    with pytest.raises(ValidationError, match=r"A has a zero dimension \(shape \(0, 5\)\)"):
        ozaki2_gemm(np.ones((0, 5)), np.ones((5, 4)))
