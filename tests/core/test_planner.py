"""Tests for the moduli-count planner."""

from __future__ import annotations

import pytest

from repro.core.planner import choose_num_moduli, estimate_retained_bits
from repro.errors import ConfigurationError


class TestEstimateRetainedBits:
    def test_monotone_in_moduli(self):
        assert estimate_retained_bits(16, 1024) > estimate_retained_bits(8, 1024)

    def test_monotone_in_k(self):
        assert estimate_retained_bits(14, 1024) > estimate_retained_bits(14, 16384)

    def test_monotone_in_phi(self):
        assert estimate_retained_bits(14, 1024, phi=0.5) > estimate_retained_bits(14, 1024, phi=4.0)

    def test_invalid_k(self):
        with pytest.raises(ConfigurationError):
            estimate_retained_bits(10, 0)


class TestChooseNumModuli:
    def test_matches_paper_for_hpl_dgemm(self):
        # Section 5.1: 14-15 moduli suffice for HPL-like DGEMM at k=1024.
        n = choose_num_moduli("fp64", k=1024, phi=0.5)
        assert 13 <= n <= 16

    def test_matches_paper_for_sgemm(self):
        # Section 5.1: 7-8 moduli give SGEMM-level accuracy.
        n = choose_num_moduli("fp32", k=1024, phi=0.5)
        assert 6 <= n <= 9

    def test_larger_k_needs_more_moduli(self):
        assert choose_num_moduli("fp64", k=16384) >= choose_num_moduli("fp64", k=1024)

    def test_larger_phi_needs_more_moduli(self):
        assert choose_num_moduli("fp64", k=1024, phi=2.0) >= choose_num_moduli(
            "fp64", k=1024, phi=0.5
        )

    def test_margin_increases_choice(self):
        base = choose_num_moduli("fp64", k=1024)
        padded = choose_num_moduli("fp64", k=1024, margin_bits=8)
        assert padded >= base

    def test_unreachable_target_raises(self):
        with pytest.raises(ConfigurationError):
            choose_num_moduli("fp64", k=2**17, phi=8.0, max_moduli=6)

    def test_rejects_non_target_precision(self):
        with pytest.raises(ConfigurationError):
            choose_num_moduli("fp16", k=1024)
