"""Tests for the precomputed-operand subsystem (convert once, multiply many)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ComputeMode, Ozaki2Config
from repro.core.gemm import ozaki2_gemm
from repro.core.operand import (
    AccurateOperand,
    ResidueOperand,
    prepare_a,
    prepare_b,
)
from repro.core.scaling import fast_mode_scales
from repro.crt.constants import build_constant_table
from repro.errors import ConfigurationError, ValidationError
from repro.workloads import phi_pair


class TestPrepare:
    def test_prepare_a_contents(self, small_pair):
        a, b = small_pair
        config = Ozaki2Config.for_dgemm(12)
        prep = prepare_a(a, config=config)
        assert prep.side == "A"
        assert prep.shape == a.shape
        assert prep.num_moduli == 12
        assert prep.inner_dim == a.shape[1]
        assert prep.phase_key == "convert_A"
        assert prep.slices.dtype == np.int8
        assert prep.slices.shape == (12,) + a.shape
        assert prep.convert_seconds > 0.0
        # The cached scale is exactly the fast-mode mu.
        table = build_constant_table(12, 64)
        mu, _ = fast_mode_scales(a, b, table)
        np.testing.assert_array_equal(prep.scale, mu)

    def test_prepare_b_contents(self, small_pair):
        _, b = small_pair
        prep = prepare_b(b, config=Ozaki2Config.for_dgemm(9))
        assert prep.side == "B"
        assert prep.inner_dim == b.shape[0]
        assert prep.phase_key == "convert_B"
        assert prep.slices.shape == (9,) + b.shape

    def test_prepare_validates_operand(self):
        with pytest.raises(ValidationError):
            prepare_a(np.ones((2, 3, 4)))
        with pytest.raises(ValidationError):
            prepare_a(np.array([[np.inf, 1.0]]))

    def test_prepare_accurate_mode_returns_accurate_operand(self, small_pair):
        # Historically rejected: accurate-mode final scales couple both
        # operands.  The prescale split stores the N-independent half
        # (mu', A-bar) at preparation time instead.
        a, _ = small_pair
        config = Ozaki2Config.for_dgemm(12, mode="accurate")
        prep = prepare_a(a, config=config)
        assert isinstance(prep, AccurateOperand)
        assert prep.side == "A"
        assert prep.shape == a.shape
        assert prep.num_moduli == 12
        assert prep.prescale.scale_prime.shape == (a.shape[0],)
        assert not prep.prescale.magnitude.flags.writeable

    def test_accurate_prepared_mode_mismatch_rejected(self, small_pair):
        a, b = small_pair
        accurate = Ozaki2Config.for_dgemm(12, mode="accurate")
        fast = Ozaki2Config.for_dgemm(12)
        with pytest.raises(ConfigurationError, match="mode"):
            ozaki2_gemm(prepare_a(a, config=accurate), b, config=fast)
        with pytest.raises(ConfigurationError, match="mode"):
            ozaki2_gemm(prepare_a(a, config=fast), b, config=accurate)

    def test_invalid_side_rejected(self):
        with pytest.raises(ConfigurationError):
            ResidueOperand(
                side="C",
                scale=np.ones(2),
                slices=np.zeros((2, 2, 2), dtype=np.int8),
                config=Ozaki2Config(),
            )


class TestBitIdentity:
    @pytest.mark.parametrize("kernel", ["exact", "fast_fma"])
    @pytest.mark.parametrize(
        "precision, num_moduli", [("fp64", 15), ("fp64", 8), ("fp32", 8)]
    )
    def test_prepared_matches_unprepared(self, kernel, precision, num_moduli):
        a, b = phi_pair(21, 34, 17, phi=0.7, seed=5)
        config = Ozaki2Config(
            precision=precision, num_moduli=num_moduli, residue_kernel=kernel
        )
        reference = ozaki2_gemm(a, b, config=config)
        pa, pb = prepare_a(a, config), prepare_b(b, config)
        for lhs, rhs in ((pa, b), (a, pb), (pa, pb)):
            c = ozaki2_gemm(lhs, rhs, config=config)
            assert c.tobytes() == reference.tobytes()

    @given(
        m=st.integers(1, 24),
        k=st.integers(1, 32),
        n=st.integers(1, 24),
        num_moduli=st.integers(2, 20),
        kernel=st.sampled_from(["exact", "fast_fma"]),
        prepare_side=st.sampled_from(["A", "B", "AB"]),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=30, deadline=None)
    def test_prepared_byte_identical_property(
        self, m, k, n, num_moduli, kernel, prepare_side, seed
    ):
        """For random shapes/N/kernels, prepared A and/or B returns output
        byte-identical to the unprepared call (the tentpole guarantee)."""
        a, b = phi_pair(m, k, n, phi=0.5, seed=seed)
        config = Ozaki2Config.for_dgemm(num_moduli, residue_kernel=kernel)
        reference = ozaki2_gemm(a, b, config=config)
        lhs = prepare_a(a, config) if "A" in prepare_side else a
        rhs = prepare_b(b, config) if "B" in prepare_side else b
        assert ozaki2_gemm(lhs, rhs, config=config).tobytes() == reference.tobytes()

    @given(
        m=st.integers(1, 16),
        k=st.integers(1, 24),
        n=st.integers(1, 16),
        num_moduli=st.integers(2, 16),
        executor=st.sampled_from(["thread", "process"]),
        parallelism=st.sampled_from([1, 2]),
        prepare_side=st.sampled_from(["A", "B", "AB"]),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=20, deadline=None)
    def test_accurate_prepared_byte_identical_across_executors(
        self, m, k, n, num_moduli, executor, parallelism, prepare_side, seed
    ):
        """Accurate-mode prepared operands return output byte-identical to
        the unprepared call under every executor — the prescale split
        stores exactly what a fresh preparation would compute, and the
        coupled finalize runs the same arithmetic either way."""
        a, b = phi_pair(m, k, n, phi=0.5, seed=seed)
        config = Ozaki2Config.for_dgemm(
            num_moduli, mode="accurate", executor=executor, parallelism=parallelism
        )
        reference = ozaki2_gemm(a, b, config=config)
        lhs = prepare_a(a, config) if "A" in prepare_side else a
        rhs = prepare_b(b, config) if "B" in prepare_side else b
        assert ozaki2_gemm(lhs, rhs, config=config).tobytes() == reference.tobytes()

    def test_prepared_with_runtime_knobs(self, small_pair):
        """Runtime knobs (parallelism, tiling) may differ from the preparing
        config — they do not affect the cached residues."""
        a, b = small_pair
        base = Ozaki2Config.for_dgemm(10)
        prep = prepare_a(a, config=base)
        reference = ozaki2_gemm(a, b, config=base)
        for variant in (
            base.replace(parallelism=3),
            base.replace(memory_budget_mb=0.01),
        ):
            c = ozaki2_gemm(prep, b, config=variant)
            np.testing.assert_array_equal(c, reference)

    def test_prepared_with_k_blocking(self, monkeypatch):
        """Prepared slices feed the k-blocked execution path unchanged."""
        import repro.core.gemm as gemm_mod

        a, b = phi_pair(12, 96, 10, seed=8)
        config = Ozaki2Config.for_dgemm(8)
        monkeypatch.setattr(gemm_mod, "MAX_K_WITHOUT_BLOCKING", 32)
        reference = ozaki2_gemm(a, b, config=config, return_details=True)
        assert reference.num_k_blocks == 3
        c = ozaki2_gemm(prepare_a(a, config), b, config=config)
        np.testing.assert_array_equal(c, reference.c)


class TestResolveCache:
    """The resolve_for derivation cache is an LRU bounded in memory, not
    an identity: eviction must never change bits, only cost."""

    def test_cache_never_exceeds_bound(self, small_pair):
        from repro.core.operand import _RESOLVE_CACHE_ENTRIES

        a, _ = small_pair
        prep = prepare_a(a, config=Ozaki2Config.for_dgemm(15))
        for count in range(2, 15):
            prep.resolve_for(count)
            assert len(prep._resolved_cache) <= _RESOLVE_CACHE_ENTRIES

    def test_hit_returns_cached_object(self, small_pair):
        a, _ = small_pair
        prep = prepare_a(a, config=Ozaki2Config.for_dgemm(15))
        first = prep.resolve_for(8)
        assert prep.resolve_for(8) is first

    def test_self_count_short_circuits(self, small_pair):
        a, _ = small_pair
        prep = prepare_a(a, config=Ozaki2Config.for_dgemm(15))
        # Even after the seed entry is evicted by churn, resolving back to
        # the operand's own count is an identity, never a re-derivation.
        for count in range(2, 12):
            prep.resolve_for(count)
        assert prep.resolve_for(15) is prep

    def test_evicted_count_rederives_bit_identical(self, small_pair):
        from repro.core.operand import _RESOLVE_CACHE_ENTRIES

        a, _ = small_pair
        prep = prepare_a(a, config=Ozaki2Config.for_dgemm(15))
        first = prep.resolve_for(4)
        # Churn enough distinct counts to evict 4 from the LRU.
        for count in range(5, 5 + _RESOLVE_CACHE_ENTRIES + 1):
            prep.resolve_for(count)
        assert 4 not in prep._resolved_cache
        again = prep.resolve_for(4)
        assert again is not first
        np.testing.assert_array_equal(again.scale, first.scale)
        np.testing.assert_array_equal(again.slices, first.slices)

    def test_lru_keeps_recently_used(self, small_pair):
        from repro.core.operand import _RESOLVE_CACHE_ENTRIES

        a, _ = small_pair
        prep = prepare_a(a, config=Ozaki2Config.for_dgemm(15))
        prep.resolve_for(4)
        for count in range(5, 4 + _RESOLVE_CACHE_ENTRIES):
            prep.resolve_for(4)  # touch 4: it stays most-recently-used
            prep.resolve_for(count)
        assert 4 in prep._resolved_cache

    def test_derived_operands_share_one_cache(self, small_pair):
        a, _ = small_pair
        prep = prepare_a(a, config=Ozaki2Config.for_dgemm(15))
        derived = prep.resolve_for(8)
        assert derived._resolved_cache is prep._resolved_cache
        # A ladder walking through the derived operand fills the same
        # bounded cache, not a second unbounded one.
        assert derived.resolve_for(6) is prep.resolve_for(6)


class TestPhaseReporting:
    def test_prepared_sides_report_zero_convert(self, small_pair):
        a, b = small_pair
        config = Ozaki2Config.for_dgemm(10)
        result = ozaki2_gemm(prepare_a(a, config), b, config=config, return_details=True)
        assert result.phase_times.seconds["convert_A"] == 0.0
        assert result.phase_times.seconds["convert_B"] > 0.0
        both = ozaki2_gemm(
            prepare_a(a, config), prepare_b(b, config), config=config, return_details=True
        )
        assert both.phase_times.seconds["convert_A"] == 0.0
        assert both.phase_times.seconds["convert_B"] == 0.0
        assert both.phase_times.seconds["matmul"] > 0.0

    def test_details_carry_cached_scales(self, small_pair):
        a, b = small_pair
        config = Ozaki2Config.for_dgemm(10)
        prep = prepare_a(a, config)
        result = ozaki2_gemm(prep, b, config=config, return_details=True)
        np.testing.assert_array_equal(result.mu, prep.scale)


class TestCompatibility:
    def test_wrong_side_rejected(self, small_pair):
        a, b = small_pair
        config = Ozaki2Config.for_dgemm(8)
        with pytest.raises(ValidationError, match="B side"):
            ozaki2_gemm(prepare_b(b, config), b, config=config)
        with pytest.raises(ValidationError, match="A side"):
            ozaki2_gemm(a, prepare_a(a, config), config=config)

    def test_moduli_mismatch_rejected(self, small_pair):
        a, b = small_pair
        prep = prepare_a(a, Ozaki2Config.for_dgemm(10))
        with pytest.raises(ConfigurationError, match="num_moduli"):
            ozaki2_gemm(prep, b, config=Ozaki2Config.for_dgemm(12))

    def test_kernel_mismatch_rejected(self, small_pair):
        a, b = small_pair
        prep = prepare_a(a, Ozaki2Config.for_dgemm(10, residue_kernel="exact"))
        with pytest.raises(ConfigurationError, match="residue_kernel"):
            ozaki2_gemm(
                prep, b, config=Ozaki2Config.for_dgemm(10, residue_kernel="fast_fma")
            )

    def test_precision_mismatch_rejected(self):
        a, b = phi_pair(8, 8, 8, seed=0)
        prep = prepare_a(a, Ozaki2Config.for_dgemm(8))
        with pytest.raises(ConfigurationError, match="precision"):
            ozaki2_gemm(prep, b, config=Ozaki2Config.for_sgemm(8))

    def test_accurate_multiplication_rejected(self, small_pair):
        a, b = small_pair
        prep = prepare_a(a, Ozaki2Config.for_dgemm(12))
        with pytest.raises(ConfigurationError, match="accurate"):
            ozaki2_gemm(prep, b, config=Ozaki2Config.for_dgemm(12, mode="accurate"))

    def test_inner_dim_mismatch_rejected(self, small_pair):
        a, b = small_pair
        config = Ozaki2Config.for_dgemm(8)
        with pytest.raises(ValidationError, match="inner dimensions"):
            ozaki2_gemm(prepare_a(a, config), np.ones((3, 4)), config=config)
        with pytest.raises(ValidationError, match="inner dimensions"):
            ozaki2_gemm(np.ones((4, 3)), prepare_b(b, config), config=config)

    def test_raw_partner_still_validated(self, small_pair):
        a, b = small_pair
        config = Ozaki2Config.for_dgemm(8)
        bad = b.copy()
        bad[0, 0] = np.nan
        with pytest.raises(ValidationError, match="non-finite"):
            ozaki2_gemm(prepare_a(a, config), bad, config=config)

    def test_compatibility_mode_is_enum_identity(self, small_pair):
        """ComputeMode round-trips through strings without breaking reuse."""
        a, b = small_pair
        prep = prepare_a(a, Ozaki2Config.for_dgemm(8, mode="fast"))
        c = ozaki2_gemm(prep, b, config=Ozaki2Config.for_dgemm(8, mode=ComputeMode.FAST))
        np.testing.assert_array_equal(c, ozaki2_gemm(a, b, config=Ozaki2Config.for_dgemm(8)))
