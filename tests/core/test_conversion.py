"""Tests for truncation and residue-slice conversion (Alg. 1 lines 2-5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ResidueKernel
from repro.core.conversion import residue_slices, truncate_scaled
from repro.crt.constants import build_constant_table


class TestTruncateScaled:
    def test_left_scaling_rows(self):
        x = np.array([[1.7, -2.3], [0.4, 5.9]])
        scale = np.array([2.0, 4.0])
        out = truncate_scaled(x, scale, "left")
        np.testing.assert_array_equal(out, np.array([[3.0, -4.0], [1.0, 23.0]]))

    def test_right_scaling_columns(self):
        x = np.array([[1.7, -2.3], [0.4, 5.9]])
        scale = np.array([2.0, 4.0])
        out = truncate_scaled(x, scale, "right")
        np.testing.assert_array_equal(out, np.array([[3.0, -9.0], [0.0, 23.0]]))

    def test_truncation_toward_zero(self):
        x = np.array([[-1.9, 1.9]])
        out = truncate_scaled(x, np.array([1.0]), "left")
        np.testing.assert_array_equal(out, np.array([[-1.0, 1.0]]))

    def test_results_are_integers(self, rng):
        x = rng.standard_normal((20, 30))
        scale = 2.0 ** rng.integers(0, 40, 20).astype(np.float64)
        out = truncate_scaled(x, scale, "left")
        np.testing.assert_array_equal(out, np.trunc(out))

    def test_invalid_side(self):
        with pytest.raises(ValueError):
            truncate_scaled(np.ones((2, 2)), np.ones(2), "top")

    def test_power_of_two_scaling_is_exact(self):
        # Scaling by powers of two must not round: undoing the scale
        # reproduces the truncated value exactly.
        x = np.array([[1.0 + 2.0**-40]])
        scale = np.array([2.0**45])
        out = truncate_scaled(x, scale, "left")
        assert out[0, 0] == 2.0**45 + 2.0**5


class TestResidueSlices:
    @pytest.mark.parametrize("kernel", [ResidueKernel.EXACT, ResidueKernel.FAST_FMA])
    def test_slices_congruent_to_input(self, rng, kernel):
        table = build_constant_table(8, 64)
        x = np.trunc(rng.standard_normal((12, 14)) * 2.0**30)
        slices = residue_slices(x, table, kernel)
        assert slices.shape == (8, 12, 14)
        assert slices.dtype == np.int8
        for i, p in enumerate(table.moduli):
            diff = x - slices[i].astype(np.float64)
            np.testing.assert_array_equal(np.mod(diff, p), np.zeros_like(x))

    def test_string_kernel_accepted(self, rng):
        table = build_constant_table(4, 64)
        x = np.trunc(rng.standard_normal((6, 6)) * 100)
        exact = residue_slices(x, table, "exact")
        fast = residue_slices(x, table, "fast_fma")
        for i, p in enumerate(table.moduli):
            assert np.all((exact[i].astype(np.int64) - fast[i].astype(np.int64)) % p == 0)
