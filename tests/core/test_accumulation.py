"""Tests for the accumulation and CRT reconstruction (Alg. 1 lines 7-12)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accuracy.reference import exact_int_gemm
from repro.core.accumulation import (
    accumulate_residue_products,
    reconstruct_crt,
    unscale,
)
from repro.core.conversion import residue_slices
from repro.crt.constants import build_constant_table
from repro.crt.inverses import crt_reconstruct_int


def _residue_products(a_prime, b_prime, table):
    """Exact residue products C'_i as int64 (small test sizes)."""
    slices_a = residue_slices(a_prime, table)
    slices_b = residue_slices(b_prime, table)
    n = table.num_moduli
    out = np.empty((n, a_prime.shape[0], b_prime.shape[1]), dtype=np.int64)
    for i in range(n):
        out[i] = slices_a[i].astype(np.int64) @ slices_b[i].astype(np.int64)
    return out


class TestAccumulate:
    def test_shapes_and_dtypes(self, rng):
        table = build_constant_table(6, 64)
        c_stack = rng.integers(-(2**31), 2**31, (6, 5, 7)).astype(np.int32)
        c1, c2 = accumulate_residue_products(c_stack, table)
        assert c1.shape == (5, 7) and c2.shape == (5, 7)
        assert c1.dtype == np.float64

    def test_wrong_stack_shape_rejected(self):
        table = build_constant_table(4, 64)
        with pytest.raises(ValueError):
            accumulate_residue_products(np.zeros((3, 2, 2), dtype=np.int32), table)

    def test_c1_accumulation_is_error_free(self, rng):
        """C'(1) must equal the exact integer sum of s1_i * U_i."""
        table = build_constant_table(15, 64)
        c_stack = rng.integers(-(2**31), 2**31, (15, 4, 4)).astype(np.int32)
        c1, _ = accumulate_residue_products(c_stack, table)
        for r in range(4):
            for c in range(4):
                exact = sum(
                    int(table.s1[i]) * (int(c_stack[i, r, c]) % table.moduli[i])
                    for i in range(15)
                )
                assert c1[r, c] == float(exact)

    def test_mulhi_and_exact_mod_agree(self, rng):
        table = build_constant_table(10, 64)
        c_stack = rng.integers(-(2**31), 2**31, (10, 6, 6)).astype(np.int32)
        c1_a, c2_a = accumulate_residue_products(c_stack, table, use_mulhi=False)
        c1_b, c2_b = accumulate_residue_products(c_stack, table, use_mulhi=True)
        np.testing.assert_array_equal(c1_a, c1_b)
        np.testing.assert_array_equal(c2_a, c2_b)

    def test_sgemm_table_gives_c2_sentinel(self, rng):
        """All split-weight tails are zero for SGEMM tables: the dead second
        accumulation is skipped and reported as the ``None`` sentinel (for
        both the vectorized path and the per-modulus comparator)."""
        table = build_constant_table(8, 32)
        c_stack = rng.integers(-(2**31), 2**31, (8, 3, 3)).astype(np.int32)
        for vectorized in (True, False):
            _, c2 = accumulate_residue_products(c_stack, table, vectorized=vectorized)
            assert c2 is None

    @pytest.mark.parametrize("precision_bits", [64, 32])
    @pytest.mark.parametrize("use_mulhi", [False, True])
    def test_vectorized_matches_per_modulus_loop(self, rng, precision_bits, use_mulhi):
        """The single-tensordot/broadcast path must be bit-identical to the
        per-modulus loop it replaces, including the inexact C2 terms."""
        n_mod = 15 if precision_bits == 64 else 8
        table = build_constant_table(n_mod, precision_bits)
        c_stack = rng.integers(-(2**31), 2**31, (n_mod, 7, 9)).astype(np.int32)
        c1_v, c2_v = accumulate_residue_products(
            c_stack, table, use_mulhi=use_mulhi, vectorized=True
        )
        c1_l, c2_l = accumulate_residue_products(
            c_stack, table, use_mulhi=use_mulhi, vectorized=False
        )
        np.testing.assert_array_equal(c1_v, c1_l)
        if c2_l is None:
            assert c2_v is None
        else:
            np.testing.assert_array_equal(c2_v, c2_l)

    def test_vectorized_matches_loop_on_int64_blocked_stack(self, rng):
        """k-blocked partial sums arrive as int64 and can exceed the INT32
        range; both accumulation paths must stay exact and identical."""
        table = build_constant_table(12, 64)
        c_stack = rng.integers(-(2**33), 2**33, (12, 5, 4)).astype(np.int64)
        c1_v, c2_v = accumulate_residue_products(c_stack, table, vectorized=True)
        c1_l, c2_l = accumulate_residue_products(c_stack, table, vectorized=False)
        np.testing.assert_array_equal(c1_v, c1_l)
        np.testing.assert_array_equal(c2_v, c2_l)


class TestReconstruct:
    @pytest.mark.parametrize("num_moduli", [6, 10, 15])
    def test_reconstruction_matches_exact_integer_product(self, rng, num_moduli):
        """End-to-end integer path: A'B' recovered through the float CRT must
        match the exact integer product to FP64-level accuracy *relative to
        the scale the real algorithm operates at* (inputs filling the
        per-side budget, so the products are comparable to P as the scaling
        step arranges)."""
        table = build_constant_table(num_moduli, 64)
        k_inner = 9
        # Fill the per-side budget like the scaling step does: entries close
        # to 2^alpha / sqrt(k) keep condition (3) satisfied while making the
        # products comparable to P.
        bits = int(0.5 * (table.log2_P - 1.5) - 0.5 * np.log2(k_inner) - 1)
        a_prime = np.trunc(rng.standard_normal((6, k_inner)) * 2.0**bits)
        b_prime = np.trunc(rng.standard_normal((k_inner, 5)) * 2.0**bits)
        c_stack = _residue_products(a_prime, b_prime, table)
        c1, c2 = accumulate_residue_products(c_stack, table)
        c_pp = reconstruct_crt(c1, c2, table)
        exact = exact_int_gemm(a_prime, b_prime)
        # Errors are measured against the product scale (as in the GEMM
        # error analysis), not each individual element.
        scale = 2.0 ** (2 * bits) * k_inner
        for r in range(6):
            for c in range(5):
                expected = int(exact[r, c])
                got = c_pp[r, c]
                assert abs(got - expected) <= scale * 2**-48

    def test_reconstruction_agrees_with_integer_crt(self, rng):
        """Scalar cross-check against crt_reconstruct_int."""
        table = build_constant_table(8, 64)
        value = 123456789012345
        residues = np.array(
            [[[value % p for p in table.moduli]]], dtype=np.int64
        ).reshape(8, 1, 1)
        c1, c2 = accumulate_residue_products(residues.astype(np.int32), table)
        c_pp = reconstruct_crt(c1, c2, table)
        assert crt_reconstruct_int([value % p for p in table.moduli], table.moduli) == value
        assert c_pp[0, 0] == pytest.approx(value, rel=1e-12)


class TestReconstructSentinel:
    def test_none_c2_matches_explicit_zeros(self, rng):
        """reconstruct_crt with the ``None`` sentinel must equal the seed
        behaviour of adding an all-zero C2 matrix."""
        table = build_constant_table(8, 32)
        c_stack = rng.integers(-(2**31), 2**31, (8, 4, 4)).astype(np.int32)
        c1, c2 = accumulate_residue_products(c_stack, table)
        assert c2 is None
        with_sentinel = reconstruct_crt(c1, None, table)
        with_zeros = reconstruct_crt(c1, np.zeros_like(c1), table)
        np.testing.assert_array_equal(with_sentinel, with_zeros)

    def test_scalar_fma_coefficients_broadcast(self, rng):
        """The -P1/-P2 coefficients are scalars now; spot-check against the
        seed's full-matrix formulation."""
        from repro.utils.fma import fma

        table = build_constant_table(15, 64)
        c_stack = rng.integers(-(2**31), 2**31, (15, 6, 6)).astype(np.int32)
        c1, c2 = accumulate_residue_products(c_stack, table)
        got = reconstruct_crt(c1, c2, table)
        q = np.rint(table.Pinv * c1)
        t = fma(np.full_like(q, -table.P1), q, c1) + c2
        want = fma(np.full_like(q, -table.P2), q, t)
        np.testing.assert_array_equal(got, want)


class TestUnscale:
    def test_unscale_exact_for_powers_of_two(self, rng):
        c = rng.standard_normal((4, 6))
        mu = 2.0 ** rng.integers(-20, 20, 4).astype(np.float64)
        nu = 2.0 ** rng.integers(-20, 20, 6).astype(np.float64)
        out = unscale(c, mu, nu)
        np.testing.assert_array_equal(out, c / mu[:, None] / nu[None, :])

    def test_output_dtype(self):
        c = np.ones((2, 2))
        out = unscale(c, np.ones(2), np.ones(2), out_dtype=np.float32)
        assert out.dtype == np.float32
