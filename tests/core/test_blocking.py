"""Tests for the inner-dimension blocking (Section 4.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.blocking import blocked_residue_products, k_block_ranges
from repro.engines.int8 import Int8MatrixEngine


class TestBlockRanges:
    def test_exact_cover(self):
        ranges = list(k_block_ranges(10, 4))
        assert ranges == [(0, 4), (4, 8), (8, 10)]

    def test_single_block(self):
        assert list(k_block_ranges(7, 100)) == [(0, 7)]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            list(k_block_ranges(0, 4))
        with pytest.raises(ValueError):
            list(k_block_ranges(4, 0))


class TestBlockedResidueProducts:
    def test_no_blocking_returns_int32(self, rng):
        engine = Int8MatrixEngine()
        a = rng.integers(-128, 128, (3, 5, 20)).astype(np.int8)
        b = rng.integers(-128, 128, (3, 20, 4)).astype(np.int8)
        out = blocked_residue_products(engine, a, b, max_block_k=64)
        assert out.dtype == np.int32
        for i in range(3):
            np.testing.assert_array_equal(
                out[i], a[i].astype(np.int64) @ b[i].astype(np.int64)
            )

    def test_blocked_equals_unblocked(self, rng):
        engine = Int8MatrixEngine()
        a = rng.integers(-128, 128, (2, 6, 150)).astype(np.int8)
        b = rng.integers(-128, 128, (2, 150, 7)).astype(np.int8)
        unblocked = blocked_residue_products(engine, a, b, max_block_k=1000)
        blocked = blocked_residue_products(engine, a, b, max_block_k=32)
        np.testing.assert_array_equal(unblocked.astype(np.int64), blocked)

    def test_blocked_output_is_int64(self, rng):
        engine = Int8MatrixEngine()
        a = rng.integers(-128, 128, (1, 2, 10)).astype(np.int8)
        b = rng.integers(-128, 128, (1, 10, 2)).astype(np.int8)
        out = blocked_residue_products(engine, a, b, max_block_k=4)
        assert out.dtype == np.int64

    def test_mismatched_stacks_rejected(self):
        engine = Int8MatrixEngine()
        with pytest.raises(ValueError):
            blocked_residue_products(
                engine,
                np.zeros((2, 3, 4), dtype=np.int8),
                np.zeros((3, 4, 2), dtype=np.int8),
                max_block_k=8,
            )
