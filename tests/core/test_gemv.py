"""Unit tests for the residue-GEMV fast path (:mod:`repro.core.gemv`)."""

from __future__ import annotations

import numpy as np
import pytest

import repro.core.gemm as gemm_mod
import repro.core.gemv as gemv_mod
from repro.config import Ozaki2Config
from repro.core.gemm import PHASE_KEYS, ozaki2_gemm
from repro.core.gemv import GemvResult, prepared_gemv
from repro.core.operand import prepare_a, prepare_b
from repro.engines.int8 import Int8MatrixEngine
from repro.errors import ConfigurationError, OverflowRiskError, ValidationError
from repro.workloads import phi_pair


def _problem(m=33, k=47, seed=0, precision="fp64"):
    a, b = phi_pair(m, k, 1, phi=0.5, precision=precision, seed=seed)
    return a, b[:, 0]


class TestBitIdentityWithGemmRoute:
    @pytest.mark.parametrize("mode", ["fast", "accurate"])
    @pytest.mark.parametrize("precision, moduli", [("fp64", 15), ("fp64", 4), ("fp32", 8)])
    def test_raw_matrix(self, mode, precision, moduli):
        config = Ozaki2Config(precision=precision, num_moduli=moduli, mode=mode)
        a, v = _problem(precision=precision, seed=moduli)
        ref = ozaki2_gemm(a, v[:, None], config=config)
        out = prepared_gemv(a, v, config=config)
        assert out.ndim == 1
        assert out.dtype == ref.dtype
        np.testing.assert_array_equal(out, ref.ravel())

    def test_prepared_operand(self):
        config = Ozaki2Config.for_dgemm(15)
        a, v = _problem(seed=3)
        prep = prepare_a(a, config=config)
        np.testing.assert_array_equal(
            prepared_gemv(prep, v),
            np.asarray(ozaki2_gemm(prep, v[:, None], config=config)).ravel(),
        )

    @pytest.mark.parametrize("fused", [True, False])
    def test_fused_and_loop_paths(self, fused):
        config = Ozaki2Config(fused_kernels=fused)
        a, v = _problem(seed=5)
        np.testing.assert_array_equal(
            prepared_gemv(a, v, config=config),
            ozaki2_gemm(a, v[:, None], config=config).ravel(),
        )

    def test_fast_fma_residue_kernel(self):
        config = Ozaki2Config(residue_kernel="fast_fma")
        a, v = _problem(seed=7)
        np.testing.assert_array_equal(
            prepared_gemv(a, v, config=config),
            ozaki2_gemm(a, v[:, None], config=config).ravel(),
        )

    def test_k_blocked_path(self, monkeypatch):
        monkeypatch.setattr(gemm_mod, "MAX_K_WITHOUT_BLOCKING", 16)
        monkeypatch.setattr(gemv_mod, "MAX_K_WITHOUT_BLOCKING", 16)
        a, v = _problem(m=9, k=50, seed=11)
        for fused in (True, False):
            config = Ozaki2Config(fused_kernels=fused)
            np.testing.assert_array_equal(
                prepared_gemv(a, v, config=config),
                ozaki2_gemm(a, v[:, None], config=config).ravel(),
            )

    def test_block_k_disabled_raises_like_the_plan(self, monkeypatch):
        monkeypatch.setattr(gemv_mod, "MAX_K_WITHOUT_BLOCKING", 16)
        a, v = _problem(m=5, k=50, seed=13)
        with pytest.raises(OverflowRiskError, match="k-blocking is disabled"):
            prepared_gemv(a, v, config=Ozaki2Config(block_k=False))


class TestOpLedger:
    @pytest.mark.parametrize("parallelism", [1, 4])
    def test_ledger_equals_gemm_route(self, parallelism):
        config = Ozaki2Config(parallelism=parallelism)
        a, v = _problem(seed=17)
        gemv_engine = Int8MatrixEngine()
        prepared_gemv(a, v, config=config, engine=gemv_engine)
        gemm_engine = Int8MatrixEngine()
        ozaki2_gemm(a, v[:, None], config=config, engine=gemm_engine)
        assert gemv_engine.counter.as_dict() == gemm_engine.counter.as_dict()


class TestGemvResult:
    def test_details_fields(self):
        config = Ozaki2Config.for_dgemm(15)
        a, v = _problem(seed=19)
        prep = prepare_a(a, config=config)
        result = prepared_gemv(prep, v, config=config, return_details=True)
        assert isinstance(result, GemvResult)
        assert result.method_name == "OS II-fast-15"
        assert result.c.shape == (a.shape[0],)
        assert result.nu.shape == (1,)
        np.testing.assert_array_equal(result.mu, prep.scale)
        assert set(result.phase_times.seconds) == set(PHASE_KEYS)
        # Prepared A skips its convert phase; the engine performed N GEMVs.
        assert result.phase_times.seconds["convert_A"] == 0.0
        assert result.int8_counter.matmul_calls == 15

    def test_default_config_comes_from_operand(self):
        a, v = _problem(seed=23)
        prep = prepare_a(a, config=Ozaki2Config.for_dgemm(4))
        result = prepared_gemv(prep, v, return_details=True)
        assert result.config is prep.config


class TestValidation:
    def test_rejects_2d_x(self):
        a, v = _problem()
        with pytest.raises(ValidationError, match="1-D vector"):
            prepared_gemv(a, v[:, None])

    def test_rejects_b_side_operand(self):
        config = Ozaki2Config()
        a, v = _problem(m=40, k=40)
        prep_b = prepare_b(a, config=config)
        with pytest.raises(ValidationError, match="prepared for the B side"):
            prepared_gemv(prep_b, v)

    def test_prepared_operand_rejects_accurate_mode(self):
        a, v = _problem()
        prep = prepare_a(a)
        with pytest.raises(ConfigurationError, match="accurate"):
            prepared_gemv(prep, v, config=Ozaki2Config(mode="accurate"))

    def test_inner_dim_mismatch_matches_gemm_message(self):
        a, v = _problem(m=6, k=8)
        bad = np.ones(5)
        with pytest.raises(ValidationError, match=r"inner dimensions do not match"):
            prepared_gemv(a, bad)

    def test_non_finite_vector_rejected_as_b_side(self):
        a, v = _problem()
        v = v.copy()
        v[3] = np.nan
        with pytest.raises(ValidationError, match="B contains non-finite"):
            prepared_gemv(a, v)
