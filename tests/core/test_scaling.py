"""Tests for the scale-vector determination (Section 4.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.conversion import truncate_scaled
from repro.core.scaling import (
    accurate_mode_scales,
    check_condition3,
    fast_mode_scales,
    scale_exponent_budget,
)
from repro.crt.constants import build_constant_table
from repro.errors import ValidationError
from repro.workloads import phi_pair


def _is_power_of_two(x: np.ndarray) -> bool:
    mantissa, _ = np.frexp(x)
    return bool(np.all(mantissa == 0.5))


class TestBudget:
    def test_budget_is_half_the_fast_constant(self):
        table = build_constant_table(15, 64)
        assert scale_exponent_budget(table, "fast") == pytest.approx(0.5 * table.P_fast)

    def test_budget_grows_with_moduli(self):
        small = build_constant_table(4, 64)
        large = build_constant_table(18, 64)
        assert scale_exponent_budget(large, "fast") > scale_exponent_budget(small, "fast")

    def test_unknown_mode_rejected(self):
        table = build_constant_table(4, 64)
        with pytest.raises(ValidationError):
            scale_exponent_budget(table, "turbo")


class TestFastMode:
    @pytest.mark.parametrize("phi", [0.5, 2.0, 4.0])
    @pytest.mark.parametrize("num_moduli", [6, 10, 15])
    def test_scales_are_powers_of_two_and_satisfy_condition3(self, phi, num_moduli):
        a, b = phi_pair(24, 60, 20, phi=phi, seed=int(phi * 10) + num_moduli)
        table = build_constant_table(num_moduli, 64)
        mu, nu = fast_mode_scales(a, b, table)
        assert mu.shape == (24,)
        assert nu.shape == (20,)
        assert _is_power_of_two(mu) and _is_power_of_two(nu)
        a_prime = truncate_scaled(a, mu, "left")
        b_prime = truncate_scaled(b, nu, "right")
        assert check_condition3(a_prime, b_prime, table)

    def test_zero_rows_get_unit_scale(self):
        a = np.zeros((4, 8))
        a[0] = 1.0
        b = np.ones((8, 3))
        table = build_constant_table(8, 64)
        mu, _ = fast_mode_scales(a, b, table)
        assert np.all(mu[1:] == 1.0)

    def test_huge_and_tiny_rows_both_bounded(self):
        table = build_constant_table(12, 64)
        a = np.vstack([np.full(32, 1e150), np.full(32, 1e-150), np.ones(32)])
        b = np.hstack([np.full((32, 1), 1e120), np.full((32, 1), 1e-130)])
        mu, nu = fast_mode_scales(a, b, table)
        a_prime = truncate_scaled(a, mu, "left")
        b_prime = truncate_scaled(b, nu, "right")
        assert check_condition3(a_prime, b_prime, table)

    def test_larger_n_gives_larger_scales(self):
        a, b = phi_pair(16, 48, 16, phi=0.5, seed=0)
        mu_small, _ = fast_mode_scales(a, b, build_constant_table(8, 64))
        mu_large, _ = fast_mode_scales(a, b, build_constant_table(16, 64))
        assert np.all(mu_large >= mu_small)
        assert np.any(mu_large > mu_small)


class TestAccurateMode:
    @pytest.mark.parametrize("phi", [0.5, 2.0, 4.0])
    def test_condition3_holds(self, phi):
        a, b = phi_pair(20, 50, 18, phi=phi, seed=int(phi * 7))
        table = build_constant_table(12, 64)
        mu, nu, c_bar = accurate_mode_scales(a, b, table)
        assert c_bar.shape == (20, 18)
        a_prime = truncate_scaled(a, mu, "left")
        b_prime = truncate_scaled(b, nu, "right")
        assert check_condition3(a_prime, b_prime, table)

    def test_cbar_bounds_magnitude_product(self):
        a, b = phi_pair(10, 30, 12, phi=1.0, seed=3)
        table = build_constant_table(10, 64)
        mu, nu, c_bar = accurate_mode_scales(a, b, table)
        # C-bar, after undoing mu'/nu', bounds |A| @ |B| elementwise.
        max_abs_a = np.max(np.abs(a), axis=1)
        max_abs_b = np.max(np.abs(b), axis=0)
        from repro.utils.fp import exponent_floor, pow2

        mu_prime = pow2((5 - exponent_floor(max_abs_a)).astype(np.int64))
        nu_prime = pow2((5 - exponent_floor(max_abs_b)).astype(np.int64))
        bound = (c_bar / mu_prime[:, None]) / nu_prime[None, :]
        direct = np.abs(a) @ np.abs(b)
        assert np.all(bound >= direct - 1e-9)

    def test_accurate_scales_at_least_as_large_for_spread_rows(self):
        """With a wide exponent spread the Cauchy-Schwarz bound is loose, so
        accurate mode should allow scales at least as large (median-wise)."""
        a, b = phi_pair(32, 64, 32, phi=4.0, seed=11)
        table = build_constant_table(14, 64)
        mu_fast, nu_fast = fast_mode_scales(a, b, table)
        mu_accu, nu_accu, _ = accurate_mode_scales(a, b, table)
        assert np.median(mu_accu / mu_fast) >= 1.0
        assert np.median(nu_accu / nu_fast) >= 1.0

    def test_condition3_checker_detects_violation(self):
        table = build_constant_table(2, 64)
        # Deliberately huge integer matrices violate 2*sum|a||b| < P.
        a_prime = np.full((4, 4), 2.0**40)
        b_prime = np.full((4, 4), 2.0**40)
        assert not check_condition3(a_prime, b_prime, table)
