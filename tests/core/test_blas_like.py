"""Tests for the BLAS-style gemm front end."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.blas_like import gemm
from repro.errors import ValidationError


class TestBasicSemantics:
    def test_plain_product(self, rng):
        a = rng.standard_normal((20, 30))
        b = rng.standard_normal((30, 10))
        c = gemm(a, b, method="OS II-fast-15")
        assert np.allclose(c, a @ b, rtol=1e-9)
        assert c.dtype == np.float64

    def test_alpha_scaling(self, rng):
        a = rng.standard_normal((8, 12))
        b = rng.standard_normal((12, 6))
        c = gemm(a, b, alpha=-2.5, method="DGEMM")
        np.testing.assert_allclose(c, -2.5 * (a @ b), rtol=1e-15)

    def test_beta_update(self, rng):
        a = rng.standard_normal((8, 12))
        b = rng.standard_normal((12, 6))
        c0 = rng.standard_normal((8, 6))
        c = gemm(a, b, alpha=2.0, beta=3.0, c=c0, method="DGEMM")
        np.testing.assert_allclose(c, 2.0 * (a @ b) + 3.0 * c0, rtol=1e-14)
        # the original C is untouched
        assert not np.shares_memory(c, c0)

    def test_transpose_codes(self, rng):
        a = rng.standard_normal((12, 8))
        b = rng.standard_normal((12, 6))
        c = gemm(a, b, trans_a="T", method="DGEMM")
        np.testing.assert_allclose(c, a.T @ b, rtol=1e-14)
        x = rng.standard_normal((5, 7))
        y = rng.standard_normal((9, 5))
        c2 = gemm(x, y, trans_a="T", trans_b="T", method="DGEMM")
        np.testing.assert_allclose(c2, x.T @ y.T, rtol=1e-14)

    def test_conjugate_transpose_on_real_equals_transpose(self, rng):
        a = rng.standard_normal((6, 9))
        b = rng.standard_normal((6, 5))
        np.testing.assert_allclose(
            gemm(a, b, trans_a="C", method="DGEMM"), a.T @ b, rtol=1e-14
        )


class TestPrecisionSelection:
    def test_fp32_inputs_default_to_fp32_target(self, rng):
        a = rng.standard_normal((10, 14)).astype(np.float32)
        b = rng.standard_normal((14, 8)).astype(np.float32)
        c = gemm(a, b, method="OS II-fast-8")
        assert c.dtype == np.float32

    def test_mixed_inputs_default_to_fp64_target(self, rng):
        a = rng.standard_normal((10, 14)).astype(np.float32)
        b = rng.standard_normal((14, 8))
        assert gemm(a, b, method="OS II-fast-15").dtype == np.float64

    def test_explicit_precision_override(self, rng):
        a = rng.standard_normal((6, 6))
        b = rng.standard_normal((6, 6))
        c = gemm(a, b, method="OS II-fast-8", precision="fp32")
        assert c.dtype == np.float32


class TestErrors:
    def test_shape_mismatch(self, rng):
        with pytest.raises(ValidationError):
            gemm(rng.standard_normal((4, 5)), rng.standard_normal((4, 5)))

    def test_transpose_fixes_shape_mismatch(self, rng):
        a = rng.standard_normal((4, 5))
        b = rng.standard_normal((4, 5))
        assert gemm(a, b, trans_a="T", method="DGEMM").shape == (5, 5)

    def test_bad_transpose_code(self, rng):
        with pytest.raises(ValidationError):
            gemm(np.ones((2, 2)), np.ones((2, 2)), trans_a="X")

    def test_beta_without_c(self):
        with pytest.raises(ValidationError):
            gemm(np.ones((2, 2)), np.ones((2, 2)), beta=1.0)

    def test_c_shape_mismatch(self):
        with pytest.raises(ValidationError):
            gemm(np.ones((2, 3)), np.ones((3, 2)), beta=1.0, c=np.ones((3, 3)))

    def test_complex_rejected(self):
        with pytest.raises(ValidationError):
            gemm(np.ones((2, 2), dtype=complex), np.ones((2, 2)))
