"""Tests for the public emulated-GEMM entry points (Algorithm 1 end to end)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accuracy import max_relative_error, reference_gemm
from repro.config import ComputeMode, Ozaki2Config
from repro.core.gemm import (
    PHASE_KEYS,
    Ozaki2Result,
    PhaseTimes,
    emulated_dgemm,
    emulated_sgemm,
    ozaki2_gemm,
)
from repro.engines.int8 import Int8MatrixEngine
from repro.errors import OverflowRiskError, ValidationError
from repro.workloads import phi_pair


class TestBasicCorrectness:
    def test_dgemm_matches_numpy_for_moderate_n(self, small_pair):
        a, b = small_pair
        c = emulated_dgemm(a, b, num_moduli=15)
        assert np.allclose(c, a @ b, rtol=1e-10, atol=1e-12)

    def test_sgemm_matches_numpy(self, small_pair_fp32):
        a, b = small_pair_fp32
        c = emulated_sgemm(a, b, num_moduli=8)
        exact = a.astype(np.float64) @ b.astype(np.float64)
        assert c.dtype == np.float32
        assert np.allclose(c, exact, rtol=5e-3, atol=1e-5)

    def test_non_square_shapes(self, rng):
        a = rng.standard_normal((7, 93))
        b = rng.standard_normal((93, 31))
        c = emulated_dgemm(a, b, num_moduli=14)
        assert c.shape == (7, 31)
        assert np.allclose(c, a @ b, rtol=1e-9)

    def test_single_row_and_column(self, rng):
        a = rng.standard_normal((1, 17))
        b = rng.standard_normal((17, 1))
        c = emulated_dgemm(a, b, num_moduli=12)
        assert c.shape == (1, 1)
        assert np.allclose(c, a @ b, rtol=1e-9)

    def test_zero_matrices(self):
        c = emulated_dgemm(np.zeros((4, 5)), np.zeros((5, 3)), num_moduli=8)
        np.testing.assert_array_equal(c, np.zeros((4, 3)))

    def test_identity_product(self):
        eye = np.eye(16)
        c = emulated_dgemm(eye, eye, num_moduli=10)
        np.testing.assert_allclose(c, eye, atol=1e-12)

    def test_negative_and_mixed_magnitudes(self, rng):
        # Entries spanning 16 decades: elements of C that are tiny relative
        # to the row/column scales see amplified relative error (as with any
        # scaled GEMM), so the tolerance is looser than the HPL-like cases.
        a = rng.standard_normal((12, 20)) * 10.0 ** rng.integers(-8, 8, (12, 20))
        b = rng.standard_normal((20, 9)) * 10.0 ** rng.integers(-8, 8, (20, 9))
        c = emulated_dgemm(a, b, num_moduli=16)
        ref = reference_gemm(a, b)
        assert max_relative_error(c, ref) < 1e-6


class TestAccuracyScaling:
    def test_error_decreases_with_more_moduli(self, rng):
        a, b = phi_pair(40, 80, 36, phi=1.0, seed=5)
        ref = reference_gemm(a, b)
        errors = [
            max_relative_error(emulated_dgemm(a, b, num_moduli=n), ref) for n in (6, 10, 14, 18)
        ]
        assert errors[0] > errors[1] > errors[2] >= errors[3]

    def test_dgemm_level_accuracy_with_15_moduli(self, rng):
        a, b = phi_pair(48, 96, 40, phi=0.5, seed=9)
        ref = reference_gemm(a, b)
        native = max_relative_error(a @ b, ref)
        emulated = max_relative_error(emulated_dgemm(a, b, num_moduli=15), ref)
        assert emulated <= 4.0 * native

    def test_sgemm_level_accuracy_with_8_moduli(self):
        a, b = phi_pair(48, 96, 40, phi=0.5, precision="fp32", seed=10)
        ref = reference_gemm(a, b)
        native = max_relative_error(
            np.matmul(a, b, dtype=np.float32).astype(np.float64), ref
        )
        emulated = max_relative_error(emulated_sgemm(a, b, num_moduli=8), ref)
        assert emulated <= 4.0 * native

    def test_accurate_mode_no_worse_than_fast_for_wide_spread(self):
        a, b = phi_pair(40, 64, 36, phi=4.0, seed=13)
        ref = reference_gemm(a, b)
        fast = max_relative_error(emulated_dgemm(a, b, num_moduli=12, mode="fast"), ref)
        accu = max_relative_error(emulated_dgemm(a, b, num_moduli=12, mode="accurate"), ref)
        assert accu <= fast * 1.5


class TestConfigurationPaths:
    def test_fast_fma_kernel_matches_exact_kernel(self, small_pair):
        a, b = small_pair
        exact = ozaki2_gemm(a, b, config=Ozaki2Config.for_dgemm(15, residue_kernel="exact"))
        fast = ozaki2_gemm(a, b, config=Ozaki2Config.for_dgemm(15, residue_kernel="fast_fma"))
        np.testing.assert_allclose(fast, exact, rtol=1e-14, atol=1e-300)

    def test_return_details(self, small_pair):
        a, b = small_pair
        result = ozaki2_gemm(a, b, return_details=True)
        assert isinstance(result, Ozaki2Result)
        assert result.c.shape == (a.shape[0], b.shape[1])
        assert result.mu.shape == (a.shape[0],)
        assert result.nu.shape == (b.shape[1],)
        assert result.num_k_blocks == 1
        assert result.int8_counter.matmul_calls == result.config.num_moduli
        assert set(result.phase_times.seconds) == set(PHASE_KEYS)
        assert result.method_name.startswith("OS II-")

    def test_accurate_mode_counts_extra_gemm(self, small_pair):
        a, b = small_pair
        result = ozaki2_gemm(
            a, b, config=Ozaki2Config.for_dgemm(10, mode="accurate"), return_details=True
        )
        assert result.int8_counter.matmul_calls == 11  # N residue GEMMs + 1 for C-bar

    def test_custom_engine_is_used(self, small_pair):
        a, b = small_pair
        engine = Int8MatrixEngine(use_blas=False)
        ozaki2_gemm(a, b, config=Ozaki2Config.for_dgemm(6), engine=engine)
        assert engine.counter.matmul_calls == 6

    def test_validation_rejects_bad_shapes(self):
        with pytest.raises(ValidationError):
            emulated_dgemm(np.ones((3, 4)), np.ones((5, 6)))

    def test_validation_rejects_nan(self):
        a = np.ones((3, 3))
        a[0, 0] = np.nan
        with pytest.raises(ValidationError):
            emulated_dgemm(a, np.ones((3, 3)))

    def test_block_k_disabled_raises_for_huge_k(self):
        config = Ozaki2Config.for_dgemm(8, block_k=False)
        a = np.zeros((1, 2**17 + 4))
        b = np.zeros((2**17 + 4, 1))
        with pytest.raises(OverflowRiskError):
            ozaki2_gemm(a, b, config=config)

    def test_mode_strings_accepted(self, small_pair):
        a, b = small_pair
        c1 = emulated_dgemm(a, b, num_moduli=10, mode="accu")
        c2 = emulated_dgemm(a, b, num_moduli=10, mode=ComputeMode.ACCURATE)
        np.testing.assert_array_equal(c1, c2)


class TestPhaseTimes:
    def test_add_and_total(self):
        times = PhaseTimes()
        times.add("matmul", 0.5)
        times.add("matmul", 0.25)
        times.add("scale", 0.25)
        assert times.total == pytest.approx(1.0)
        fractions = times.fractions()
        assert fractions["matmul"] == pytest.approx(0.75)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_empty_fractions(self):
        assert all(v == 0.0 for v in PhaseTimes().fractions().values())


class TestNumKBlocksRegression:
    """``num_k_blocks`` must reflect the block ranges actually executed.

    Regression for a bug where it was derived from the global
    ``MAX_K_WITHOUT_BLOCKING`` constant regardless of whether blocking was
    enabled or what ranges the runtime really used.
    """

    def test_blocking_disabled_reports_single_block(self, small_pair):
        a, b = small_pair
        engine = Int8MatrixEngine()
        config = Ozaki2Config.for_dgemm(8, block_k=False)
        result = ozaki2_gemm(a, b, config=config, engine=engine, return_details=True)
        assert result.num_k_blocks == 1
        # One engine call per modulus and nothing else: the reported block
        # count must agree with the calls the engine actually served.
        assert engine.counter.matmul_calls == config.num_moduli * result.num_k_blocks

    def test_block_count_matches_engine_calls_when_blocking(self, monkeypatch):
        import repro.core.gemm as gemm_mod

        a, b = phi_pair(12, 300, 10, phi=0.5, seed=11)
        monkeypatch.setattr(gemm_mod, "MAX_K_WITHOUT_BLOCKING", 128)
        engine = Int8MatrixEngine()
        config = Ozaki2Config.for_dgemm(9)
        result = ozaki2_gemm(a, b, config=config, engine=engine, return_details=True)
        assert result.num_k_blocks == 3  # ceil(300 / 128)
        assert engine.counter.matmul_calls == config.num_moduli * result.num_k_blocks

    def test_blocking_disabled_with_shrunk_threshold(self, monkeypatch):
        """Even when k exceeds a (shrunk) threshold, disabling blocking must
        never report phantom blocks — it raises instead."""
        import repro.core.gemm as gemm_mod

        monkeypatch.setattr(gemm_mod, "MAX_K_WITHOUT_BLOCKING", 64)
        a, b = phi_pair(8, 100, 8, phi=0.5, seed=7)
        config = Ozaki2Config.for_dgemm(8, block_k=False)
        with pytest.raises(OverflowRiskError):
            ozaki2_gemm(a, b, config=config)

    def test_blocked_result_matches_unblocked_bitwise(self, monkeypatch):
        import repro.core.gemm as gemm_mod

        a, b = phi_pair(16, 257, 12, phi=0.5, seed=5)
        expected = ozaki2_gemm(a, b, config=Ozaki2Config.for_dgemm(10))
        monkeypatch.setattr(gemm_mod, "MAX_K_WITHOUT_BLOCKING", 64)
        blocked = ozaki2_gemm(a, b, config=Ozaki2Config.for_dgemm(10))
        np.testing.assert_array_equal(blocked, expected)
