"""Tests for the number-format descriptors in repro.types."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.types import (
    BF16,
    FP16,
    FP32,
    FP64,
    FORMATS,
    INT8,
    INT32,
    TF32,
    Format,
    get_format,
    result_dtype,
    unit_roundoff,
    working_dtype,
)


class TestFormatProperties:
    def test_fp64_basic(self):
        assert FP64.significand_bits == 53
        assert FP64.exponent_bits == 11
        assert FP64.machine_epsilon == 2.0**-53
        assert FP64.bytes_per_element == 8.0
        assert FP64.is_float and not FP64.is_int

    def test_fp32_basic(self):
        assert FP32.significand_bits == 24
        assert FP32.machine_epsilon == 2.0**-24
        assert FP32.np_dtype == np.dtype(np.float32)

    def test_tf32_and_bf16_are_stored_as_float32(self):
        assert TF32.np_dtype == np.dtype(np.float32)
        assert BF16.np_dtype == np.dtype(np.float32)
        assert TF32.significand_bits == 11
        assert BF16.significand_bits == 8
        # TF32 occupies 32 bits in memory even though only 19 are significant.
        assert TF32.storage_bits == 32
        assert BF16.storage_bits == 16

    def test_fp16_range(self):
        assert FP16.max_exponent == 15
        assert FP16.min_normal_exponent == -14

    def test_int8_range(self):
        assert INT8.int_min == -128
        assert INT8.int_max == 127
        assert INT8.accumulate_dtype == np.dtype(np.int32)
        assert INT8.is_int and not INT8.is_float

    def test_int32_range(self):
        assert INT32.int_min == -(2**31)
        assert INT32.int_max == 2**31 - 1

    def test_float_only_properties_raise_on_int(self):
        with pytest.raises(ConfigurationError):
            _ = INT8.machine_epsilon
        with pytest.raises(ConfigurationError):
            _ = INT8.max_exponent

    def test_int_only_properties_raise_on_float(self):
        with pytest.raises(ConfigurationError):
            _ = FP64.int_min
        with pytest.raises(ConfigurationError):
            _ = FP32.int_max

    def test_invalid_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            Format(
                name="weird",
                kind="fixed",
                significand_bits=8,
                exponent_bits=0,
                storage_bits=8,
                np_dtype=np.dtype(np.int8),
                accumulate_dtype=np.dtype(np.int32),
            )


class TestGetFormat:
    @pytest.mark.parametrize(
        "alias, expected",
        [
            ("fp64", FP64),
            ("double", FP64),
            ("float64", FP64),
            ("F64", FP64),
            ("fp32", FP32),
            ("single", FP32),
            ("half", FP16),
            ("bfloat16", BF16),
            ("tensorfloat32", TF32),
            ("i8", INT8),
        ],
    )
    def test_aliases(self, alias, expected):
        assert get_format(alias) is expected

    def test_format_instance_passthrough(self):
        assert get_format(FP64) is FP64

    def test_unknown_format(self):
        with pytest.raises(ConfigurationError):
            get_format("fp8")

    def test_formats_mapping_complete(self):
        assert set(FORMATS) == {"fp64", "fp32", "tf32", "bf16", "fp16", "int8", "int32"}

    def test_unit_roundoff(self):
        assert unit_roundoff("fp32") == 2.0**-24
        assert unit_roundoff(FP64) == 2.0**-53


class TestTargetDtypes:
    def test_working_dtype_always_float64(self):
        assert working_dtype("fp64") == np.dtype(np.float64)
        assert working_dtype("fp32") == np.dtype(np.float64)

    def test_working_dtype_rejects_non_targets(self):
        with pytest.raises(ConfigurationError):
            working_dtype("fp16")

    def test_result_dtype(self):
        assert result_dtype("fp64") == np.dtype(np.float64)
        assert result_dtype("fp32") == np.dtype(np.float32)
        with pytest.raises(ConfigurationError):
            result_dtype("bf16")
