"""The public-surface contract: every module declares ``__all__``, no leaks.

The Session redesign made the package's import surface explicit: each
public module exports exactly the names in its ``__all__``; anything
underscored is internal.  These tests walk the whole package so a module
added without an ``__all__`` — or an ``__all__`` naming a private or
missing attribute — fails tier 1 immediately.
"""

from __future__ import annotations

import importlib
import pkgutil

import pytest

import repro

#: ``__version__`` is historical public metadata; no other dunder or
#: underscored name may appear in any ``__all__``.
_ALLOWED_DUNDERS = {"__version__"}


def _iter_modules():
    yield "repro", repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield info.name, importlib.import_module(info.name)


_MODULES = dict(_iter_modules())


@pytest.mark.parametrize("name", sorted(_MODULES))
def test_module_declares_all(name):
    module = _MODULES[name]
    assert getattr(module, "__all__", None) is not None, (
        f"{name} does not declare __all__"
    )
    assert isinstance(module.__all__, (list, tuple))


@pytest.mark.parametrize("name", sorted(_MODULES))
def test_all_names_resolve_and_are_public(name):
    module = _MODULES[name]
    for export in module.__all__:
        assert hasattr(module, export), f"{name}.__all__ names missing {export!r}"
        if export in _ALLOWED_DUNDERS:
            continue
        assert not export.startswith("_"), (
            f"{name}.__all__ leaks private name {export!r}"
        )


def test_star_import_leaks_nothing_private():
    namespace: dict = {}
    exec("from repro import *", namespace)  # star-import surface is the point
    leaked = [
        key
        for key in namespace
        if key.startswith("_")
        and key not in _ALLOWED_DUNDERS
        and key != "__builtins__"
    ]
    assert not leaked, f"star import leaked private names: {leaked}"
    # And it really is the declared surface, nothing more.
    assert set(namespace) - {"__builtins__"} == set(repro.__all__)


def test_service_lazy_names_resolve():
    # repro.service loads the socket layer lazily (PEP 562); every name in
    # its __all__ must still resolve exactly as if the import were eager.
    service = importlib.import_module("repro.service")
    for export in service.__all__:
        assert getattr(service, export) is not None
    assert set(service.__all__) <= set(dir(service))


def test_deprecated_shims_are_marked_and_forward():
    for name in ("ozaki2_gemm", "prepared_gemv", "ozaki2_gemm_batched",
                 "prepare_a", "prepare_b"):
        shim = getattr(repro, name)
        assert getattr(shim, "__deprecated_alias__", None) == name
        assert name in repro.__all__
