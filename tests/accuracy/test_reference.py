"""Tests for the high-precision reference GEMM."""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro.accuracy.reference import exact_int_gemm, reference_gemm
from repro.errors import ConfigurationError
from repro.workloads import phi_pair


class TestSplitReference:
    def test_exact_on_integer_matrices(self, rng):
        a = np.trunc(rng.standard_normal((12, 20)) * 1000)
        b = np.trunc(rng.standard_normal((20, 8)) * 1000)
        ref = reference_gemm(a, b)
        exact = exact_int_gemm(a, b)
        for r in range(12):
            for c in range(8):
                assert ref[r, c] == float(int(exact[r, c]))

    def test_agrees_with_doubledouble_reference(self, rng):
        a, b = phi_pair(24, 48, 20, phi=1.5, seed=41)
        fast = reference_gemm(a, b, algorithm="split")
        slow = reference_gemm(a, b, algorithm="doubledouble")
        np.testing.assert_allclose(fast, slow, rtol=1e-15, atol=0)

    def test_more_accurate_than_native_dgemm_on_cancellation(self):
        # Sum with massive cancellation: [x, -x, 1] . [1, 1, 1] == 1.
        x = 1e17
        a = np.array([[x, -x, 1.0]])
        b = np.ones((3, 1))
        assert reference_gemm(a, b)[0, 0] == 1.0
        # Dot products evaluated left-to-right in float64 would lose the 1.

    def test_exact_fraction_check_small(self, rng):
        a = rng.standard_normal((3, 5))
        b = rng.standard_normal((5, 2))
        ref = reference_gemm(a, b)
        for r in range(3):
            for c in range(2):
                exact = sum(
                    Fraction(float(a[r, h])) * Fraction(float(b[h, c])) for h in range(5)
                )
                got = Fraction(float(ref[r, c]))
                if exact != 0:
                    assert abs(got - exact) <= abs(exact) * Fraction(1, 2**52)

    def test_wide_dynamic_range(self, rng):
        a = rng.standard_normal((8, 16)) * 10.0 ** rng.integers(-100, 100, (8, 16))
        b = rng.standard_normal((16, 8)) * 10.0 ** rng.integers(-100, 100, (16, 8))
        ref = reference_gemm(a, b)
        assert np.all(np.isfinite(ref))

    def test_invalid_algorithm(self):
        with pytest.raises(ConfigurationError):
            reference_gemm(np.ones((2, 2)), np.ones((2, 2)), algorithm="magic")

    def test_invalid_chunk_count(self):
        with pytest.raises(ConfigurationError):
            reference_gemm(np.ones((2, 2)), np.ones((2, 2)), num_chunks=1)


class TestExactIntGemm:
    def test_matches_python_ints(self):
        a = np.array([[2**40, -3], [7, 11]], dtype=np.float64)
        b = np.array([[1, 2**41], [5, -1]], dtype=np.float64)
        out = exact_int_gemm(a, b)
        assert out[0, 0] == 2**40 - 15
        assert out[0, 1] == 2**81 + 3
        assert out.dtype == object
