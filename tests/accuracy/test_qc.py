"""Unit tests of the calibration QC harness (sweep, fit, controls).

The QC harness is itself load-bearing: the shipped calibration table was
fit by :func:`repro.accuracy.qc.fit_margin_bits` over
:func:`~repro.accuracy.qc.sensitivity_sweep` rows, and the negative
controls are the only thing standing between a broken error metric and a
green benchmark.  These tests pin the harness mechanics on problem sizes
small enough for the tier-1 suite.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.accuracy import qc
from repro.config import Ozaki2Config
from repro.core.gemm import ozaki2_gemm
from repro.crt.calibration import K_BANDS


class TestMeasuredRelativeError:
    def test_exact_product_measures_zero(self):
        # Small integer operands: the emulation is exact, the metric is 0.
        a = np.arange(6.0).reshape(2, 3)
        b = np.arange(6.0).reshape(3, 2)
        c = ozaki2_gemm(a, b, config=Ozaki2Config(num_moduli=15))
        assert qc.measured_relative_error(a, b, c) == 0.0

    def test_zero_operand_measures_zero(self):
        a = np.zeros((2, 3))
        b = np.ones((3, 2))
        assert qc.measured_relative_error(a, b, np.zeros((2, 2))) == 0.0

    def test_normalisation_matches_bound_scale(self):
        # Injecting a known absolute error yields err / (k*max|A|*max|B|).
        a = np.full((2, 4), 2.0)
        b = np.full((4, 2), 0.5)
        exact = a @ b
        wrong = exact.copy()
        wrong[0, 0] += 1.0
        expected = 1.0 / (4.0 * 2.0 * 0.5)
        assert qc.measured_relative_error(a, b, wrong) == pytest.approx(expected)


class TestMeasureCase:
    def test_row_fields_and_bound_split(self):
        row = qc.measure_case("gaussian", k=32, num_moduli=6, m=16, n=16)
        assert row["family"] == "gaussian"
        assert row["k"] == 32 and row["num_moduli"] == 6
        assert row["rigorous_rel_bound"] == pytest.approx(
            row["trunc_rel_bound"] + row["floor_rel_bound"]
        )
        assert row["within_bound"]
        measured = row["measured_rel_error"]
        assert measured > 0.0
        assert row["observed_margin_bits"] == pytest.approx(
            math.log2(row["trunc_rel_bound"] / measured)
        )

    def test_unknown_family_rejected(self):
        with pytest.raises(KeyError, match="unknown QC family"):
            qc.measure_case("lognormal", k=16, num_moduli=4)

    def test_deep_count_is_floor_dominated(self):
        # At N=16 the truncation term sits far below the floor: the cell is
        # unusable for margin fitting and must be flagged as such.
        row = qc.measure_case("gaussian", k=16, num_moduli=16, m=8, n=8)
        assert not row["trunc_dominated"]
        shallow = qc.measure_case("gaussian", k=16, num_moduli=4, m=8, n=8)
        assert shallow["trunc_dominated"]


class TestSensitivitySweep:
    def test_sweep_covers_the_grid(self):
        rows = qc.sensitivity_sweep(
            families=["gaussian"],
            ks=(16,),
            precisions=(64,),
            modes=("fast",),
            seeds=(0, 1),
            counts=(4, 6),
            m=8,
            n=8,
        )
        assert len(rows) == 4  # 2 seeds x 2 counts
        assert {row["seed"] for row in rows} == {0, 1}
        assert {row["num_moduli"] for row in rows} == {4, 6}
        assert all(row["within_bound"] for row in rows)

    def test_default_counts_track_the_selection(self):
        rows = qc.sensitivity_sweep(
            families=["gaussian"],
            ks=(64,),
            precisions=(64,),
            modes=("fast",),
            seeds=(0,),
            count_span=1,
            m=8,
            n=8,
        )
        from repro.crt.adaptive import DEFAULT_TARGET_ACCURACY, select_num_moduli

        selected = select_num_moduli(
            64, 1.0, 1.0, 64, target=DEFAULT_TARGET_ACCURACY[64]
        ).num_moduli
        counts = sorted({row["num_moduli"] for row in rows})
        assert counts == [selected - 1, selected, selected + 1]


class TestFitMarginBits:
    def test_reduces_to_band_minima(self):
        def row(k, margin, dominated=True):
            return {
                "precision_bits": 64,
                "mode": "fast",
                "k": k,
                "observed_margin_bits": margin,
                "trunc_dominated": dominated,
            }

        fitted = qc.fit_margin_bits(
            [
                row(8, 5.0),
                row(16, 3.5),           # same band, smaller: the minimum
                row(16, 2.0, False),    # floor-dominated: ignored
                row(64, 6.0),           # next band
                row(10**6, 1.0),        # beyond the bands: ignored
            ]
        )
        bands = fitted[(64, "fast")]
        assert bands[0] == (K_BANDS[0][0], K_BANDS[0][1], 3.5)
        assert bands[1] == (K_BANDS[1][0], K_BANDS[1][1], 6.0)
        assert len(bands) == 2

    def test_empty_sweep_fits_nothing(self):
        assert qc.fit_margin_bits([]) == {}


class TestNegativeControls:
    def test_controls_fail_loudly_when_broken(self):
        # k=64 keeps the tier-1 cost low; the benchmark runs the real size.
        rows = qc.negative_controls(k=64, m=16, n=16)
        assert len(rows) == 8  # 2 precisions x 2 modes x 2 control families
        assert all(row["control_ok"] for row in rows)
        for row in rows:
            assert row["num_moduli"] == 2
            assert row["measured_rel_error"] > row["loosened_target"]

    def test_phi_families_are_excluded_by_default(self):
        rows = qc.negative_controls(k=64, m=16, n=16)
        assert {row["family"] for row in rows} == set(qc._CONTROL_FAMILIES)
        assert not any(row["family"].startswith("phi") for row in rows)

    def test_working_config_would_not_pass_as_control(self):
        # Sanity of the control design: a *working* configuration measures
        # far below the loosened target, so control_ok correctly demands
        # the broken one to exceed it.
        case = qc.measure_case("gaussian", k=64, num_moduli=15, m=16, n=16)
        from repro.crt.adaptive import DEFAULT_TARGET_ACCURACY

        loosened = DEFAULT_TARGET_ACCURACY[64] * qc._CONTROL_LOOSENING[64]
        assert case["measured_rel_error"] < loosened
