"""Tests for the error metrics."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.accuracy.metrics import (
    ErrorSummary,
    max_relative_error,
    relative_errors,
    summarize_errors,
)


class TestRelativeErrors:
    def test_basic(self):
        computed = np.array([[1.1, 2.0]])
        reference = np.array([[1.0, 2.0]])
        errs = relative_errors(computed, reference)
        np.testing.assert_allclose(errs, np.array([[0.1, 0.0]]), rtol=1e-12)

    def test_zero_reference_uses_largest_magnitude(self):
        computed = np.array([[0.5, 10.0]])
        reference = np.array([[0.0, 10.0]])
        errs = relative_errors(computed, reference)
        # denominator for the zero element is max|reference| = 10.
        assert errs[0, 0] == pytest.approx(0.05)

    def test_all_zero_reference(self):
        errs = relative_errors(np.ones((2, 2)), np.zeros((2, 2)))
        np.testing.assert_array_equal(errs, np.ones((2, 2)))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            relative_errors(np.ones((2, 2)), np.ones((3, 2)))

    def test_max_relative_error(self):
        computed = np.array([[1.0, 2.2], [3.0, 4.0]])
        reference = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert max_relative_error(computed, reference) == pytest.approx(0.1)


class TestSummary:
    def test_summary_fields(self, rng):
        reference = rng.standard_normal((10, 10))
        computed = reference * (1 + 1e-8 * rng.standard_normal((10, 10)))
        summary = summarize_errors(computed, reference)
        assert isinstance(summary, ErrorSummary)
        assert 0 < summary.median <= summary.max
        assert 0 < summary.mean <= summary.max
        assert summary.frobenius_relative == pytest.approx(
            np.linalg.norm(computed - reference) / np.linalg.norm(reference)
        )
        assert set(summary.as_dict()) == {"max", "median", "mean", "frobenius_relative"}

    def test_max_log10(self):
        summary = ErrorSummary(max=1e-8, median=1e-9, mean=1e-9, frobenius_relative=1e-9)
        assert summary.max_log10 == pytest.approx(-8.0)
        zero = ErrorSummary(max=0.0, median=0.0, mean=0.0, frobenius_relative=0.0)
        assert zero.max_log10 == -math.inf

    def test_exact_match_gives_zero(self):
        x = np.arange(12, dtype=np.float64).reshape(3, 4) + 1
        summary = summarize_errors(x, x)
        assert summary.max == 0.0 and summary.frobenius_relative == 0.0
