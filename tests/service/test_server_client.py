"""End-to-end service tests: negotiation, coalescing, errors, observability.

Each test boots a real :class:`repro.service.ReproServer` on a free
loopback port and talks to it with :class:`repro.service.ServiceClient` —
the exact production path including HTTP framing, the operand cache and
the request coalescer.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.apps.solvers import cg_solve
from repro.config import Ozaki2Config
from repro.core.gemm import ozaki2_gemm
from repro.core.gemv import prepared_gemv
from repro.core.operand import matrix_fingerprint, prepare_a
from repro.service import ReproServer, ServiceClient, ServiceError
from repro.service.protocol import ERROR_BAD_REQUEST


CFG = Ozaki2Config.for_dgemm(num_moduli=10)


@pytest.fixture
def server():
    with ReproServer(config=CFG, port=0).start() as srv:
        yield srv


@pytest.fixture
def client(server):
    with ServiceClient(port=server.port) as cli:
        yield cli


def _spd(rng, n):
    q = np.linalg.qr(rng.standard_normal((n, n)))[0]
    return q @ np.diag(np.linspace(1.0, 8.0, n)) @ q.T


class TestRoundTrips:
    def test_gemm_cold_then_warm_is_bit_identical(self, server, client, rng):
        a = rng.standard_normal((28, 20))
        b = rng.standard_normal((20, 24))
        reference = ozaki2_gemm(a, b, config=CFG)

        cold = client.gemm(a, b)
        stats = server.stats()
        assert stats["cache"]["misses"] == 2 and stats["cache"]["hits"] == 0

        warm = client.gemm(a, b)
        stats = server.stats()
        assert stats["cache"]["hits"] == 2 and stats["cache"]["misses"] == 2

        assert np.array_equal(cold.value, reference)
        assert np.array_equal(warm.value, reference)
        assert cold.c is cold.value
        assert warm.method_name == CFG.method_name

    def test_gemv_round_trip(self, server, client, rng):
        a = rng.standard_normal((32, 26))
        x = rng.standard_normal(26)
        result = client.gemv(a, x)
        assert np.array_equal(result.value, prepared_gemv(a, x, config=CFG))
        # Second call goes fingerprint-only and still matches.
        again = client.gemv(a, x)
        assert np.array_equal(again.value, result.value)
        assert server.stats()["cache"]["hits"] == 1

    def test_solve_round_trip_warm_skips_preparation(self, server, client, rng):
        a = _spd(rng, 20)
        b = rng.standard_normal(20)
        reference = cg_solve(a, b, config=CFG, tol=1e-10)

        cold = client.solve(a, b, method="cg", tol=1e-10)
        warm = client.solve(a, b, method="cg", tol=1e-10)
        assert np.array_equal(cold.value, reference.value)
        assert np.array_equal(warm.value, reference.value)
        assert cold.x is cold.value
        assert bool(warm.meta["converged"])
        # The warm request referenced the cached conversion: zero prep.
        assert warm.meta["prepare_seconds"] == 0.0

    def test_prepare_warms_the_cache_for_gemm(self, server, client, rng):
        a = rng.standard_normal((24, 24))
        ack = client.prepare(a, side="A")
        assert ack["fingerprint"] == matrix_fingerprint(
            np.ascontiguousarray(a, dtype=np.float64)
        )
        assert ack["num_moduli"] == CFG.num_moduli
        assert ack["nbytes"] == prepare_a(a, config=CFG).nbytes
        # The follow-up gemm finds A resident (only B misses).
        client.gemm(a, rng.standard_normal((24, 16)))
        stats = server.stats()
        assert stats["cache"]["hits"] == 1

    def test_config_override_changes_moduli(self, server, client, rng):
        a = rng.standard_normal((16, 12))
        b = rng.standard_normal((12, 8))
        result = client.gemm(a, b, config={"num_moduli": 13})
        assert result.meta["num_moduli"] == 13
        assert "13" in result.method_name
        reference = ozaki2_gemm(a, b, config=CFG.replace(num_moduli=13))
        assert np.array_equal(result.value, reference)

    def test_health_and_stats_documents(self, server, client, rng):
        health = client.health()
        assert health["ok"] is True
        assert health["protocol"] == 1
        client.gemm(rng.standard_normal((8, 8)), rng.standard_normal((8, 8)))
        stats = client.stats()
        assert stats["endpoint_requests"]["gemm"] == 1
        assert stats["method"] == CFG.method_name
        assert set(stats["cache"]) >= {"hits", "misses", "evictions", "entries"}
        assert set(stats["coalescer"]) >= {"batches", "requests"}
        assert stats["ledger"]["matmul_calls"] >= 1


class TestNegotiation:
    def test_eviction_triggers_transparent_inline_retry(self, rng):
        entry = prepare_a(
            np.random.default_rng(0).standard_normal((24, 24)), config=CFG
        ).nbytes
        # Room for a single matrix: each new operand evicts the previous.
        with ReproServer(config=CFG, cache_bytes=int(1.5 * entry)).start() as srv:
            with ServiceClient(port=srv.port) as cli:
                a1 = rng.standard_normal((24, 24))
                a2 = rng.standard_normal((24, 24))
                x = rng.standard_normal(24)
                cli.gemv(a1, x)  # learn a1
                cli.gemv(a2, x)  # evicts a1, learns a2
                assert srv.stats()["cache"]["evictions"] >= 1
                # The client still believes a1 is resident; the server
                # answers operand-missing and the client retries inline.
                result = cli.gemv(a1, x)
                assert np.array_equal(result.value, prepared_gemv(a1, x, config=CFG))

    def test_fingerprints_disabled_always_uploads(self, server, rng):
        with ServiceClient(port=server.port, use_fingerprints=False) as cli:
            a = rng.standard_normal((16, 16))
            b = rng.standard_normal((16, 16))
            cli.gemm(a, b)
            cli.gemm(a, b)
        # Both calls hit the transparent server-side cache by content, so
        # the second upload still reuses the conversions.
        stats = server.stats()
        assert stats["cache"]["hits"] == 2
        assert stats["cache"]["misses"] == 2


class TestErrors:
    def test_unknown_endpoint(self, server, client, rng):
        with pytest.raises(ServiceError) as excinfo:
            client._call("/v1/nope", {"op": "nope"}, {})
        assert excinfo.value.code == ERROR_BAD_REQUEST

    def test_unknown_solve_method(self, server, client, rng):
        with pytest.raises(ServiceError) as excinfo:
            client.solve(_spd(rng, 8), np.ones(8), method="gauss")
        assert excinfo.value.code == ERROR_BAD_REQUEST

    def test_unknown_config_override(self, server, client, rng):
        with pytest.raises(ServiceError) as excinfo:
            client.gemm(
                np.eye(8), np.eye(8), config={"blocking": 4}
            )
        assert excinfo.value.code == ERROR_BAD_REQUEST

    def test_shape_mismatch_is_an_error_not_a_hang(self, server, client, rng):
        with pytest.raises(ServiceError):
            client.gemm(rng.standard_normal((8, 4)), rng.standard_normal((8, 4)))

    def test_missing_operand_in_frame(self, server, client):
        with pytest.raises(ServiceError) as excinfo:
            client._call("/v1/gemm", {"op": "gemm"}, {})
        assert excinfo.value.code == ERROR_BAD_REQUEST


class TestCoalescing:
    def test_concurrent_gemms_are_batched_and_bit_identical(self, rng):
        a = rng.standard_normal((24, 20))
        bs = [rng.standard_normal((20, 16)) for _ in range(8)]
        references = [ozaki2_gemm(a, b, config=CFG) for b in bs]
        with ReproServer(config=CFG, coalesce_window_seconds=0.02).start() as srv:
            with ServiceClient(port=srv.port) as warmup:
                warmup.prepare(a, side="A")
            results = [None] * len(bs)
            errors = []

            def worker(i: int) -> None:
                try:
                    with ServiceClient(port=srv.port) as cli:
                        results[i] = cli.gemm(a, bs[i]).value
                except Exception as exc:  # pragma: no cover - surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(len(bs))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            stats = srv.stats()["coalescer"]
        for got, want in zip(results, references, strict=True):
            assert np.array_equal(got, want)
        # The burst arrived concurrently: fewer batches than requests.
        assert stats["requests"] == len(bs)
        assert stats["batches"] <= stats["requests"]
        assert stats["largest_batch"] >= 1
