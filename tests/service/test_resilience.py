"""Targeted resilience regressions: shutdown, backoff, eviction retries.

These pin the failure-handling contracts directly, without fault
injection: the coalescer's collection window can never block forever, a
hung shutdown raises instead of pretending to succeed, the client's
backoff schedule is seeded and capped, and the operand-eviction retry
gives up typed after one inline resend.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.config import Ozaki2Config
from repro.core.gemm import ozaki2_gemm
from repro.core.operand import matrix_fingerprint
from repro.service import ReproServer, ServiceClient, ServiceError
from repro.service.coalescer import RequestCoalescer
from repro.service.protocol import (
    ERROR_DEADLINE,
    ERROR_OPERAND_MISSING,
    decode_frame,
    error_frame,
)
from repro.session import Session

CFG = Ozaki2Config.for_dgemm(num_moduli=10)


class TestCoalescerWindow:
    def test_lone_request_with_zero_window_completes_promptly(self, rng):
        """Regression: an expired window must poll non-blocking, never
        ``get(timeout=None)`` — a lone request used to hang forever."""
        a = rng.standard_normal((16, 12))
        b = rng.standard_normal((12, 8))
        with Session(config=CFG) as session:
            coalescer = RequestCoalescer(session, window_seconds=0.0)
            try:
                future = coalescer.submit(a, b, CFG)
                result = future.result(timeout=10.0)
            finally:
                coalescer.close()
        assert np.array_equal(result.value, ozaki2_gemm(a, b, config=CFG))

    def test_expired_window_still_drains_queued_burst(self, rng):
        """window=0 still coalesces whatever is already queued."""
        a = rng.standard_normal((16, 12))
        bs = [rng.standard_normal((12, 8)) for _ in range(4)]
        with Session(config=CFG) as session:
            coalescer = RequestCoalescer(session, window_seconds=0.0)
            try:
                futures = [coalescer.submit(a, b, CFG) for b in bs]
                results = [f.result(timeout=10.0) for f in futures]
            finally:
                coalescer.close()
        for got, b in zip(results, bs, strict=True):
            assert np.array_equal(got.value, ozaki2_gemm(a, b, config=CFG))


class TestHungShutdown:
    def test_hung_drain_worker_raises_instead_of_vanishing(self, rng, monkeypatch):
        a = rng.standard_normal((12, 10))
        b = rng.standard_normal((10, 8))
        release = threading.Event()
        with Session(config=CFG) as session:
            coalescer = RequestCoalescer(session, window_seconds=0.0)

            def wedged_batch(*args: object, **kwargs: object) -> object:
                release.wait()
                raise RuntimeError("released: fall back to per-item")

            monkeypatch.setattr(session, "gemm_batched", wedged_batch)
            future = coalescer.submit(a, b, CFG)
            with pytest.raises(RuntimeError, match="failed to stop"):
                coalescer.close(timeout=0.2)
            # Un-wedge: the worker falls back to per-item execution, the
            # pending future still resolves, and the worker exits cleanly.
            release.set()
            assert np.array_equal(
                future.result(timeout=10.0).value, ozaki2_gemm(a, b, config=CFG)
            )
            coalescer._worker.join(timeout=10.0)
            assert not coalescer._worker.is_alive()

    def test_hung_server_shutdown_raises_but_still_closes_session(self, monkeypatch):
        srv = ReproServer(config=CFG, port=0).start()
        real_coalescer_close = srv.coalescer.close
        real_session_close = srv.session.close
        session_closed = []

        def wedged_close(timeout: float = 10.0) -> None:
            raise RuntimeError(
                "coalescer drain worker 'repro-coalescer' failed to stop (simulated)"
            )

        monkeypatch.setattr(srv.coalescer, "close", wedged_close)
        monkeypatch.setattr(
            srv.session, "close", lambda: session_closed.append(True)
        )
        try:
            with pytest.raises(RuntimeError, match="shutdown incomplete"):
                srv.close(timeout=0.5)
            # The hang was surfaced *after* the rest of the teardown ran:
            # the session was still closed, nothing is stranded.
            assert session_closed == [True]
        finally:
            real_coalescer_close()
            real_session_close()


class TestClientBackoff:
    def test_schedule_is_seeded_capped_and_jittered(self):
        kwargs = dict(backoff_base=0.05, backoff_cap=0.2)
        one = ServiceClient(retry_seed=7, **kwargs)
        two = ServiceClient(retry_seed=7, **kwargs)
        other = ServiceClient(retry_seed=8, **kwargs)
        schedule = [one._backoff_seconds(i) for i in range(6)]
        assert schedule == [two._backoff_seconds(i) for i in range(6)]
        assert schedule != [other._backoff_seconds(i) for i in range(6)]
        # Jitter keeps each sleep in [base/2, base); the cap bounds growth.
        assert all(0.0 <= s < 0.2 for s in schedule)
        assert 0.1 <= schedule[5] < 0.2  # 0.05 * 2^5 = 1.6, capped at 0.2

    def test_backoff_sleep_refused_when_deadline_is_too_close(self):
        cli = ServiceClient()
        with pytest.raises(ServiceError) as excinfo:
            cli._sleep_before_retry(0, time.monotonic() + 0.001, delay=5.0)
        assert excinfo.value.code == ERROR_DEADLINE


class TestEvictionRetryExhaustion:
    def test_operand_missing_twice_surfaces_typed_after_inline_resend(
        self, rng, monkeypatch
    ):
        """A server that keeps answering operand-missing (cache thrashing)
        gets exactly one inline resend, then a typed error — no loop."""
        cli = ServiceClient(port=1)  # never actually connects
        a = np.ascontiguousarray(rng.standard_normal((8, 8)))
        b = np.ascontiguousarray(rng.standard_normal((8, 8)))
        fp_a, fp_b = matrix_fingerprint(a), matrix_fingerprint(b)
        cli._known.update({("A", fp_a), ("B", fp_b)})  # believe both are resident
        frames = []

        def stubbed_roundtrip(path, body, deadline_at=None):
            header, arrays = decode_frame(body)
            frames.append((header.get("refs") or {}, set(arrays)))
            return error_frame(ERROR_OPERAND_MISSING, "evicted (stub)")

        monkeypatch.setattr(cli, "_roundtrip", stubbed_roundtrip)
        with pytest.raises(ServiceError) as excinfo:
            cli.gemm(a, b)
        assert excinfo.value.code == ERROR_OPERAND_MISSING
        assert len(frames) == 2
        # Attempt 0 sent fingerprint references; attempt 1 resent bytes.
        assert set(frames[0][0]) == {"a", "b"} and frames[0][1] == set()
        assert frames[1][0] == {} and frames[1][1] == {"a", "b"}
        # The acks were un-learned: the next request starts cold.
        assert cli._known == set()
