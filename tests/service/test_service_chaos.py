"""Service-layer chaos: injected wire faults against a real server.

Each test boots a real :class:`~repro.service.ReproServer` and arms a
seeded fault plan.  Because the server runs in-process (threads), the
armed plan is shared with its handler threads, so the tests can assert on
``plan.fired(...)`` directly.  The contract mirrors the runtime chaos
suite: injected faults may add latency or round trips, but results stay
bit-identical and failures surface typed, never silent.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import faults
from repro.config import Ozaki2Config
from repro.core.gemm import ozaki2_gemm
from repro.service import ReproServer, ServiceClient, ServiceError
from repro.service.protocol import ERROR_DEADLINE, ERROR_OVERLOADED

CFG = Ozaki2Config.for_dgemm(num_moduli=10)


@pytest.fixture(autouse=True)
def _disarmed():
    faults.uninstall()
    yield
    faults.uninstall()


@pytest.fixture
def server():
    with ReproServer(config=CFG, port=0).start() as srv:
        yield srv


@pytest.fixture
def pair(rng):
    return rng.standard_normal((24, 20)), rng.standard_normal((20, 16))


def test_slow_frame_adds_latency_not_divergence(server, pair):
    a, b = pair
    reference = ozaki2_gemm(a, b, config=CFG)
    with ServiceClient(port=server.port) as cli:
        with faults.inject("service.slow_frame:delay=0.2,times=1", seed=1) as plan:
            start = time.perf_counter()
            result = cli.gemm(a, b)
            elapsed = time.perf_counter() - start
        assert plan.fired("service.slow_frame") == 1
    assert elapsed >= 0.2
    assert np.array_equal(result.value, reference)


def test_dropped_response_frame_is_retried_transparently(server, pair):
    a, b = pair
    reference = ozaki2_gemm(a, b, config=CFG)
    with ServiceClient(port=server.port, backoff_base=0.01) as cli:
        with faults.inject("service.drop_frame:times=1", seed=1) as plan:
            result = cli.gemm(a, b)
        # The first response was computed, then dropped on the floor; the
        # client reconnected and resent (the operations are idempotent).
        assert plan.fired("service.drop_frame") == 1
    assert np.array_equal(result.value, reference)


def test_cache_evict_storm_forces_renegotiation(server, pair):
    a, b = pair
    reference = ozaki2_gemm(a, b, config=CFG)
    with ServiceClient(port=server.port) as cli:
        cold = cli.gemm(a, b)  # learns both fingerprints
        with faults.inject("cache.evict_storm:times=1", seed=1) as plan:
            # The warm request references fingerprints the storm just
            # evicted: the server answers operand-missing, the client
            # un-learns and resends the bytes inline — same answer.
            warm = cli.gemm(a, b)
        assert plan.fired("cache.evict_storm") == 1
    assert np.array_equal(cold.value, reference)
    assert np.array_equal(warm.value, reference)


def test_load_shed_503_retries_after_the_hint(pair):
    a, b = pair
    reference = ozaki2_gemm(a, b, config=CFG)
    with ReproServer(
        config=CFG, port=0, max_queue=1, retry_after_seconds=0.01
    ).start() as srv:
        calls = {"n": 0}

        def fake_backlog() -> int:
            calls["n"] += 1
            return 99 if calls["n"] == 1 else 0

        srv.coalescer.backlog = fake_backlog  # type: ignore[method-assign]
        with ServiceClient(port=srv.port, backoff_base=0.01) as cli:
            result = cli.gemm(a, b)
        assert calls["n"] >= 2  # shed once, admitted on retry
        assert srv._requests.get("shed") == 1
    assert np.array_equal(result.value, reference)


def test_load_shed_exhaustion_surfaces_overloaded(pair):
    a, b = pair
    with ReproServer(
        config=CFG, port=0, max_queue=1, retry_after_seconds=0.005
    ).start() as srv:
        srv.coalescer.backlog = lambda: 99  # type: ignore[method-assign]
        with ServiceClient(port=srv.port, max_retries=1) as cli:
            with pytest.raises(ServiceError) as excinfo:
                cli.gemm(a, b)
        assert excinfo.value.code == ERROR_OVERLOADED


def test_expired_deadline_is_a_typed_504(server, pair):
    a, b = pair
    with ServiceClient(port=server.port) as cli:
        with pytest.raises(ServiceError) as excinfo:
            cli.gemm(a, b, deadline=1e-6)
    assert excinfo.value.code == ERROR_DEADLINE


def test_deadline_refuses_a_doomed_backoff_sleep(pair):
    a, b = pair
    # Permanently overloaded server advertising a 5s Retry-After: a client
    # with a 0.2s budget must fail fast instead of sleeping into the wall.
    with ReproServer(
        config=CFG, port=0, max_queue=1, retry_after_seconds=5.0
    ).start() as srv:
        srv.coalescer.backlog = lambda: 99  # type: ignore[method-assign]
        with ServiceClient(port=srv.port, max_retries=3) as cli:
            start = time.perf_counter()
            with pytest.raises(ServiceError) as excinfo:
                cli.gemm(a, b, deadline=0.2)
            elapsed = time.perf_counter() - start
        assert excinfo.value.code == ERROR_DEADLINE
        assert elapsed < 2.0
