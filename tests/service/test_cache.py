"""OperandCache semantics: LRU order, byte bound, bit-identity, fingerprints."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.config import Ozaki2Config
from repro.core.operand import matrix_fingerprint, prepare_a
from repro.errors import ValidationError
from repro.service.cache import OperandCache, cache_key


@pytest.fixture
def cfg():
    return Ozaki2Config.for_dgemm(num_moduli=10)


def _matrix(seed: int, n: int = 16) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal((n, n))


def _entry_bytes(cfg) -> int:
    return prepare_a(_matrix(0), config=cfg).nbytes


class TestFingerprint:
    """The fingerprint hashes *logical* contents, not memory layout."""

    def test_equal_content_equal_fingerprint(self):
        a = _matrix(1)
        assert matrix_fingerprint(a) == matrix_fingerprint(a.copy())

    def test_different_content_different_fingerprint(self):
        assert matrix_fingerprint(_matrix(1)) != matrix_fingerprint(_matrix(2))

    def test_fortran_order_view_matches_copy(self):
        a = _matrix(3)
        f_ordered = np.asfortranarray(a)
        assert not f_ordered.flags["C_CONTIGUOUS"]
        assert matrix_fingerprint(f_ordered) == matrix_fingerprint(a)

    def test_transpose_view_matches_its_copy(self):
        a = np.random.default_rng(4).standard_normal((12, 20))
        transposed = a.T  # non-contiguous view
        assert not transposed.flags["C_CONTIGUOUS"]
        assert matrix_fingerprint(transposed) == matrix_fingerprint(
            np.ascontiguousarray(a.T)
        )
        # ... and differs from the un-transposed matrix.
        assert matrix_fingerprint(transposed) != matrix_fingerprint(
            np.ascontiguousarray(a)
        )

    def test_sliced_view_matches_its_copy(self):
        a = _matrix(5, n=32)
        view = a[::2, 1::3]
        assert not view.flags["C_CONTIGUOUS"]
        assert matrix_fingerprint(view) == matrix_fingerprint(view.copy())

    def test_shape_is_part_of_the_identity(self):
        flat = np.arange(12, dtype=np.float64)
        assert matrix_fingerprint(flat.reshape(3, 4)) != matrix_fingerprint(
            flat.reshape(4, 3)
        )

    def test_strided_prepare_round_trips_through_cache(self, cfg):
        """A cached entry keyed on a view serves the view's logical matrix."""
        a = _matrix(6, n=32)
        view = a[::2, ::2]
        cache = OperandCache(capacity_bytes=1 << 20)
        cold = cache.get_or_prepare(view, "A", cfg)
        warm = cache.get_or_prepare(view.copy(), "A", cfg)
        assert warm is cold
        direct = prepare_a(np.ascontiguousarray(view), config=cfg)
        assert np.array_equal(cold.slices, direct.slices)
        assert np.array_equal(cold.scale, direct.scale)


class TestKeying:
    def test_key_separates_sides_and_recipes(self, cfg):
        fp = "f" * 32
        assert cache_key("A", fp, cfg) != cache_key("B", fp, cfg)
        assert cache_key("A", fp, cfg) != cache_key(
            "A", fp, cfg.replace(num_moduli=12)
        )

    def test_auto_configs_share_by_target(self, cfg):
        fp = "f" * 32
        auto = cfg.replace(num_moduli="auto")
        # Runtime knobs (blocking here) never enter the key.
        assert cache_key("A", fp, auto) == cache_key(
            "A", fp, auto.replace(block_k=64)
        )
        assert cache_key("A", fp, auto) != cache_key("A", fp, cfg)


class TestLRU:
    def test_eviction_is_least_recently_used(self, cfg):
        entry = _entry_bytes(cfg)
        cache = OperandCache(capacity_bytes=2 * entry + entry // 2)
        a, b, c = _matrix(10), _matrix(11), _matrix(12)
        cache.get_or_prepare(a, "A", cfg)
        cache.get_or_prepare(b, "A", cfg)
        # Touch a: now b is the least recently used.
        cache.get_or_prepare(a, "A", cfg)
        cache.get_or_prepare(c, "A", cfg)
        assert cache_key("A", matrix_fingerprint(a), cfg) in cache
        assert cache_key("A", matrix_fingerprint(b), cfg) not in cache
        assert cache_key("A", matrix_fingerprint(c), cfg) in cache
        assert cache.counter.cache_evictions == 1

    def test_hit_is_bit_identical_to_cold_miss(self, cfg):
        a = _matrix(13)
        cache = OperandCache(capacity_bytes=1 << 20)
        cold = cache.get_or_prepare(a, "A", cfg)
        warm = cache.get_or_prepare(a, "A", cfg)
        direct = prepare_a(np.ascontiguousarray(a), config=cfg)
        assert warm is cold  # the cached operand IS the cold conversion
        assert np.array_equal(warm.slices, direct.slices)
        assert np.array_equal(warm.scale, direct.scale)
        assert cache.counter.cache_hits == 1
        assert cache.counter.cache_misses == 1

    def test_oversized_entry_is_served_but_not_stored(self, cfg):
        entry = _entry_bytes(cfg)
        cache = OperandCache(capacity_bytes=entry // 2)
        operand = cache.get_or_prepare(_matrix(14), "A", cfg)
        assert operand.num_moduli == cfg.num_moduli
        assert len(cache) == 0
        assert cache.current_bytes == 0

    def test_zero_capacity_always_converts(self, cfg):
        cache = OperandCache(capacity_bytes=0)
        first = cache.get_or_prepare(_matrix(15), "A", cfg)
        second = cache.get_or_prepare(_matrix(15), "A", cfg)
        assert first is not second
        assert np.array_equal(first.slices, second.slices)
        assert cache.counter.cache_hits == 0
        assert cache.counter.cache_misses == 2

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValidationError):
            OperandCache(capacity_bytes=-1)

    def test_clear_counts_evictions_and_zeroes_residency(self, cfg):
        cache = OperandCache(capacity_bytes=1 << 20)
        cache.get_or_prepare(_matrix(16), "A", cfg)
        cache.get_or_prepare(_matrix(17), "A", cfg)
        inserted = cache.counter.cache_bytes_inserted
        cache.clear()
        assert len(cache) == 0
        assert cache.current_bytes == 0
        assert cache.counter.cache_evictions == 2
        assert cache.counter.cache_bytes_evicted == inserted


class TestConcurrency:
    def test_byte_bound_holds_under_concurrent_traffic(self, cfg):
        entry = _entry_bytes(cfg)
        capacity = int(3.5 * entry)
        cache = OperandCache(capacity_bytes=capacity)
        matrices = [_matrix(20 + i) for i in range(8)]
        errors = []

        def worker(offset: int) -> None:
            try:
                for i in range(16):
                    m = matrices[(offset + i) % len(matrices)]
                    operand = cache.get_or_prepare(m, "A", cfg)
                    assert operand.num_moduli == cfg.num_moduli
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert cache.current_bytes <= capacity
        assert len(cache) <= capacity // entry
        stats = cache.stats()
        assert stats["bytes_inserted"] - stats["bytes_evicted"] == stats[
            "current_bytes"
        ]

    def test_concurrent_same_key_misses_collapse(self, cfg):
        cache = OperandCache(capacity_bytes=1 << 24)
        a = np.random.default_rng(30).standard_normal((256, 256))
        barrier = threading.Barrier(4)
        results = []

        def worker() -> None:
            barrier.wait()
            results.append(cache.get_or_prepare(a, "A", cfg))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # One conversion, everyone else waited on the latch and hit.
        assert cache.counter.cache_misses == 1
        assert cache.counter.cache_hits == 3
        assert all(op is results[0] for op in results)
