"""Wire-frame codec: round trips and malformed-frame rejection."""

from __future__ import annotations

import json
import struct

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.service.protocol import (
    ERROR_BAD_REQUEST,
    MAGIC,
    decode_frame,
    encode_frame,
    error_frame,
)


def test_round_trip_header_and_arrays():
    header = {"op": "gemm", "config": {"num_moduli": 12}, "refs": {}}
    arrays = {
        "a": np.random.default_rng(0).standard_normal((5, 7)),
        "x": np.arange(11, dtype=np.float64),
        "mask": np.array([[1, 0], [0, 1]], dtype=np.int64),
    }
    got_header, got_arrays = decode_frame(encode_frame(header, arrays))
    # The codec adds the payload listing under "arrays"; everything the
    # caller put in the header round-trips untouched.
    listing = got_header.pop("arrays")
    assert [entry["name"] for entry in listing] == list(arrays)
    assert got_header == header
    assert set(got_arrays) == set(arrays)
    for name, array in arrays.items():
        assert got_arrays[name].dtype == array.dtype
        assert got_arrays[name].shape == array.shape
        assert np.array_equal(got_arrays[name], array)


def test_decoded_arrays_are_writable():
    _, arrays = decode_frame(encode_frame({}, {"a": np.ones((3, 3))}))
    arrays["a"][0, 0] = 7.0  # must not raise: decode hands out owned copies
    assert arrays["a"][0, 0] == 7.0


def test_header_only_frame():
    header, arrays = decode_frame(encode_frame({"ok": True}))
    assert header == {"ok": True, "arrays": []}
    assert arrays == {}


def test_bad_magic_rejected():
    frame = bytearray(encode_frame({"op": "gemm"}))
    frame[:4] = b"XXXX"
    with pytest.raises(ValidationError, match="magic"):
        decode_frame(bytes(frame))


def test_truncated_payload_rejected():
    frame = encode_frame({"op": "gemm"}, {"a": np.ones((4, 4))})
    with pytest.raises(ValidationError):
        decode_frame(frame[:-8])


def test_truncated_header_rejected():
    with pytest.raises(ValidationError):
        decode_frame(MAGIC + struct.pack(">I", 100) + b"{}")


def test_trailing_bytes_rejected():
    frame = encode_frame({"op": "gemm"}, {"a": np.ones((2, 2))})
    with pytest.raises(ValidationError):
        decode_frame(frame + b"\x00")


def test_non_json_header_rejected():
    payload = b"\xff\xfenot json"
    frame = MAGIC + struct.pack(">I", len(payload)) + payload
    with pytest.raises(ValidationError):
        decode_frame(frame)


def test_error_frame_shape():
    header, arrays = decode_frame(error_frame(ERROR_BAD_REQUEST, "nope"))
    assert header["ok"] is False
    assert header["error"]["code"] == ERROR_BAD_REQUEST
    assert header["error"]["message"] == "nope"
    assert arrays == {}


def test_header_size_is_json_compact():
    frame = encode_frame({"op": "gemv"})
    (length,) = struct.unpack(">I", frame[4:8])
    json.loads(frame[8 : 8 + length].decode("utf-8"))
