"""Tests for the moduli table and selection."""

from __future__ import annotations

import math

import pytest

from repro.crt.moduli import (
    MAX_TABLE_SIZE,
    MODULI_TABLE,
    generate_moduli_table,
    select_moduli,
    validate_moduli,
)
from repro.errors import ModuliError


class TestModuliTable:
    def test_table_head_matches_paper(self):
        # Section 4.1: {256, 255, 253, 251, ...}
        assert MODULI_TABLE[:4] == (256, 255, 253, 251)

    def test_table_size(self):
        assert len(MODULI_TABLE) == MAX_TABLE_SIZE

    def test_table_descending_and_in_range(self):
        assert all(2 <= p <= 256 for p in MODULI_TABLE)
        assert list(MODULI_TABLE) == sorted(MODULI_TABLE, reverse=True)

    def test_table_pairwise_coprime(self):
        for i, p in enumerate(MODULI_TABLE):
            for q in MODULI_TABLE[i + 1:]:
                assert math.gcd(p, q) == 1, (p, q)

    def test_generate_with_small_limit(self):
        table = generate_moduli_table(16, 5)
        assert table == (16, 15, 13, 11, 7)

    def test_generate_invalid_args(self):
        with pytest.raises(ModuliError):
            generate_moduli_table(1, 5)
        with pytest.raises(ModuliError):
            generate_moduli_table(256, 0)


class TestSelectAndValidate:
    @pytest.mark.parametrize("n", [2, 8, 14, 20])
    def test_select_returns_first_n(self, n):
        selection = select_moduli(n)
        assert selection == MODULI_TABLE[:n]

    def test_select_bounds(self):
        with pytest.raises(ModuliError):
            select_moduli(1)
        with pytest.raises(ModuliError):
            select_moduli(MAX_TABLE_SIZE + 1)

    def test_validate_rejects_non_coprime(self):
        with pytest.raises(ModuliError):
            validate_moduli([256, 254])  # both even

    def test_validate_rejects_duplicates(self):
        with pytest.raises(ModuliError):
            validate_moduli([251, 251])

    def test_validate_rejects_out_of_range(self):
        with pytest.raises(ModuliError):
            validate_moduli([512, 511])
        with pytest.raises(ModuliError):
            validate_moduli([1, 3])

    def test_validate_rejects_too_few(self):
        with pytest.raises(ModuliError):
            validate_moduli([251])

    def test_validate_accepts_custom_coprime_set(self):
        assert validate_moduli([64, 81, 25, 49]) == (64, 81, 25, 49)
