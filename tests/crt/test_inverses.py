"""Tests for exact CRT arithmetic (product, inverses, reconstruction)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crt.inverses import (
    crt_reconstruct_int,
    crt_weights,
    moduli_product,
    modular_inverses,
)
from repro.crt.moduli import select_moduli
from repro.errors import ModuliError


class TestProductAndInverses:
    @pytest.mark.parametrize("n", [2, 5, 10, 15, 20])
    def test_product_matches_direct_multiplication(self, n):
        mods = select_moduli(n)
        expected = 1
        for p in mods:
            expected *= p
        assert moduli_product(mods) == expected

    @pytest.mark.parametrize("n", [2, 7, 13, 20])
    def test_inverses_satisfy_defining_congruence(self, n):
        mods = select_moduli(n)
        total = moduli_product(mods)
        for p, q in zip(mods, modular_inverses(mods), strict=True):
            assert (total // p * q) % p == 1
            assert 0 < q < p

    @pytest.mark.parametrize("n", [2, 8, 16, 20])
    def test_weights_are_one_mod_own_prime_zero_mod_others(self, n):
        mods = select_moduli(n)
        weights = crt_weights(mods)
        for i, (p_i, w_i) in enumerate(zip(mods, weights, strict=True)):
            assert w_i % p_i == 1
            for j, p_j in enumerate(mods):
                if i != j:
                    assert w_i % p_j == 0

    def test_weights_sum_congruent_to_one_mod_p(self):
        mods = select_moduli(6)
        total = moduli_product(mods)
        assert sum(crt_weights(mods)) % total == 1


class TestReconstruction:
    @pytest.mark.parametrize("n", [3, 8, 15, 20])
    def test_roundtrip_random_integers(self, n):
        mods = select_moduli(n)
        total = moduli_product(mods)
        rng = np.random.default_rng(n)
        for _ in range(50):
            # Draw x in the centred range (-P/2, P/2].
            x = int(rng.integers(0, 2**63)) * int(rng.integers(0, 2**63)) % total
            if x > total // 2:
                x -= total
            residues = [x % p for p in mods]
            assert crt_reconstruct_int(residues, mods) == x

    def test_negative_values_round_trip(self):
        mods = select_moduli(5)
        for x in (-1, -12345, -(moduli_product(mods) // 2) + 1):
            residues = [x % p for p in mods]
            assert crt_reconstruct_int(residues, mods) == x

    def test_wrong_residue_count_rejected(self):
        mods = select_moduli(4)
        with pytest.raises(ModuliError):
            crt_reconstruct_int([1, 2, 3], mods)

    def test_uniqueness_boundary(self):
        # Values beyond P/2 in magnitude alias back into the centred range:
        # reconstruct(x + P) == reconstruct(x).
        mods = select_moduli(3)
        total = moduli_product(mods)
        x = 12345
        residues = [(x + total) % p for p in mods]
        assert crt_reconstruct_int(residues, mods) == x
