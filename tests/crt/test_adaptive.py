"""Unit tests of the accuracy-driven moduli selection model."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.config import MAX_MODULI, Ozaki2Config
from repro.crt.adaptive import (
    DEFAULT_TARGET_ACCURACY,
    elementwise_error_bound,
    relative_error_bound,
    select_num_moduli,
)
from repro.errors import ConfigurationError, ValidationError


class TestRelativeBound:
    def test_decreases_with_moduli(self):
        bounds = [relative_error_bound(256, n, 64) for n in range(2, MAX_MODULI + 1)]
        assert all(b2 < b1 for b1, b2 in zip(bounds, bounds[1:], strict=False))

    def test_grows_with_k(self):
        assert relative_error_bound(4096, 10, 64) > relative_error_bound(16, 10, 64)

    def test_magnitude_invariance_of_absolute_bound(self):
        # The absolute bound scales exactly with k*max|A|*max|B|.
        base = elementwise_error_bound(128, 1.0, 1.0, 12, 64)
        scaled = elementwise_error_bound(128, 8.0, 0.25, 12, 64)
        assert scaled == pytest.approx(base * 8.0 * 0.25)

    def test_zero_operand_bound_is_zero(self):
        assert elementwise_error_bound(128, 0.0, 1.0, 12, 64) == 0.0

    @pytest.mark.parametrize("bad_bits", [16, 128, 0])
    def test_rejects_bad_precision(self, bad_bits):
        with pytest.raises(ConfigurationError):
            relative_error_bound(128, 10, bad_bits)

    def test_rejects_bad_mode(self):
        with pytest.raises(ConfigurationError, match="mode"):
            relative_error_bound(128, 10, 64, mode="turbo")

    def test_modes_share_the_same_margin_shape(self):
        # Both mode margins derive from the same 0.51*log2(k) law and stay
        # within a bit of each other, so the selected N rarely differs.
        for k in (1, 16, 1024):
            fast = relative_error_bound(k, 10, 64, mode="fast")
            accu = relative_error_bound(k, 10, 64, mode="accurate")
            assert fast / 2.0 <= accu <= fast * 2.0


class TestSelection:
    def test_monotone_in_target(self):
        previous = None
        for target in (1e-2, 1e-4, 1e-6, 1e-8, 1e-10, 1e-12):
            sel = select_num_moduli(256, 1.0, 1.0, 64, target=target)
            if previous is not None:
                assert sel.num_moduli >= previous
            previous = sel.num_moduli

    def test_never_exceeds_max_moduli(self):
        sel = select_num_moduli(2**16, 1.0, 1.0, 64, target=1e-15)
        assert sel.num_moduli <= MAX_MODULI
        assert not sel.met  # unreachable target clamps instead of raising

    def test_met_selection_bound_meets_target(self):
        sel = select_num_moduli(512, 3.0, 0.5, 64, target=1e-8)
        assert sel.met
        assert sel.relative_bound <= 1e-8
        assert sel.bound == pytest.approx(sel.relative_bound * 512 * 3.0 * 0.5)

    def test_default_targets_match_precision(self):
        d = select_num_moduli(128, 1.0, 1.0, 64)
        s = select_num_moduli(128, 1.0, 1.0, 32)
        assert d.target == DEFAULT_TARGET_ACCURACY[64]
        assert s.target == DEFAULT_TARGET_ACCURACY[32]
        assert s.num_moduli < d.num_moduli

    def test_small_k_selects_fewer_than_dgemm_default(self):
        sel = select_num_moduli(16, 1.0, 1.0, 64)
        assert sel.num_moduli < 15

    def test_zero_operand_short_circuits(self):
        sel = select_num_moduli(128, 0.0, 5.0, 64)
        assert sel.num_moduli == 2
        assert sel.met and sel.bound == 0.0

    def test_magnitude_invariant_selection(self):
        a = select_num_moduli(256, 1.0, 1.0, 64).num_moduli
        b = select_num_moduli(256, 2.0**40, 2.0**-37, 64).num_moduli
        assert a == b

    @pytest.mark.parametrize("bad", [0.0, 1.0, -1e-3, 2.0])
    def test_rejects_bad_target(self, bad):
        with pytest.raises(ConfigurationError, match="target"):
            select_num_moduli(128, 1.0, 1.0, 64, target=bad)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -1.0])
    def test_rejects_bad_max_abs(self, bad):
        with pytest.raises(ConfigurationError, match="max"):
            select_num_moduli(128, bad, 1.0, 64)

    def test_rejects_bad_k(self):
        with pytest.raises(ConfigurationError, match="k must be positive"):
            select_num_moduli(0, 1.0, 1.0, 64)


class TestClampWarning:
    @pytest.fixture(autouse=True)
    def _reset_latch(self, monkeypatch):
        # The warning is once-per-process; each test gets a fresh latch.
        import repro.crt.adaptive as adaptive_mod

        monkeypatch.setattr(adaptive_mod, "_CLAMP_WARNING_EMITTED", False)

    def test_clamped_selection_warns_once_per_process(self):
        with pytest.warns(RuntimeWarning, match="unreachable"):
            sel = select_num_moduli(2**16, 1.0, 1.0, 64, target=1e-15)
        assert not sel.met and sel.num_moduli == MAX_MODULI
        # Second clamped selection: latched, silent (a solver loop
        # re-selecting every iteration must not spam).
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            again = select_num_moduli(2**16, 1.0, 1.0, 64, target=1e-15)
        assert not again.met

    def test_met_selection_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            sel = select_num_moduli(256, 1.0, 1.0, 64, target=1e-8)
        assert sel.met

    def test_result_bound_met_false_on_clamp(self):
        from repro.core.gemm import ozaki2_gemm
        from repro.workloads import phi_pair

        a, b = phi_pair(6, 8, 6, phi=0.5, seed=1)
        config = Ozaki2Config(num_moduli="auto", target_accuracy=1e-15)
        with pytest.warns(RuntimeWarning, match="unreachable"):
            result = ozaki2_gemm(a, b, config=config, return_details=True)
        assert result.bound_met is False
        assert result.config.num_moduli == MAX_MODULI

    def test_result_bound_met_true_paths(self):
        from repro.core.gemm import ozaki2_gemm
        from repro.workloads import phi_pair

        a, b = phi_pair(6, 8, 6, phi=0.5, seed=1)
        auto = ozaki2_gemm(
            a,
            b,
            config=Ozaki2Config(num_moduli="auto", target_accuracy=1e-8),
            return_details=True,
        )
        assert auto.bound_met is True
        # Fixed-count runs carry no selection diagnostic: vacuously met.
        fixed = ozaki2_gemm(
            a, b, config=Ozaki2Config(num_moduli=10), return_details=True
        )
        assert fixed.bound_met is True


class TestConfigIntegration:
    def test_auto_accepted_and_normalised(self):
        cfg = Ozaki2Config(num_moduli="AUTO")
        assert cfg.num_moduli == "auto"
        assert cfg.moduli_is_auto
        assert cfg.method_name == "OS II-fast-auto"

    def test_resolved_returns_concrete(self):
        cfg = Ozaki2Config(num_moduli="auto", target_accuracy=1e-8)
        concrete = cfg.resolved(11)
        assert concrete.num_moduli == 11
        assert not concrete.moduli_is_auto
        assert concrete.target_accuracy == 1e-8

    def test_rejects_unknown_string(self):
        with pytest.raises(ConfigurationError, match="num_moduli"):
            Ozaki2Config(num_moduli="automatic")

    @pytest.mark.parametrize(
        "bad, degenerate_class",
        [
            (0.0, "zero or negative"),
            (-0.5, "zero or negative"),
            (1.0, "no accuracy at all"),
            (float("nan"), "NaN"),
            (float("inf"), "infinite"),
            (float("-inf"), "infinite"),
        ],
    )
    def test_rejects_degenerate_target_accuracy(self, bad, degenerate_class):
        # Degenerate targets are a *validation* failure (caller handed a
        # nonsensical value) and the message names the degenerate class —
        # a NaN reaching the selection math would silently fail every
        # comparison, a zero would clamp to MAX_MODULI "by accident".
        with pytest.raises(ValidationError, match="target_accuracy") as exc:
            Ozaki2Config(target_accuracy=bad)
        assert degenerate_class in str(exc.value)

    def test_fixed_configs_unchanged(self):
        cfg = Ozaki2Config(num_moduli=14)
        assert cfg.num_moduli == 14 and not cfg.moduli_is_auto


class TestMeasuredErrorWithinBound:
    @pytest.mark.parametrize("phi", [0.5, 2.0])
    @pytest.mark.parametrize("num_moduli", [6, 10, 14])
    def test_fast_mode_bound_holds(self, phi, num_moduli):
        from repro.accuracy import reference_gemm
        from repro.core.gemm import ozaki2_gemm
        from repro.workloads import phi_pair

        a, b = phi_pair(64, 48, 56, phi=phi, seed=3)
        c = ozaki2_gemm(a, b, Ozaki2Config(num_moduli=num_moduli))
        err = float(np.max(np.abs(c - reference_gemm(a, b))))
        bound = elementwise_error_bound(
            48, float(np.max(np.abs(a))), float(np.max(np.abs(b))), num_moduli, 64
        )
        assert err <= bound

    def test_accurate_mode_bound_holds(self):
        from repro.accuracy import reference_gemm
        from repro.core.gemm import ozaki2_gemm
        from repro.workloads import phi_pair

        a, b = phi_pair(48, 64, 40, phi=1.0, seed=5)
        c = ozaki2_gemm(a, b, Ozaki2Config(num_moduli=9, mode="accurate"))
        err = float(np.max(np.abs(c - reference_gemm(a, b))))
        bound = elementwise_error_bound(
            64,
            float(np.max(np.abs(a))),
            float(np.max(np.abs(b))),
            9,
            64,
            mode="accurate",
        )
        assert err <= bound
