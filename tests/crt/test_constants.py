"""Tests for the precomputed constant tables of Section 4.1."""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np
import pytest

from repro.crt.constants import build_constant_table, split_weight_bits
from repro.crt.inverses import crt_weights
from repro.crt.moduli import select_moduli
from repro.errors import ConfigurationError


class TestTableBasics:
    @pytest.mark.parametrize("n", [2, 8, 15, 20])
    def test_p1_p2_represent_p(self, n):
        table = build_constant_table(n, 64)
        assert table.P1 == float(table.P_int)
        # P1 + P2 is a double-double representation of P.
        assert Fraction(table.P1) + Fraction(table.P2) == Fraction(table.P_int) or abs(
            (Fraction(table.P1) + Fraction(table.P2)) - table.P_int
        ) <= Fraction(table.P_int, 2**104)

    def test_sgemm_table_has_zero_tails(self):
        table = build_constant_table(8, 32)
        assert table.P2 == 0.0
        assert np.all(table.s2 == 0.0)
        assert table.precision_bits == 32

    def test_pinv_is_correctly_rounded(self):
        table = build_constant_table(10, 64)
        exact = Fraction(1, table.P_int)
        assert abs(Fraction(table.Pinv) - exact) <= abs(exact) * Fraction(1, 2**52)

    def test_reciprocal_tables(self):
        table = build_constant_table(12, 64)
        for i, p in enumerate(table.moduli):
            assert table.pinv64[i] == pytest.approx(1.0 / p, rel=1e-15)
            assert table.pinv32[i] == np.float32(table.pinv64[i])
            assert table.pinv_prime[i] == (2**32) // p - 1

    def test_scale_budgets(self):
        table = build_constant_table(15, 64)
        log2p = math.log2(table.P_int - 1)
        assert table.P_fast == pytest.approx(log2p - 1.5, rel=1e-6)
        assert table.P_accu == pytest.approx(log2p - 0.5, rel=1e-6)
        assert table.log2_P == pytest.approx(math.log2(table.P_int), rel=1e-12)

    def test_tables_are_cached(self):
        a = build_constant_table(14, 64)
        b = build_constant_table(14, 64)
        assert a is b

    def test_arrays_are_read_only(self):
        table = build_constant_table(6, 64)
        with pytest.raises(ValueError):
            table.s1[0] = 0.0

    def test_invalid_precision_rejected(self):
        with pytest.raises(ConfigurationError):
            build_constant_table(8, 16)

    def test_explicit_moduli_must_match_count(self):
        with pytest.raises(ConfigurationError):
            build_constant_table(3, 64, moduli=[256, 255])

    def test_explicit_moduli_accepted(self):
        table = build_constant_table(3, 64, moduli=[256, 255, 253])
        assert table.moduli == (256, 255, 253)


class TestSplitWeights:
    @pytest.mark.parametrize("n", [2, 5, 10, 15, 20])
    def test_s1_plus_s2_approximates_weight(self, n):
        table = build_constant_table(n, 64)
        import math

        w_max = max(table.weights_int)
        # s1 keeps beta_i >= 53 - 8 - ceil(log2 N) + (e_i - e_max) bits and s2
        # the next 53 bits, so the residual error is below
        # 2^(e_max - (53 - 8 - ceil(log2 N)) - 53) = w_max / 2^(106 - 8 - ceil(log2 N)).
        bound = Fraction(w_max, 2 ** (106 - 8 - math.ceil(math.log2(n)) - 1))
        for i, w in enumerate(table.weights_int):
            approx = Fraction(table.s1[i]) + Fraction(table.s2[i])
            assert abs(approx - w) <= bound

    @pytest.mark.parametrize("n", [4, 12, 20])
    def test_s1_has_at_most_beta_bits(self, n):
        table = build_constant_table(n, 64)
        for i, beta in enumerate(table.beta):
            s1_int = int(table.s1[i])
            assert float(s1_int) == table.s1[i]
            # Stripping trailing zeros must leave at most beta significant bits.
            stripped = s1_int >> (s1_int.bit_length() - beta) if s1_int.bit_length() > beta else s1_int
            assert stripped.bit_length() <= beta

    def test_beta_formula(self):
        mods = select_moduli(16)
        weights = crt_weights(mods)
        betas = split_weight_bits(weights, 16)
        exps = [w.bit_length() - 1 for w in weights]
        e_max = max(exps)
        for beta, e in zip(betas, exps, strict=True):
            assert beta == min(53, 53 - 8 - math.ceil(math.log2(16)) + e - e_max)

    def test_error_free_accumulation_property(self):
        """The defining property: sum_i s1_i * u_i is exact in FP64.

        Verified by comparing the float64 accumulation against exact integer
        arithmetic for random UINT8 values.
        """
        rng = np.random.default_rng(0)
        for n in (5, 13, 20):
            table = build_constant_table(n, 64)
            for _ in range(20):
                u = rng.integers(0, 256, n)
                acc_float = 0.0
                acc_exact = 0
                for i in range(n):
                    acc_float += table.s1[i] * float(u[i])
                    acc_exact += int(table.s1[i]) * int(u[i])
                assert acc_float == float(acc_exact)

    def test_split_weight_bits_rejects_tiny_n(self):
        with pytest.raises(ConfigurationError):
            split_weight_bits([10, 20], 1)
