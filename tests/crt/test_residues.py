"""Tests for the rmod/mod residue kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crt.constants import build_constant_table
from repro.crt.residues import (
    mod_exact,
    mod_fast_mulhi,
    residues_to_int8,
    rmod_exact,
    rmod_fast_fma,
    uint8_residues,
)
from repro.errors import ConfigurationError


def _random_integer_matrix(rng, shape, bits):
    """Integer-valued float64 matrix with entries up to ~2**bits."""
    mantissa = rng.integers(-(2**53 - 1), 2**53, shape).astype(np.float64)
    scale = 2.0 ** (bits - 53)
    return np.trunc(mantissa * scale) if bits > 53 else np.trunc(mantissa / 2.0 ** (53 - bits))


class TestRmodExact:
    @pytest.mark.parametrize("p", [256, 255, 253, 251, 247, 29])
    def test_congruence_and_range_small_values(self, p):
        x = np.arange(-1000, 1000, dtype=np.float64)
        r = rmod_exact(x, p)
        assert np.all(np.abs(r) <= p / 2)
        np.testing.assert_array_equal(np.mod(r - x, p), np.zeros_like(x))

    @pytest.mark.parametrize("bits", [20, 50, 61, 75, 85])
    def test_congruence_for_large_magnitudes(self, bits):
        rng = np.random.default_rng(bits)
        x = _random_integer_matrix(rng, (64, 64), bits)
        for p in (256, 251, 199):
            r = rmod_exact(x, p)
            assert np.all(np.abs(r) <= p / 2)
            # check congruence with exact integer arithmetic on a sample
            flat_x = x.ravel()
            flat_r = r.ravel()
            for idx in range(0, flat_x.size, 257):
                assert (int(flat_x[idx]) - int(flat_r[idx])) % p == 0

    def test_exact_at_half_modulus_boundary(self):
        r = rmod_exact(np.array([128.0, -128.0, 384.0]), 256)
        # +/-128 are both valid centred representatives of 128 mod 256.
        assert set(np.abs(r)) == {128.0}

    def test_zero(self):
        assert rmod_exact(np.array([0.0]), 251)[0] == 0.0


class TestModExact:
    def test_float_input(self):
        x = np.array([-300.0, -1.0, 0.0, 1.0, 255.0, 256.0, 511.0])
        r = mod_exact(x, 256)
        np.testing.assert_array_equal(r, np.array([212.0, 255.0, 0.0, 1.0, 255.0, 0.0, 255.0]))

    def test_int_input(self):
        x = np.array([-5, 0, 7, 250], dtype=np.int32)
        np.testing.assert_array_equal(mod_exact(x, 251), np.array([246, 0, 7, 250]))

    def test_large_float_values(self):
        x = np.array([2.0**70 + 12.0])
        r = mod_exact(x, 251)
        assert (int(x[0]) - int(r[0])) % 251 == 0
        assert 0 <= r[0] < 251


class TestRmodFastFma:
    @pytest.mark.parametrize("num_moduli", [2, 8, 14, 18, 20])
    def test_matches_exact_for_dgemm_range(self, num_moduli):
        """The fast kernel must agree (mod p) with the exact kernel over the
        magnitude range the DGEMM scaling actually produces for this N."""
        table = build_constant_table(num_moduli, 64)
        # Scaled entries are bounded by 2^alpha with alpha = (log2 P - 1.5)/2.
        alpha = 0.5 * (table.log2_P - 1.5)
        rng = np.random.default_rng(num_moduli)
        x = _random_integer_matrix(rng, (256,), int(alpha))
        for i, p in enumerate(table.moduli):
            fast = rmod_fast_fma(
                x, p, float(table.pinv64[i]), float(table.pinv32[i]), num_moduli, 64
            )
            assert np.all(np.abs(fast) <= 128.5)
            exact = rmod_exact(x, p)
            np.testing.assert_array_equal(np.mod(fast - exact, p), np.zeros_like(x))

    @pytest.mark.parametrize("num_moduli", [2, 5, 8, 10])
    def test_matches_exact_for_sgemm_range(self, num_moduli):
        table = build_constant_table(num_moduli, 32)
        alpha = 0.5 * (table.log2_P - 1.5)
        rng = np.random.default_rng(100 + num_moduli)
        x = _random_integer_matrix(rng, (256,), int(alpha))
        for i, p in enumerate(table.moduli):
            fast = rmod_fast_fma(
                x, p, float(table.pinv64[i]), float(table.pinv32[i]), num_moduli, 32
            )
            exact = rmod_exact(x, p)
            np.testing.assert_array_equal(np.mod(fast - exact, p), np.zeros_like(x))

    def test_invalid_precision(self):
        with pytest.raises(ConfigurationError):
            rmod_fast_fma(np.zeros(4), 251, 1 / 251, np.float32(1 / 251), 8, 16)


class TestRmodFastFmaBoundaries:
    """The paper's exact validity-window edges and correction-step
    transitions (Section 4.2): N <= 20 for FP64 inputs, N <= 18 for FP32
    inputs; correction thresholds (N1, N2) = (13, 19) / (5, 11)."""

    @staticmethod
    def _check_window(num_moduli, precision_bits):
        table = build_constant_table(num_moduli, precision_bits)
        alpha = 0.5 * (table.log2_P - 1.5)
        rng = np.random.default_rng(1000 * precision_bits + num_moduli)
        x = _random_integer_matrix(rng, (512,), int(alpha))
        for i, p in enumerate(table.moduli):
            fast = rmod_fast_fma(
                x,
                p,
                float(table.pinv64[i]),
                float(table.pinv32[i]),
                num_moduli,
                precision_bits,
            )
            assert np.all(np.abs(fast) <= 128.5), (num_moduli, p)
            exact = rmod_exact(x, p)
            np.testing.assert_array_equal(np.mod(fast - exact, p), np.zeros_like(x))

    def test_fp64_window_edge_n20(self):
        """N = 20 is the last N the paper states as valid for FP64 inputs."""
        self._check_window(20, 64)

    def test_fp32_window_edge_n18(self):
        """N = 18 is the last N the paper states as valid for FP32 inputs."""
        self._check_window(18, 32)

    @pytest.mark.parametrize("num_moduli", [12, 13, 18, 19])
    def test_fp64_correction_step_transitions(self, num_moduli):
        """Straddle the (N1, N2) = (13, 19) FP64 thresholds: the kernel must
        stay congruent on both sides of each extra-correction activation."""
        self._check_window(num_moduli, 64)

    @pytest.mark.parametrize("num_moduli", [4, 5, 10, 11])
    def test_fp32_correction_step_transitions(self, num_moduli):
        """Straddle the (N1, N2) = (5, 11) FP32 thresholds."""
        self._check_window(num_moduli, 32)

    def test_correction_steps_actually_engage(self):
        """Directly observe the threshold semantics: for an input that needs
        the correction, N below N1 leaves a wide value and N at N1 tightens
        it (FP64 thresholds: N1 = 13)."""
        table = build_constant_table(13, 64)
        p = int(table.moduli[0])
        pinv64, pinv32 = float(table.pinv64[0]), float(table.pinv32[0])
        rng = np.random.default_rng(7)
        x = _random_integer_matrix(rng, (4096,), 55)
        below = rmod_fast_fma(x, p, pinv64, pinv32, 12, 64)
        at = rmod_fast_fma(x, p, pinv64, pinv32, 13, 64)
        # Both are congruent to x mod p...
        np.testing.assert_array_equal(np.mod(below - at, p), np.zeros_like(x))
        # ...and the corrected result is never wider than the uncorrected one.
        assert np.max(np.abs(at)) <= np.max(np.abs(below))


class TestNonnegModInt64SafeLimit:
    """_nonneg_mod_integer_valued straddling the 2**62 int64-safe limit."""

    @pytest.mark.parametrize("p", [256, 251, 199, 29])
    def test_values_straddling_limit(self, p):
        from repro.crt.residues import _INT64_SAFE_LIMIT, _nonneg_mod_integer_valued

        limit = _INT64_SAFE_LIMIT
        # Exactly representable float64 integers around the limit, both signs.
        x = np.array(
            [
                limit - 2**10,
                limit - 1024.0,
                limit,
                limit + 2**11,
                2.0 * limit,
                -(limit - 1024.0),
                -limit,
                -(limit + 2**11),
            ]
        )
        r = _nonneg_mod_integer_valued(x, p)
        assert np.all((r >= 0) & (r < p))
        for xi, ri in zip(x, r, strict=True):
            assert (int(xi) - int(ri)) % p == 0

    def test_mixed_array_uses_wide_path_consistently(self):
        """One element above the limit pushes the whole array down the exact
        split path; small elements must still come out exact."""
        from repro.crt.residues import _INT64_SAFE_LIMIT, _nonneg_mod_integer_valued

        x = np.array([0.0, 1.0, -1.0, 12345.0, _INT64_SAFE_LIMIT * 4])
        for p in (256, 251):
            r = _nonneg_mod_integer_valued(x, p)
            for xi, ri in zip(x, r, strict=True):
                assert (int(xi) - int(ri)) % p == 0
                assert 0 <= ri < p

    def test_just_below_limit_uses_int64_path_exactly(self):
        from repro.crt.residues import _nonneg_mod_integer_valued

        x = np.array([2.0**61, 2.0**61 + 512.0, -(2.0**61)])
        r = _nonneg_mod_integer_valued(x, 251)
        for xi, ri in zip(x, r, strict=True):
            assert (int(xi) - int(ri)) % 251 == 0


class TestModFastMulhi:
    @pytest.mark.parametrize("p_index", [0, 1, 5, 10, 19])
    def test_matches_integer_mod_over_int32_range(self, p_index):
        table = build_constant_table(20, 64)
        p = table.moduli[p_index]
        pinv_prime = int(table.pinv_prime[p_index])
        rng = np.random.default_rng(p_index)
        c = rng.integers(-(2**31), 2**31, 4096).astype(np.int32)
        got = mod_fast_mulhi(c, p, pinv_prime)
        want = np.mod(c.astype(np.int64), p)
        np.testing.assert_array_equal(got, want)

    def test_extreme_int32_values(self):
        table = build_constant_table(5, 64)
        c = np.array([-(2**31), 2**31 - 1, 0, -1, 1], dtype=np.int32)
        for p, pinv_prime in zip(table.moduli, table.pinv_prime, strict=True):
            got = mod_fast_mulhi(c, p, int(pinv_prime))
            want = np.mod(c.astype(np.int64), p)
            np.testing.assert_array_equal(got, want)


class TestResidueStacks:
    def test_residues_to_int8_shape_and_congruence(self):
        rng = np.random.default_rng(0)
        table = build_constant_table(6, 64)
        x = np.trunc(rng.standard_normal((10, 12)) * 1e6)
        stack = residues_to_int8(x, table.moduli)
        assert stack.shape == (6, 10, 12)
        assert stack.dtype == np.int8
        for i, p in enumerate(table.moduli):
            diff = x - stack[i].astype(np.float64)
            np.testing.assert_array_equal(np.mod(diff, p), np.zeros_like(x))

    def test_fast_kernel_stack_matches_exact_stack_mod_p(self):
        rng = np.random.default_rng(1)
        table = build_constant_table(10, 64)
        alpha = 0.5 * (table.log2_P - 1.5)
        x = _random_integer_matrix(rng, (16, 16), int(alpha))
        exact = residues_to_int8(x, table.moduli, kernel="exact")
        fast = residues_to_int8(
            x,
            table.moduli,
            kernel="fast_fma",
            pinv_b=table.pinv64,
            pinv32=table.pinv32,
            precision_bits=64,
        )
        for i, p in enumerate(table.moduli):
            diff = exact[i].astype(np.int64) - fast[i].astype(np.int64)
            assert np.all(diff % p == 0)

    def test_fast_kernel_requires_tables(self):
        with pytest.raises(ConfigurationError):
            residues_to_int8(np.zeros((2, 2)), (256, 255), kernel="fast_fma")

    def test_unknown_kernel(self):
        with pytest.raises(ConfigurationError):
            residues_to_int8(np.zeros((2, 2)), (256, 255), kernel="magic")

    @pytest.mark.parametrize("kernel", ["exact", "fast_fma"])
    @pytest.mark.parametrize("precision_bits", [64, 32])
    def test_single_pass_matches_loop(self, kernel, precision_bits):
        """The broadcast single-pass conversion must be bit-identical to the
        per-modulus loop across kernels and precisions."""
        n_mod = 15 if precision_bits == 64 else 8
        table = build_constant_table(n_mod, precision_bits)
        alpha = 0.5 * (table.log2_P - 1.5)
        rng = np.random.default_rng(precision_bits + n_mod)
        x = _random_integer_matrix(rng, (24, 18), int(alpha))
        kwargs = dict(kernel=kernel)
        if kernel == "fast_fma":
            kwargs.update(
                pinv_b=table.pinv64,
                pinv32=table.pinv32,
                precision_bits=precision_bits,
            )
        fused = residues_to_int8(x, table.moduli, single_pass=True, **kwargs)
        loop = residues_to_int8(x, table.moduli, single_pass=False, **kwargs)
        np.testing.assert_array_equal(fused, loop)
        assert fused.dtype == np.int8

    def test_single_pass_matches_loop_above_int64_limit(self):
        """Values beyond the int64-safe limit take the exact hi/lo split in
        both paths; they must still agree bit-for-bit."""
        from repro.crt.residues import _INT64_SAFE_LIMIT

        table = build_constant_table(18, 64)
        x = np.array(
            [
                [0.0, 1.0, -1.0, 12345.0],
                [_INT64_SAFE_LIMIT, -_INT64_SAFE_LIMIT, 4 * _INT64_SAFE_LIMIT, 2.0**70],
            ]
        )
        fused = residues_to_int8(x, table.moduli, single_pass=True)
        loop = residues_to_int8(x, table.moduli, single_pass=False)
        np.testing.assert_array_equal(fused, loop)

    def test_single_pass_on_3d_input(self):
        """The batched runtime stacks same-shape operands before conversion;
        the broadcast path must handle the extra leading axis."""
        rng = np.random.default_rng(9)
        table = build_constant_table(6, 64)
        x = np.trunc(rng.standard_normal((3, 5, 7)) * 1e6)
        fused = residues_to_int8(x, table.moduli, single_pass=True)
        loop = residues_to_int8(x, table.moduli, single_pass=False)
        assert fused.shape == (6, 3, 5, 7)
        np.testing.assert_array_equal(fused, loop)

    def test_uint8_residues_stack_matches_per_modulus(self):
        from repro.crt.residues import uint8_residues_stack

        table = build_constant_table(12, 64)
        rng = np.random.default_rng(11)
        c_stack = rng.integers(-(2**31), 2**31, (12, 9, 5)).astype(np.int32)
        plain = uint8_residues_stack(c_stack, table.moduli)
        mulhi = uint8_residues_stack(c_stack, table.moduli, table.pinv_prime)
        for i, p in enumerate(table.moduli):
            np.testing.assert_array_equal(plain[i], uint8_residues(c_stack[i], p))
            np.testing.assert_array_equal(
                mulhi[i], uint8_residues(c_stack[i], p, int(table.pinv_prime[i]))
            )
        assert plain.dtype == mulhi.dtype == np.uint8

    def test_hoisted_max_abs_scan_is_respected(self):
        """_nonneg_mod_integer_valued must honour a precomputed max_abs (the
        per-conversion hoist) and stay exact on both sides of the limit."""
        from repro.crt.residues import _INT64_SAFE_LIMIT, _nonneg_mod_integer_valued

        x = np.array([1.0, -7.0, 2.0**40])
        hoisted = _nonneg_mod_integer_valued(x, 251, max_abs=float(2.0**40))
        np.testing.assert_array_equal(hoisted, _nonneg_mod_integer_valued(x, 251))
        # A max_abs above the limit must route the same values down the
        # split path and still return exact remainders.
        wide = _nonneg_mod_integer_valued(x, 251, max_abs=float(2 * _INT64_SAFE_LIMIT))
        np.testing.assert_array_equal(wide, hoisted)

    def test_uint8_residues_with_and_without_mulhi(self):
        table = build_constant_table(4, 64)
        rng = np.random.default_rng(2)
        c = rng.integers(-(2**31), 2**31, (8, 8)).astype(np.int32)
        for i, p in enumerate(table.moduli):
            plain = uint8_residues(c, p)
            fast = uint8_residues(c, p, int(table.pinv_prime[i]))
            np.testing.assert_array_equal(plain, fast)
            assert plain.dtype == np.uint8
            assert np.all(plain < p)
