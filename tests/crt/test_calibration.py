"""Unit tests of the calibrated-bound subsystem (entries, tables, selection).

The calibrated model is a *claim about data* (measured margins) layered on
a theorem (the rigorous bound).  These tests pin the layering: the claimed
margin is observed-minus-guard and never negative, the margin test gates
every tightening, the calibrated bound never touches the roundoff floor,
and selection under ``model="calibrated"`` can only lower the count — with
the rigorous selection standing whenever the margin test fails.
"""

from __future__ import annotations

import pytest

from repro.config import MAX_MODULI
from repro.crt.adaptive import (
    calibrated_relative_bound,
    floor_relative_bound,
    relative_error_bound,
    select_num_moduli,
    truncation_relative_bound,
)
from repro.crt.calibration import (
    DEFAULT_CALIBRATION,
    GUARD_BITS,
    K_BANDS,
    CalibrationEntry,
    CalibrationTable,
)
from repro.errors import ConfigurationError


def make_table(observed: float, guard: float = GUARD_BITS) -> CalibrationTable:
    """A single-band table covering every k the tests use, for both modes."""
    entry = CalibrationEntry(
        k_lo=1, k_hi=4096, observed_margin_bits=observed, guard_bits=guard
    )
    return CalibrationTable(
        entries={
            (64, "fast"): (entry,),
            (64, "accurate"): (entry,),
            (32, "fast"): (entry,),
            (32, "accurate"): (entry,),
        },
        provenance="synthetic (unit test)",
    )


class TestCalibrationEntry:
    def test_claimed_margin_is_observed_minus_guard(self):
        entry = CalibrationEntry(k_lo=1, k_hi=64, observed_margin_bits=5.0)
        assert entry.margin_bits == pytest.approx(5.0 - GUARD_BITS)
        assert entry.margin_test_passes

    def test_guard_consumes_margin(self):
        # Observed margin at or below the guard claims nothing: the margin
        # test fails and the calibrated model must fall back.
        for observed in (0.0, GUARD_BITS / 2, GUARD_BITS):
            entry = CalibrationEntry(k_lo=1, k_hi=64, observed_margin_bits=observed)
            assert entry.margin_bits == 0.0
            assert not entry.margin_test_passes

    @pytest.mark.parametrize("lo, hi", [(0, 16), (-1, 4), (17, 16)])
    def test_rejects_bad_band(self, lo, hi):
        with pytest.raises(ConfigurationError, match="k_lo"):
            CalibrationEntry(k_lo=lo, k_hi=hi, observed_margin_bits=4.0)

    def test_rejects_negative_guard(self):
        with pytest.raises(ConfigurationError, match="guard_bits"):
            CalibrationEntry(
                k_lo=1, k_hi=16, observed_margin_bits=4.0, guard_bits=-0.5
            )


class TestCalibrationTable:
    def test_entry_for_band_boundaries(self):
        for lo, hi in K_BANDS:
            for k in (lo, hi):
                entry = DEFAULT_CALIBRATION.entry_for(k, 64, "fast")
                assert entry is not None
                assert entry.k_lo == lo and entry.k_hi == hi

    def test_entry_for_uncovered_k_is_none(self):
        beyond = K_BANDS[-1][1] + 1
        assert DEFAULT_CALIBRATION.entry_for(beyond, 64, "fast") is None

    def test_entry_for_unknown_precision_or_mode_is_none(self):
        assert DEFAULT_CALIBRATION.entry_for(64, 16, "fast") is None
        assert DEFAULT_CALIBRATION.entry_for(64, 64, "turbo") is None


class TestDefaultCalibration:
    def test_covers_every_precision_mode_and_band(self):
        for bits in (64, 32):
            for mode in ("fast", "accurate"):
                bands = DEFAULT_CALIBRATION.entries[(bits, mode)]
                assert tuple((e.k_lo, e.k_hi) for e in bands) == K_BANDS

    def test_bands_are_contiguous_and_margins_grow_with_k(self):
        # The conservatism of the sum bound grows with k; a shipped table
        # where a larger band claims *less* margin than a smaller one would
        # mean the fit regressed (or the bands were transposed).
        for bands in DEFAULT_CALIBRATION.entries.values():
            for left, right in zip(bands, bands[1:], strict=False):
                assert right.k_lo == left.k_hi + 1
                assert right.observed_margin_bits > left.observed_margin_bits

    def test_every_shipped_band_passes_the_margin_test(self):
        for bands in DEFAULT_CALIBRATION.entries.values():
            for entry in bands:
                assert entry.guard_bits == GUARD_BITS
                assert entry.margin_test_passes

    def test_provenance_is_recorded(self):
        assert "sensitivity_sweep" in DEFAULT_CALIBRATION.provenance


class TestCalibratedRelativeBound:
    def test_tightens_only_the_truncation_term(self):
        k, n = 256, 8
        cal = calibrated_relative_bound(k, n, 64, "fast")
        rig = relative_error_bound(k, n, 64, "fast")
        floor = floor_relative_bound(k, 64)
        entry = DEFAULT_CALIBRATION.entry_for(k, 64, "fast")
        assert cal is not None and entry is not None
        assert cal < rig
        assert cal > floor  # the floor is charged in full, never tightened
        expected = (
            truncation_relative_bound(k, n, 64, "fast") * 2.0**-entry.margin_bits
            + floor
        )
        assert cal == pytest.approx(expected, rel=1e-12)

    def test_none_beyond_calibrated_range(self):
        assert calibrated_relative_bound(K_BANDS[-1][1] + 1, 8, 64, "fast") is None

    def test_none_when_guard_consumes_margin(self):
        table = make_table(observed=GUARD_BITS)  # claims exactly nothing
        assert calibrated_relative_bound(64, 8, 64, "fast", table) is None

    def test_custom_table_margin_applied(self):
        table = make_table(observed=GUARD_BITS + 3.0)
        cal = calibrated_relative_bound(64, 8, 64, "fast", table)
        floor = floor_relative_bound(64, 64)
        trunc = truncation_relative_bound(64, 8, 64, "fast")
        assert cal == pytest.approx(trunc * 2.0**-3.0 + floor, rel=1e-12)


class TestCalibratedSelection:
    def test_never_raises_the_count(self):
        for k in (8, 64, 256, 1024, 4096):
            for bits, mode in ((64, "fast"), (64, "accurate"), (32, "fast")):
                sel = select_num_moduli(k, 1.0, 1.0, bits, mode=mode, model="calibrated")
                assert sel.rigorous_num_moduli is not None
                assert sel.num_moduli <= sel.rigorous_num_moduli

    def test_decided_by_bookkeeping(self):
        # k=1024 at a target just below the rigorous N=10 boundary: the
        # shipped band's margin licenses a two-modulus drop (the benchmark
        # headline), and the diagnostics must say so.
        sel = select_num_moduli(1024, 1.0, 1.0, 64, target=5e-10, model="calibrated")
        assert sel.decided_by == "calibrated"
        assert sel.model == "calibrated"
        assert sel.num_moduli < sel.rigorous_num_moduli
        assert sel.calibration_margin_bits > 0.0
        assert sel.relative_bound <= 5e-10

    def test_rigorous_decides_when_nothing_claimable(self):
        table = make_table(observed=0.0)  # margin test always fails
        sel = select_num_moduli(
            1024, 1.0, 1.0, 64, target=5e-10, model="calibrated", calibration=table
        )
        rig = select_num_moduli(1024, 1.0, 1.0, 64, target=5e-10, model="rigorous")
        assert sel.decided_by == "rigorous"
        assert sel.num_moduli == rig.num_moduli == sel.rigorous_num_moduli
        assert sel.calibration_margin_bits == 0.0

    def test_uncalibrated_k_falls_back(self):
        beyond = K_BANDS[-1][1] + 1
        cal = select_num_moduli(beyond, 1.0, 1.0, 64, model="calibrated")
        rig = select_num_moduli(beyond, 1.0, 1.0, 64, model="rigorous")
        assert cal.decided_by == "rigorous"
        assert cal.num_moduli == rig.num_moduli

    def test_huge_custom_margin_drops_to_minimum_but_never_below(self):
        table = make_table(observed=200.0)
        sel = select_num_moduli(
            256, 1.0, 1.0, 64, target=1e-6, model="calibrated", calibration=table
        )
        assert sel.num_moduli >= 2
        assert sel.decided_by == "calibrated"

    def test_unreachable_target_never_consults_calibration(self):
        # met=False (clamped) selections must not be "rescued" by the
        # calibrated model: the rigorous clamp stands.
        sel = select_num_moduli(2**16, 1.0, 1.0, 64, target=1e-15, model="calibrated")
        assert not sel.met
        assert sel.decided_by == "rigorous"
        assert sel.num_moduli == MAX_MODULI

    def test_rejects_unknown_model(self):
        with pytest.raises(ConfigurationError, match="selection model"):
            select_num_moduli(64, 1.0, 1.0, 64, model="vibes")
