"""Tier-1 checks on committed benchmark artifacts.

The kernel-fusion benchmark (``benchmarks/test_bench_kernel_fusion.py``)
archives its fused-vs-loop comparison in
``benchmarks/results/kernel_fusion.txt``, and the GEMV fast-path benchmark
(``benchmarks/test_bench_gemv_fast_path.py``) archives its per-iteration
latency comparison in ``benchmarks/results/gemv_fast_path.txt``; the tables
are committed so the measured speedups travel with the repository and CI
uploads fresh copies from the smoke job.  These tests assert the committed
artifacts exist and still parse: both execution paths present, and the
committed speedup claims recoverable — and still meeting their acceptance
floors — from the speedup columns.
"""

from __future__ import annotations

import pathlib
import re

import pytest

_RESULTS = pathlib.Path(__file__).resolve().parents[1] / "benchmarks" / "results"
KERNEL_FUSION_RESULT = _RESULTS / "kernel_fusion.txt"
GEMV_FAST_PATH_RESULT = _RESULTS / "gemv_fast_path.txt"
ADAPTIVE_MODULI_RESULT = _RESULTS / "adaptive_moduli.txt"
SERVE_THROUGHPUT_RESULT = _RESULTS / "serve_throughput.txt"
PROCESS_SCALING_RESULT = _RESULTS / "process_scaling.txt"
RUNTIME_SCALING_RESULT = _RESULTS / "runtime_scaling.txt"


def _parse_rows(text: str):
    """Parse the rendered ASCII table into dictionaries keyed by header.

    Columns are separated by runs of two or more spaces (cell values such
    as the method name ``OS II-fast-15`` contain single spaces).
    """
    lines = [line.rstrip() for line in text.splitlines() if line.strip()]
    # Locate the header row: it is immediately above the dashed separator.
    sep_idx = next(
        i for i, line in enumerate(lines) if line.lstrip().startswith("---")
    )
    split = re.compile(r"\s{2,}")
    header = split.split(lines[sep_idx - 1].strip())
    rows = []
    for line in lines[sep_idx + 1 :]:
        cells = split.split(line.strip())
        if len(cells) != len(header):
            continue
        rows.append(dict(zip(header, cells, strict=True)))
    return rows


def _all_result_files():
    return sorted(_RESULTS.glob("*.txt"))


@pytest.mark.parametrize(
    "path", _all_result_files(), ids=lambda p: p.stem if p else "none"
)
def test_every_artifact_carries_provenance(path):
    """Every committed results file opens with a machine-readable
    provenance stamp: where, when and from which revision the numbers
    came (``repro.harness.provenance``).  An artifact without one cannot
    be audited — regenerate it via its benchmark."""
    from repro.harness.provenance import SCHEMA, parse_provenance

    fields = parse_provenance(path.read_text())
    assert fields, f"{path.name} carries no provenance header"
    for key in (
        "schema",
        "generated",
        "host",
        "cpus",
        "python",
        "numpy",
        "repro_version",
        "git_sha",
        "artifact",
    ):
        assert key in fields, f"{path.name} provenance is missing {key!r}"
    assert fields["schema"] == SCHEMA
    assert fields["artifact"] == path.stem
    assert int(fields["cpus"]) >= 1


def test_results_directory_is_populated():
    names = {p.stem for p in _all_result_files()}
    assert {
        "kernel_fusion",
        "gemv_fast_path",
        "adaptive_moduli",
        "calibration_qc",
        "process_scaling",
        "runtime_scaling",
        "serve_throughput",
    } <= names


def test_kernel_fusion_speedup_file_exists_and_parses():
    assert KERNEL_FUSION_RESULT.exists(), (
        "benchmarks/results/kernel_fusion.txt is missing; run "
        "`pytest benchmarks/test_bench_kernel_fusion.py` to regenerate it"
    )
    rows = _parse_rows(KERNEL_FUSION_RESULT.read_text())
    paths = {row["path"] for row in rows}
    assert {"fused", "per-modulus"} <= paths
    fused_speedups = [
        float(row["speedup_vs_loop"]) for row in rows if row["path"] == "fused"
    ]
    assert fused_speedups, "no fused rows in kernel_fusion.txt"
    assert all(s > 0.0 for s in fused_speedups)
    # Every archived row must certify the fusion guarantees.
    assert all(row["bit_identical"] == "True" for row in rows)
    assert all(row["ledger_equal"] == "True" for row in rows)


def test_gemv_fast_path_file_exists_and_parses():
    assert GEMV_FAST_PATH_RESULT.exists(), (
        "benchmarks/results/gemv_fast_path.txt is missing; run "
        "`pytest benchmarks/test_bench_gemv_fast_path.py` to regenerate it"
    )
    rows = _parse_rows(GEMV_FAST_PATH_RESULT.read_text())
    routes = {row["route"] for row in rows}
    assert {"gemv-fast", "gemm-n1"} <= routes
    # The archived per-iteration latencies back the committed speedup claim:
    # the fast path must stay >= 2x below the n=1 GEMM route at the
    # 4096x4096 acceptance scale.
    by_route = {row["route"]: row for row in rows}
    fast = by_route["gemv-fast"]
    assert float(fast["speedup_vs_gemm"]) >= 2.0
    assert float(fast["per_iter_seconds"]) <= 0.5 * float(
        by_route["gemm-n1"]["per_iter_seconds"]
    )
    assert all(row["n"] == "4096" for row in rows)
    # Every archived row must certify the fast-path guarantees.
    assert all(row["bit_identical"] == "True" for row in rows)
    assert all(row["ledger_equal"] == "True" for row in rows)


def test_adaptive_moduli_file_exists_and_parses():
    assert ADAPTIVE_MODULI_RESULT.exists(), (
        "benchmarks/results/adaptive_moduli.txt is missing; run "
        "`pytest benchmarks/test_bench_adaptive_moduli.py` to regenerate it"
    )
    text = ADAPTIVE_MODULI_RESULT.read_text()
    gemm_text, solver_text = text.split("\n\n", 1)

    rows = _parse_rows(gemm_text)
    assert rows, "no auto-N rows in adaptive_moduli.txt"
    # Every archived family must certify the adaptive guarantees: measured
    # error within the model's bound, bitwise equality with the fixed-count
    # comparator, selection at or below the table ceiling and strictly
    # below the fixed default.
    assert all(row["within_bound"] == "True" for row in rows)
    assert all(row["bit_identical"] == "True" for row in rows)
    assert all(2 <= int(row["n_auto"]) <= 20 for row in rows)
    assert all(int(row["n_auto"]) < int(row["n_fixed"]) for row in rows)
    # The committed headline claim: >= 1.3x end-to-end on the small-k
    # well-scaled fp64 family at the default accuracy target.
    headline = rows[0]
    assert headline["precision"] == "fp64"
    assert float(headline["speedup"]) >= 1.3
    # The calibrated model's committed claims: no family ever selects
    # above its rigorous count; the deep-k family is lowered by the
    # calibration (the two-modulus headline) while the small-k family
    # documents the guaranteed-safe fallback deciding.
    assert all(int(row["n_auto"]) <= int(row["n_rigorous"]) for row in rows)
    by_family = {row["family"]: row for row in rows}
    deepk = by_family["fp64-deepk"]
    assert deepk["decided_by"] == "calibrated"
    assert int(deepk["n_auto"]) <= 9 < int(deepk["n_rigorous"])
    assert by_family["fp64-smallk"]["decided_by"] == "rigorous"

    solver_rows = _parse_rows(solver_text)
    routes = {row["route"]: row for row in solver_rows}
    assert {"fixed", "progressive"} <= set(routes)
    assert all(row["converged"] == "True" for row in solver_rows)
    prog, fixed = routes["progressive"], routes["fixed"]
    # Same final residual check, within the fixed-count wall clock.
    assert float(prog["residual"]) <= float(prog["tol"])
    assert float(prog["seconds"]) <= float(fixed["seconds"])
    # The schedule must escalate and end at the fixed count.
    stages = [int(seg.split("x")[0]) for seg in prog["schedule"].split("->")]
    assert stages == sorted(stages)
    assert stages[-1] == int(fixed["schedule"].split("x")[0])


def test_calibration_qc_file_exists_and_parses():
    path = _RESULTS / "calibration_qc.txt"
    assert path.exists(), (
        "benchmarks/results/calibration_qc.txt is missing; run "
        "`pytest benchmarks/test_bench_calibration_qc.py` to regenerate it"
    )
    control_text, sweep_text, margin_text = path.read_text().split("\n\n", 2)

    controls = _parse_rows(control_text)
    assert controls, "no negative-control rows in calibration_qc.txt"
    # Red controls invalidate every other number in the file.
    assert all(row["control_ok"] == "True" for row in controls)

    sweep = _parse_rows(sweep_text)
    assert sweep, "no sensitivity rows in calibration_qc.txt"
    assert all(row["within_bound"] == "True" for row in sweep)

    margins = _parse_rows(margin_text)
    assert margins, "no margin rows in calibration_qc.txt"
    # The shipped calibration must not claim more margin than the archived
    # run measured on the same band.
    assert all(row["shipped_not_stale"] == "True" for row in margins)


def test_process_scaling_file_exists_and_parses():
    assert PROCESS_SCALING_RESULT.exists(), (
        "benchmarks/results/process_scaling.txt is missing; run "
        "`pytest benchmarks/test_bench_process_scaling.py` to regenerate it"
    )
    rows = _parse_rows(PROCESS_SCALING_RESULT.read_text())
    executors = {row["executor"] for row in rows}
    assert {"thread", "process"} <= executors
    # Every archived row must certify the runtime's backend-independence
    # guarantees against the serial baseline.
    assert all(row["bit_identical"] == "True" for row in rows)
    assert all(row["ledger_equal"] == "True" for row in rows)
    # The host the numbers came from must be recorded — a sub-1x process
    # speedup on a 1-CPU container and on a 16-core box mean different
    # things, and the >=1.5x acceptance floor only binds on >=4 CPUs.
    assert all(int(row["host_cpus"]) >= 1 for row in rows)
    # The phase breakdown that motivated the backend must be present.
    headline = rows[0]
    for phase in ("phase_convert_A", "phase_matmul", "phase_accumulate"):
        assert float(headline[phase]) >= 0.0


def test_runtime_scaling_file_exists_and_parses():
    assert RUNTIME_SCALING_RESULT.exists(), (
        "benchmarks/results/runtime_scaling.txt is missing; run "
        "`pytest benchmarks/test_bench_runtime_scaling.py` to regenerate it"
    )
    text = RUNTIME_SCALING_RESULT.read_text()
    rows = _parse_rows(text.split("\n\n", 1)[0])
    assert rows, "no scaling rows in runtime_scaling.txt"
    assert all(row["bit_identical"] == "True" for row in rows)
    assert all(int(row["host_cpus"]) >= 1 for row in rows)
    workers = {int(row["workers"]) for row in rows}
    assert 1 in workers and any(w > 1 for w in workers)


def test_serve_throughput_file_exists_and_parses():
    assert SERVE_THROUGHPUT_RESULT.exists(), (
        "benchmarks/results/serve_throughput.txt is missing; run "
        "`pytest benchmarks/test_bench_serve_throughput.py` to regenerate it"
    )
    text = SERVE_THROUGHPUT_RESULT.read_text()
    throughput_text, cache_text = text.split("\n\n", 1)

    rows = _parse_rows(throughput_text)
    assert rows, "no throughput rows in serve_throughput.txt"
    headline = rows[0]
    assert headline["trace"] == "gemv-reuse"
    # Warm fingerprint hits are served from the very operand a cold upload
    # would have produced.
    assert headline["bit_identical"] == "True"
    assert float(headline["hit_rate"]) >= 0.9
    # The committed headline claim: warm-hit requests/sec >= 2x the
    # cold-miss rate on the reuse-heavy trace.
    assert float(headline["speedup"]) >= 2.0
    assert float(headline["rps_warm"]) >= 2.0 * float(headline["rps_cold"])

    cache_rows = _parse_rows(cache_text)
    assert cache_rows, "no cache-capacity rows in serve_throughput.txt"
    # Hit rate must not decrease as the LRU budget grows, and a budget
    # covering the working set must serve the steady state evictionless.
    hit_rates = [float(row["hit_rate"]) for row in cache_rows]
    assert hit_rates == sorted(hit_rates)
    full_row = cache_rows[-1]
    assert int(full_row["capacity_entries"]) >= int(full_row["working_set"])
    assert int(full_row["evictions"]) == 0
