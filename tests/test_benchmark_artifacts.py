"""Tier-1 checks on committed benchmark artifacts.

The kernel-fusion benchmark (``benchmarks/test_bench_kernel_fusion.py``)
archives its fused-vs-loop comparison in
``benchmarks/results/kernel_fusion.txt``; the table is committed so the
measured speedup travels with the repository and CI uploads a fresh copy
from the smoke job.  This test asserts the committed artifact exists and
still parses: both execution paths present, and a positive fused speedup
factor recoverable from the ``speedup_vs_loop`` column.
"""

from __future__ import annotations

import pathlib
import re

KERNEL_FUSION_RESULT = (
    pathlib.Path(__file__).resolve().parents[1]
    / "benchmarks"
    / "results"
    / "kernel_fusion.txt"
)


def _parse_rows(text: str):
    """Parse the rendered ASCII table into dictionaries keyed by header.

    Columns are separated by runs of two or more spaces (cell values such
    as the method name ``OS II-fast-15`` contain single spaces).
    """
    lines = [line.rstrip() for line in text.splitlines() if line.strip()]
    # Locate the header row: it is immediately above the dashed separator.
    sep_idx = next(
        i for i, line in enumerate(lines) if line.lstrip().startswith("---")
    )
    split = re.compile(r"\s{2,}")
    header = split.split(lines[sep_idx - 1].strip())
    rows = []
    for line in lines[sep_idx + 1 :]:
        cells = split.split(line.strip())
        if len(cells) != len(header):
            continue
        rows.append(dict(zip(header, cells)))
    return rows


def test_kernel_fusion_speedup_file_exists_and_parses():
    assert KERNEL_FUSION_RESULT.exists(), (
        "benchmarks/results/kernel_fusion.txt is missing; run "
        "`pytest benchmarks/test_bench_kernel_fusion.py` to regenerate it"
    )
    rows = _parse_rows(KERNEL_FUSION_RESULT.read_text())
    paths = {row["path"] for row in rows}
    assert {"fused", "per-modulus"} <= paths
    fused_speedups = [
        float(row["speedup_vs_loop"]) for row in rows if row["path"] == "fused"
    ]
    assert fused_speedups, "no fused rows in kernel_fusion.txt"
    assert all(s > 0.0 for s in fused_speedups)
    # Every archived row must certify the fusion guarantees.
    assert all(row["bit_identical"] == "True" for row in rows)
    assert all(row["ledger_equal"] == "True" for row in rows)
