"""Session facade: transparent caching, bit-identity, unified results, shims.

The contract under test is the redesign's core promise: routing a call
through :class:`repro.Session` — cache hit or miss — changes **no bit** of
any result relative to the historical free functions, while the session
ledger observably records the caching.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

import repro
from repro.apps.solvers import SolveResult, cg_solve
from repro.config import Ozaki2Config
from repro.core.gemm import ozaki2_gemm
from repro.core.gemv import GemvResult, prepared_gemv
from repro.errors import ValidationError
from repro.result import GemmResult, Result


@pytest.fixture
def cfg():
    return Ozaki2Config.for_dgemm(num_moduli=12)


@pytest.fixture
def pair(rng):
    a = rng.standard_normal((40, 32))
    b = rng.standard_normal((32, 24))
    return a, b


class TestSessionBitIdentity:
    def test_gemm_matches_free_function(self, cfg, pair):
        a, b = pair
        with repro.Session(cfg) as session:
            cold = session.gemm(a, b)
            warm = session.gemm(a, b)
        direct = ozaki2_gemm(a, b, config=cfg)
        assert np.array_equal(cold.value, direct)
        assert np.array_equal(warm.value, direct)

    def test_gemv_matches_free_function(self, cfg, rng):
        a = rng.standard_normal((48, 36))
        x = rng.standard_normal(36)
        with repro.Session(cfg) as session:
            cold = session.gemv(a, x)
            warm = session.gemv(a, x)
        direct = prepared_gemv(a, x, config=cfg)
        assert np.array_equal(cold.value, direct)
        assert np.array_equal(warm.value, direct)

    def test_gemm_batched_matches_individual(self, cfg, rng):
        shared = rng.standard_normal((24, 20))
        bs = [rng.standard_normal((20, 16)) for _ in range(3)]
        with repro.Session(cfg) as session:
            batch = session.gemm_batched([shared] * 3, bs)
            singles = [session.gemm(shared, b) for b in bs]
        for got, want in zip(batch, singles, strict=True):
            assert np.array_equal(got.value, want.value)

    def test_solve_matches_free_function(self, cfg, rng):
        n = 24
        q = np.linalg.qr(rng.standard_normal((n, n)))[0]
        a = q @ np.diag(np.linspace(1.0, 10.0, n)) @ q.T
        b = rng.standard_normal(n)
        with repro.Session(cfg) as session:
            res = session.solve(a, b, method="cg", tol=1e-10)
        direct = cg_solve(a, b, config=cfg, tol=1e-10)
        assert res.converged and direct.converged
        assert np.array_equal(res.value, direct.value)

    def test_disabled_cache_still_bit_identical(self, cfg, pair):
        a, b = pair
        with repro.Session(cfg, cache_bytes=0) as session:
            res = session.gemm(a, b)
            assert session.ledger.cache_hits == 0
            assert session.ledger.cache_misses == 0
        assert np.array_equal(res.value, ozaki2_gemm(a, b, config=cfg))


class TestSessionCaching:
    def test_gemm_reuse_hits_the_cache(self, cfg, pair):
        a, b = pair
        with repro.Session(cfg) as session:
            session.gemm(a, b)
            assert session.ledger.cache_misses == 2  # A and B converted
            assert session.ledger.cache_hits == 0
            session.gemm(a, b)
            assert session.ledger.cache_hits == 2
            assert session.ledger.cache_misses == 2
            assert len(session.cache) == 2

    def test_equal_content_different_objects_share_entries(self, cfg, pair):
        a, b = pair
        with repro.Session(cfg) as session:
            session.gemm(a, b)
            session.gemm(a.copy(), b.copy())
            assert session.ledger.cache_hits == 2
            assert len(session.cache) == 2

    def test_prepare_warms_gemv(self, cfg, rng):
        a = rng.standard_normal((32, 32))
        with repro.Session(cfg) as session:
            operand = session.prepare(a, side="A")
            assert session.ledger.cache_misses == 1
            result = session.gemv(a, rng.standard_normal(32))
            assert session.ledger.cache_hits == 1
            assert result.phase_times.seconds["convert_A"] == 0.0
            assert operand.fingerprint == repro.matrix_fingerprint(a)

    def test_solve_reuses_prepared_matrix(self, cfg, rng):
        n = 20
        q = np.linalg.qr(rng.standard_normal((n, n)))[0]
        a = q @ np.diag(np.linspace(1.0, 5.0, n)) @ q.T
        b = rng.standard_normal(n)
        with repro.Session(cfg) as session:
            first = session.solve(a, b, method="cg", tol=1e-10)
            second = session.solve(a, b, method="cg", tol=1e-10)
        # The session injected the cached conversion: the warm solve's
        # preparation phase is exactly zero, and the answers are identical.
        assert second.prepare_seconds == 0.0
        assert first.iterations == second.iterations
        assert np.array_equal(first.value, second.value)

    def test_gemm_then_solve_shares_the_entry(self, cfg, rng):
        n = 20
        q = np.linalg.qr(rng.standard_normal((n, n)))[0]
        a = q @ np.diag(np.linspace(1.0, 5.0, n)) @ q.T
        with repro.Session(cfg) as session:
            session.gemm(a, np.eye(n))
            res = session.solve(a, rng.standard_normal(n), method="cg", tol=1e-10)
        assert res.prepare_seconds == 0.0

    def test_unknown_method_raises(self, cfg, rng):
        with repro.Session(cfg) as session:
            with pytest.raises(ValidationError, match="unknown solve method"):
                session.solve(np.eye(4), np.ones(4), method="gauss")

    def test_closed_session_rejects_calls(self, cfg, pair):
        a, b = pair
        session = repro.Session(cfg)
        session.close()
        with pytest.raises(ValidationError, match="closed"):
            session.gemm(a, b)

    def test_stats_shape(self, cfg, pair):
        a, b = pair
        with repro.Session(cfg) as session:
            session.gemm(a, b)
            stats = session.stats()
        assert stats["requests"] == 1
        assert stats["method"] == cfg.method_name
        assert stats["cache"]["entries"] == 2
        assert stats["ledger"]["cache_misses"] == 2
        assert stats["uptime_seconds"] > 0.0


class TestResultUnification:
    def test_result_hierarchy(self):
        assert issubclass(GemmResult, Result)
        assert issubclass(GemvResult, Result)
        assert issubclass(SolveResult, Result)
        assert repro.Ozaki2Result is GemmResult

    def test_gemm_result_aliases(self, cfg, pair):
        a, b = pair
        with repro.Session(cfg) as session:
            result = session.gemm(a, b)
        assert result.c is result.value
        assert result.method_name == cfg.method_name
        assert set(result.phase_times.seconds) >= {"convert_A", "convert_B"}

    def test_solve_result_alias(self, cfg, rng):
        n = 12
        q = np.linalg.qr(rng.standard_normal((n, n)))[0]
        a = q @ np.diag(np.linspace(1.0, 3.0, n)) @ q.T
        with repro.Session(cfg) as session:
            result = session.solve(a, rng.standard_normal(n), method="jacobi")
        assert result.x is result.value


class TestDeprecatedShims:
    def test_warns_once_then_stays_quiet(self, cfg, pair):
        a, b = pair
        repro.reset_deprecation_warnings()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            repro.ozaki2_gemm(a, b, config=cfg)
            repro.ozaki2_gemm(a, b, config=cfg)
        relevant = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(relevant) == 1
        assert "Session" in str(relevant[0].message)

    def test_shim_bit_identical_to_session_and_module(self, cfg, pair):
        a, b = pair
        repro.reset_deprecation_warnings()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            shimmed = repro.ozaki2_gemm(a, b, config=cfg)
            prep = repro.prepare_a(np.ascontiguousarray(a), config=cfg)
        direct = ozaki2_gemm(a, b, config=cfg)
        with repro.Session(cfg) as session:
            via_session = session.gemm(a, b)
        assert np.array_equal(shimmed, direct)
        assert np.array_equal(via_session.value, direct)
        assert prep.fingerprint == repro.matrix_fingerprint(
            np.ascontiguousarray(a)
        )
