"""Tests for repro.config (Ozaki2Config, ComputeMode, ResidueKernel)."""

from __future__ import annotations

import pytest

from repro.config import (
    ComputeMode,
    DEFAULT_MODULI_DGEMM,
    DEFAULT_MODULI_SGEMM,
    MAX_K_WITHOUT_BLOCKING,
    MAX_MODULI,
    Ozaki2Config,
    ResidueKernel,
)
from repro.errors import ConfigurationError
from repro.types import FP32, FP64


class TestComputeMode:
    @pytest.mark.parametrize(
        "value, expected",
        [
            ("fast", ComputeMode.FAST),
            ("f", ComputeMode.FAST),
            ("accurate", ComputeMode.ACCURATE),
            ("accu", ComputeMode.ACCURATE),
            ("a", ComputeMode.ACCURATE),
            (ComputeMode.FAST, ComputeMode.FAST),
        ],
    )
    def test_parse(self, value, expected):
        assert ComputeMode.parse(value) is expected

    def test_parse_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            ComputeMode.parse("turbo")


class TestResidueKernel:
    def test_parse(self):
        assert ResidueKernel.parse("exact") is ResidueKernel.EXACT
        assert ResidueKernel.parse("fast_fma") is ResidueKernel.FAST_FMA
        assert ResidueKernel.parse(ResidueKernel.EXACT) is ResidueKernel.EXACT

    def test_parse_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            ResidueKernel.parse("simd")


class TestOzaki2Config:
    def test_defaults(self):
        cfg = Ozaki2Config()
        assert cfg.precision is FP64
        assert cfg.num_moduli == DEFAULT_MODULI_DGEMM
        assert cfg.mode is ComputeMode.FAST
        assert cfg.residue_kernel is ResidueKernel.EXACT
        assert cfg.block_k is True
        assert cfg.is_dgemm and not cfg.is_sgemm

    def test_for_dgemm_and_sgemm(self):
        d = Ozaki2Config.for_dgemm()
        s = Ozaki2Config.for_sgemm()
        assert d.is_dgemm and d.num_moduli == DEFAULT_MODULI_DGEMM
        assert s.is_sgemm and s.num_moduli == DEFAULT_MODULI_SGEMM

    def test_precision_coercion_from_string(self):
        cfg = Ozaki2Config(precision="fp32", num_moduli=8)
        assert cfg.precision is FP32

    def test_mode_coercion_from_string(self):
        cfg = Ozaki2Config(mode="accu")
        assert cfg.mode is ComputeMode.ACCURATE

    def test_method_name(self):
        assert Ozaki2Config.for_dgemm(14).method_name == "OS II-fast-14"
        assert Ozaki2Config.for_sgemm(7, mode="accurate").method_name == "OS II-accu-7"

    @pytest.mark.parametrize("bad_n", [0, 1, MAX_MODULI + 1, 100, -3])
    def test_num_moduli_bounds(self, bad_n):
        with pytest.raises(ConfigurationError):
            Ozaki2Config(num_moduli=bad_n)

    def test_non_target_precision_rejected(self):
        with pytest.raises(ConfigurationError):
            Ozaki2Config(precision="fp16")

    def test_replace_returns_new_config(self):
        cfg = Ozaki2Config.for_dgemm(14)
        other = cfg.replace(num_moduli=16)
        assert other.num_moduli == 16
        assert cfg.num_moduli == 14
        assert other.precision is cfg.precision

    def test_constants(self):
        assert MAX_MODULI == 20
        assert MAX_K_WITHOUT_BLOCKING == 2**17


class TestRuntimeKnobValidation:
    """Invalid runtime knobs fail at construction, not deep in the runtime."""

    @pytest.mark.parametrize("bad_workers", [0, -1, -8])
    def test_parallelism_must_be_positive(self, bad_workers):
        with pytest.raises(ConfigurationError, match="parallelism"):
            Ozaki2Config(parallelism=bad_workers)

    def test_parallelism_accepts_positive_counts(self):
        assert Ozaki2Config(parallelism=1).parallelism == 1
        assert Ozaki2Config(parallelism=16).parallelism == 16

    @pytest.mark.parametrize("bad_budget", [0.0, -1.0, -0.5, float("nan")])
    def test_memory_budget_must_be_positive(self, bad_budget):
        with pytest.raises(ConfigurationError, match="memory_budget_mb"):
            Ozaki2Config(memory_budget_mb=bad_budget)

    def test_memory_budget_none_and_positive_accepted(self):
        assert Ozaki2Config(memory_budget_mb=None).memory_budget_mb is None
        assert Ozaki2Config(memory_budget_mb=0.25).memory_budget_mb == 0.25

    def test_replace_revalidates(self):
        cfg = Ozaki2Config(parallelism=2)
        with pytest.raises(ConfigurationError):
            cfg.replace(parallelism=0)
        with pytest.raises(ConfigurationError):
            cfg.replace(memory_budget_mb=-2.0)
