"""Tests for the paper-name method registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.registry import MethodSpec, available_methods, get_method
from repro.config import ComputeMode
from repro.errors import ConfigurationError
from repro.types import FP32, FP64


class TestNameParsing:
    @pytest.mark.parametrize(
        "name, family, target",
        [
            ("DGEMM", "native", FP64),
            ("SGEMM", "native", FP32),
            ("TF32GEMM", "tf32", FP32),
            ("BF16x9", "bf16x9", FP32),
            ("cuMpSGEMM", "cumpsgemm", FP32),
        ],
    )
    def test_fixed_names(self, name, family, target):
        spec = get_method(name)
        assert spec.family == family
        assert spec.target is target
        assert spec.name.lower() == name.lower()

    def test_ozimmu_names(self):
        spec = get_method("ozIMMU_EF-9")
        assert spec.family == "ozimmu"
        assert spec.num_slices == 9
        assert spec.name == "ozIMMU_EF-9"
        assert get_method("ozimmu-5").num_slices == 5

    def test_ozaki2_names(self):
        spec = get_method("OS II-fast-14")
        assert spec.family == "ozaki2"
        assert spec.num_moduli == 14
        assert spec.mode is ComputeMode.FAST
        assert spec.target is FP64

        spec32 = get_method("OS II-accu-8", target="fp32")
        assert spec32.mode is ComputeMode.ACCURATE
        assert spec32.target is FP32
        assert spec32.name == "OS II-accu-8"

    def test_ozaki2_accurate_long_form(self):
        assert get_method("OS II-accurate-7").mode is ComputeMode.ACCURATE

    def test_case_insensitive_native(self):
        assert get_method("dgemm").name == "DGEMM"

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            get_method("FP8GEMM")

    def test_available_methods_lists_templates(self):
        names = available_methods()
        assert "DGEMM" in names
        assert any("OS II" in n for n in names)


class TestSpecsAreRunnable:
    @pytest.mark.parametrize(
        "name, target",
        [
            ("DGEMM", "fp64"),
            ("SGEMM", "fp32"),
            ("TF32GEMM", "fp32"),
            ("BF16x9", "fp32"),
            ("cuMpSGEMM", "fp32"),
            ("ozIMMU_EF-5", "fp64"),
            ("OS II-fast-10", "fp64"),
            ("OS II-accu-6", "fp32"),
        ],
    )
    def test_callable_produces_reasonable_product(self, name, target, rng):
        spec = get_method(name, target=target)
        a = rng.standard_normal((24, 32))
        b = rng.standard_normal((32, 16))
        if target == "fp32":
            a = a.astype(np.float32)
            b = b.astype(np.float32)
        c = spec(a, b)
        exact = a.astype(np.float64) @ b.astype(np.float64)
        assert c.shape == (24, 16)
        rel = np.abs(c.astype(np.float64) - exact) / np.linalg.norm(exact, np.inf)
        tolerance = 1e-2 if name == "TF32GEMM" else 1e-3
        assert np.max(rel) < tolerance

    def test_spec_is_dataclass_with_call(self, rng):
        spec = get_method("DGEMM")
        assert isinstance(spec, MethodSpec)
        a = rng.standard_normal((4, 4))
        np.testing.assert_array_equal(spec(a, a), spec.run(a, a))
