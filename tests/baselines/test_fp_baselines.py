"""Tests for the floating-point baselines: native, TF32, BF16x9, cuMpSGEMM."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accuracy import max_relative_error, reference_gemm, summarize_errors
from repro.baselines.bf16x9 import bf16x9_gemm, split_bf16x3
from repro.baselines.cumpsgemm import cumpsgemm_fp16tcec, split_fp16_with_correction
from repro.baselines.native import native_dgemm, native_sgemm
from repro.baselines.tf32gemm import tf32_gemm
from repro.workloads import phi_pair


@pytest.fixture
def fp32_pair():
    return phi_pair(48, 96, 40, phi=0.5, precision="fp32", seed=31)


class TestNative:
    def test_dgemm_equals_numpy(self, small_pair):
        a, b = small_pair
        np.testing.assert_array_equal(native_dgemm(a, b), a @ b)

    def test_sgemm_dtype(self, fp32_pair):
        a, b = fp32_pair
        c = native_sgemm(a, b)
        assert c.dtype == np.float32


class TestTf32:
    def test_accuracy_between_bf16_and_fp32(self, fp32_pair):
        a, b = fp32_pair
        ref = reference_gemm(a, b)
        err_sgemm = max_relative_error(native_sgemm(a, b), ref)
        err_tf32 = max_relative_error(tf32_gemm(a, b), ref)
        # TF32 is markedly less accurate than FP32 but not catastrophically so.
        assert err_tf32 > err_sgemm
        assert err_tf32 < err_sgemm * 2**16


class TestBf16x9:
    def test_split_reconstructs_fp32(self, fp32_pair):
        a, _ = fp32_pair
        parts = split_bf16x3(a)
        assert len(parts) == 3
        recon = sum(p.astype(np.float64) * 2.0 ** (-8 * i) for i, p in enumerate(parts))
        rel = np.abs(recon - a.astype(np.float64)) / np.maximum(np.abs(a), 1e-30)
        # Three 8-bit chunks capture at least the 24 bits of FP32.
        assert np.max(rel) <= 2.0**-22

    def test_matches_sgemm_level_accuracy(self, fp32_pair):
        """Section 5.1: 'SGEMM and BF16x9 exhibited equivalent accuracy'."""
        a, b = fp32_pair
        ref = reference_gemm(a, b)
        err_sgemm = summarize_errors(native_sgemm(a, b), ref).median
        err_bf16x9 = summarize_errors(bf16x9_gemm(a, b), ref).median
        assert err_bf16x9 <= 8.0 * err_sgemm

    def test_much_more_accurate_than_single_bf16_product(self, fp32_pair):
        from repro.engines.lowprec_fp import Bf16MatrixEngine

        a, b = fp32_pair
        ref = reference_gemm(a, b)
        single = max_relative_error(Bf16MatrixEngine().matmul(a, b), ref)
        nine = max_relative_error(bf16x9_gemm(a, b), ref)
        assert nine < single / 100


class TestCuMpSgemm:
    def test_split_with_correction_reconstructs(self, fp32_pair):
        a, _ = fp32_pair
        a1, a2 = split_fp16_with_correction(a)
        recon = a1.astype(np.float64) + a2.astype(np.float64) * 2.0**-11
        rel = np.abs(recon - a.astype(np.float64)) / np.maximum(np.abs(a), 1e-30)
        assert np.max(rel) <= 2.0**-21

    def test_sgemm_level_accuracy(self, fp32_pair):
        """cuMpSGEMM's FP16TCEC mode emulates SGEMM 'without accuracy loss'."""
        a, b = fp32_pair
        ref = reference_gemm(a, b)
        err_sgemm = summarize_errors(native_sgemm(a, b), ref).median
        err_cump = summarize_errors(cumpsgemm_fp16tcec(a, b), ref).median
        assert err_cump <= 8.0 * err_sgemm

    def test_handles_wide_dynamic_range_via_scaling(self, rng):
        # Values far outside FP16's exponent range must survive thanks to
        # the per-row/column scaling.
        a = (rng.standard_normal((16, 24)) * 1e10).astype(np.float32)
        b = (rng.standard_normal((24, 12)) * 1e-12).astype(np.float32)
        ref = reference_gemm(a, b)
        err = max_relative_error(cumpsgemm_fp16tcec(a, b), ref)
        assert err < 1e-2
        assert np.all(np.isfinite(cumpsgemm_fp16tcec(a, b)))

    def test_output_dtype(self, fp32_pair):
        a, b = fp32_pair
        assert cumpsgemm_fp16tcec(a, b).dtype == np.float32
