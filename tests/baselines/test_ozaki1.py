"""Tests for the Ozaki scheme I (ozIMMU_EF) baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accuracy import max_relative_error, reference_gemm
from repro.baselines.ozaki1 import (
    Ozaki1Config,
    ozimmu_gemm,
    slice_width,
    split_into_slices,
)
from repro.engines.int8 import Int8MatrixEngine
from repro.errors import ConfigurationError
from repro.workloads import phi_pair


class TestConfig:
    def test_gemm_count_triangular(self):
        assert Ozaki1Config(num_slices=9).num_int8_gemms == 45
        assert Ozaki1Config(num_slices=3).num_int8_gemms == 6

    def test_gemm_count_full(self):
        assert Ozaki1Config(num_slices=4, full_products=True).num_int8_gemms == 16

    def test_method_name(self):
        assert Ozaki1Config(num_slices=8).method_name == "ozIMMU_EF-8"

    @pytest.mark.parametrize("bad", [0, 1, 17])
    def test_slice_bounds(self, bad):
        with pytest.raises(ConfigurationError):
            Ozaki1Config(num_slices=bad)


class TestSliceWidth:
    def test_capped_at_7_for_small_k(self):
        assert slice_width(64) == 7
        assert slice_width(1024) == 7

    def test_shrinks_for_large_k(self):
        assert slice_width(2**17) == 7
        assert slice_width(2**19) <= 6

    def test_invalid_k(self):
        with pytest.raises(ConfigurationError):
            slice_width(0)


class TestSplitting:
    def test_error_free_reconstruction(self, rng):
        x = rng.uniform(-0.999, 0.999, (20, 30))
        width = 7
        slices = split_into_slices(x, 6, width)
        assert all(s.dtype == np.int8 for s in slices)
        recon = sum(s.astype(np.float64) * 2.0 ** (-width * (i + 1)) for i, s in enumerate(slices))
        assert np.max(np.abs(recon - x)) <= 2.0 ** (-width * 6)

    def test_slices_within_int8(self, rng):
        x = rng.uniform(-0.999, 0.999, (10, 10))
        for s in split_into_slices(x, 8, 7):
            assert np.all(np.abs(s.astype(np.int64)) <= 127)


class TestOzimmuGemm:
    def test_accuracy_improves_with_slices(self, rng):
        a, b = phi_pair(32, 64, 28, phi=0.5, seed=21)
        ref = reference_gemm(a, b)
        errors = [max_relative_error(ozimmu_gemm(a, b, s), ref) for s in (3, 5, 7, 9)]
        assert errors[0] > errors[1] > errors[2] > errors[3]

    def test_dgemm_level_accuracy_with_9_slices(self, rng):
        a, b = phi_pair(40, 72, 36, phi=0.5, seed=22)
        ref = reference_gemm(a, b)
        native = max_relative_error(a @ b, ref)
        emulated = max_relative_error(ozimmu_gemm(a, b, 9), ref)
        assert emulated <= 10.0 * native

    def test_int_config_and_object_config_equivalent(self, small_pair):
        a, b = small_pair
        c1 = ozimmu_gemm(a, b, 6)
        c2 = ozimmu_gemm(a, b, Ozaki1Config(num_slices=6))
        np.testing.assert_array_equal(c1, c2)

    def test_issues_expected_number_of_int8_gemms(self, small_pair):
        a, b = small_pair
        engine = Int8MatrixEngine()
        ozimmu_gemm(a, b, Ozaki1Config(num_slices=7), engine=engine)
        assert engine.counter.matmul_calls == 7 * 8 // 2

    def test_zero_matrix(self):
        c = ozimmu_gemm(np.zeros((4, 6)), np.zeros((6, 2)), 4)
        np.testing.assert_array_equal(c, np.zeros((4, 2)))

    def test_more_int8_gemms_than_ozaki2_for_same_accuracy(self, rng):
        """The core comparison of the paper: ozIMMU needs S(S+1)/2 ~ 45 INT8
        GEMMs for FP64-level accuracy where OS II needs ~15."""
        from repro import emulated_dgemm

        a, b = phi_pair(32, 64, 32, phi=0.5, seed=23)
        ref = reference_gemm(a, b)
        native = max_relative_error(a @ b, ref)

        engine_oz = Int8MatrixEngine()
        err_oz = max_relative_error(
            ozimmu_gemm(a, b, Ozaki1Config(num_slices=9), engine=engine_oz), ref
        )
        engine_os2 = Int8MatrixEngine()
        err_os2 = max_relative_error(
            emulated_dgemm(a, b, num_moduli=15, engine=engine_os2), ref
        )
        assert err_oz <= 10 * native and err_os2 <= 10 * native
        assert engine_os2.counter.matmul_calls * 2 < engine_oz.counter.matmul_calls
