"""Tests for the workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.types import FP32, FP64
from repro.workloads.generators import (
    WorkloadSpec,
    adversarial_cancellation_matrix,
    hpl_like_pair,
    phi_matrix,
    phi_pair,
)


class TestPhiMatrix:
    def test_shape_and_dtype(self):
        x = phi_matrix(10, 20, phi=0.5, seed=0)
        assert x.shape == (10, 20)
        assert x.dtype == np.float64
        x32 = phi_matrix(10, 20, phi=0.5, precision="fp32", seed=0)
        assert x32.dtype == np.float32

    def test_deterministic_with_seed(self):
        a = phi_matrix(16, 16, phi=1.0, seed=7)
        b = phi_matrix(16, 16, phi=1.0, seed=7)
        np.testing.assert_array_equal(a, b)
        c = phi_matrix(16, 16, phi=1.0, seed=8)
        assert not np.array_equal(a, c)

    def test_no_zeros_and_signs_mixed(self):
        x = phi_matrix(64, 64, phi=0.5, seed=1)
        assert np.all(x != 0.0)
        assert np.any(x > 0) and np.any(x < 0)

    def test_phi_controls_exponent_spread(self):
        narrow = phi_matrix(64, 64, phi=0.1, seed=2)
        wide = phi_matrix(64, 64, phi=4.0, seed=2)
        spread = lambda m: np.std(np.log2(np.abs(m)))
        assert spread(wide) > 2 * spread(narrow)

    def test_rejects_bad_precision(self):
        with pytest.raises(ValidationError):
            phi_matrix(4, 4, precision="fp16")


class TestPairsAndSpec:
    def test_phi_pair_shapes(self):
        a, b = phi_pair(8, 12, 6, phi=1.0, seed=0)
        assert a.shape == (8, 12) and b.shape == (12, 6)

    def test_hpl_like_is_phi_half(self):
        a1, b1 = hpl_like_pair(6, 8, 4, seed=3)
        a2, b2 = phi_pair(6, 8, 4, phi=0.5, seed=3)
        np.testing.assert_array_equal(a1, a2)
        np.testing.assert_array_equal(b1, b2)

    def test_workload_spec_generate(self):
        spec = WorkloadSpec(m=6, k=10, n=4, phi=2.0, precision="fp32", seed=5)
        a, b = spec.generate()
        assert a.shape == (6, 10) and b.shape == (10, 4)
        assert a.dtype == np.float32
        assert spec.precision is FP32
        assert "phi2" in spec.label

    def test_workload_spec_validation(self):
        with pytest.raises(ValidationError):
            WorkloadSpec(m=0, k=4, n=4)

    def test_default_precision_is_fp64(self):
        assert WorkloadSpec(m=2, k=2, n=2).precision is FP64


class TestAdversarialMatrix:
    def test_contains_both_scales(self):
        x = adversarial_cancellation_matrix(32, 32, magnitude_ratio=1e6, seed=0)
        mags = np.abs(x[x != 0])
        assert np.max(mags) / np.min(mags) > 1e4

    def test_deterministic(self):
        a = adversarial_cancellation_matrix(8, 8, seed=1)
        b = adversarial_cancellation_matrix(8, 8, seed=1)
        np.testing.assert_array_equal(a, b)
