"""Bad: set iteration in a kernel module (RPR010)."""


def merge_histograms(ours, theirs):
    merged = {}
    keys = set(ours) | set(theirs)
    for key in keys:
        merged[key] = ours.get(key, 0) + theirs.get(key, 0)
    return merged


def directly(ours, theirs):
    return [k for k in set(ours) & set(theirs)]
