"""Good: all randomness flows from an explicit seed (RPR011 clean)."""

import numpy as np


def noise(n, seed):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(n)
