"""Good: every construction pins its dtype (RPR001 clean)."""

import numpy as np


def make_workspace(m, n):
    out = np.zeros((m, n), dtype=np.int64)
    scratch = np.empty(n, dtype=np.int32)
    ramp = np.arange(n, dtype=np.float64)
    return out, scratch, ramp
