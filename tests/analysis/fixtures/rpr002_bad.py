"""Bad: width-ambiguous builtin dtypes in a kernel module (RPR002)."""

import numpy as np


def widen(r, k):
    wide = r.astype(int)
    table = np.asarray(k, dtype=float)
    return wide, table
