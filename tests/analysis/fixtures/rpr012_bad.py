"""Bad: builtin sum() reduction in a kernel module (RPR012)."""


def total_error(partials):
    return sum(partials)
