"""Good: set unions are sorted before iteration (RPR010 clean)."""


def merge_histograms(ours, theirs):
    merged = {}
    keys = set(ours) | set(theirs)
    for key in sorted(keys):
        merged[key] = ours.get(key, 0) + theirs.get(key, 0)
    return merged


def directly(ours, theirs):
    return [k for k in sorted(set(ours) & set(theirs))]
