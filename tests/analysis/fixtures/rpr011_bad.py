"""Bad: unseeded and global-state RNG in library code (RPR011)."""

import random

import numpy as np


def noise(n):
    rng = np.random.default_rng()
    legacy = np.random.rand(n)
    jitter = random.random()
    return rng.standard_normal(n), legacy, jitter
