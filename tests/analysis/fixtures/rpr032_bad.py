"""Bad: call under a held lock into a method that re-acquires it (RPR032)."""

import threading


class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self._entries = {}

    def clear(self):
        with self._lock:
            self._entries.clear()

    def replace_all(self, entries):
        with self._lock:
            self.clear()
            self._entries.update(entries)
