"""Good: every public matmul entry point records on the ledger (RPR020 clean)."""

import numpy as np


class HonestEngine:
    def __init__(self, counter):
        self.counter = counter

    def matmul(self, a, b):
        self.counter.record_matmul(a.shape[0], a.shape[1], b.shape[1])
        return np.matmul(a, b)

    def matvec(self, a, x):
        self.counter.record_matmul(a.shape[0], a.shape[1], 1)
        return a @ x

    def _compute(self, a, b):
        # Private helpers are exempt: the public caller records for them.
        return np.matmul(a, b)
