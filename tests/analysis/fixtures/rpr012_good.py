"""Good: fixed-order NumPy reduction (RPR012 clean)."""

import numpy as np


def total_error(partials):
    return np.sum(np.asarray(partials, dtype=np.float64))
