"""Good: every mutation of guarded state happens under the lock (RPR030 clean)."""

import threading

_ITEMS = []
_GUARD = threading.Lock()


def record(item):
    with _GUARD:
        _ITEMS.append(item)


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0  # __init__ is exempt: construction is single-threaded

    def bump(self):
        with self._lock:
            self._count += 1

    def reset(self):
        with self._lock:
            self._count = 0
