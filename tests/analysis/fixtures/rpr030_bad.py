"""Bad: lock-inconsistent mutation of a guarded attribute (RPR030)."""

import threading

_ITEMS = []
_GUARD = threading.Lock()


def record(item):
    with _GUARD:
        _ITEMS.append(item)


def record_racy(item):
    _ITEMS.append(item)


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def bump(self):
        with self._lock:
            self._count += 1

    def bump_racy(self):
        self._count += 1
