"""Bad: dtype-less NumPy construction in the hot path (RPR001)."""

import numpy as np


def make_workspace(m, n):
    out = np.zeros((m, n))
    scratch = np.empty(n)
    ramp = np.arange(n)
    return out, scratch, ramp
