"""Good: exact NumPy dtypes everywhere (RPR002 clean)."""

import numpy as np


def widen(r, k):
    wide = r.astype(np.int64)
    table = np.asarray(k, dtype=np.float64)
    return wide, table
