"""Bad: fault-path exceptions absorbed without ledger re-recording (RPR040)."""

from repro.faults import InjectedFault
from repro.runtime.process import WorkerError, WorkerTaskError


def swallow(task):
    try:
        task()
    except InjectedFault:
        pass


def log_only(pool, tasks, log):
    try:
        return pool.run(tasks)
    except (WorkerError, OSError) as exc:
        log.warning("pool died: %s", exc)
        return []


def default_result(run):
    try:
        return run()
    except WorkerTaskError:
        return None
