"""Bad: engine entry point doing matmul work off the ledger (RPR020)."""

import numpy as np


class SneakyEngine:
    def matmul(self, a, b):
        return np.matmul(a, b)

    def matvec(self, a, x):
        return a @ x
