"""A violation on every line, each suppressed a different way."""


def merge(ours, theirs):
    out = []
    for key in set(ours) | set(theirs):  # noqa: RPR010
        out.append(key)
    for key in set(ours) & set(theirs):  # noqa
        out.append(key)
    return out
