"""Bad: nested re-acquisition of a non-reentrant lock (RPR031)."""

import threading


class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self._entries = {}

    def add_twice(self, key, value):
        with self._lock:
            self._entries[key] = value
            with self._lock:
                self._entries[key] = value
