"""Good: every absorbed fault reaches the ledger, or is re-raised (RPR040)."""

from repro.faults import InjectedFault
from repro.runtime.process import WorkerError


def recorded(engine, task):
    try:
        task()
    except InjectedFault:
        engine.counter.record_fault_event("task_retry")


def absorbed(engine, pool, tasks):
    try:
        return pool.run(tasks)
    except WorkerError as exc:
        for delta in exc.partial_counters:
            engine.counter.absorb(delta)
        return []


def translated(pool, workers):
    try:
        return pool.spawn(workers)
    except (InjectedFault, OSError) as exc:
        raise WorkerError(f"failed to start pool: {exc}") from exc


def unrelated(parser, text):
    try:
        return parser(text)
    except ValueError:
        return None
