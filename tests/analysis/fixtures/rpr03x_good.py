"""Good lock discipline: RLock re-entry and lock-free private helpers."""

import threading


class Registry:
    def __init__(self):
        self._lock = threading.RLock()  # reentrant: nested acquisition is fine
        self._entries = {}

    def clear(self):
        with self._lock:
            self._entries.clear()

    def replace_all(self, entries):
        with self._lock:
            self.clear()
            self._entries.update(entries)
