"""Runtime lock-order tracker: edges, cycles, re-entry, deliberate inversion."""

from __future__ import annotations

import threading

import pytest

from repro.analysis import (
    LockOrderError,
    LockOrderTracker,
    current_tracker,
    named_lock,
    track_lock_order,
)


def test_named_lock_behaves_like_a_lock():
    lock = named_lock("test.lock")
    assert lock.name == "test.lock"
    assert not lock.locked()
    with lock:
        assert lock.locked()
    assert not lock.locked()
    assert lock.acquire(blocking=False)
    lock.release()


def test_tracking_is_inert_outside_the_context():
    assert current_tracker() is None
    a = named_lock("inert.a")
    with a:
        pass  # no tracker installed: nothing recorded, nothing raised


def test_edges_and_counts_recorded():
    a, b, c = named_lock("t.a"), named_lock("t.b"), named_lock("t.c")
    with track_lock_order() as tracker:
        with a:
            with b:
                with c:
                    pass
        with a:
            pass
    assert tracker.observed_locks == {"t.a", "t.b", "t.c"}
    assert tracker.acquisition_counts["t.a"] == 2
    edges = tracker.edges
    assert edges[("t.a", "t.b")] == 1
    assert edges[("t.a", "t.c")] == 1
    assert edges[("t.b", "t.c")] == 1
    assert tracker.cycles() == []
    tracker.assert_acyclic()


def test_deliberate_inversion_is_detected():
    # Two code paths acquire the same pair in opposite orders.  Run
    # single-threaded: the graph witnesses the inversion without having to
    # produce an actual deadlock.
    a, b = named_lock("inv.a"), named_lock("inv.b")
    with track_lock_order() as tracker:
        with a:
            with b:
                pass
        with b:
            with a:
                pass
    cycles = tracker.cycles()
    assert cycles, "expected an inversion cycle"
    assert set(cycles[0]) == {"inv.a", "inv.b"}
    with pytest.raises(LockOrderError, match="cycle"):
        tracker.assert_acyclic()
    report = tracker.report()
    assert report["acyclic"] is False
    assert report["cycles"]


def test_three_lock_rotation_cycle():
    a, b, c = named_lock("r.a"), named_lock("r.b"), named_lock("r.c")
    with track_lock_order() as tracker:
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        with c:
            with a:
                pass
    cycles = tracker.cycles()
    assert len(cycles) == 1
    assert set(cycles[0]) == {"r.a", "r.b", "r.c"}


def test_reentry_raises_immediately():
    lock = named_lock("re.lock")
    with track_lock_order():
        with lock:
            with pytest.raises(LockOrderError, match="re-acquired"):
                lock.acquire()
        # The failed acquire must not corrupt the held stack.
        with lock:
            pass


def test_nested_tracking_refused():
    with track_lock_order():
        with pytest.raises(LockOrderError, match="already active"):
            with track_lock_order():
                pass  # pragma: no cover
    assert current_tracker() is None


def test_per_thread_held_stacks():
    # Opposite-order acquisitions on two *threads* build the same inversion
    # graph: the held stack is thread-local, the edge graph is global.  The
    # threads run one after the other (joined before the next starts) so the
    # inversion is witnessed in the graph without risking a real deadlock.
    a, b = named_lock("th.a"), named_lock("th.b")

    def first():
        with a:
            with b:
                pass

    def second():
        with b:
            with a:
                pass

    with track_lock_order() as tracker:
        for target in (first, second):
            thread = threading.Thread(target=target)
            thread.start()
            thread.join(timeout=10)
    assert ("th.a", "th.b") in tracker.edges
    assert ("th.b", "th.a") in tracker.edges
    assert tracker.cycles()


def test_report_is_json_safe():
    import json

    a, b = named_lock("j.a"), named_lock("j.b")
    with track_lock_order() as tracker:
        with a:
            with b:
                pass
    doc = json.loads(json.dumps(tracker.report()))
    assert doc["locks"] == ["j.a", "j.b"]
    assert doc["acyclic"] is True
    assert doc["edges"] == {"j.a -> j.b": 1}


def test_tracker_direct_api():
    tracker = LockOrderTracker()
    tracker.before_acquire("x")
    tracker.acquired("x")
    tracker.before_acquire("y")
    tracker.acquired("y")
    tracker.released("y")
    tracker.released("x")
    assert tracker.edges == {("x", "y"): 1}
    tracker.assert_acyclic()
