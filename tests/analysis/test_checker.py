"""Checker orchestration: config loading, rendering, CLI wiring."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    Finding,
    LintConfig,
    find_pyproject,
    load_config,
    render_json,
    render_text,
    run_lint,
)
from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"


# -- [tool.reprolint] loading -----------------------------------------------


def test_defaults_without_pyproject():
    config = load_config(None)
    assert config.is_hot_path("src/repro/crt/residues.py")
    assert config.is_hot_path("src/repro/engines/int8.py")
    assert not config.is_hot_path("src/repro/harness/figures.py")
    assert config.is_kernel("src/repro/runtime/scheduler.py")
    assert config.is_engine("src/repro/engines/native.py")
    assert config.is_excluded("src/repro/__pycache__/x.py")


def test_load_config_from_pyproject(tmp_path):
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text(
        "[tool.reprolint]\n"
        'hot-path-modules = ["mylib/hot/"]\n'
        'kernel-modules = ["mylib/"]\n'
        'exclude = ["generated/"]\n'
    )
    config = load_config(pyproject)
    assert config.hot_path_modules == ("mylib/hot/",)
    assert config.kernel_modules == ("mylib/",)
    assert config.exclude == ("generated/",)
    # unspecified keys keep their defaults
    assert config.engine_modules == ("repro/engines/",)


def test_load_config_rejects_unknown_keys(tmp_path):
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text("[tool.reprolint]\ntypo-key = [1]\n")
    with pytest.raises(ValueError, match="typo-key"):
        load_config(pyproject)


def test_load_config_rejects_non_string_lists(tmp_path):
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text("[tool.reprolint]\nexclude = [1, 2]\n")
    with pytest.raises(ValueError, match="list of strings"):
        load_config(pyproject)


def test_find_pyproject_walks_up(tmp_path):
    (tmp_path / "pyproject.toml").write_text("")
    nested = tmp_path / "a" / "b"
    nested.mkdir(parents=True)
    assert find_pyproject(nested) == tmp_path / "pyproject.toml"


def test_repo_pyproject_scopes_match_lintconfig_defaults():
    # The [tool.reprolint] table spells out the built-in defaults; the two
    # must not drift apart.
    pyproject = find_pyproject(Path(__file__))
    assert pyproject is not None
    assert load_config(pyproject) == LintConfig(
        exclude=("__pycache__", "tests/analysis/fixtures")
    )


# -- run_lint mechanics ------------------------------------------------------


def test_syntax_error_becomes_rpr000(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    findings, checked = run_lint([bad], config=LintConfig())
    assert checked == 1
    assert [f.code for f in findings] == ["RPR000"]
    assert "does not parse" in findings[0].message


def test_exclude_fragments_skip_files(tmp_path):
    skipped = tmp_path / "generated"
    skipped.mkdir()
    (skipped / "x.py").write_text("import random\nrandom.random()\n")
    findings, checked = run_lint(
        [tmp_path], config=LintConfig(exclude=("generated/",))
    )
    assert checked == 0
    assert findings == []


def test_duplicate_paths_deduplicate(tmp_path):
    f = tmp_path / "m.py"
    f.write_text("x = 1\n")
    _, checked = run_lint([f, f, tmp_path], config=LintConfig())
    assert checked == 1


def test_findings_are_sorted():
    config = LintConfig(
        hot_path_modules=("fixtures/",),
        kernel_modules=("fixtures/",),
        engine_modules=("fixtures/",),
    )
    findings, _ = run_lint([FIXTURES], config=config)
    assert findings == sorted(findings)


# -- rendering ---------------------------------------------------------------


def sample_findings():
    return [
        Finding(path="a.py", line=3, col=5, code="RPR010", message="set order"),
        Finding(path="b.py", line=1, col=1, code="RPR030", message="lock miss"),
    ]


def test_render_text_shape():
    text = render_text(sample_findings())
    lines = text.splitlines()
    assert lines[0] == "a.py:3:5: RPR010 set order"
    assert lines[1] == "b.py:1:1: RPR030 lock miss"
    assert lines[2] == "repro lint: 2 findings"
    assert render_text([]).splitlines() == ["repro lint: 0 findings"]
    assert render_text(sample_findings()[:1]).endswith("1 finding")


def test_render_json_document():
    doc = json.loads(render_json(sample_findings()))
    assert doc["summary"] == {"total": 2, "by_code": {"RPR010": 1, "RPR030": 1}}
    assert doc["findings"][0] == {
        "path": "a.py",
        "line": 3,
        "col": 5,
        "code": "RPR010",
        "message": "set order",
    }
    assert json.loads(render_json([])) == {
        "findings": [],
        "summary": {"total": 0, "by_code": {}},
    }


# -- CLI ---------------------------------------------------------------------


def bad_kernel_copy(tmp_path) -> Path:
    """A bad fixture placed on a path the *default* scopes classify as kernel."""
    target = tmp_path / "repro" / "crt"
    target.mkdir(parents=True)
    copy = target / "bad.py"
    copy.write_text((FIXTURES / "rpr010_bad.py").read_text())
    return copy


def test_cli_lint_exits_nonzero_on_findings(tmp_path, capsys):
    copy = bad_kernel_copy(tmp_path)
    assert main(["lint", str(copy)]) == 1
    out = capsys.readouterr().out
    assert "RPR010" in out
    assert "repro lint: 2 findings" in out


def test_cli_lint_json_format(tmp_path, capsys):
    copy = bad_kernel_copy(tmp_path)
    assert main(["lint", str(copy), "--format", "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["summary"]["by_code"] == {"RPR010": 2}


def test_cli_lint_select(tmp_path, capsys):
    copy = bad_kernel_copy(tmp_path)
    # Selecting an unrelated code family silences the RPR010 findings.
    assert main(["lint", str(copy), "--select", "RPR030"]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_cli_lint_clean_on_repo_source(capsys):
    src = Path(__file__).resolve().parents[2] / "src" / "repro"
    assert main(["lint", str(src)]) == 0
    out = capsys.readouterr().out
    assert "repro lint: 0 findings" in out
