"""The tracker observes every lock site in the library, and the order is sound.

This is the runtime counterpart of the static lock rules and the gate for
the process-parallel scheduler refactor (ROADMAP item 2): driving the
parallel runtime (both executor backends), the serve stack and the
deprecation shims under :func:`track_lock_order` must visit every
``named_lock`` site, and the observed acquisition-order graph must be
acyclic — proof that no exercised nesting can deadlock.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

import repro
from repro.analysis import track_lock_order
from repro.config import Ozaki2Config
from repro.service import ReproServer, ServiceClient
from repro.session import Session

#: Every named_lock site in the library, by its stable dotted name.
ALL_LOCKS = {
    "runtime.scheduler._clones_lock",
    "runtime.scheduler._shared_lock",
    "runtime.shm._live_lock",
    "service.cache._lock",
    "service.coalescer._lock",
    "service.client._lock",
    "service.server._requests_lock",
    "_compat._LOCK",
}


@pytest.mark.slow
def test_all_lock_sites_observed_and_acyclic():
    rng = np.random.default_rng(7)
    a = rng.standard_normal((48, 40))
    b = rng.standard_normal((40, 32))

    with track_lock_order() as tracker:
        # scheduler clones lock: parallel workers register per-thread engines
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with Session(config=Ozaki2Config(parallelism=2)) as session:
                session.gemm(a, b)
                # cache lock: prepared-operand hit path
                session.prepare(a, side="A")
                session.gemm(a, b)
            # process backend: shm registry lock + scheduler shared-segment
            # lock (operand stacks pinned in shared memory for the workers)
            with Session(
                config=Ozaki2Config(parallelism=2, executor="process")
            ) as session:
                session.gemm(a, b)

        # serve stack: server requests lock, coalescer lock, client lock
        with ReproServer(port=0, coalesce_window_seconds=0.0).start() as server:
            with ServiceClient(port=server.port) as client:
                client.gemm(a, b)
                client.gemm(a, b)  # second call exercises the fingerprint path
                server.stats()

        # _compat lock: a deprecated free-function shim warns (once) under it
        repro.reset_deprecation_warnings()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            repro.ozaki2_gemm(a, b)

    assert tracker.observed_locks >= ALL_LOCKS, (
        f"missing lock sites: {sorted(ALL_LOCKS - tracker.observed_locks)}"
    )
    tracker.assert_acyclic()
    report = tracker.report()
    assert report["acyclic"] is True


def test_repo_source_is_lint_clean():
    """`repro lint` over src/repro at HEAD reports nothing (ship clean)."""
    from pathlib import Path

    from repro.analysis import run_lint

    src = Path(repro.__file__).resolve().parent
    findings, checked = run_lint([src])
    assert findings == [], [f"{f.path}:{f.line} {f.code} {f.message}" for f in findings]
    assert checked > 80
