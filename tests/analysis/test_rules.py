"""Per-rule fixture tests: every bad fixture fires, every good one is clean.

The fixtures live in ``tests/analysis/fixtures/`` (excluded from ruff and
from the repo's own ``[tool.reprolint]`` scope — they are deliberately
broken).  The tests lint them with an explicit :class:`LintConfig` whose
scopes all match the fixtures directory, so every domain rule applies.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import LintConfig, run_lint

FIXTURES = Path(__file__).parent / "fixtures"

#: All scopes point at the fixtures dir: every rule applies to every fixture.
CONFIG = LintConfig(
    hot_path_modules=("fixtures/",),
    kernel_modules=("fixtures/",),
    engine_modules=("fixtures/",),
    exclude=("__pycache__",),
)


def lint_fixture(name: str):
    findings, checked = run_lint([FIXTURES / name], config=CONFIG)
    assert checked == 1
    return findings


BAD_CASES = [
    ("rpr001_bad.py", "RPR001", 3),  # zeros, empty, arange
    ("rpr002_bad.py", "RPR002", 2),  # astype(int), dtype=float
    ("rpr010_bad.py", "RPR010", 2),  # for over union, comprehension over &
    ("rpr011_bad.py", "RPR011", 3),  # default_rng(), np.random.rand, random.random
    ("rpr012_bad.py", "RPR012", 1),
    ("rpr020_bad.py", "RPR020", 2),  # matmul and matvec entry points
    ("rpr030_bad.py", "RPR030", 2),  # module-global and class attribute
    ("rpr031_bad.py", "RPR031", 1),
    ("rpr032_bad.py", "RPR032", 1),
    ("rpr040_bad.py", "RPR040", 3),  # pass, log-only, default-result handlers
]

GOOD_FIXTURES = [
    "rpr001_good.py",
    "rpr002_good.py",
    "rpr010_good.py",
    "rpr011_good.py",
    "rpr012_good.py",
    "rpr020_good.py",
    "rpr030_good.py",
    "rpr03x_good.py",
    "rpr040_good.py",
]


@pytest.mark.parametrize("name,code,count", BAD_CASES)
def test_bad_fixture_fires(name, code, count):
    findings = lint_fixture(name)
    codes = [f.code for f in findings]
    assert codes == [code] * count, findings


@pytest.mark.parametrize("name", GOOD_FIXTURES)
def test_good_fixture_is_clean(name):
    assert lint_fixture(name) == []


def test_findings_carry_position_and_message():
    (finding,) = lint_fixture("rpr012_bad.py")
    assert finding.path.endswith("rpr012_bad.py")
    assert finding.line == 5
    assert finding.col >= 1
    assert "sum()" in finding.message


def test_rules_respect_scope_classification():
    # The same bad file linted outside every scope yields nothing: the
    # scoped rules (dtype/determinism/ledger) do not apply to, say, the
    # harness or the CLI.
    config = LintConfig(
        hot_path_modules=("nowhere/",),
        kernel_modules=("nowhere/",),
        engine_modules=("nowhere/",),
    )
    for name in ("rpr001_bad.py", "rpr010_bad.py", "rpr012_bad.py", "rpr020_bad.py"):
        findings, _ = run_lint([FIXTURES / name], config=config)
        assert findings == [], name
    # ... while the lock rules and the RNG rule are scope-independent.
    findings, _ = run_lint([FIXTURES / "rpr030_bad.py"], config=config)
    assert [f.code for f in findings] == ["RPR030", "RPR030"]
    findings, _ = run_lint([FIXTURES / "rpr011_bad.py"], config=config)
    assert len(findings) == 3


def test_select_narrows_to_listed_codes():
    findings, _ = run_lint(
        [FIXTURES], config=CONFIG, select=("RPR030", "RPR031", "RPR032")
    )
    assert findings, "lock findings expected across the fixture tree"
    assert {f.code for f in findings} <= {"RPR030", "RPR031", "RPR032"}


def test_noqa_suppression():
    findings = lint_fixture("noqa_suppressed.py")
    assert findings == []


def test_sorted_wrapper_exempts_set_iteration():
    findings = lint_fixture("rpr010_good.py")
    assert findings == []
