"""Property test: the residue-GEMV fast path never changes a single bit.

:func:`repro.core.gemv.prepared_gemv` is an execution strategy, not a
numerical change: the same ``N`` residue products, the same fixed-order
accumulation, just issued without the GEMM plan/scheduler machinery.  So
for *any* problem shape, moduli count, precision, compute mode and
prepared/unprepared left operand, its result must equal the ``n = 1`` GEMM
route bitwise, and the op ledgers of the two routes must be identical — at
every parallelism setting (the fast path has nothing to fan out, but the
ledger totals of the GEMM route are chunking-invariant, so equality must
hold for serial and parallel configurations alike).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.config import ComputeMode, Ozaki2Config
from repro.core.gemm import ozaki2_gemm
from repro.core.gemv import prepared_gemv
from repro.core.operand import prepare_a
from repro.engines.int8 import Int8MatrixEngine
from repro.workloads.generators import phi_matrix

COMMON_SETTINGS = dict(max_examples=40, deadline=None)

dims = st.integers(min_value=1, max_value=24)
moduli = st.integers(min_value=2, max_value=16)
modes = st.sampled_from([ComputeMode.FAST, ComputeMode.ACCURATE])
precisions = st.sampled_from(["fp64", "fp32"])
workers = st.sampled_from([1, 4])


@given(
    m=dims,
    k=dims,
    num_moduli=moduli,
    mode=modes,
    precision=precisions,
    prepared=st.booleans(),
    parallelism=workers,
    seed=st.integers(0, 2**16),
)
@settings(**COMMON_SETTINGS)
def test_gemv_fast_path_is_bit_identical_to_n1_gemm(
    m, k, num_moduli, mode, precision, prepared, parallelism, seed
):
    if precision == "fp32":
        num_moduli = min(num_moduli, 10)

    config = Ozaki2Config(
        precision=precision,
        num_moduli=num_moduli,
        mode=mode,
        parallelism=parallelism,
    )
    a = phi_matrix(m, k, phi=0.5, precision=precision, seed=seed)
    v = phi_matrix(k, 1, phi=0.5, precision=precision, seed=seed + 1)[:, 0]
    left = prepare_a(a, config=config) if prepared else a

    gemv_engine = Int8MatrixEngine()
    fast = prepared_gemv(left, v, config=config, engine=gemv_engine)

    gemm_engine = Int8MatrixEngine()
    reference = ozaki2_gemm(left, v[:, None], config=config, engine=gemm_engine)

    np.testing.assert_array_equal(fast, np.asarray(reference).ravel())
    assert gemv_engine.counter.as_dict() == gemm_engine.counter.as_dict()


@given(
    k=dims,
    num_moduli=st.integers(min_value=2, max_value=16),
    parallelism=workers,
    seed=st.integers(0, 2**16),
)
@settings(**COMMON_SETTINGS)
def test_solver_matvec_is_route_invariant(k, num_moduli, parallelism, seed):
    """prepared_matvec returns the same bits whichever route the flag picks."""
    from repro.apps.solvers import prepared_matvec

    config = Ozaki2Config.for_dgemm(num_moduli, parallelism=parallelism)
    a = phi_matrix(k, k, phi=0.5, seed=seed)
    v = phi_matrix(k, 1, phi=0.5, seed=seed + 1)[:, 0]
    prep = prepare_a(a, config=config)
    fast = prepared_matvec(prep, v, config.replace(gemv_fast_path=True))
    slow = prepared_matvec(prep, v, config.replace(gemv_fast_path=False))
    np.testing.assert_array_equal(fast, slow)
