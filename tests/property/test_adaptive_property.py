"""Property tests: auto-N selection is a configuration choice, not arithmetic.

Two guarantees across modes, precisions and shapes:

* an ``num_moduli="auto"`` run is **bitwise identical** to a fixed-count
  run at the selected count (the fixed route is the comparator, exactly
  the ``--no-fused``/``--no-gemv-fast`` pattern), and the selection never
  exceeds ``MAX_MODULI``;
* the auto result stays within the model's guaranteed accuracy bound of
  the fixed ``N = 15`` (DGEMM default) result: both sit within their
  respective a-priori bounds of the true product, so their difference is
  bounded by the *sum* of the two bounds.
"""

from __future__ import annotations

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.config import MAX_MODULI, ComputeMode, Ozaki2Config
from repro.core.gemm import ozaki2_gemm
from repro.core.operand import prepare_a, prepare_b
from repro.crt.adaptive import elementwise_error_bound
from repro.workloads.generators import phi_matrix

COMMON_SETTINGS = dict(max_examples=30, deadline=None)

dims = st.integers(min_value=1, max_value=24)
modes = st.sampled_from([ComputeMode.FAST, ComputeMode.ACCURATE])
precisions = st.sampled_from(["fp64", "fp32"])
targets = st.sampled_from([None, 1e-4, 1e-8, 1e-11])


@given(
    m=dims,
    k=dims,
    n=dims,
    mode=modes,
    precision=precisions,
    target=targets,
    prepared=st.booleans(),
    seed=st.integers(0, 2**16),
)
@settings(**COMMON_SETTINGS)
def test_auto_is_bitwise_fixed_at_selected_count_and_within_bound(
    m, k, n, mode, precision, target, prepared, seed
):
    if precision == "fp32":
        # fp32 targets below the 32-bit tables' reach just clamp; keep the
        # sweep in the meaningful range.
        assume(target is None or target >= 1e-8)

    auto_config = Ozaki2Config(
        precision=precision, num_moduli="auto", mode=mode, target_accuracy=target
    )
    a = phi_matrix(m, k, phi=0.5, seed=seed)
    b = phi_matrix(k, n, phi=0.5, seed=seed + 1)

    if prepared:
        lhs, rhs = prepare_a(a, config=auto_config), prepare_b(b, config=auto_config)
    else:
        lhs, rhs = a, b
    result = ozaki2_gemm(lhs, rhs, config=auto_config, return_details=True)

    selected = result.config.num_moduli
    assert 2 <= selected <= MAX_MODULI
    assert result.moduli_selection is not None
    assert result.moduli_selection.num_moduli == selected

    # Comparator: the fixed-count route at the selected count, raw inputs.
    fixed = ozaki2_gemm(
        a, b, config=Ozaki2Config(precision=precision, num_moduli=selected, mode=mode)
    )
    assert np.array_equal(result.c, fixed)

    # Accuracy: |auto - fixed15| is bounded by the sum of both bounds
    # (each is within its own bound of the true product).
    bits = 64 if precision == "fp64" else 32
    n15 = 15 if precision == "fp64" else 8
    fixed15 = ozaki2_gemm(
        a, b, config=Ozaki2Config(precision=precision, num_moduli=n15, mode=mode)
    )
    max_a = float(np.max(np.abs(a)))
    max_b = float(np.max(np.abs(b)))
    allowance = elementwise_error_bound(
        k, max_a, max_b, selected, bits, mode=mode.value
    ) + elementwise_error_bound(k, max_a, max_b, n15, bits, mode=mode.value)
    diff = float(np.max(np.abs(result.c.astype(np.float64) - fixed15.astype(np.float64))))
    assert diff <= allowance


@given(
    m=dims,
    k=dims,
    target=st.sampled_from([1e-4, 1e-8]),
    seed=st.integers(0, 2**16),
)
@settings(**COMMON_SETTINGS)
def test_resolve_for_equals_fresh_prepare(m, k, target, seed):
    """Re-deriving a prepared operand at a reduced count is bitwise a fresh
    preparation at that count (the slice-down regression of the adaptive
    subsystem)."""
    a = phi_matrix(m, k, phi=0.5, seed=seed)
    prep = prepare_a(a, config=Ozaki2Config(num_moduli=15))
    sel = prepare_a(a, config=Ozaki2Config(num_moduli="auto", target_accuracy=target))
    reduced = prep.resolve_for(sel.num_moduli)
    fresh = prepare_a(a, config=Ozaki2Config(num_moduli=sel.num_moduli))
    assert np.array_equal(reduced.scale, fresh.scale)
    assert np.array_equal(reduced.slices, fresh.slices)
    # And the auto preparation itself equals the fresh one at its count.
    assert np.array_equal(sel.scale, fresh.scale) or sel.num_moduli != fresh.num_moduli
    assert np.array_equal(sel.slices, prep.resolve_for(sel.num_moduli).slices)
