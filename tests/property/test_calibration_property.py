"""Property tests: the calibrated selection model is safe in practice.

Two guarantees, swept by hypothesis over workload families, inner
dimensions, precisions, modes and targets:

* **Measured safety** — whenever the calibrated model *decides* the count
  (``decided_by == "calibrated"``), the error actually measured against
  the double-double reference at that count stays within the requested
  target.  This is the empirical claim the calibration table makes; a
  counterexample here means the shipped margins are stale (re-fit via the
  QC harness, see ``benchmarks/test_bench_calibration_qc.py``).

* **Fallback engagement** — a calibration whose margin test cannot pass
  (guard-consumed margin, or ``k`` beyond the calibrated bands) must leave
  the rigorous selection untouched: same count, ``decided_by ==
  "rigorous"``, zero claimed margin.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.config import ComputeMode, Ozaki2Config
from repro.core.gemm import ozaki2_gemm
from repro.crt.adaptive import select_num_moduli
from repro.crt.calibration import (
    GUARD_BITS,
    K_BANDS,
    CalibrationEntry,
    CalibrationTable,
)
from repro.accuracy.qc import WORKLOAD_FAMILIES, _generate

COMMON_SETTINGS = dict(max_examples=25, deadline=None)

families = st.sampled_from(sorted(WORKLOAD_FAMILIES))
#: Inner dimensions spanning every calibrated band (kept small enough that
#: the double-double reference stays fast on one CPU).
ks = st.sampled_from([8, 16, 48, 64, 200, 256, 700, 1024])
modes = st.sampled_from([ComputeMode.FAST, ComputeMode.ACCURATE])
precisions = st.sampled_from([64, 32])


@given(
    family=families,
    k=ks,
    mode=modes,
    bits=precisions,
    target_exp=st.integers(4, 11),
    seed=st.integers(0, 2**10),
)
@settings(**COMMON_SETTINGS)
def test_calibrated_decision_is_measured_safe(
    family, k, mode, bits, target_exp, seed
):
    if bits == 32:
        # Keep targets in the 32-bit tables' reach (the floor sits at
        # ~2^-24); deeper targets clamp and never consult the calibration.
        target_exp = min(target_exp, 5)
    target = 10.0**-target_exp
    sel = select_num_moduli(k, 1.0, 1.0, bits, target=target, mode=mode.value,
                            model="calibrated")
    if sel.decided_by != "calibrated":
        # Nothing claimed — rigorous safety is covered elsewhere.
        return
    assert sel.num_moduli < sel.rigorous_num_moduli
    assert sel.calibration_margin_bits > 0.0

    from repro.accuracy.qc import measured_relative_error

    a, b = _generate(family, 16, k, 16, seed)
    precision = "fp64" if bits == 64 else "fp32"
    config = Ozaki2Config(
        precision=precision, num_moduli=sel.num_moduli, mode=mode
    )
    c = ozaki2_gemm(a, b, config=config)
    assert measured_relative_error(a, b, c) <= target


@given(
    k=ks,
    mode=modes,
    bits=precisions,
    observed=st.floats(min_value=0.0, max_value=GUARD_BITS),
    seed=st.integers(0, 2**10),
)
@settings(**COMMON_SETTINGS)
def test_fallback_engages_when_margin_test_fails(k, mode, bits, observed, seed):
    # A table whose observed margin is consumed by the guard claims nothing.
    entry = CalibrationEntry(k_lo=1, k_hi=4096, observed_margin_bits=observed)
    table = CalibrationTable(
        entries={(bits, mode.value): (entry,)}, provenance="synthetic"
    )
    assert not entry.margin_test_passes
    cal = select_num_moduli(
        k, 1.0, 1.0, bits, mode=mode.value, model="calibrated", calibration=table
    )
    rig = select_num_moduli(k, 1.0, 1.0, bits, mode=mode.value, model="rigorous")
    assert cal.decided_by == "rigorous"
    assert cal.num_moduli == rig.num_moduli == cal.rigorous_num_moduli
    assert cal.calibration_margin_bits == 0.0


@given(mode=modes, bits=precisions)
@settings(max_examples=8, deadline=None)
def test_fallback_engages_beyond_calibrated_range(mode, bits):
    beyond = K_BANDS[-1][1] + 1
    cal = select_num_moduli(beyond, 1.0, 1.0, bits, mode=mode.value,
                            model="calibrated")
    rig = select_num_moduli(beyond, 1.0, 1.0, bits, mode=mode.value,
                            model="rigorous")
    assert cal.decided_by == "rigorous"
    assert cal.num_moduli == rig.num_moduli
