"""Property-based tests (hypothesis) on the library's core invariants."""

from __future__ import annotations

from fractions import Fraction

import numpy as np
from hypothesis import assume, given, settings, strategies as st


from repro.core.conversion import truncate_scaled
from repro.core.scaling import check_condition3, fast_mode_scales
from repro.crt.constants import build_constant_table
from repro.crt.inverses import crt_reconstruct_int, moduli_product
from repro.crt.moduli import select_moduli
from repro.crt.residues import mod_fast_mulhi, rmod_exact
from repro.utils.fma import fma, split, two_prod, two_sum
from repro.workloads.generators import phi_matrix

# Keep hypothesis fast and deterministic for CI-style runs.
COMMON_SETTINGS = dict(max_examples=50, deadline=None)

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e150, max_value=1e150
)


class TestErrorFreeTransformations:
    @given(a=finite_floats, b=finite_floats)
    @settings(**COMMON_SETTINGS)
    def test_two_sum_is_exact(self, a, b):
        s, e = two_sum(a, b)
        assert Fraction(float(s)) + Fraction(float(e)) == Fraction(a) + Fraction(b)

    @given(a=finite_floats)
    @settings(**COMMON_SETTINGS)
    def test_split_recombines(self, a):
        hi, lo = split(a)
        assert float(hi) + float(lo) == a

    @given(
        a=st.floats(allow_nan=False, allow_infinity=False, min_value=-1e120, max_value=1e120),
        b=st.floats(allow_nan=False, allow_infinity=False, min_value=-1e120, max_value=1e120),
    )
    @settings(**COMMON_SETTINGS)
    def test_two_prod_is_exact(self, a, b):
        p, e = two_prod(a, b)
        assume(np.isfinite(p) and np.isfinite(e))
        exact = Fraction(a) * Fraction(b)
        assume(exact == 0 or abs(exact) > Fraction(1, 2**900))
        assert Fraction(float(p)) + Fraction(float(e)) == exact

    @given(
        a=st.floats(allow_nan=False, allow_infinity=False, min_value=-1e100, max_value=1e100),
        b=st.floats(allow_nan=False, allow_infinity=False, min_value=-1e100, max_value=1e100),
        c=st.floats(allow_nan=False, allow_infinity=False, min_value=-1e100, max_value=1e100),
    )
    @settings(**COMMON_SETTINGS)
    def test_fma_is_faithful(self, a, b, c):
        result = float(fma(a, b, c))
        exact = Fraction(a) * Fraction(b) + Fraction(c)
        assume(exact != 0)
        assume(abs(exact) > Fraction(1, 2**500) and abs(exact) < Fraction(2**500))
        assert abs(Fraction(result) - exact) <= abs(exact) * Fraction(1, 2**51)


class TestCrtInvariants:
    @given(
        x=st.integers(min_value=-(10**40), max_value=10**40),
        n=st.integers(min_value=2, max_value=20),
    )
    @settings(**COMMON_SETTINGS)
    def test_crt_roundtrip(self, x, n):
        mods = select_moduli(n)
        total = moduli_product(mods)
        assume(2 * abs(x) < total)
        residues = [x % p for p in mods]
        assert crt_reconstruct_int(residues, mods) == x

    @given(
        value=st.integers(min_value=-(2**70), max_value=2**70),
        p_index=st.integers(min_value=0, max_value=19),
    )
    @settings(**COMMON_SETTINGS)
    def test_rmod_exact_congruence_and_range(self, value, p_index):
        p = select_moduli(20)[p_index]
        r = rmod_exact(np.array([float(value)]), p)[0]
        assert abs(r) <= p / 2
        assert (int(float(value)) - int(r)) % p == 0

    @given(
        c=st.integers(min_value=-(2**31), max_value=2**31 - 1),
        p_index=st.integers(min_value=0, max_value=19),
    )
    @settings(**COMMON_SETTINGS)
    def test_mulhi_mod_matches_python_mod(self, c, p_index):
        table = build_constant_table(20, 64)
        p = table.moduli[p_index]
        got = mod_fast_mulhi(np.array([c], dtype=np.int32), p, int(table.pinv_prime[p_index]))[0]
        assert got == c % p

    @given(n=st.integers(min_value=2, max_value=20))
    @settings(**COMMON_SETTINGS)
    def test_split_weight_accumulation_error_free(self, n):
        table = build_constant_table(n, 64)
        rng = np.random.default_rng(n)
        u = rng.integers(0, 256, n)
        acc_float = 0.0
        acc_exact = 0
        for i in range(n):
            acc_float += table.s1[i] * float(u[i])
            acc_exact += int(table.s1[i]) * int(u[i])
        assert acc_float == float(acc_exact)


class TestScalingInvariants:
    @given(
        num_moduli=st.integers(min_value=4, max_value=18),
        phi=st.floats(min_value=0.0, max_value=4.0),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_condition3_always_holds_in_fast_mode(self, num_moduli, phi, seed):
        """The uniqueness condition (3) of the paper must hold for every
        workload the generator can produce."""
        rng = np.random.default_rng(seed)
        a = phi_matrix(12, 24, phi=phi, rng=rng)
        b = phi_matrix(24, 10, phi=phi, rng=rng)
        table = build_constant_table(num_moduli, 64)
        mu, nu = fast_mode_scales(a, b, table)
        a_prime = truncate_scaled(a, mu, "left")
        b_prime = truncate_scaled(b, nu, "right")
        assert check_condition3(a_prime, b_prime, table)

    @given(
        scale_exp=st.integers(min_value=-300, max_value=300),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_emulation_robust_to_extreme_power_of_two_scaling(self, scale_exp, seed):
        """Pre-scaling A by any power of two (down to 1e-90, up to 1e90) must
        leave the emulation accurate: the per-row scale vectors absorb the
        magnitude so accuracy does not depend on the absolute scale."""
        from repro import emulated_dgemm

        rng = np.random.default_rng(seed)
        a = rng.standard_normal((8, 12))
        b = rng.standard_normal((12, 6))
        exact_scaled = (a @ b) * 2.0**scale_exp
        scaled = emulated_dgemm(a * 2.0**scale_exp, b, num_moduli=12)
        assert np.allclose(scaled, exact_scaled, rtol=1e-7, atol=0)


class TestEmulationAccuracyProperty:
    @given(
        m=st.integers(min_value=1, max_value=24),
        k=st.integers(min_value=1, max_value=48),
        n=st.integers(min_value=1, max_value=20),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_emulated_dgemm_close_to_numpy_for_random_shapes(self, m, k, n, seed):
        from repro import emulated_dgemm

        rng = np.random.default_rng(seed)
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        c = emulated_dgemm(a, b, num_moduli=14)
        assert np.allclose(c, a @ b, rtol=1e-8, atol=1e-10)

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=20, deadline=None)
    def test_ozimmu_and_ozaki2_agree(self, seed):
        from repro import emulated_dgemm
        from repro.baselines import ozimmu_gemm

        rng = np.random.default_rng(seed)
        a = rng.standard_normal((10, 16))
        b = rng.standard_normal((16, 8))
        c1 = emulated_dgemm(a, b, num_moduli=16)
        c2 = ozimmu_gemm(a, b, 9)
        assert np.allclose(c1, c2, rtol=1e-10, atol=1e-12)
