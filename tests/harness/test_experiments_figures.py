"""Tests for the experiment sweeps and per-figure entry points.

Accuracy-bearing figures are exercised at tiny sizes; the assertions check
the *relationships* the paper reports (orderings, crossovers, phase
behaviour), not absolute numbers.
"""

from __future__ import annotations

import pytest

from repro.harness.experiments import (
    accuracy_sweep,
    breakdown_sweep,
    cpu_wallclock_sweep,
    gemv_fast_path_sweep,
    power_sweep,
    preconditioner_sweep,
    prepared_reuse_sweep,
    throughput_sweep,
)
from repro.harness.figures import (
    EVAL_GPUS,
    FigureResult,
    figure1,
    figure4,
    figure5,
    figure6,
    figure8,
    headline_claims,
)


class TestSweeps:
    def test_accuracy_sweep_rows(self):
        rows = accuracy_sweep(
            methods=("DGEMM", "OS II-fast-12"),
            phis=(0.5,),
            ks=(64,),
            m=48,
            n=40,
            precision="fp64",
            seed=0,
        )
        assert len(rows) == 2
        for row in rows:
            assert set(row) == {"precision", "phi", "m", "k", "n", "method", "max_rel_error"}
            assert row["max_rel_error"] >= 0

    def test_throughput_sweep_rows(self):
        rows = throughput_sweep(("DGEMM", "OS II-fast-15"), ("GH200",), (1024, 8192))
        assert len(rows) == 4
        assert all(row["tflops"] > 0 for row in rows)

    def test_power_sweep_rows(self):
        rows = power_sweep(("SGEMM", "OS II-fast-8"), ("A100",), (4096,), target="fp32")
        assert len(rows) == 2
        assert all(row["gflops_per_watt"] > 0 for row in rows)

    def test_breakdown_sweep_fractions(self):
        rows = breakdown_sweep(("OS II-fast-15",), ("GH200",), (2048,))
        total = sum(row["fraction"] for row in rows)
        assert total == pytest.approx(1.0)

    def test_cpu_wallclock_sweep(self):
        rows = cpu_wallclock_sweep(("DGEMM", "OS II-fast-8"), (64,), target="fp64")
        assert len(rows) == 2
        assert all(row["seconds"] > 0 and row["effective_gflops"] > 0 for row in rows)

    def test_prepared_reuse_sweep(self):
        rows = prepared_reuse_sweep(
            48, reuse_counts=(1, 3), num_moduli=8, repeats=1
        )
        assert [row["reuse"] for row in rows] == [1, 3]
        for row in rows:
            assert row["bit_identical"]
            assert row["seconds_prepared"] > 0 and row["seconds_unprepared"] > 0
            assert row["amortised_prepared"] == pytest.approx(
                row["seconds_prepared"] / row["reuse"]
            )
            assert row["method"] == "OS II-fast-8"

    def test_gemv_fast_path_sweep(self):
        rows = gemv_fast_path_sweep(48, num_moduli=8, iters=2, repeats=1)
        assert [row["route"] for row in rows] == ["gemm-n1", "gemv-fast"]
        for row in rows:
            assert row["bit_identical"] and row["ledger_equal"]
            assert row["per_iter_seconds"] == pytest.approx(
                row["seconds_total"] / row["iters"]
            )
            assert row["method"] == "OS II-fast-8"
            # Every phase key of the GEMM breakdown is attached.
            assert {f"phase_{k}" for k in ("scale", "matmul", "unscale")} <= set(row)
        gemm_row = rows[0]
        assert gemm_row["speedup_vs_gemm"] == pytest.approx(1.0)

    def test_preconditioner_sweep(self):
        rows = preconditioner_sweep(size=32, kinds=("none", "ilu0"), cond=1e2)
        by_kind = {row["precond"]: row for row in rows}
        assert set(by_kind) == {"none", "ilu0"}
        assert all(row["converged"] for row in rows)
        assert by_kind["ilu0"]["iterations"] < by_kind["none"]["iterations"]
        assert by_kind["none"]["iters_vs_cg"] == pytest.approx(1.0)


class TestFigureEntryPoints:
    def test_figure1_contains_eval_gpus_and_trend(self):
        result = figure1()
        assert isinstance(result, FigureResult)
        names = {row["gpu"] for row in result.rows}
        assert {"A100", "H100", "RTX5080"} <= names
        # INT8:FP64 ratio grows over the NVIDIA datacentre generations.
        by_name = {row["gpu"]: row for row in result.rows}
        assert by_name["H100"]["int8_tops"] > by_name["A100"]["int8_tops"] > by_name["V100"]["int8_tops"]
        assert "Figure 1" in result.render()

    def test_figure4_dgemm_crossover_on_gh200(self):
        result = figure4(quick=True, gpus=("GH200",))
        rows = {(r["method"], r["n"]): r["tflops"] for r in result.rows}
        # Small n: native DGEMM wins; large n: OS II-fast-14 wins (Figure 4).
        assert rows[("DGEMM", 1024)] > rows[("OS II-fast-14", 1024)]
        assert rows[("OS II-fast-14", 16384)] > rows[("DGEMM", 16384)]
        # OS II beats ozIMMU at every size shown.
        for n in (1024, 4096, 16384):
            assert rows[("OS II-fast-14", n)] > rows[("ozIMMU_EF-9", n)]

    def test_figure5_sgemm_ordering_on_gh200(self):
        result = figure5(quick=True, gpus=("GH200",))
        rows = {(r["method"], r["n"]): r["tflops"] for r in result.rows}
        n = 16384
        # OS II sits between SGEMM and TF32GEMM (Section 5.2).
        assert rows[("SGEMM", n)] < rows[("OS II-fast-8", n)] < rows[("TF32GEMM", n)]
        # Speedup over SGEMM in the paper's 2.3-3.0x ballpark (allow 1.5-4x).
        speedup = rows[("OS II-fast-8", n)] / rows[("SGEMM", n)]
        assert 1.5 < speedup < 4.0

    def test_figure6_matmul_fraction_grows(self):
        result = figure6(quick=True, gpus=("GH200",))
        fast_rows = [r for r in result.rows if r["method"] == "OS II-fast-15" and r["phase"] == "matmul"]
        by_n = {r["n"]: r["fraction"] for r in fast_rows}
        assert by_n[16384] > by_n[1024]

    def test_figure8_power_ordering(self):
        result = figure8(quick=True, gpus=("GH200",))
        rows = {(r["method"], r["n"]): r["gflops_per_watt"] for r in result.rows}
        n = 16384
        assert rows[("OS II-fast-15", n)] > rows[("DGEMM", n)] > rows[("ozIMMU_EF-9", n)]

    def test_headline_claims_match_paper_bands(self):
        result = headline_claims()
        dgemm_rows = [r for r in result.rows if r["claim"].startswith("DGEMM")]
        sgemm_rows = [r for r in result.rows if r["claim"].startswith("SGEMM")]
        # Paper: ~1.4x DGEMM speedup, +20-43% power; allow generous bands.
        best_dgemm = max(r["speedup_vs_native"] for r in dgemm_rows)
        assert 1.1 < best_dgemm < 2.0
        assert any(0.1 < r["power_gain_vs_native"] < 1.0 for r in dgemm_rows)
        # Paper: >2x vs prior emulation.
        assert all(r["speedup_vs_prior"] > 2.0 for r in dgemm_rows)
        # Paper: 2.3-3.0x SGEMM speedup, +103-154% power; allow 1.5-4x / 0.5-4.
        best_sgemm = max(r["speedup_vs_native"] for r in sgemm_rows)
        assert 1.5 < best_sgemm < 4.0
        assert any(0.5 < r["power_gain_vs_native"] < 4.0 for r in sgemm_rows)

    def test_eval_gpu_tuple(self):
        assert EVAL_GPUS == ("A100", "GH200", "RTX5080")
