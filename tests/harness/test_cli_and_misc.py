"""Unit tests for the CLI parser and assorted small behaviours not covered
by the module-specific suites."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser
from repro.core.gemm import PHASE_KEYS, PhaseTimes
from repro.perfmodel.breakdown import PHASE_ORDER
from repro.perfmodel.costmodel import method_cost
from repro.types import FP32


class TestCliParser:
    def test_figures_defaults(self):
        args = build_parser().parse_args(["figures"])
        assert args.command == "figures"
        assert args.only is None
        assert args.full is False

    def test_accuracy_defaults(self):
        args = build_parser().parse_args(["accuracy"])
        assert args.precision == "fp64"
        assert args.m == 256 and args.n == 256

    def test_throughput_custom_args(self):
        args = build_parser().parse_args(
            ["throughput", "--gpus", "GH200", "--sizes", "2048", "--target", "fp32"]
        )
        assert args.gpus == "GH200"
        assert args.target == "fp32"

    def test_gemm_requires_paths(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["gemm"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_selection_model_flag(self):
        args = build_parser().parse_args(["run", "--moduli", "auto"])
        assert args.selection_model == "calibrated"
        args = build_parser().parse_args(
            ["run", "--moduli", "auto", "--selection-model", "rigorous"]
        )
        assert args.selection_model == "rigorous"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--selection-model", "vibes"])


class TestCliErrorExit:
    @pytest.mark.parametrize("bad", ["0", "-1e-3", "nan", "inf"])
    def test_degenerate_target_is_one_line_error_exit_2(self, bad, capsys):
        # A degenerate target must not traceback: main() maps ReproError
        # to a single stderr line and exit code 2 (scriptable failure).
        from repro.cli import main

        code = main(["run", "--moduli", "auto", f"--target-accuracy={bad}"])
        assert code == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: ")
        assert "target_accuracy" in captured.err
        assert len(captured.err.strip().splitlines()) == 1


class TestPhaseNamingConsistency:
    def test_cost_model_phases_subset_of_breakdown_order(self):
        """Every phase name the cost model emits must be known to the
        breakdown renderer, for every method family."""
        for method, target in (
            ("DGEMM", "fp64"),
            ("TF32GEMM", FP32),
            ("BF16x9", FP32),
            ("cuMpSGEMM", FP32),
            ("ozIMMU_EF-8", "fp64"),
            ("OS II-fast-12", "fp64"),
            ("OS II-accu-8", FP32),
        ):
            cost = method_cost(method, 64, 64, 64, target=target)
            for phase in cost.phases:
                assert phase.name in PHASE_ORDER

    def test_algorithm_phase_keys_match_breakdown_order(self):
        """The wall-clock phase keys of the implementation appear in the
        model's display order, so CPU and modelled breakdowns line up."""
        for key in PHASE_KEYS:
            assert key in PHASE_ORDER

    def test_phase_times_accepts_unknown_key(self):
        times = PhaseTimes()
        times.add("custom", 1.0)
        assert times.seconds["custom"] == 1.0
        assert times.total == pytest.approx(sum(times.seconds.values()))


class TestOzaki2ResultDiagnostics:
    def test_counters_scale_linearly_with_moduli(self, rng):
        from repro import Ozaki2Config, ozaki2_gemm

        a = rng.standard_normal((24, 40))
        b = rng.standard_normal((40, 16))
        small = ozaki2_gemm(a, b, config=Ozaki2Config.for_dgemm(8), return_details=True)
        large = ozaki2_gemm(a, b, config=Ozaki2Config.for_dgemm(16), return_details=True)
        assert large.int8_counter.mac_ops == 2 * small.int8_counter.mac_ops
        assert large.int8_counter.matmul_calls == 2 * small.int8_counter.matmul_calls

    def test_mu_nu_are_powers_of_two(self, rng):
        from repro import ozaki2_gemm

        a = rng.standard_normal((12, 20)) * 1e5
        b = rng.standard_normal((20, 8)) * 1e-5
        result = ozaki2_gemm(a, b, return_details=True)
        for vec in (result.mu, result.nu):
            mantissa, _ = np.frexp(vec)
            assert np.all(mantissa == 0.5)
