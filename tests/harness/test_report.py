"""Tests for table/CSV rendering."""

from __future__ import annotations

from repro.harness.report import format_table, rows_to_csv


class TestFormatTable:
    def test_basic_rendering(self):
        rows = [
            {"method": "DGEMM", "tflops": 59.0},
            {"method": "OS II-fast-14", "tflops": 85.2345},
        ]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "method" in lines[1] and "tflops" in lines[1]
        assert "OS II-fast-14" in text
        assert "85.23" in text

    def test_empty_rows(self):
        assert "(no rows)" in format_table([])

    def test_missing_cells_render_empty(self):
        rows = [{"a": 1, "b": 2}, {"a": 3}]
        text = format_table(rows)
        assert text.count("\n") == 3

    def test_explicit_columns_subset(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        header = text.splitlines()[0]
        assert "c" in header and "a" in header and "b" not in header

    def test_float_format(self):
        rows = [{"x": 0.123456789}]
        text = format_table(rows, float_format=".2e")
        assert "1.23e-01" in text


class TestCsv:
    def test_basic(self):
        rows = [{"m": "DGEMM", "v": 1.5}, {"m": "SGEMM", "v": 2.5}]
        csv = rows_to_csv(rows)
        lines = csv.splitlines()
        assert lines[0] == "m,v"
        assert lines[1] == "DGEMM,1.5"

    def test_quoting(self):
        rows = [{"name": 'has,comma "quoted"'}]
        csv = rows_to_csv(rows)
        assert '"has,comma ""quoted"""' in csv

    def test_empty(self):
        assert rows_to_csv([]) == ""
