"""Tests for the iterative solvers and the prepared-trailing-update LU."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import (
    blocked_lu,
    cg_solve,
    iterative_refinement_solve,
    jacobi_solve,
    lu_backward_error,
    lu_with_method,
    lu_with_prepared_updates,
    prepared_matvec,
)
from repro.config import Ozaki2Config
from repro.core.gemm import ozaki2_gemm
from repro.core.operand import prepare_a
from repro.errors import ConfigurationError, ValidationError
from repro.workloads import (
    diagonally_dominant_matrix,
    linear_system,
    spd_matrix,
)

CONFIG = Ozaki2Config.for_dgemm(15)


class TestGenerators:
    def test_diagonally_dominant(self):
        a = diagonally_dominant_matrix(40, seed=0)
        off = np.abs(a).sum(axis=1) - np.abs(np.diag(a))
        assert np.all(np.abs(np.diag(a)) > off)

    def test_diagonally_dominant_rejects_weak_dominance(self):
        with pytest.raises(ValidationError):
            diagonally_dominant_matrix(8, dominance=1.0)

    def test_spd(self):
        a = spd_matrix(24, seed=1)
        np.testing.assert_allclose(a, a.T)
        eigvals = np.linalg.eigvalsh(a)
        assert eigvals.min() > 0

    def test_linear_system_consistent(self):
        a, b, x_true = linear_system(16, kind="spd", seed=2)
        np.testing.assert_allclose(a @ x_true, b)

    def test_linear_system_unknown_kind(self):
        with pytest.raises(ValidationError):
            linear_system(8, kind="toeplitz")


class TestPreparedMatvec:
    def test_matches_gemm_column(self):
        a, b, _ = linear_system(24, seed=3)
        prep = prepare_a(a, CONFIG)
        got = prepared_matvec(prep, b, CONFIG)
        want = ozaki2_gemm(a, b[:, None], config=CONFIG).ravel()
        np.testing.assert_array_equal(got, want)

    def test_rejects_matrix_input(self):
        a, _, _ = linear_system(8, seed=0)
        with pytest.raises(ValidationError):
            prepared_matvec(prepare_a(a, CONFIG), np.ones((8, 2)), CONFIG)


class TestJacobi:
    def test_converges_on_diagonally_dominant(self):
        a, b, x_true = linear_system(48, kind="diag_dominant", seed=4)
        result = jacobi_solve(a, b, config=CONFIG, tol=1e-12)
        assert result.converged
        assert result.residual_norm <= 1e-12
        assert np.max(np.abs(result.x - x_true)) < 1e-9
        assert result.iterations == len(result.residual_history)
        assert result.prepare_seconds > 0.0
        assert result.method == "jacobi(OS II-fast-15)"

    def test_residuals_decrease(self):
        a, b, _ = linear_system(32, seed=5)
        result = jacobi_solve(a, b, config=CONFIG, tol=1e-13)
        hist = result.residual_history
        assert hist[-1] < hist[0]

    def test_non_convergence_reported(self):
        a, b, _ = linear_system(32, seed=6)
        result = jacobi_solve(a, b, config=CONFIG, tol=1e-13, max_iter=2)
        assert not result.converged
        assert result.iterations == 2

    @pytest.mark.parametrize("bad", [0, -1])
    def test_max_iter_must_be_positive(self, bad):
        """max_iter >= 1 guarantees the reported residual was measured."""
        a, b, _ = linear_system(8, seed=0)
        with pytest.raises(ValidationError, match="max_iter"):
            jacobi_solve(a, b, max_iter=bad)
        with pytest.raises(ValidationError, match="max_iter"):
            cg_solve(a, b, max_iter=bad)
        with pytest.raises(ValidationError, match="max_iter"):
            iterative_refinement_solve(a, b, max_iter=bad)

    def test_zero_diagonal_rejected(self):
        a = np.eye(4)
        a[2, 2] = 0.0
        with pytest.raises(ValidationError, match="diagonal"):
            jacobi_solve(a, np.ones(4))

    def test_shape_validation(self):
        with pytest.raises(ValidationError, match="square"):
            jacobi_solve(np.ones((3, 4)), np.ones(3))
        with pytest.raises(ValidationError, match="right-hand side"):
            jacobi_solve(np.eye(4), np.ones(5))

    def test_accurate_mode_supported(self):
        # Historically rejected: accurate-mode scales couple both operands,
        # so a prepared system matrix could not be reused.  The pre-scale
        # split (repro.core.scaling.accurate_mode_prescale) lifted that —
        # solvers now run accurate mode, and injecting a prepared operand
        # stays bit-identical to the unprepared solve.
        a, b, x_true = linear_system(8, seed=0)
        config = Ozaki2Config.for_dgemm(15, mode="accurate")
        plain = jacobi_solve(a, b, config=config)
        assert plain.converged
        assert np.max(np.abs(plain.x - x_true)) < 1e-8
        prepared = jacobi_solve(
            a, b, config=config, prepared=prepare_a(a, config=config)
        )
        assert np.array_equal(plain.x, prepared.x)

    def test_fast_prepared_rejected_for_accurate_solve(self):
        a, b, _ = linear_system(8, seed=0)
        with pytest.raises(ConfigurationError, match="mode"):
            jacobi_solve(
                a,
                b,
                config=Ozaki2Config.for_dgemm(15, mode="accurate"),
                prepared=prepare_a(a, config=Ozaki2Config.for_dgemm(15)),
            )


class TestConjugateGradients:
    def test_converges_on_spd(self):
        a, b, x_true = linear_system(40, kind="spd", seed=7)
        result = cg_solve(a, b, config=CONFIG, tol=1e-11)
        assert result.converged
        assert np.max(np.abs(result.x - x_true)) < 1e-6
        assert result.method == "cg(OS II-fast-15)"

    def test_warm_start(self):
        a, b, x_true = linear_system(24, kind="spd", seed=8)
        cold = cg_solve(a, b, config=CONFIG, tol=1e-10)
        warm = cg_solve(a, b, config=CONFIG, tol=1e-10, x0=x_true)
        assert warm.iterations <= cold.iterations

    def test_iteration_cap(self):
        a, b, _ = linear_system(24, kind="spd", seed=9)
        result = cg_solve(a, b, config=CONFIG, tol=1e-15, max_iter=3)
        assert result.iterations <= 3


class TestIterativeRefinement:
    def test_reaches_fp64_accuracy(self):
        a, b, x_true = linear_system(40, seed=10)
        result = iterative_refinement_solve(a, b, config=CONFIG)
        assert result.converged
        assert result.residual_norm <= 1e-13
        assert np.max(np.abs(result.x - x_true)) < 1e-10

    def test_emulated_factorization(self):
        a, b, _ = linear_system(36, seed=11)
        result = iterative_refinement_solve(
            a, b, config=CONFIG, emulated_factorization=True, lu_block=12
        )
        assert result.converged
        assert result.method == "ir(OS II-fast-15)"


class TestPreparedLU:
    def test_matches_unprepared_method(self, rng):
        a = rng.standard_normal((72, 72))
        err_prepared, (p, lower, upper) = lu_with_prepared_updates(
            a, config=CONFIG, block=24
        )
        err_plain, _ = lu_with_method(a, "OS II-fast-15", block=24)
        # Column-strip trailing updates are exact per output column, so the
        # prepared factorisation reproduces the plain emulated one exactly.
        assert err_prepared == err_plain
        assert lu_backward_error(a, p, lower, upper) < 1e-13

    def test_trail_cols_splits_match_single_call_emulated(self, rng):
        """Column-strip trailing updates are bit-identical to the one-call
        update for the emulated GEMM (integer arithmetic; every output
        column depends only on its own column of U12)."""
        a = rng.standard_normal((40, 40))
        gemm = lambda x, y: ozaki2_gemm(x, y, config=CONFIG)  # noqa: E731
        p1, l1, u1 = blocked_lu(a, block=8, gemm=gemm)
        p2, l2, u2 = blocked_lu(a, block=8, gemm=gemm, trail_cols=5)
        np.testing.assert_array_equal(l1, l2)
        np.testing.assert_array_equal(u1, u2)

    def test_trail_cols_validation(self, rng):
        with pytest.raises(ValidationError):
            blocked_lu(rng.standard_normal((8, 8)), trail_cols=0)

    def test_prepare_left_receives_each_panel(self, rng):
        a = rng.standard_normal((32, 32))
        seen = []

        def fake_prepare(l21):
            seen.append(l21.shape)
            return l21

        blocked_lu(a, block=8, prepare_left=fake_prepare, trail_cols=8)
        # 4 panels of width 8; the last one has no trailing block.
        assert seen == [(24, 8), (16, 8), (8, 8)]
