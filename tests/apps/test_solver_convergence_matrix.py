"""Solver convergence matrix: families x preconditioners x precisions.

Pins the convergence contract of the preconditioned solvers across the full
grid (SPD, diagonally dominant, ill-conditioned SPD) x (none, ILU(0), SSOR)
x (FP64, FP32), and the headline property of the preconditioner work: on
the ill-conditioned SPD family, preconditioned CG converges in **strictly
fewer** iterations than plain CG — every saved iteration is one emulated
matrix–vector product that never runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import jacobi_solve, pcg_solve
from repro.config import Ozaki2Config
from repro.workloads import linear_system

N = 96
COND = 1e3

#: Per-precision solver configuration and residual tolerance (the fp32
#: emulation's residual floor sits around 1e-7; see the CLI default).
PRECISIONS = {
    "fp64": (Ozaki2Config.for_dgemm(15), 1e-8),
    "fp32": (Ozaki2Config.for_sgemm(8), 1e-3),
}

FAMILIES = ("spd", "diag_dominant", "ill_spd")
PRECONDS = ("none", "ilu0", "ssor")


def _system(kind: str, seed: int = 0):
    return linear_system(N, kind=kind, seed=seed, cond=COND)


@pytest.mark.parametrize("precision", sorted(PRECISIONS))
@pytest.mark.parametrize("precond", PRECONDS)
@pytest.mark.parametrize("kind", FAMILIES)
def test_pcg_converges_across_the_grid(kind, precond, precision):
    config, tol = PRECISIONS[precision]
    a, b, x_true = _system(kind)
    result = pcg_solve(a, b, config=config, tol=tol, precond=precond)
    assert result.converged, (
        f"pcg({precond}) on {kind}/{precision} stalled at "
        f"{result.residual_norm:.3e} after {result.iterations} iterations"
    )
    assert result.residual_norm <= tol
    assert result.precond == precond
    # The residual history is the per-iteration record: one entry per
    # iteration, ending at the converged value.
    assert len(result.residual_history) == result.iterations
    assert result.residual_history[-1] == result.residual_norm
    # The solution is meaningful, not just the residual: for the
    # well-conditioned families it reproduces x_true tightly, for the
    # ill-conditioned family within the cond-amplified tolerance.
    scale = float(np.max(np.abs(x_true)))
    budget = tol * COND * 10.0 if kind == "ill_spd" else max(tol, 1e-6) * 100.0
    assert float(np.max(np.abs(result.x - x_true))) <= budget * max(scale, 1.0)


@pytest.mark.parametrize("precision", sorted(PRECISIONS))
def test_preconditioning_strictly_beats_cg_on_ill_conditioned_spd(precision):
    config, tol = PRECISIONS[precision]
    a, b, _ = _system("ill_spd")
    plain = pcg_solve(a, b, config=config, tol=tol, precond="none")
    ilu0 = pcg_solve(a, b, config=config, tol=tol, precond="ilu0")
    ssor = pcg_solve(a, b, config=config, tol=tol, precond="ssor")
    assert plain.converged and ilu0.converged and ssor.converged
    assert ilu0.iterations < plain.iterations, (
        f"ILU(0) took {ilu0.iterations} iterations vs plain CG's "
        f"{plain.iterations} on the ill-conditioned family ({precision})"
    )
    assert ssor.iterations < plain.iterations, (
        f"SSOR took {ssor.iterations} iterations vs plain CG's "
        f"{plain.iterations} on the ill-conditioned family ({precision})"
    )


@pytest.mark.parametrize("precision", sorted(PRECISIONS))
@pytest.mark.parametrize("precond", PRECONDS)
def test_preconditioned_jacobi_sweeps_converge(precond, precision):
    config, tol = PRECISIONS[precision]
    a, b, _ = _system("diag_dominant")
    result = jacobi_solve(
        a, b, config=config, tol=tol, max_iter=300, precond=precond
    )
    assert result.converged
    expected = "jacobi" if precond == "none" else f"jacobi+{precond}"
    assert result.method.startswith(f"{expected}(")


def test_preconditioned_jacobi_reduces_sweeps_on_diag_dominant():
    config, tol = PRECISIONS["fp64"]
    a, b, _ = _system("diag_dominant")
    plain = jacobi_solve(a, b, config=config, tol=tol, max_iter=300)
    ilu0 = jacobi_solve(a, b, config=config, tol=tol, max_iter=300, precond="ilu0")
    assert ilu0.iterations < plain.iterations


def test_precond_seconds_reported_once():
    config, tol = PRECISIONS["fp64"]
    a, b, _ = _system("ill_spd")
    result = pcg_solve(a, b, config=config, tol=tol, precond="ilu0")
    assert result.precond_seconds > 0.0
    plain = pcg_solve(a, b, config=config, tol=tol, precond="none")
    assert plain.precond_seconds == 0.0


def test_pcg_degenerate_preconditioner_stops_instead_of_crashing():
    """A user-supplied apply() that annihilates r must break, not raise."""
    from repro.apps.preconditioners import Preconditioner

    class Annihilator(Preconditioner):
        kind = "ssor"  # any non-"none" kind: exercises the pcg+<kind> path

        def apply(self, r):
            return np.zeros_like(r)

    config, tol = PRECISIONS["fp64"]
    a = np.diag([2.0, 3.0])
    b = np.ones(2)
    result = pcg_solve(a, b, config=config, tol=tol, precond=Annihilator())
    assert not result.converged
    assert result.iterations >= 1


def test_pcg_with_identity_matches_cg_bitwise():
    from repro.apps import cg_solve

    config, tol = PRECISIONS["fp64"]
    a, b, _ = _system("spd")
    cg = cg_solve(a, b, config=config, tol=tol)
    pcg = pcg_solve(a, b, config=config, tol=tol, precond="none")
    assert cg.iterations == pcg.iterations
    np.testing.assert_array_equal(cg.x, pcg.x)
    assert cg.method.startswith("cg(")
    assert pcg.method.startswith("pcg(")
