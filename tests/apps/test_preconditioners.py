"""Unit tests for the factored-once preconditioners."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.preconditioners import (
    ILU0Preconditioner,
    IdentityPreconditioner,
    PRECONDITIONER_KINDS,
    SSORPreconditioner,
    make_preconditioner,
)
from repro.errors import ValidationError
from repro.workloads import (
    diagonally_dominant_matrix,
    ill_conditioned_spd_matrix,
    spd_matrix,
)


class TestIdentity:
    def test_apply_is_a_no_op(self):
        r = np.arange(5.0)
        ident = IdentityPreconditioner()
        assert ident.apply(r) is r
        assert ident.kind == "none"


class TestILU0:
    def test_dense_pattern_degenerates_to_exact_lu(self):
        # A structurally dense matrix has nothing to drop: ILU(0) is the
        # exact LU without pivoting, so M⁻¹ r solves A x = r exactly.
        a = diagonally_dominant_matrix(24, seed=0)
        precond = ILU0Preconditioner(a)
        rng = np.random.default_rng(1)
        r = rng.standard_normal(24)
        np.testing.assert_allclose(precond.apply(r), np.linalg.solve(a, r), rtol=1e-9)

    def test_zero_fill_in_respects_the_pattern(self):
        # A matrix whose sparsity pattern fills in under exact LU (arrow
        # head at the top-left: eliminating column 0 updates the whole
        # trailing block): ILU(0) must drop that fill, so its apply()
        # matches a scalar reference ILU(0) — and *differs* from the exact
        # solve, proving fill-in was actually dropped.
        n = 8
        a = np.zeros((n, n))
        np.fill_diagonal(a, 4.0)
        a[0, :] = 1.0
        a[:, 0] = 1.0
        a[0, 0] = 4.0

        # Reference IKJ ILU(0): update only entries inside the pattern.
        pattern = a != 0.0
        lu = a.copy()
        for i in range(1, n):
            for kk in range(i):
                if not pattern[i, kk]:
                    continue
                lu[i, kk] /= lu[kk, kk]
                for j in range(kk + 1, n):
                    if pattern[i, j]:
                        lu[i, j] -= lu[i, kk] * lu[kk, j]
        lower_ref = np.tril(lu, -1) + np.eye(n)
        upper_ref = np.triu(lu)

        precond = ILU0Preconditioner(a)
        rng = np.random.default_rng(10)
        r = rng.standard_normal(n)
        expected = np.linalg.solve(upper_ref, np.linalg.solve(lower_ref, r))
        np.testing.assert_allclose(precond.apply(r), expected, rtol=1e-10)
        # Exact LU of this pattern fills in, so ILU(0) is a strict
        # approximation: the apply must NOT equal the exact solve.
        assert not np.allclose(precond.apply(r), np.linalg.solve(a, r), rtol=1e-6)

    def test_zero_pivot_raises_at_construction(self):
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(ValidationError, match="zero pivot"):
            ILU0Preconditioner(a)

    def test_rejects_non_square(self):
        with pytest.raises(ValidationError, match="square"):
            ILU0Preconditioner(np.ones((3, 4)))

    def test_factor_seconds_recorded(self):
        precond = ILU0Preconditioner(spd_matrix(16, seed=2))
        assert precond.factor_seconds > 0.0


class TestSSOR:
    def test_apply_matches_assembled_m_inverse(self):
        a = spd_matrix(20, seed=3)
        omega = 1.3
        precond = SSORPreconditioner(a, omega=omega)
        d = np.diag(np.diag(a))
        lower = np.tril(a, -1)
        upper = np.triu(a, 1)
        m = (omega / (2.0 - omega)) * (
            (d / omega + lower) @ np.linalg.inv(d) @ (d / omega + upper)
        )
        rng = np.random.default_rng(4)
        r = rng.standard_normal(20)
        np.testing.assert_allclose(precond.apply(r), np.linalg.solve(m, r), rtol=1e-9)

    def test_m_is_spd_for_symmetric_a(self):
        a = ill_conditioned_spd_matrix(16, cond=1e4, seed=5)
        precond = SSORPreconditioner(a)
        # M z = r  =>  z = M⁻¹ r; M is SPD iff M⁻¹ is, so check the
        # application operator's symmetry and positivity.
        eye = np.eye(16)
        m_inv = np.column_stack([precond.apply(eye[:, j]) for j in range(16)])
        np.testing.assert_allclose(m_inv, m_inv.T, atol=1e-10)
        assert np.linalg.eigvalsh(0.5 * (m_inv + m_inv.T)).min() > 0.0

    @pytest.mark.parametrize("omega", [0.0, 2.0, -1.0, 2.5])
    def test_rejects_omega_outside_open_interval(self, omega):
        with pytest.raises(ValidationError, match="omega"):
            SSORPreconditioner(spd_matrix(8, seed=6), omega=omega)

    def test_rejects_zero_diagonal(self):
        a = np.array([[0.0, 1.0], [1.0, 1.0]])
        with pytest.raises(ValidationError, match="zero-free diagonal"):
            SSORPreconditioner(a)


class TestFactory:
    def test_kinds_registry(self):
        assert PRECONDITIONER_KINDS == ("none", "ilu0", "ssor")
        a = spd_matrix(10, seed=7)
        assert make_preconditioner(a, "none").kind == "none"
        assert make_preconditioner(a, "ILU0").kind == "ilu0"
        assert make_preconditioner(a, "ssor").kind == "ssor"

    def test_factored_instance_passes_through(self):
        a = spd_matrix(10, seed=8)
        precond = SSORPreconditioner(a)
        assert make_preconditioner(a, precond) is precond

    def test_unknown_kind_raises(self):
        with pytest.raises(ValidationError, match="unknown preconditioner"):
            make_preconditioner(spd_matrix(4, seed=9), "jacobi2")
