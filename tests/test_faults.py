"""Unit tests of the seeded fault-injection plan machinery (repro.faults)."""

from __future__ import annotations

import pytest

from repro import faults
from repro.errors import ConfigurationError
from repro.faults import FaultPlan, FaultSpec, InjectedFault


@pytest.fixture(autouse=True)
def _disarmed():
    """Every test starts and ends with no plan armed (env arming consumed)."""
    faults.uninstall()
    yield
    faults.uninstall()


def test_parse_round_trips_through_the_canonical_spec():
    plan = FaultPlan.parse(
        "service.slow_frame:delay=0.25,after=2; worker.crash:times=1", seed=3
    )
    again = FaultPlan.parse(plan.spec(), seed=plan.seed)
    assert again.spec() == plan.spec()
    assert "service.slow_frame" in plan.spec() and "worker.crash" in plan.spec()


def test_times_bounds_total_fires():
    plan = FaultPlan.parse("worker.task_error:times=2")
    fires = [plan.should_fire("worker.task_error") for _ in range(5)]
    assert fires == [True, True, False, False, False]
    assert plan.hits("worker.task_error") == 5
    assert plan.fired("worker.task_error") == 2


def test_after_skips_leading_hits():
    plan = FaultPlan.parse("shm.alloc:after=2,times=1")
    fires = [plan.should_fire("shm.alloc") for _ in range(5)]
    assert fires == [False, False, True, False, False]


def test_rate_decisions_are_seed_deterministic():
    def sequence(seed):
        plan = FaultPlan.parse("tile.read:rate=0.5", seed=seed)
        return [plan.should_fire("tile.read") for _ in range(64)]

    assert sequence(1) == sequence(1)
    assert sequence(1) != sequence(2)  # astronomically unlikely to collide
    assert any(sequence(1)) and not all(sequence(1))


def test_unarmed_sites_never_fire_and_cost_no_counters():
    plan = FaultPlan.parse("worker.crash:times=1")
    assert not plan.should_fire("shm.alloc")
    assert plan.hits("shm.alloc") == 0
    assert plan.report() == {"worker.crash": {"hits": 0, "fired": 0}}


def test_validation_rejects_bad_specs():
    with pytest.raises(ConfigurationError):
        FaultPlan.parse("no.such.site:times=1")
    with pytest.raises(ConfigurationError):
        FaultPlan.parse("")  # arms nothing
    with pytest.raises(ConfigurationError):
        FaultPlan.parse("worker.crash:times=1;worker.crash:times=2")  # duplicate
    with pytest.raises(ConfigurationError):
        FaultPlan.parse("worker.crash:bogus=1")
    with pytest.raises(ConfigurationError):
        FaultPlan.parse("worker.crash:times")  # not key=value
    with pytest.raises(ConfigurationError):
        FaultSpec("worker.crash", rate=1.5)
    with pytest.raises(ConfigurationError):
        FaultSpec("worker.crash", times=-1)
    with pytest.raises(ConfigurationError):
        FaultSpec("worker.crash", after=-1)
    with pytest.raises(ConfigurationError):
        FaultSpec("service.slow_frame", delay=-0.5)


def test_inject_context_arms_and_disarms():
    assert faults.active_plan() is None
    with faults.inject("worker.task_error:times=1", seed=9) as plan:
        assert faults.active_plan() is plan
        with pytest.raises(InjectedFault):
            faults.raise_if("worker.task_error")
        faults.raise_if("worker.task_error")  # times=1 exhausted: no raise
    assert faults.active_plan() is None
    faults.raise_if("worker.task_error")  # disarmed: never raises


def test_env_arming_is_read_once_and_consumed_by_uninstall(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "cache.evict_storm:times=1")
    monkeypatch.setenv("REPRO_FAULTS_SEED", "11")
    plan = FaultPlan.from_env()
    assert plan is not None and plan.seed == 11
    # active_plan consults the env lazily, once.
    faults._ENV_LOADED = False  # simulate a fresh process
    armed = faults.active_plan()
    assert armed is not None and armed.spec() == "cache.evict_storm:times=1"
    # uninstall() consumes the env: the same variables do not re-arm.
    faults.uninstall()
    assert faults.active_plan() is None

    monkeypatch.setenv("REPRO_FAULTS_SEED", "not-a-number")
    with pytest.raises(ConfigurationError):
        FaultPlan.from_env()


def test_sleep_if_returns_armed_delay(monkeypatch):
    slept = []
    monkeypatch.setattr(faults.time, "sleep", slept.append)
    with faults.inject("service.slow_frame:delay=0.125,times=1"):
        assert faults.sleep_if("service.slow_frame") == 0.125
        assert faults.sleep_if("service.slow_frame") == 0.0  # exhausted
    assert slept == [0.125]


def test_injected_fault_is_not_a_repro_error():
    from repro.errors import ReproError

    assert not issubclass(InjectedFault, ReproError)
    assert issubclass(InjectedFault, RuntimeError)
