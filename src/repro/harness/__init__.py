"""Experiment harness: one entry point per paper figure.

:mod:`repro.harness.figures` exposes ``figure1()`` ... ``figure9()`` plus
``headline_claims()``; each returns a :class:`FigureResult` whose ``rows``
are plain dictionaries (easy to assert on in tests or dump to CSV) and whose
``render()`` produces the ASCII table printed by the benchmark harness.
"""

from __future__ import annotations

from .experiments import (
    accuracy_sweep,
    adaptive_moduli_sweep,
    batched_speedup_sweep,
    breakdown_sweep,
    cpu_wallclock_sweep,
    gemv_fast_path_sweep,
    kernel_fusion_sweep,
    power_sweep,
    preconditioner_sweep,
    prepared_reuse_sweep,
    process_scaling_sweep,
    progressive_solver_sweep,
    runtime_scaling_sweep,
    serve_cache_sweep,
    serve_throughput_sweep,
    throughput_sweep,
)
from .figures import (
    FigureResult,
    figure1,
    figure3_dgemm,
    figure3_sgemm,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    headline_claims,
)
from .provenance import parse_provenance, stamp
from .report import format_table, rows_to_csv

__all__ = [
    "accuracy_sweep",
    "adaptive_moduli_sweep",
    "batched_speedup_sweep",
    "breakdown_sweep",
    "cpu_wallclock_sweep",
    "gemv_fast_path_sweep",
    "kernel_fusion_sweep",
    "power_sweep",
    "preconditioner_sweep",
    "prepared_reuse_sweep",
    "process_scaling_sweep",
    "serve_throughput_sweep",
    "serve_cache_sweep",
    "progressive_solver_sweep",
    "runtime_scaling_sweep",
    "throughput_sweep",
    "FigureResult",
    "figure1",
    "figure3_dgemm",
    "figure3_sgemm",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "headline_claims",
    "format_table",
    "parse_provenance",
    "rows_to_csv",
    "stamp",
]
