"""Plain-text and CSV rendering of experiment results."""

from __future__ import annotations

import io
from typing import Dict, List, Optional, Sequence

__all__ = ["format_table", "rows_to_csv"]


def _format_value(value, float_format: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    float_format: str = ".4g",
    title: Optional[str] = None,
) -> str:
    """Render a list of row dictionaries as an aligned ASCII table.

    Columns default to the keys of the first row (in insertion order);
    missing values render as empty cells.
    """
    rows = list(rows)
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    rendered: List[List[str]] = [
        [_format_value(row.get(col, ""), float_format) for col in cols] for row in rows
    ]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(cols)
    ]
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(cols))
    out.write(header + "\n")
    out.write("  ".join("-" * w for w in widths) + "\n")
    for r in rendered:
        out.write("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(r)) + "\n")
    return out.getvalue().rstrip("\n")


def rows_to_csv(rows: Sequence[Dict[str, object]], columns: Optional[Sequence[str]] = None) -> str:
    """Render rows as CSV text (no external dependency, deterministic order)."""
    rows = list(rows)
    if not rows:
        return ""
    cols = list(columns) if columns is not None else list(rows[0].keys())
    lines = [",".join(cols)]
    for row in rows:
        cells = []
        for col in cols:
            value = row.get(col, "")
            text = _format_value(value, ".10g")
            if "," in text or '"' in text:
                text = '"' + text.replace('"', '""') + '"'
            cells.append(text)
        lines.append(",".join(cells))
    return "\n".join(lines)
