"""One entry point per paper figure.

Every function returns a :class:`FigureResult` whose ``rows`` hold the data
points and whose ``render()`` prints the table the benchmark harness writes
to stdout.  The ``quick`` flag (default True) shrinks the accuracy problem
sizes so the whole suite runs in minutes on a laptop; ``quick=False`` uses
the paper's sizes (m = n = 1024, k up to 16384, n up to 16384 for the
modelled sweeps).

The mapping to the paper:

=============================  ===========================================
function                       paper artefact
=============================  ===========================================
``figure1``                    Fig. 1 — peak TFLOPS/TOPS per GPU generation
``figure3_dgemm/figure3_sgemm``  Fig. 3 — accuracy vs number of moduli
``figure4`` / ``figure5``      Fig. 4 / 5 — modelled DGEMM / SGEMM throughput
``figure6`` / ``figure7``      Fig. 6 / 7 — modelled time breakdown
``figure8`` / ``figure9``      Fig. 8 / 9 — modelled power efficiency
``headline_claims``            Abstract / Section 5 headline ratios
=============================  ===========================================
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from ..perfmodel import FIGURE1_GPUS, get_gpu, modeled_tflops, power_efficiency
from ..types import FP32, FP64
from .experiments import (
    accuracy_sweep,
    breakdown_sweep,
    power_sweep,
    throughput_sweep,
)
from .report import format_table

__all__ = [
    "FigureResult",
    "figure1",
    "figure3_dgemm",
    "figure3_sgemm",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "headline_claims",
]

#: GPUs used in the paper's evaluation (Figures 3-9).
EVAL_GPUS = ("A100", "GH200", "RTX5080")

#: Default methods per figure, following the paper's legends.
DGEMM_ACCURACY_METHODS = (
    "DGEMM",
    "ozIMMU_EF-8",
    "ozIMMU_EF-9",
    "OS II-fast-13",
    "OS II-fast-14",
    "OS II-fast-15",
    "OS II-fast-16",
    "OS II-accu-14",
    "OS II-accu-15",
)
SGEMM_ACCURACY_METHODS = (
    "SGEMM",
    "TF32GEMM",
    "BF16x9",
    "cuMpSGEMM",
    "OS II-fast-6",
    "OS II-fast-7",
    "OS II-fast-8",
    "OS II-accu-6",
    "OS II-accu-7",
    "OS II-accu-8",
)
DGEMM_PERF_METHODS = (
    "DGEMM",
    "ozIMMU_EF-8",
    "ozIMMU_EF-9",
    "OS II-fast-14",
    "OS II-fast-15",
    "OS II-fast-16",
    "OS II-accu-14",
    "OS II-accu-15",
)
SGEMM_PERF_METHODS = (
    "SGEMM",
    "TF32GEMM",
    "BF16x9",
    "cuMpSGEMM",
    "OS II-fast-7",
    "OS II-fast-8",
    "OS II-fast-9",
    "OS II-accu-7",
    "OS II-accu-8",
)


@dataclasses.dataclass
class FigureResult:
    """Data points and rendering of one reproduced figure."""

    figure: str
    description: str
    rows: List[Dict[str, object]]
    columns: Optional[Sequence[str]] = None

    def render(self) -> str:
        """ASCII table of the figure's data points."""
        title = f"{self.figure}: {self.description}"
        return format_table(self.rows, columns=self.columns, title=title)


# ---------------------------------------------------------------------------
# Figure 1 — peak throughput per GPU generation
# ---------------------------------------------------------------------------

def figure1() -> FigureResult:
    """Peak FP64 / FP32 / FP16 / INT8 throughput of recent GPUs (Figure 1)."""
    rows: List[Dict[str, object]] = []
    for name in FIGURE1_GPUS:
        gpu = get_gpu(name)
        rows.append(
            {
                "gpu": gpu.name,
                "vendor": gpu.vendor,
                "year": gpu.year,
                "fp64_tflops": gpu.fp64_tc or gpu.fp64,
                "fp32_tflops": gpu.fp32,
                "fp16_tc_tflops": gpu.fp16_tc,
                "int8_tops": gpu.int8_tops,
                "int8_over_fp64": round((gpu.int8_tops) / (gpu.fp64_tc or gpu.fp64), 1),
            }
        )
    return FigureResult(
        figure="Figure 1",
        description="peak dense throughput per precision and GPU generation",
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Figure 3 — accuracy
# ---------------------------------------------------------------------------

def figure3_dgemm(
    quick: bool = True,
    methods: Sequence[str] = DGEMM_ACCURACY_METHODS,
    seed: int = 0,
) -> FigureResult:
    """Accuracy of DGEMM emulation vs phi and k (Figure 3, top row)."""
    if quick:
        m = n = 256
        ks = (256, 2048)
        phis = (0.5, 1.0, 2.0, 4.0)
    else:
        m = n = 1024
        ks = (1024, 16384)
        phis = (0.5, 1.0, 2.0, 4.0)
    rows = accuracy_sweep(methods, phis, ks, m=m, n=n, precision=FP64, seed=seed)
    return FigureResult(
        figure="Figure 3 (top)",
        description="max relative error of DGEMM emulation",
        rows=rows,
    )


def figure3_sgemm(
    quick: bool = True,
    methods: Sequence[str] = SGEMM_ACCURACY_METHODS,
    seed: int = 0,
) -> FigureResult:
    """Accuracy of SGEMM emulation vs phi and k (Figure 3, bottom row)."""
    if quick:
        m = n = 256
        ks = (256, 2048)
        phis = (0.5, 1.0, 1.5)
    else:
        m = n = 1024
        ks = (1024, 16384)
        phis = (0.5, 1.0, 1.5)
    rows = accuracy_sweep(methods, phis, ks, m=m, n=n, precision=FP32, seed=seed)
    return FigureResult(
        figure="Figure 3 (bottom)",
        description="max relative error of SGEMM emulation",
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Figures 4/5 — modelled throughput
# ---------------------------------------------------------------------------

def _perf_sizes(quick: bool) -> Sequence[int]:
    return (1024, 2048, 4096, 8192, 16384) if not quick else (1024, 4096, 16384)


def figure4(quick: bool = True, gpus: Sequence[str] = EVAL_GPUS) -> FigureResult:
    """Modelled throughput of DGEMM emulation (Figure 4)."""
    rows = throughput_sweep(DGEMM_PERF_METHODS, gpus, _perf_sizes(quick), target=FP64)
    return FigureResult(
        figure="Figure 4",
        description="modelled DGEMM-emulation throughput (TFLOPS)",
        rows=rows,
    )


def figure5(quick: bool = True, gpus: Sequence[str] = EVAL_GPUS) -> FigureResult:
    """Modelled throughput of SGEMM emulation (Figure 5)."""
    rows = throughput_sweep(SGEMM_PERF_METHODS, gpus, _perf_sizes(quick), target=FP32)
    return FigureResult(
        figure="Figure 5",
        description="modelled SGEMM-emulation throughput (TFLOPS)",
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Figures 6/7 — modelled time breakdown
# ---------------------------------------------------------------------------

def figure6(quick: bool = True, gpus: Sequence[str] = ("RTX5080", "GH200")) -> FigureResult:
    """Modelled time breakdown of DGEMM emulation (Figure 6)."""
    methods = ("OS II-fast-15", "OS II-accu-15")
    rows = breakdown_sweep(methods, gpus, _perf_sizes(quick), target=FP64)
    return FigureResult(
        figure="Figure 6",
        description="modelled time breakdown of DGEMM emulation (fraction of total)",
        rows=rows,
    )


def figure7(quick: bool = True, gpus: Sequence[str] = ("RTX5080", "GH200")) -> FigureResult:
    """Modelled time breakdown of SGEMM emulation (Figure 7)."""
    methods = ("OS II-fast-8", "OS II-accu-8")
    rows = breakdown_sweep(methods, gpus, _perf_sizes(quick), target=FP32)
    return FigureResult(
        figure="Figure 7",
        description="modelled time breakdown of SGEMM emulation (fraction of total)",
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Figures 8/9 — modelled power efficiency
# ---------------------------------------------------------------------------

def figure8(quick: bool = True, gpus: Sequence[str] = EVAL_GPUS) -> FigureResult:
    """Modelled power efficiency of DGEMM emulation (Figure 8)."""
    rows = power_sweep(DGEMM_PERF_METHODS, gpus, _perf_sizes(quick), target=FP64)
    return FigureResult(
        figure="Figure 8",
        description="modelled DGEMM-emulation power efficiency (GFLOPS/W)",
        rows=rows,
    )


def figure9(quick: bool = True, gpus: Sequence[str] = EVAL_GPUS) -> FigureResult:
    """Modelled power efficiency of SGEMM emulation (Figure 9)."""
    rows = power_sweep(SGEMM_PERF_METHODS, gpus, _perf_sizes(quick), target=FP32)
    return FigureResult(
        figure="Figure 9",
        description="modelled SGEMM-emulation power efficiency (GFLOPS/W)",
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Headline claims (abstract / Section 5)
# ---------------------------------------------------------------------------

def headline_claims(n: int = 16384) -> FigureResult:
    """The abstract's headline ratios, recomputed from the model at n=16384.

    * DGEMM emulation on GH200: speedup and power-efficiency improvement of
      OS II-fast-14..17 over native DGEMM (paper: 1.4x and up to +43%).
    * SGEMM emulation on GH200: OS II-fast-7..9 over native SGEMM
      (paper: 3.0x and up to +154%).
    * OS II vs the prior emulation methods (ozIMMU_EF-9 for DGEMM, BF16x9
      for SGEMM; paper: "more than 2x higher performance").  cuMpSGEMM is
      excluded from the "prior" baseline here because the analytic model
      credits it with perfectly tuned FP16 kernels on every GPU, whereas the
      paper notes its implementation is optimised for A100 only.
    """
    gpu = "GH200"
    rows: List[Dict[str, object]] = []

    dgemm_tflops = modeled_tflops("DGEMM", gpu, n, n, n, target=FP64)
    dgemm_eff = power_efficiency("DGEMM", gpu, n, n, n, target=FP64)
    ozimmu_tflops = modeled_tflops("ozIMMU_EF-9", gpu, n, n, n, target=FP64)
    for num_moduli in (14, 15, 16, 17):
        name = f"OS II-fast-{num_moduli}"
        tflops = modeled_tflops(name, gpu, n, n, n, target=FP64)
        eff = power_efficiency(name, gpu, n, n, n, target=FP64)
        rows.append(
            {
                "claim": "DGEMM emulation (GH200)",
                "method": name,
                "speedup_vs_native": tflops / dgemm_tflops,
                "power_gain_vs_native": eff / dgemm_eff - 1.0,
                "speedup_vs_prior": tflops / ozimmu_tflops,
            }
        )

    sgemm_tflops = modeled_tflops("SGEMM", gpu, n, n, n, target=FP32)
    sgemm_eff = power_efficiency("SGEMM", gpu, n, n, n, target=FP32)
    prior_sgemm_tflops = modeled_tflops("BF16x9", gpu, n, n, n, target=FP32)
    for num_moduli in (7, 8, 9):
        name = f"OS II-fast-{num_moduli}"
        tflops = modeled_tflops(name, gpu, n, n, n, target=FP32)
        eff = power_efficiency(name, gpu, n, n, n, target=FP32)
        rows.append(
            {
                "claim": "SGEMM emulation (GH200)",
                "method": name,
                "speedup_vs_native": tflops / sgemm_tflops,
                "power_gain_vs_native": eff / sgemm_eff - 1.0,
                "speedup_vs_prior": tflops / prior_sgemm_tflops,
            }
        )
    return FigureResult(
        figure="Headline claims",
        description=f"modelled ratios at m=n=k={n} on GH200",
        rows=rows,
    )
