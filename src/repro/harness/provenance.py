"""Provenance stamps for archived benchmark artifacts.

Every table under ``benchmarks/results/`` is a *measurement*, and a
measurement without its conditions is a rumor: a 1.4x speedup means one
thing on the 1-CPU CI container and another on a 16-core workstation, and
a bound-tightness table fit at one git revision silently rots when the
scaling code changes underneath it.  This module stamps each artifact
with machine-readable headers::

    # schema: repro-benchmark-artifact/1
    # generated: 2026-08-07T12:00:00+00:00
    # host: ci-container
    # cpus: 1
    # git_sha: 85b123e...
    ...

:func:`stamp` renders the header block (one ``# key: value`` line per
field, no blank line after — the artifact tests split sections on blank
lines, so the stamp must stay glued to the first table);
:func:`parse_provenance` recovers the dictionary from an artifact's text.
``benchmarks/conftest.py`` applies the stamp in its ``save_result``
fixture, so every benchmark inherits it without per-file changes, and
``tests/test_benchmark_artifacts.py`` asserts every committed artifact
carries one.
"""

from __future__ import annotations

import datetime
import pathlib
import platform
import subprocess
from typing import Dict, Mapping, Optional

__all__ = ["SCHEMA", "PROVENANCE_PREFIX", "stamp", "parse_provenance"]

#: Schema tag of the header block; bump when the field set changes
#: incompatibly.
SCHEMA = "repro-benchmark-artifact/1"

#: Line prefix of every provenance header.
PROVENANCE_PREFIX = "# "


def _git_revision() -> Dict[str, str]:
    """Best-effort git revision of the repository containing this package.

    Benchmarks also run from installed wheels and in containers without
    git; the stamp then records ``unknown`` rather than failing — the
    provenance must never break the benchmark producing it.
    """
    root = pathlib.Path(__file__).resolve().parents[3]
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=10.0,
            check=True,
        ).stdout.strip()
        dirty = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=10.0,
            check=True,
        ).stdout.strip()
        return {"git_sha": sha or "unknown", "git_dirty": str(bool(dirty))}
    except (OSError, subprocess.SubprocessError):
        return {"git_sha": "unknown", "git_dirty": "unknown"}


def stamp(extra: Optional[Mapping[str, object]] = None) -> str:
    """Render the provenance header block for one benchmark artifact.

    The block records the schema tag, generation time (UTC), host name,
    CPU count, platform, Python/NumPy/repro versions and the git revision
    (plus whether the working tree was dirty).  ``extra`` appends
    artifact-specific fields (e.g. the benchmark's configuration knobs);
    keys must not contain ``:`` or newlines.  Returns the header lines
    ending in exactly one newline — callers concatenate it directly in
    front of the first table.
    """
    import numpy

    from .. import __version__

    import os

    fields: Dict[str, object] = {
        "schema": SCHEMA,
        "generated": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "host": platform.node() or "unknown",
        "platform": platform.platform(),
        "cpus": os.cpu_count() or 1,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "repro_version": __version__,
    }
    fields.update(_git_revision())
    for key, value in dict(extra or {}).items():
        key = str(key)
        if ":" in key or "\n" in key or "\n" in str(value):
            raise ValueError(
                f"provenance keys/values must be single-line and colon-free "
                f"in the key, got {key!r}"
            )
        fields[key] = value
    return "".join(
        f"{PROVENANCE_PREFIX}{key}: {value}\n" for key, value in fields.items()
    )


def parse_provenance(text: str) -> Dict[str, str]:
    """Recover the provenance dictionary from an artifact's text.

    Reads the leading ``# key: value`` lines (parsing stops at the first
    non-header line, so table content can never bleed into the result).
    Returns an empty dict for artifacts predating the stamp — callers
    decide whether that is acceptable.
    """
    fields: Dict[str, str] = {}
    for line in text.splitlines():
        if not line.startswith(PROVENANCE_PREFIX):
            break
        body = line[len(PROVENANCE_PREFIX) :]
        key, sep, value = body.partition(":")
        if not sep:
            break
        fields[key.strip()] = value.strip()
    return fields
