"""Experiment sweeps feeding the per-figure reproductions.

Each sweep returns a list of plain dictionaries (one per data point) so that
tests can make assertions on them directly and the figures module can render
them as tables.  Accuracy sweeps actually *run* the numerical methods on
generated workloads; throughput / power / breakdown sweeps evaluate the
analytic GPU model (see DESIGN.md for the hardware substitution rationale).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..accuracy import max_relative_error, reference_gemm
from ..baselines.registry import get_method
from ..perfmodel import modeled_tflops, phase_breakdown, power_efficiency
from ..types import FP32, FP64, Format, get_format
from ..workloads import phi_pair

__all__ = [
    "accuracy_sweep",
    "adaptive_moduli_sweep",
    "progressive_solver_sweep",
    "throughput_sweep",
    "power_sweep",
    "breakdown_sweep",
    "cpu_wallclock_sweep",
    "kernel_fusion_sweep",
    "gemv_fast_path_sweep",
    "preconditioner_sweep",
    "runtime_scaling_sweep",
    "batched_speedup_sweep",
    "prepared_reuse_sweep",
    "serve_throughput_sweep",
    "serve_cache_sweep",
]


def accuracy_sweep(
    methods: Sequence[str],
    phis: Sequence[float],
    ks: Sequence[int],
    m: int = 1024,
    n: int = 1024,
    precision: "Format | str" = FP64,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Maximum relative error of every method over a (phi, k) grid.

    This is the computation behind Figure 3: ``m = n`` fixed, ``k`` varied,
    ``phi`` controlling the exponent spread, error measured against the
    high-precision reference GEMM.
    """
    fmt = get_format(precision)
    rows: List[Dict[str, object]] = []
    for phi in phis:
        for k in ks:
            a, b = phi_pair(m, k, n, phi=phi, precision=fmt, seed=seed)
            reference = reference_gemm(a, b)
            for name in methods:
                spec = get_method(name, target=fmt)
                computed = spec(a, b)
                rows.append(
                    {
                        "precision": fmt.name,
                        "phi": float(phi),
                        "m": m,
                        "k": int(k),
                        "n": n,
                        "method": spec.name,
                        "max_rel_error": max_relative_error(computed, reference),
                    }
                )
    return rows


def throughput_sweep(
    methods: Sequence[str],
    gpus: Sequence[str],
    sizes: Sequence[int],
    target: "Format | str" = FP64,
) -> List[Dict[str, object]]:
    """Modelled TFLOPS of every method over square problems (Figures 4–5)."""
    fmt = get_format(target)
    rows: List[Dict[str, object]] = []
    for gpu in gpus:
        for size in sizes:
            for name in methods:
                spec = get_method(name, target=fmt)
                rows.append(
                    {
                        "gpu": gpu,
                        "n": int(size),
                        "method": spec.name,
                        "target": fmt.name,
                        "tflops": modeled_tflops(name, gpu, size, size, size, target=fmt),
                    }
                )
    return rows


def power_sweep(
    methods: Sequence[str],
    gpus: Sequence[str],
    sizes: Sequence[int],
    target: "Format | str" = FP64,
) -> List[Dict[str, object]]:
    """Modelled power efficiency (GFLOPS/W) over square problems (Figures 8–9)."""
    fmt = get_format(target)
    rows: List[Dict[str, object]] = []
    for gpu in gpus:
        for size in sizes:
            for name in methods:
                spec = get_method(name, target=fmt)
                rows.append(
                    {
                        "gpu": gpu,
                        "n": int(size),
                        "method": spec.name,
                        "target": fmt.name,
                        "gflops_per_watt": power_efficiency(
                            name, gpu, size, size, size, target=fmt
                        ),
                    }
                )
    return rows


def breakdown_sweep(
    methods: Sequence[str],
    gpus: Sequence[str],
    sizes: Sequence[int],
    target: "Format | str" = FP64,
) -> List[Dict[str, object]]:
    """Per-phase modelled time fractions (Figures 6–7)."""
    fmt = get_format(target)
    rows: List[Dict[str, object]] = []
    for gpu in gpus:
        for size in sizes:
            for name in methods:
                spec = get_method(name, target=fmt)
                fractions = phase_breakdown(name, gpu, size, size, size, target=fmt)
                for phase, fraction in fractions.items():
                    rows.append(
                        {
                            "gpu": gpu,
                            "n": int(size),
                            "method": spec.name,
                            "target": fmt.name,
                            "phase": phase,
                            "fraction": fraction,
                        }
                    )
    return rows


def cpu_wallclock_sweep(
    methods: Sequence[str],
    sizes: Sequence[int],
    target: "Format | str" = FP64,
    phi: float = 0.5,
    seed: int = 0,
    repeats: int = 1,
) -> List[Dict[str, object]]:
    """Measured wall-clock time of this library's implementations (CPU).

    Not a figure from the paper — the paper measures GPU kernels — but a
    useful sanity check on the implementation cost of every method in this
    reproduction, and the basis of the pytest-benchmark CPU suite.
    """
    fmt = get_format(target)
    rows: List[Dict[str, object]] = []
    for size in sizes:
        a, b = phi_pair(size, size, size, phi=phi, precision=fmt, seed=seed)
        for name in methods:
            spec = get_method(name, target=fmt)
            best = float("inf")
            for _ in range(max(1, repeats)):
                start = time.perf_counter()
                spec(a, b)
                best = min(best, time.perf_counter() - start)
            rows.append(
                {
                    "n": int(size),
                    "method": spec.name,
                    "target": fmt.name,
                    "seconds": best,
                    "effective_gflops": 2.0 * size**3 / best / 1e9,
                }
            )
    return rows


def runtime_scaling_sweep(
    sizes: Sequence[int],
    workers: Sequence[int] = (1, 4),
    num_moduli: int = 15,
    target: "Format | str" = FP64,
    phi: float = 0.5,
    seed: int = 0,
    repeats: int = 1,
) -> List[Dict[str, object]]:
    """Serial-vs-parallel wall clock of the execution runtime (this CPU).

    For every size, the same emulated GEMM runs once per worker count of
    ``workers`` (1 = strictly serial; a serial baseline run is injected,
    and reported, if ``workers`` does not start with 1); each row reports
    the best-of-``repeats`` wall time, the speedup relative to the serial
    run and whether the result was bit-identical to it — which the runtime
    guarantees (:mod:`repro.runtime.scheduler`).
    """
    from ..config import Ozaki2Config
    from ..core.gemm import ozaki2_gemm

    fmt = precision_for_target(target)
    counts = list(workers)
    if not counts or counts[0] != 1:
        # The baseline must be the strictly serial run; inject it (its row
        # is reported too) rather than silently misusing the first entry.
        counts = [1] + counts
    rows: List[Dict[str, object]] = []
    for size in sizes:
        a, b = phi_pair(size, size, size, phi=phi, precision=fmt, seed=seed)
        serial_seconds: Optional[float] = None
        serial_c = None
        for count in counts:
            config = Ozaki2Config(
                precision=fmt, num_moduli=num_moduli, parallelism=int(count)
            )
            best = float("inf")
            c = None
            for _ in range(max(1, repeats)):
                start = time.perf_counter()
                c = ozaki2_gemm(a, b, config=config)
                best = min(best, time.perf_counter() - start)
            if serial_seconds is None:
                serial_seconds, serial_c = best, c
            rows.append(
                {
                    "n": int(size),
                    "method": config.method_name,
                    "workers": int(count),
                    "seconds": best,
                    "speedup_vs_serial": serial_seconds / best,
                    "bit_identical": bool(np.array_equal(c, serial_c)),
                }
            )
    return rows


def process_scaling_sweep(
    size: int,
    workers: Sequence[int] = (1, 2, 4),
    executors: Sequence[str] = ("thread", "process"),
    num_moduli: int = 15,
    target: "Format | str" = FP64,
    phi: float = 0.5,
    seed: int = 0,
    repeats: int = 1,
) -> List[Dict[str, object]]:
    """Thread pool vs process pool wall clock for one emulated GEMM.

    One ``size^3`` emulated GEMM runs per ``(executor, workers)`` pair —
    the process executor dispatches the residue work to worker *processes*
    over shared-memory stacks, so (unlike threads) the INT8 conversion and
    accumulation phases escape the GIL.  Every row reports the
    best-of-``repeats`` wall time, the speedup over the strictly serial
    baseline (first row), bitwise equality with that baseline and op-ledger
    equality — both guaranteed by the runtime regardless of backend — plus
    the per-phase seconds (``phase_<key>``) of the best run, which is where
    the de-serialised convert/accumulate shows up.  ``workers == 1`` rows
    are forced onto the thread path (a one-worker process pool only adds
    IPC overhead), so exactly one serial baseline appears.
    """
    from ..config import Ozaki2Config
    from ..core.gemm import ozaki2_gemm

    fmt = precision_for_target(target)
    a, b = phi_pair(size, size, size, phi=phi, precision=fmt, seed=seed)
    serial_seconds: Optional[float] = None
    serial_result = None
    rows: List[Dict[str, object]] = []
    counts = list(workers)
    if not counts or counts[0] != 1:
        counts = [1] + counts
    for count in counts:
        backends = ("thread",) if count == 1 else tuple(executors)
        for executor in backends:
            config = Ozaki2Config(
                precision=fmt,
                num_moduli=num_moduli,
                parallelism=int(count),
                executor=executor,
            )
            best = float("inf")
            result = None
            for _ in range(max(1, repeats)):
                start = time.perf_counter()
                candidate = ozaki2_gemm(a, b, config=config, return_details=True)
                elapsed = time.perf_counter() - start
                if elapsed < best:
                    best, result = elapsed, candidate
            if serial_result is None:
                serial_seconds, serial_result = best, result
            row: Dict[str, object] = {
                "n": int(size),
                "method": result.method_name,
                "executor": executor,
                "workers": int(count),
                "seconds": best,
                "speedup_vs_serial": serial_seconds / best,
                "bit_identical": bool(np.array_equal(result.c, serial_result.c)),
                "ledger_equal": result.int8_counter.as_dict()
                == serial_result.int8_counter.as_dict(),
            }
            for key, value in result.phase_times.seconds.items():
                row[f"phase_{key}"] = value
            rows.append(row)
    return rows


def kernel_fusion_sweep(
    size: int,
    num_moduli: int = 15,
    workers: Sequence[int] = (1,),
    target: "Format | str" = FP64,
    phi: float = 0.5,
    seed: int = 0,
    repeats: int = 3,
) -> List[Dict[str, object]]:
    """Fused kernel path vs the pre-fusion per-modulus loop (this CPU).

    For every worker count, one ``size^3`` emulated GEMM runs end-to-end
    through both paths (``Ozaki2Config.fused_kernels`` True/False); each
    pair of rows reports the best-of-``repeats`` wall time, the fused
    speedup over the loop, whether the results were bit-identical and
    whether the merged op ledgers were equal — both of which the fused path
    guarantees.  The per-phase seconds of the *best* run of each path are
    attached under ``phase_<key>`` so benchmarks can archive the
    before/after breakdown.
    """
    from ..config import Ozaki2Config
    from ..core.gemm import ozaki2_gemm

    fmt = precision_for_target(target)
    a, b = phi_pair(size, size, size, phi=phi, precision=fmt, seed=seed)
    rows: List[Dict[str, object]] = []
    for count in workers:
        results: Dict[bool, object] = {}
        best: Dict[bool, float] = {}
        for fused in (False, True):
            config = Ozaki2Config(
                precision=fmt,
                num_moduli=num_moduli,
                parallelism=int(count),
                fused_kernels=fused,
            )
            best[fused] = float("inf")
            for _ in range(max(1, repeats)):
                start = time.perf_counter()
                result = ozaki2_gemm(a, b, config=config, return_details=True)
                elapsed = time.perf_counter() - start
                if elapsed < best[fused]:
                    best[fused] = elapsed
                    results[fused] = result
        identical = bool(np.array_equal(results[True].c, results[False].c))
        ledger_equal = (
            results[True].int8_counter.as_dict()
            == results[False].int8_counter.as_dict()
        )
        for fused in (False, True):
            row: Dict[str, object] = {
                "n": int(size),
                "method": results[fused].method_name,
                "workers": int(count),
                "path": "fused" if fused else "per-modulus",
                "seconds": best[fused],
                "speedup_vs_loop": best[False] / best[fused],
                "bit_identical": identical,
                "ledger_equal": ledger_equal,
            }
            for key, value in results[fused].phase_times.seconds.items():
                row[f"phase_{key}"] = value
            rows.append(row)
    return rows


def gemv_fast_path_sweep(
    size: int,
    num_moduli: int = 15,
    iters: int = 5,
    target: "Format | str" = FP64,
    phi: float = 0.5,
    seed: int = 0,
    repeats: int = 3,
) -> List[Dict[str, object]]:
    """Residue-GEMV fast path vs the ``n = 1`` GEMM route (this CPU).

    Models one solver run: a ``size x size`` system matrix is prepared once
    (:func:`~repro.core.operand.prepare_a`), then ``iters`` distinct vectors
    are multiplied through :func:`~repro.apps.solvers.prepared_matvec` with
    ``gemv_fast_path`` off (the full plan/scheduler ``n = 1`` GEMM route)
    and on (the dedicated :func:`~repro.core.gemv.prepared_gemv` kernel).
    Two rows are returned — ``route`` = ``"gemm-n1"`` / ``"gemv-fast"`` —
    with the best-of-``repeats`` total wall time, the **per-iteration
    latency** (the figure a solver iteration pays), the fast path's speedup,
    and the bitwise/op-ledger equality flags that the fast path guarantees.
    Per-phase seconds of a representative call are attached under
    ``phase_<key>``.
    """
    from ..apps.solvers import prepared_matvec
    from ..config import Ozaki2Config
    from ..core.gemm import ozaki2_gemm
    from ..core.gemv import prepared_gemv
    from ..core.operand import prepare_a
    from ..engines.int8 import Int8MatrixEngine
    from ..runtime.scheduler import Scheduler

    fmt = precision_for_target(target)
    rng_seed = int(seed)
    a = phi_pair(size, size, size, phi=phi, precision=fmt, seed=rng_seed)[0]
    vectors = [
        phi_pair(size, size, 1, phi=phi, precision=fmt, seed=rng_seed + 1 + j)[1][:, 0]
        for j in range(max(1, int(iters)))
    ]

    configs = {
        "gemm-n1": Ozaki2Config(
            precision=fmt, num_moduli=num_moduli, gemv_fast_path=False
        ),
        "gemv-fast": Ozaki2Config(
            precision=fmt, num_moduli=num_moduli, gemv_fast_path=True
        ),
    }
    prep = prepare_a(a, config=configs["gemv-fast"])

    best: Dict[str, float] = {}
    outputs: Dict[str, List[np.ndarray]] = {}
    for route, config in configs.items():
        best[route] = float("inf")
        for _ in range(max(1, repeats)):
            with Scheduler(
                parallelism=config.parallelism,
                executor=config.executor,
                max_pool_rebuilds=config.max_pool_rebuilds,
            ) as sched:
                start = time.perf_counter()
                outs = [prepared_matvec(prep, v, config, sched) for v in vectors]
                elapsed = time.perf_counter() - start
            if elapsed < best[route]:
                best[route] = elapsed
                outputs[route] = outs

    identical = all(
        np.array_equal(x, y) for x, y in zip(outputs["gemm-n1"], outputs["gemv-fast"], strict=True)
    )

    # Verification pass with fresh engines: the two routes must account for
    # exactly the same residue products.  Also yields per-phase seconds.
    v0 = vectors[0]
    gemm_engine = Int8MatrixEngine()
    gemm_details = ozaki2_gemm(
        prep,
        v0[:, None],
        config=configs["gemm-n1"],
        engine=gemm_engine,
        return_details=True,
    )
    gemv_engine = Int8MatrixEngine()
    gemv_details = prepared_gemv(
        prep, v0, config=configs["gemv-fast"], engine=gemv_engine, return_details=True
    )
    ledger_equal = (
        gemm_details.int8_counter.as_dict() == gemv_details.int8_counter.as_dict()
    )

    details = {"gemm-n1": gemm_details, "gemv-fast": gemv_details}
    rows: List[Dict[str, object]] = []
    for route in ("gemm-n1", "gemv-fast"):
        row: Dict[str, object] = {
            "n": int(size),
            "method": configs[route].method_name,
            "route": route,
            "iters": len(vectors),
            "seconds_total": best[route],
            "per_iter_seconds": best[route] / len(vectors),
            "speedup_vs_gemm": best["gemm-n1"] / best[route],
            "bit_identical": identical,
            "ledger_equal": ledger_equal,
            "prepare_seconds": prep.convert_seconds,
        }
        for key, value in details[route].phase_times.seconds.items():
            row[f"phase_{key}"] = value
        rows.append(row)
    return rows


def preconditioner_sweep(
    size: int = 96,
    kinds: Sequence[str] = ("none", "ilu0", "ssor"),
    cond: float = 1e3,
    num_moduli: int = 15,
    target: "Format | str" = FP64,
    tol: Optional[float] = None,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Iteration counts of PCG under each preconditioner, on one system.

    Solves one ill-conditioned SPD system
    (:func:`repro.workloads.ill_conditioned_spd_matrix`, condition number
    ``cond``) with :func:`~repro.apps.solvers.pcg_solve` under every
    preconditioner kind.  One row per kind reports convergence, the
    iteration count (``"none"`` is the plain-CG baseline the others are
    measured against), the one-time factor cost and the total wall time.
    """
    from ..apps.solvers import pcg_solve
    from ..config import Ozaki2Config
    from ..workloads import linear_system

    fmt = precision_for_target(target)
    config = Ozaki2Config(precision=fmt, num_moduli=num_moduli)
    if tol is None:
        tol = 1e-8 if fmt == FP64 else 1e-3
    a, b, _ = linear_system(size, kind="ill_spd", seed=seed, cond=cond)

    results = {
        kind: pcg_solve(a, b, config=config, tol=tol, precond=kind)
        for kind in kinds
    }
    baseline = results.get("none")
    rows: List[Dict[str, object]] = []
    for kind in kinds:
        result = results[kind]
        rows.append(
            {
                "n": int(size),
                "cond": float(cond),
                "method": result.method,
                "precond": kind,
                "converged": result.converged,
                "iterations": result.iterations,
                "residual": result.residual_norm,
                "iters_vs_cg": (
                    result.iterations / baseline.iterations
                    if baseline is not None and baseline.iterations
                    else float("nan")
                ),
                "factor_seconds": result.precond_seconds,
                "seconds": result.seconds,
            }
        )
    return rows


def batched_speedup_sweep(
    size: int,
    batch: int,
    num_moduli: int = 15,
    parallelism: int = 1,
    target: "Format | str" = FP64,
    phi: float = 0.5,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Batched API vs a Python loop of serial calls, on ``batch`` problems.

    Returns two rows (``strategy`` = ``"loop"`` / ``"batched"``) with wall
    time, speedup of batched over the loop and a bitwise-equality flag.
    """
    from ..config import Ozaki2Config
    from ..core.gemm import ozaki2_gemm
    from ..runtime import ozaki2_gemm_batched

    fmt = precision_for_target(target)
    config = Ozaki2Config(
        precision=fmt, num_moduli=num_moduli, parallelism=int(parallelism)
    )
    pairs = [
        phi_pair(size, size, size, phi=phi, precision=fmt, seed=seed + j)
        for j in range(batch)
    ]

    start = time.perf_counter()
    loop_results = [ozaki2_gemm(a, b, config=config) for a, b in pairs]
    loop_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batched_results = ozaki2_gemm_batched(
        [a for a, _ in pairs], [b for _, b in pairs], config=config
    )
    batched_seconds = time.perf_counter() - start

    identical = all(
        np.array_equal(x, y) for x, y in zip(loop_results, batched_results, strict=True)
    )
    common = {
        "n": int(size),
        "batch": int(batch),
        "method": config.method_name,
        "workers": config.parallelism,
        "bit_identical": identical,
    }
    return [
        {**common, "strategy": "loop", "seconds": loop_seconds, "speedup_vs_loop": 1.0},
        {
            **common,
            "strategy": "batched",
            "seconds": batched_seconds,
            "speedup_vs_loop": loop_seconds / batched_seconds,
        },
    ]


def prepared_reuse_sweep(
    size: int = 256,
    reuse_counts: Sequence[int] = (1, 2, 4, 8),
    num_moduli: int = 15,
    target: "Format | str" = FP64,
    phi: float = 0.5,
    seed: int = 0,
    repeats: int = 3,
) -> List[Dict[str, object]]:
    """Amortised speedup of convert-once/multiply-many vs fresh conversion.

    For every reuse count ``r``, one fixed ``A`` is multiplied against ``r``
    distinct partners twice: once with plain :func:`~repro.core.gemm.
    ozaki2_gemm` calls (A converted every time) and once through a single
    :func:`~repro.core.operand.prepare_a` whose residues serve all ``r``
    calls.  Rows report best-of-``repeats`` total wall time, amortised
    per-call time (the prepared total *includes* the one-time preparation),
    the amortised speedup, and bitwise equality — which the prepared path
    guarantees.
    """
    from ..config import Ozaki2Config
    from ..core.gemm import ozaki2_gemm
    from ..core.operand import prepare_a

    fmt = precision_for_target(target)
    config = Ozaki2Config(precision=fmt, num_moduli=num_moduli)
    max_reuse = max(reuse_counts)
    a, _ = phi_pair(size, size, size, phi=phi, precision=fmt, seed=seed)
    partners = [
        phi_pair(size, size, size, phi=phi, precision=fmt, seed=seed + 1 + j)[1]
        for j in range(max_reuse)
    ]

    rows: List[Dict[str, object]] = []
    for reuse in reuse_counts:
        plain_seconds = float("inf")
        plain_results = None
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            results = [ozaki2_gemm(a, partners[i], config=config) for i in range(reuse)]
            elapsed = time.perf_counter() - start
            if elapsed < plain_seconds:
                plain_seconds, plain_results = elapsed, results

        prepared_seconds = float("inf")
        prepared_results = None
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            prep = prepare_a(a, config=config)
            results = [
                ozaki2_gemm(prep, partners[i], config=config) for i in range(reuse)
            ]
            elapsed = time.perf_counter() - start
            if elapsed < prepared_seconds:
                prepared_seconds, prepared_results = elapsed, results

        identical = all(
            np.array_equal(x, y) for x, y in zip(plain_results, prepared_results, strict=True)
        )
        rows.append(
            {
                "n": int(size),
                "method": config.method_name,
                "reuse": int(reuse),
                "seconds_unprepared": plain_seconds,
                "seconds_prepared": prepared_seconds,
                "amortised_unprepared": plain_seconds / reuse,
                "amortised_prepared": prepared_seconds / reuse,
                "amortised_speedup": plain_seconds / prepared_seconds,
                "bit_identical": identical,
            }
        )
    return rows


def precision_for_target(target: "Format | str") -> Format:
    """Coerce a target precision spec to FP64/FP32 (helper for sweeps)."""
    fmt = get_format(target)
    if fmt not in (FP64, FP32):
        raise ValueError(f"runtime sweeps emulate fp64 or fp32, got {fmt.name}")
    return fmt


def adaptive_moduli_sweep(
    families: Sequence[Dict[str, object]],
    repeats: int = 3,
) -> List[Dict[str, object]]:
    """Auto-N vs fixed-N emulation across workload families (this CPU).

    Each family is a dict with keys ``label``, ``m``, ``k``, ``n`` and
    optionally ``phi`` (default 0.5), ``precision`` (default fp64),
    ``num_moduli_fixed`` (default 15 — the paper's DGEMM default) and
    ``seed``.  For every family the same (A, B) pair runs through

    * the fixed configuration (``num_moduli=num_moduli_fixed``), and
    * the auto configuration (``num_moduli="auto"`` at the default
      ``target_accuracy`` unless the family overrides it),

    with best-of-``repeats`` wall clocks.  Each row reports the selected
    count, the measured end-to-end speedup next to the cost model's
    *predicted* ops speedup (:func:`repro.perfmodel.adaptive_moduli_savings`),
    the measured max element-wise error against the high-precision
    reference next to the selection's guaranteed bound
    (``within_bound``), and bitwise equality of the auto result against a
    fixed run at the selected count (``bit_identical`` — auto selection
    chooses the configuration, never the arithmetic).
    """
    from ..config import Ozaki2Config
    from ..core.gemm import ozaki2_gemm
    from ..perfmodel import adaptive_moduli_savings

    rows: List[Dict[str, object]] = []
    for family in families:
        fmt = precision_for_target(family.get("precision", FP64))
        m, k, n = int(family["m"]), int(family["k"]), int(family["n"])
        phi = float(family.get("phi", 0.5))
        seed = int(family.get("seed", 0))
        n_fixed = int(family.get("num_moduli_fixed", 15))
        target = family.get("target_accuracy")
        a, b = phi_pair(m, k, n, phi=phi, precision=fmt, seed=seed)

        fixed_cfg = Ozaki2Config(precision=fmt, num_moduli=n_fixed)
        auto_cfg = Ozaki2Config(
            precision=fmt, num_moduli="auto", target_accuracy=target
        )

        best = {}
        details = {}
        for key, cfg in (("fixed", fixed_cfg), ("auto", auto_cfg)):
            best[key] = float("inf")
            for _ in range(max(1, int(repeats))):
                start = time.perf_counter()
                result = ozaki2_gemm(a, b, config=cfg, return_details=True)
                elapsed = time.perf_counter() - start
                if elapsed < best[key]:
                    best[key], details[key] = elapsed, result

        auto = details["auto"]
        selection = auto.moduli_selection
        comparator = ozaki2_gemm(a, b, config=fixed_cfg.replace(num_moduli=auto.config.num_moduli))
        reference = reference_gemm(a, b)
        measured_error = float(np.max(np.abs(auto.c.astype(np.float64) - reference)))
        predicted = adaptive_moduli_savings(
            m, k, n, n_fixed, auto.config.num_moduli, target=fmt
        )
        rows.append(
            {
                "family": str(family.get("label", f"m{m}k{k}n{n}_phi{phi:g}")),
                "precision": fmt.name,
                "m": m,
                "k": k,
                "n": n,
                "phi": phi,
                "target": selection.target,
                "n_fixed": n_fixed,
                "n_auto": auto.config.num_moduli,
                "n_rigorous": int(selection.rigorous_num_moduli or auto.config.num_moduli),
                "decided_by": str(selection.decided_by),
                "target_met": bool(selection.met),
                "seconds_fixed": best["fixed"],
                "seconds_auto": best["auto"],
                "speedup": best["fixed"] / best["auto"],
                "predicted_speedup": predicted["predicted_ops_speedup"],
                "max_error": measured_error,
                "error_bound": float(selection.bound),
                "within_bound": bool(measured_error <= selection.bound),
                "bit_identical": bool(np.array_equal(auto.c, comparator)),
            }
        )
    return rows


def progressive_solver_sweep(
    size: int = 1024,
    cond: float = 1e3,
    num_moduli: int = 15,
    tol: float = 1e-10,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Progressive-precision CG vs the fixed-count solve (this CPU).

    Solves one ill-conditioned SPD system (the PCG benchmark family) with
    plain CG at the fixed count and with ``progressive=True`` (the
    moduli-escalation ladder of :class:`repro.apps.solvers._ModuliLadder`).
    Two rows — ``route`` = ``"fixed"`` / ``"progressive"`` — report
    convergence, iterations, the final relative residual (both routes face
    the *same* full-count residual check), wall clock, and the
    progressive route's moduli schedule as ``N:iterations`` segments.
    """
    from ..apps.solvers import cg_solve, moduli_schedule_segments
    from ..config import Ozaki2Config
    from ..workloads import linear_system

    a, b, _ = linear_system(size, kind="ill_spd", cond=cond, seed=seed)
    config = Ozaki2Config(num_moduli=num_moduli)

    rows: List[Dict[str, object]] = []
    for route, progressive in (("fixed", False), ("progressive", True)):
        result = cg_solve(a, b, config=config, tol=tol, progressive=progressive)
        segments = moduli_schedule_segments(result.moduli_history)
        rows.append(
            {
                "route": route,
                "n": int(size),
                "cond": float(cond),
                "method": result.method,
                "converged": bool(result.converged),
                "iterations": int(result.iterations),
                "residual": float(result.residual_norm),
                "tol": float(tol),
                "seconds": float(result.seconds),
                "schedule": "->".join(f"{c}x{i}" for c, i in segments),
            }
        )
    rows[1]["speedup_vs_fixed"] = rows[0]["seconds"] / rows[1]["seconds"]
    rows[0]["speedup_vs_fixed"] = 1.0
    return rows


def serve_throughput_sweep(
    size: int = 384,
    requests: int = 24,
    num_moduli: int = 15,
    target: "Format | str" = FP64,
    phi: float = 0.5,
    seed: int = 0,
    repeats: int = 2,
) -> List[Dict[str, object]]:
    """Served warm-hit vs cold-miss throughput on a reuse-heavy trace.

    The service's value proposition in one number: a trace of ``requests``
    matrix–vector products against **one** recurring matrix (the iterative-
    solver/inference shape) is driven through ``repro serve`` twice —

    * **cold-miss route**: caching disabled on the server and fingerprints
      disabled on the client, so every request uploads the matrix bytes and
      pays the full residue conversion (the pre-service behaviour), and
    * **warm-hit route**: the default service configuration — the first
      request uploads and converts, every later request sends the 32-digit
      fingerprint and reuses the cached operand.

    Both routes serve over real sockets (loopback HTTP) and both answers
    are required to be **bit-identical** to each other and to the direct
    in-process :class:`~repro.session.Session` product.  Rows report
    best-of-``repeats`` requests/sec for each route, the speedup, and the
    measured warm hit rate.  The acceptance floor asserted by the
    benchmark is warm ≥ 2x cold.
    """
    from ..config import Ozaki2Config
    from ..service import ReproServer, ServiceClient

    fmt = precision_for_target(target)
    config = Ozaki2Config(precision=fmt, num_moduli=num_moduli)
    a, _ = phi_pair(size, size, size, phi=phi, precision=fmt, seed=seed)
    rng = np.random.default_rng(seed + 1)
    vectors = [rng.standard_normal(size) for _ in range(requests)]

    def run_trace(client: ServiceClient):
        start = time.perf_counter()
        values = [client.gemv(a, v).value for v in vectors]
        return time.perf_counter() - start, values

    cold_seconds = float("inf")
    cold_values = None
    with ReproServer(config=config, port=0, cache_bytes=0).start() as server:
        client = ServiceClient(port=server.port, use_fingerprints=False)
        for _ in range(max(1, repeats)):
            elapsed, values = run_trace(client)
            if elapsed < cold_seconds:
                cold_seconds, cold_values = elapsed, values

    warm_seconds = float("inf")
    warm_values = None
    hit_rate = 0.0
    with ReproServer(config=config, port=0).start() as server:
        client = ServiceClient(port=server.port)
        client.gemv(a, vectors[0])  # the one cold miss: upload + convert
        for _ in range(max(1, repeats)):
            elapsed, values = run_trace(client)
            if elapsed < warm_seconds:
                warm_seconds, warm_values = elapsed, values
        stats = client.stats()["cache"]
        hit_rate = float(stats["hit_rate"])

    from ..session import Session

    with Session(config=config) as session:
        reference = [session.gemv(a, v).value for v in vectors]
    identical = all(
        np.array_equal(c, w) and np.array_equal(w, r)
        for c, w, r in zip(cold_values, warm_values, reference, strict=True)
    )
    return [
        {
            "trace": "gemv-reuse",
            "n": int(size),
            "requests": int(requests),
            "method": config.method_name,
            "seconds_cold": cold_seconds,
            "seconds_warm": warm_seconds,
            "rps_cold": requests / cold_seconds,
            "rps_warm": requests / warm_seconds,
            "speedup": cold_seconds / warm_seconds,
            "hit_rate": hit_rate,
            "bit_identical": bool(identical),
        }
    ]


def serve_cache_sweep(
    size: int = 256,
    working_set: int = 6,
    requests: int = 36,
    cache_entries: Sequence[int] = (1, 2, 4, 6),
    num_moduli: int = 15,
    target: "Format | str" = FP64,
    phi: float = 0.5,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Served throughput and hit rate as a function of cache capacity.

    A skewed trace (operand ``i`` of a ``working_set`` drawn with
    probability ∝ 1/(i+1) — popular matrices recur, cold ones straggle, the
    canonical serving distribution) of GEMV requests runs against servers
    whose operand cache holds 1 … ``working_set`` entries.  Rows report
    requests/sec, the measured hit rate and the evictions per capacity —
    the curve that tells an operator how to size ``--cache-mb`` for a
    workload: throughput rises with the hit rate until the cache covers the
    hot set, after which extra capacity buys nothing.
    """
    from ..config import Ozaki2Config
    from ..core.operand import prepare_a
    from ..service import ReproServer, ServiceClient

    fmt = precision_for_target(target)
    config = Ozaki2Config(precision=fmt, num_moduli=num_moduli)
    matrices = [
        phi_pair(size, size, size, phi=phi, precision=fmt, seed=seed + j)[0]
        for j in range(working_set)
    ]
    entry_bytes = prepare_a(matrices[0], config=config).nbytes

    rng = np.random.default_rng(seed + 100)
    weights = np.array([1.0 / (j + 1) for j in range(working_set)])
    trace = rng.choice(working_set, size=requests, p=weights / weights.sum())
    vectors = [rng.standard_normal(size) for _ in range(requests)]

    rows: List[Dict[str, object]] = []
    for capacity in cache_entries:
        # Budget for exactly `capacity` entries (nbytes varies by a few
        # hundred bytes between same-shape operands; half an entry of slack
        # absorbs that without admitting an extra one).
        cache_bytes = int(entry_bytes * (capacity + 0.5))
        with ReproServer(config=config, port=0, cache_bytes=cache_bytes).start() as server:
            client = ServiceClient(port=server.port)
            start = time.perf_counter()
            for step, pick in enumerate(trace):
                client.gemv(matrices[int(pick)], vectors[step])
            elapsed = time.perf_counter() - start
            stats = client.stats()["cache"]
        rows.append(
            {
                "capacity_entries": int(capacity),
                "working_set": int(working_set),
                "requests": int(requests),
                "rps": requests / elapsed,
                "hit_rate": float(stats["hit_rate"]),
                "hits": int(stats["hits"]),
                "misses": int(stats["misses"]),
                "evictions": int(stats["evictions"]),
            }
        )
    return rows
