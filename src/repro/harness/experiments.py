"""Experiment sweeps feeding the per-figure reproductions.

Each sweep returns a list of plain dictionaries (one per data point) so that
tests can make assertions on them directly and the figures module can render
them as tables.  Accuracy sweeps actually *run* the numerical methods on
generated workloads; throughput / power / breakdown sweeps evaluate the
analytic GPU model (see DESIGN.md for the hardware substitution rationale).
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..accuracy import max_relative_error, reference_gemm
from ..baselines.registry import get_method
from ..perfmodel import modeled_tflops, phase_breakdown, power_efficiency
from ..types import FP32, FP64, Format, get_format
from ..workloads import phi_pair

__all__ = [
    "accuracy_sweep",
    "throughput_sweep",
    "power_sweep",
    "breakdown_sweep",
    "cpu_wallclock_sweep",
]


def accuracy_sweep(
    methods: Sequence[str],
    phis: Sequence[float],
    ks: Sequence[int],
    m: int = 1024,
    n: int = 1024,
    precision: "Format | str" = FP64,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Maximum relative error of every method over a (phi, k) grid.

    This is the computation behind Figure 3: ``m = n`` fixed, ``k`` varied,
    ``phi`` controlling the exponent spread, error measured against the
    high-precision reference GEMM.
    """
    fmt = get_format(precision)
    rows: List[Dict[str, object]] = []
    for phi in phis:
        for k in ks:
            a, b = phi_pair(m, k, n, phi=phi, precision=fmt, seed=seed)
            reference = reference_gemm(a, b)
            for name in methods:
                spec = get_method(name, target=fmt)
                computed = spec(a, b)
                rows.append(
                    {
                        "precision": fmt.name,
                        "phi": float(phi),
                        "m": m,
                        "k": int(k),
                        "n": n,
                        "method": spec.name,
                        "max_rel_error": max_relative_error(computed, reference),
                    }
                )
    return rows


def throughput_sweep(
    methods: Sequence[str],
    gpus: Sequence[str],
    sizes: Sequence[int],
    target: "Format | str" = FP64,
) -> List[Dict[str, object]]:
    """Modelled TFLOPS of every method over square problems (Figures 4–5)."""
    fmt = get_format(target)
    rows: List[Dict[str, object]] = []
    for gpu in gpus:
        for size in sizes:
            for name in methods:
                spec = get_method(name, target=fmt)
                rows.append(
                    {
                        "gpu": gpu,
                        "n": int(size),
                        "method": spec.name,
                        "target": fmt.name,
                        "tflops": modeled_tflops(name, gpu, size, size, size, target=fmt),
                    }
                )
    return rows


def power_sweep(
    methods: Sequence[str],
    gpus: Sequence[str],
    sizes: Sequence[int],
    target: "Format | str" = FP64,
) -> List[Dict[str, object]]:
    """Modelled power efficiency (GFLOPS/W) over square problems (Figures 8–9)."""
    fmt = get_format(target)
    rows: List[Dict[str, object]] = []
    for gpu in gpus:
        for size in sizes:
            for name in methods:
                spec = get_method(name, target=fmt)
                rows.append(
                    {
                        "gpu": gpu,
                        "n": int(size),
                        "method": spec.name,
                        "target": fmt.name,
                        "gflops_per_watt": power_efficiency(
                            name, gpu, size, size, size, target=fmt
                        ),
                    }
                )
    return rows


def breakdown_sweep(
    methods: Sequence[str],
    gpus: Sequence[str],
    sizes: Sequence[int],
    target: "Format | str" = FP64,
) -> List[Dict[str, object]]:
    """Per-phase modelled time fractions (Figures 6–7)."""
    fmt = get_format(target)
    rows: List[Dict[str, object]] = []
    for gpu in gpus:
        for size in sizes:
            for name in methods:
                spec = get_method(name, target=fmt)
                fractions = phase_breakdown(name, gpu, size, size, size, target=fmt)
                for phase, fraction in fractions.items():
                    rows.append(
                        {
                            "gpu": gpu,
                            "n": int(size),
                            "method": spec.name,
                            "target": fmt.name,
                            "phase": phase,
                            "fraction": fraction,
                        }
                    )
    return rows


def cpu_wallclock_sweep(
    methods: Sequence[str],
    sizes: Sequence[int],
    target: "Format | str" = FP64,
    phi: float = 0.5,
    seed: int = 0,
    repeats: int = 1,
) -> List[Dict[str, object]]:
    """Measured wall-clock time of this library's implementations (CPU).

    Not a figure from the paper — the paper measures GPU kernels — but a
    useful sanity check on the implementation cost of every method in this
    reproduction, and the basis of the pytest-benchmark CPU suite.
    """
    fmt = get_format(target)
    rows: List[Dict[str, object]] = []
    for size in sizes:
        a, b = phi_pair(size, size, size, phi=phi, precision=fmt, seed=seed)
        for name in methods:
            spec = get_method(name, target=fmt)
            best = float("inf")
            for _ in range(max(1, repeats)):
                start = time.perf_counter()
                spec(a, b)
                best = min(best, time.perf_counter() - start)
            rows.append(
                {
                    "n": int(size),
                    "method": spec.name,
                    "target": fmt.name,
                    "seconds": best,
                    "effective_gflops": 2.0 * size**3 / best / 1e9,
                }
            )
    return rows
