"""Request coalescing: merge concurrent GEMMs into one batched runtime call.

The batched runtime (:func:`repro.runtime.batched.ozaki2_gemm_batched`)
amortises conversion and scheduling across a batch — it groups equal-shape
items into fused stacked engine calls and dedupes repeated operands.  A
server receiving concurrent single-GEMM requests would leave all of that on
the table if it executed them one by one; :class:`RequestCoalescer` closes
the gap by queueing incoming requests and draining them in small batches:

* the drain worker blocks for the first pending request, then keeps
  collecting for a short window (``window_seconds``) up to ``max_batch``
  items — a lone request therefore pays at most the window in added
  latency, while a burst of concurrent requests lands in one batch,
* items are grouped by configuration (the batched API executes one config
  per call); each group becomes one ``gemm_batched`` call on the shared
  :class:`~repro.session.Session`, so the transparent operand cache and
  the warm scheduler pool apply as usual,
* a failing batch falls back to per-item execution, so one poisoned
  request (say, a shape mismatch) fails alone instead of failing its
  whole batch.

Results are delivered through per-request
:class:`concurrent.futures.Future` objects — the HTTP handler threads
submit and block on their own future, which is what turns N server threads
into one well-formed batch.
"""

from __future__ import annotations

import logging
import queue
import threading
import time
from concurrent.futures import Future
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from ..analysis.lockorder import named_lock
from ..config import Ozaki2Config

if TYPE_CHECKING:  # session imports service.cache; keep the cycle type-only
    from ..session import Session

__all__ = ["RequestCoalescer"]

_LOG = logging.getLogger(__name__)


class _Item:
    __slots__ = ("a", "b", "config", "future")

    def __init__(
        self, a: np.ndarray, b: np.ndarray, config: Ozaki2Config, future: Future
    ) -> None:
        self.a = a
        self.b = b
        self.config = config
        self.future = future


class RequestCoalescer:
    """Queue + drain worker turning concurrent GEMMs into batched calls.

    Parameters
    ----------
    session:
        The shared :class:`~repro.session.Session` the batches execute on.
    max_batch:
        Largest number of requests merged into one batched call.
    window_seconds:
        How long the drain worker keeps collecting after the first request
        of a batch arrives — the latency/throughput trade-off knob.  ``0``
        still coalesces whatever is already queued (a genuinely concurrent
        burst) without adding any wait.
    """

    def __init__(
        self,
        session: "Session",
        max_batch: int = 16,
        window_seconds: float = 0.002,
    ) -> None:
        self._session = session
        self.max_batch = max(1, int(max_batch))
        self.window_seconds = max(0.0, float(window_seconds))
        self._queue: "queue.Queue[Optional[_Item]]" = queue.Queue()
        self._lock = named_lock("service.coalescer._lock")
        self.coalesced_batches = 0
        self.coalesced_requests = 0
        self.largest_batch = 0
        self._closed = False
        self._worker = threading.Thread(
            target=self._drain_loop, name="repro-coalescer", daemon=True
        )
        self._worker.start()

    # -- submission ----------------------------------------------------------
    def submit(self, a: np.ndarray, b: np.ndarray, config: Ozaki2Config) -> Future:
        """Enqueue one GEMM; the returned future resolves to its GemmResult."""
        future: Future = Future()
        if self._closed:
            future.set_exception(RuntimeError("coalescer is closed"))
            return future
        self._queue.put(_Item(a, b, config, future))
        return future

    def backlog(self) -> int:
        """Requests currently queued (the server's load-shedding signal)."""
        return self._queue.qsize()

    def close(self, timeout: float = 10.0) -> None:
        """Stop the drain worker (pending requests still complete).

        A drain worker that fails to stop within ``timeout`` — wedged in a
        batch, or deadlocked — is *surfaced*, not ignored: the failure is
        logged and raised as :class:`RuntimeError`, so a hung shutdown can
        never masquerade as a clean one.
        """
        if self._closed:
            return
        self._closed = True
        self._queue.put(None)
        self._worker.join(timeout=timeout)
        if self._worker.is_alive():
            _LOG.error(
                "coalescer drain worker %r failed to stop within %.1fs",
                self._worker.name,
                timeout,
            )
            raise RuntimeError(
                f"coalescer drain worker {self._worker.name!r} failed to "
                f"stop within {timeout:.1f}s"
            )

    # -- drain worker --------------------------------------------------------
    def _collect(self) -> List[_Item]:
        """Block for one item, then drain the window / queue up to max_batch."""
        first = self._queue.get()
        if first is None:
            return []
        batch = [first]
        deadline = time.monotonic() + self.window_seconds
        while len(batch) < self.max_batch:
            # Clamp to a non-negative timeout: an expired window must do a
            # zero-timeout (non-blocking) poll, never ``timeout=None`` — a
            # None timeout blocks forever when the queue stays empty.
            remaining = max(0.0, deadline - time.monotonic())
            try:
                item = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if item is None:
                self._queue.put(None)  # keep the sentinel for the outer loop
                break
            batch.append(item)
        return batch

    def _drain_loop(self) -> None:
        while True:
            batch = self._collect()
            if not batch:
                return
            self._execute(batch)

    def _execute(self, batch: List[_Item]) -> None:
        with self._lock:
            self.coalesced_batches += 1
            self.coalesced_requests += len(batch)
            self.largest_batch = max(self.largest_batch, len(batch))
        # One batched call per distinct configuration (the batched API runs
        # a single config; distinct-config requests rarely coexist anyway).
        groups: Dict[object, List[_Item]] = {}
        for item in batch:
            config = item.config
            key = None if config is None else (
                config.precision.name,
                config.mode.value,
                config.num_moduli,
                config.residue_kernel.value,
                config.target_accuracy,
            )
            groups.setdefault(key, []).append(item)
        for items in groups.values():
            self._run_group(items)

    def _run_group(self, items: List[_Item]) -> None:
        config = items[0].config
        try:
            results = self._session.gemm_batched(
                [item.a for item in items],
                [item.b for item in items],
                config=config,
            )
            for item, result in zip(items, results, strict=True):
                item.future.set_result(result)
        except Exception:
            # Per-item fallback: a poisoned request fails alone.
            for item in items:
                try:
                    item.future.set_result(
                        self._session.gemm(item.a, item.b, config=item.config)
                    )
                except Exception as exc:  # delivered to the caller via the future
                    item.future.set_exception(exc)

    # -- introspection -------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Coalescing counters for the ``/v1/stats`` endpoint."""
        with self._lock:
            requests = self.coalesced_requests
            batches = self.coalesced_batches
            return {
                "batches": batches,
                "requests": requests,
                "largest_batch": self.largest_batch,
                "mean_batch": (requests / batches) if batches else 0.0,
            }
