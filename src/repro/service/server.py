"""``repro serve`` — the residue-GEMM service host.

A :class:`ReproServer` is a :class:`~repro.session.Session` behind a
socket: a stdlib :class:`http.server.ThreadingHTTPServer` (one thread per
connection, HTTP/1.1 keep-alive) whose handlers decode the binary frames
of :mod:`repro.service.protocol`, route matrix operands through the
session's transparent operand cache, coalesce concurrent GEMMs into the
batched runtime (:class:`~repro.service.coalescer.RequestCoalescer`) and
answer with the framed result.  No dependency beyond the standard library
crosses the wire — no pickling, no third-party RPC stack.

Endpoints (all under ``/v1``):

=================  ====  ====================================================
``/gemm``          POST  emulated ``A @ B`` (coalesced into batched calls)
``/gemv``          POST  emulated ``A @ x`` via the residue-GEMV fast path
``/solve``         POST  iterative solve (``cg``/``pcg``/``jacobi``/``ir``)
``/prepare``       POST  warm the operand cache, returns the fingerprint ack
``/stats``         GET   JSON: session ledger, cache and coalescing counters
``/health``        GET   JSON liveness probe (version, protocol, uptime)
=================  ====  ====================================================

Operand caching over the wire: inline uploads are fingerprinted and
prepared into the cache; the response's ``"learned"`` ack tells the client
it may send the fingerprint alone next time.  A fingerprint whose entry was
evicted gets the ``operand-missing`` error and the client retries inline —
the cache stays transparent end to end, and a warm hit is bit-identical to
a cold miss by construction.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from concurrent.futures import TimeoutError as FuturesTimeout
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import __version__, faults
from ..analysis.lockorder import named_lock
from ..config import ComputeMode, Ozaki2Config
from ..core.operand import ResidueOperand
from ..errors import ReproError, ValidationError
from ..result import Result
from ..session import SOLVE_METHODS, Session
from .cache import DEFAULT_CAPACITY_BYTES, cache_key
from .coalescer import RequestCoalescer
from .protocol import (
    ERROR_BAD_REQUEST,
    ERROR_DEADLINE,
    ERROR_INTERNAL,
    ERROR_OPERAND_MISSING,
    ERROR_OVERLOADED,
    PROTOCOL_VERSION,
    decode_frame,
    encode_frame,
    error_frame,
)

__all__ = ["ReproServer"]

_LOG = logging.getLogger(__name__)

#: Largest accepted request body (1 GiB — a 8192x8192 fp64 pair with room).
_MAX_BODY_BYTES = 1 << 30


class _OperandMissing(ReproError):
    """A fingerprint reference named an evicted/never-seen operand."""


def _apply_config_overrides(config: Ozaki2Config, overrides: Dict) -> Ozaki2Config:
    """Apply the wire request's config overrides (a small, explicit set)."""
    if not overrides:
        return config
    allowed = {"num_moduli", "mode", "target_accuracy", "precision"}
    unknown = set(overrides) - allowed
    if unknown:
        raise ValidationError(
            f"unknown config override(s) {sorted(unknown)}; allowed: {sorted(allowed)}"
        )
    overrides = dict(overrides)
    precision = overrides.pop("precision", None)
    if precision is not None:
        maker = {
            "fp64": Ozaki2Config.for_dgemm,
            "fp32": Ozaki2Config.for_sgemm,
        }.get(str(precision).lower())
        if maker is None:
            raise ValidationError(
                f"unknown precision {precision!r}; expected 'fp64' or 'fp32'"
            )
        config = maker(
            num_moduli=overrides.pop("num_moduli", config.num_moduli),
            mode=overrides.pop("mode", config.mode),
        )
    if "mode" in overrides:
        overrides["mode"] = ComputeMode(str(overrides["mode"]).lower())
    return config.replace(**overrides) if overrides else config


class ReproServer:
    """The serving facade: owns the session, the coalescer and the socket.

    Parameters
    ----------
    config:
        Session configuration (FP64 fast mode when omitted).
    host / port:
        Bind address; ``port=0`` picks a free port (see :attr:`port` after
        construction — the smoke tests and the benchmark rely on this).
    cache_bytes:
        Operand-cache budget (0 disables transparent caching; fingerprint
        references then always answer ``operand-missing``).
    coalesce_window_seconds / max_batch:
        The :class:`~repro.service.coalescer.RequestCoalescer` knobs.
    max_queue:
        Load-shedding budget: when the coalescer backlog reaches this many
        queued GEMMs, further ``/v1/gemm`` requests are shed with HTTP 503,
        a ``Retry-After`` header and an :data:`~repro.service.protocol.
        ERROR_OVERLOADED` frame instead of growing the queue without bound.
        ``0`` (default) disables shedding.  CLI: ``repro serve
        --max-queue``.
    retry_after_seconds:
        The backoff hint attached to shed responses (default 0.25 s).
    """

    def __init__(
        self,
        config: Optional[Ozaki2Config] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_bytes: int = DEFAULT_CAPACITY_BYTES,
        coalesce_window_seconds: float = 0.002,
        max_batch: int = 16,
        max_queue: int = 0,
        retry_after_seconds: float = 0.25,
    ) -> None:
        self.max_queue = max(0, int(max_queue))
        self.retry_after_seconds = max(0.0, float(retry_after_seconds))
        self.session = Session(config=config, cache_bytes=cache_bytes)
        self.coalescer = RequestCoalescer(
            self.session, max_batch=max_batch, window_seconds=coalesce_window_seconds
        )
        self._started = time.perf_counter()
        self._requests: Dict[str, int] = {}
        self._requests_lock = named_lock("service.server._requests_lock")
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    # -- lifecycle -----------------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return int(self._httpd.server_address[1])

    def start(self) -> "ReproServer":
        """Serve in a background thread (for tests/embedding); returns self."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI's blocking mode)."""
        self._httpd.serve_forever(poll_interval=0.2)

    def close(self, timeout: float = 10.0) -> None:
        """Stop accepting, drain the coalescer, shut the session down.

        Threads that fail to stop within ``timeout`` are detected, logged
        and surfaced as a :class:`RuntimeError` *after* the remaining
        teardown has run — a hung shutdown must never look like a clean
        one, and must not strand the session's shared-memory segments
        either.
        """
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        self._httpd.server_close()
        hung: List[str] = []
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            if self._thread.is_alive():
                hung.append(f"server thread {self._thread.name!r}")
        try:
            self.coalescer.close(timeout=timeout)
        except RuntimeError as exc:
            hung.append(str(exc))
        self.session.close()
        if hung:
            _LOG.error(
                "server shutdown incomplete; still running: %s", "; ".join(hung)
            )
            raise RuntimeError(
                f"server shutdown incomplete; still running: {'; '.join(hung)}"
            )

    def __enter__(self) -> "ReproServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- request accounting --------------------------------------------------
    def _count(self, endpoint: str) -> None:
        with self._requests_lock:
            self._requests[endpoint] = self._requests.get(endpoint, 0) + 1

    def stats(self) -> Dict[str, object]:
        """The ``/v1/stats`` document: one ledger for compute and caching."""
        stats = self.session.stats()
        with self._requests_lock:
            per_endpoint = dict(self._requests)
        stats.update(
            {
                "server_uptime_seconds": time.perf_counter() - self._started,
                "endpoint_requests": per_endpoint,
                "coalescer": self.coalescer.stats(),
                "max_queue": self.max_queue,
                "backlog": self.coalescer.backlog(),
                "version": __version__,
                "protocol": PROTOCOL_VERSION,
            }
        )
        return stats

    # -- operand resolution --------------------------------------------------
    def _resolve_operand(
        self,
        name: str,
        side: str,
        header: Dict,
        arrays: Dict[str, np.ndarray],
        config: Ozaki2Config,
        learned: Dict[str, str],
    ) -> "np.ndarray | ResidueOperand":
        """Resolve one request operand: inline bytes or fingerprint reference.

        Inline matrices are pushed through the session cache (when eligible)
        and acked in ``learned``; fingerprint references are looked up and
        answer :class:`_OperandMissing` when evicted.  Vectors and accurate-
        mode operands pass through uncached.
        """
        ref = (header.get("refs") or {}).get(name)
        if ref is not None:
            fingerprint = str(ref.get("fingerprint", ""))
            # get() counts the hit/miss in the cache and session ledgers and
            # refreshes LRU recency — a fingerprint lookup is a real lookup.
            operand = self.session.cache.get(cache_key(side, fingerprint, config))
            if operand is None:
                raise _OperandMissing(
                    f"operand {name!r} (fingerprint {fingerprint[:16]}…) is not "
                    "cached on this server; resend it inline"
                )
            return operand
        if name not in arrays:
            raise ValidationError(f"request is missing operand {name!r}")
        array = arrays[name]
        if (
            array.ndim == 2
            and min(array.shape) >= 2
            and config.mode is ComputeMode.FAST
            and self.session.cache.capacity_bytes > 0
        ):
            operand = self.session.cache.get_or_prepare(array, side, config)
            learned[name] = operand.fingerprint
            return operand
        return array

    # -- endpoint handlers ---------------------------------------------------
    def handle_request(
        self, path: str, body: bytes
    ) -> Tuple[int, bytes, Dict[str, str]]:
        """Dispatch one POST body; never raises.

        Returns ``(http_status, response_frame, extra_headers)``.  The
        pre-existing protocol errors stay on HTTP 200 (clients dispatch on
        the frame's error code); the resilience layer adds genuinely
        HTTP-level conditions: 503 + ``Retry-After`` when the coalescer
        backlog exceeds ``max_queue``, 504 when the request's propagated
        ``deadline_ms`` expires before the result is ready.
        """
        try:
            header, arrays = decode_frame(body)
        except ValidationError as exc:
            return 200, error_frame(ERROR_BAD_REQUEST, str(exc)), {}
        deadline_at: Optional[float] = None
        if header.get("deadline_ms") is not None:
            try:
                deadline_at = time.monotonic() + float(header["deadline_ms"]) / 1e3
            except (TypeError, ValueError):
                return (
                    200,
                    error_frame(
                        ERROR_BAD_REQUEST,
                        f"bad deadline_ms {header['deadline_ms']!r}",
                    ),
                    {},
                )
        try:
            if path == "/v1/gemm":
                if self.max_queue > 0 and self.coalescer.backlog() >= self.max_queue:
                    self._count("shed")
                    retry_after = self.retry_after_seconds
                    return (
                        503,
                        error_frame(
                            ERROR_OVERLOADED,
                            f"coalescer backlog >= max_queue={self.max_queue}; "
                            "retry after backoff",
                            retry_after=retry_after,
                        ),
                        {"Retry-After": f"{retry_after:.3f}"},
                    )
                return 200, self._handle_gemm(header, arrays, deadline_at), {}
            self._check_deadline(deadline_at)
            if path == "/v1/gemv":
                return 200, self._handle_gemv(header, arrays), {}
            if path == "/v1/solve":
                return 200, self._handle_solve(header, arrays), {}
            if path == "/v1/prepare":
                return 200, self._handle_prepare(header, arrays), {}
            return 200, error_frame(ERROR_BAD_REQUEST, f"unknown endpoint {path!r}"), {}
        except (TimeoutError, FuturesTimeout):
            self._count("deadline")
            return (
                504,
                error_frame(ERROR_DEADLINE, "request deadline expired"),
                {},
            )
        except _OperandMissing as exc:
            return 200, error_frame(ERROR_OPERAND_MISSING, str(exc)), {}
        except (ValidationError, ReproError) as exc:
            return 200, error_frame(ERROR_BAD_REQUEST, str(exc)), {}
        except Exception as exc:  # the server must answer, never raise
            return 200, error_frame(ERROR_INTERNAL, f"{type(exc).__name__}: {exc}"), {}

    @staticmethod
    def _check_deadline(deadline_at: Optional[float]) -> None:
        """Raise :class:`TimeoutError` when a propagated deadline expired."""
        if deadline_at is not None and time.monotonic() >= deadline_at:
            raise TimeoutError("request deadline expired before execution")

    def _request_config(self, header: Dict) -> Ozaki2Config:
        return _apply_config_overrides(self.session.config, header.get("config") or {})

    @staticmethod
    def _result_meta(result: Result) -> Dict[str, object]:
        """The JSON-safe result metadata shared by gemm/gemv responses."""
        meta: Dict[str, object] = {
            "method": result.config.method_name,
            "num_moduli": int(result.config.num_moduli),
            "moduli_history": [int(n) for n in result.moduli_history],
        }
        if result.phase_times is not None:
            meta["phase_seconds"] = {
                key: float(val) for key, val in result.phase_times.seconds.items()
            }
        return meta

    def _handle_gemm(
        self,
        header: Dict,
        arrays: Dict[str, np.ndarray],
        deadline_at: Optional[float] = None,
    ) -> bytes:
        self._count("gemm")
        self._check_deadline(deadline_at)
        config = self._request_config(header)
        learned: Dict[str, str] = {}
        a = self._resolve_operand("a", "A", header, arrays, config, learned)
        b = self._resolve_operand("b", "B", header, arrays, config, learned)
        future = self.coalescer.submit(a, b, config)
        if deadline_at is None:
            result = future.result()
        else:
            # Block only for the propagated budget; an expired wait maps to
            # the 504 deadline response (the batch still completes server-
            # side — its work is simply no longer claimable by this caller).
            result = future.result(timeout=max(0.0, deadline_at - time.monotonic()))
        return encode_frame(
            {"ok": True, "learned": learned, "result": self._result_meta(result)},
            {"value": result.value},
        )

    def _handle_gemv(self, header: Dict, arrays: Dict[str, np.ndarray]) -> bytes:
        self._count("gemv")
        config = self._request_config(header)
        learned: Dict[str, str] = {}
        a = self._resolve_operand("a", "A", header, arrays, config, learned)
        if "x" not in arrays:
            raise ValidationError("gemv request is missing the vector 'x'")
        result = self.session.gemv(a, arrays["x"], config=config)
        return encode_frame(
            {"ok": True, "learned": learned, "result": self._result_meta(result)},
            {"value": result.value},
        )

    def _handle_solve(self, header: Dict, arrays: Dict[str, np.ndarray]) -> bytes:
        self._count("solve")
        config = self._request_config(header)
        method = str(header.get("method", "cg"))
        if method not in SOLVE_METHODS:
            raise ValidationError(
                f"unknown solve method {method!r}; expected one of {SOLVE_METHODS}"
            )
        learned: Dict[str, str] = {}
        a = self._resolve_operand("a", "A", header, arrays, config, learned)
        if "b" not in arrays:
            raise ValidationError("solve request is missing the right-hand side 'b'")
        options = dict(header.get("options") or {})
        if isinstance(a, np.ndarray):
            result = self.session.solve(a, arrays["b"], method=method,
                                        config=config, **options)
        else:
            # Fingerprint path: the cache held the prepared system matrix;
            # the solver needs the raw matrix for diagonals/preconditioning,
            # which the operand retains as its source.
            result = self.session.solve(
                np.asarray(a.source), arrays["b"], method=method, config=config,
                prepared=a, **options,
            )
        meta = {
            "method": result.method,
            "converged": bool(result.converged),
            "iterations": int(result.iterations),
            "residual_norm": float(result.residual_norm),
            "prepare_seconds": float(result.prepare_seconds),
            "seconds": float(result.seconds),
            "precond": result.precond,
            "moduli_history": [int(n) for n in result.moduli_history],
        }
        return encode_frame(
            {"ok": True, "learned": learned, "result": meta}, {"value": result.x}
        )

    def _handle_prepare(self, header: Dict, arrays: Dict[str, np.ndarray]) -> bytes:
        self._count("prepare")
        config = self._request_config(header)
        side = str(header.get("side", "A")).upper()
        if "x" not in arrays:
            raise ValidationError("prepare request is missing the matrix 'x'")
        operand = self.session.prepare(arrays["x"], side=side, config=config)
        return encode_frame(
            {
                "ok": True,
                "learned": {"x": operand.fingerprint},
                "result": {
                    "fingerprint": operand.fingerprint,
                    "side": operand.side,
                    "num_moduli": operand.num_moduli,
                    "nbytes": operand.nbytes,
                    "convert_seconds": float(operand.convert_seconds),
                },
            }
        )


def _make_handler(server: ReproServer) -> "type[BaseHTTPRequestHandler]":
    """Build the request-handler class bound to one :class:`ReproServer`."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"  # keep-alive: one connection, many calls
        server_version = f"repro-serve/{__version__}"
        # Responses are written header-then-body; without TCP_NODELAY the
        # Nagle/delayed-ACK interaction adds ~40ms to every round trip.
        disable_nagle_algorithm = True

        # The default handler logs every request to stderr; the serve loop
        # is long-lived, so stay quiet unless something goes wrong.
        def log_message(self, fmt: str, *args: object) -> None:
            pass

        def _send(
            self,
            status: int,
            body: bytes,
            content_type: str,
            extra_headers: Optional[Dict[str, str]] = None,
        ) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            for key, value in (extra_headers or {}).items():
                self.send_header(key, value)
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self) -> None:  # http.server spells handlers do_VERB
            if self.path == "/v1/health":
                server._count("health")
                doc = {
                    "ok": True,
                    "version": __version__,
                    "protocol": PROTOCOL_VERSION,
                    "uptime_seconds": time.perf_counter() - server._started,
                }
            elif self.path == "/v1/stats":
                server._count("stats")
                doc = server.stats()
            else:
                self._send(404, b'{"ok": false, "error": "not found"}',
                           "application/json")
                return
            self._send(200, json.dumps(doc).encode("utf-8"), "application/json")

        def do_POST(self) -> None:  # http.server spells handlers do_VERB
            length = int(self.headers.get("Content-Length", 0))
            if length <= 0 or length > _MAX_BODY_BYTES:
                self._send(
                    400,
                    error_frame(ERROR_BAD_REQUEST, f"bad Content-Length {length}"),
                    "application/octet-stream",
                )
                return
            body = self.rfile.read(length)
            status, response, extra_headers = server.handle_request(self.path, body)
            if faults.should_fire("service.drop_frame"):
                # Chaos: the response is computed but never written — the
                # client sees the connection die mid-exchange, exactly like
                # a crashed/partitioned server, and must reconnect + retry.
                self.close_connection = True
                return
            # Chaos: a stalled response frame (slow disk, GC pause, packet
            # loss recovery) — exercises the client's timeout/retry budget.
            faults.sleep_if("service.slow_frame")
            self._send(status, response, "application/octet-stream", extra_headers)

    return Handler
