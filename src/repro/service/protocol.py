"""Wire protocol of the residue-GEMM service: framed JSON + raw array bytes.

One frame carries one request or one response::

    b"RPR1" | uint32 header length (big-endian) | header JSON | payloads

The header is UTF-8 JSON; its ``"arrays"`` list describes the payload
section, in order::

    {"name": "a", "dtype": "<f8", "shape": [512, 512]}

and the payloads are the raw C-order element bytes of each listed array,
concatenated — no base64, no pickling (nothing executable crosses the
wire), and a float64 matrix costs exactly ``8·m·n`` bytes plus a few dozen
of header.

Operand references
------------------
The whole point of the service's transparent cache is that a *returning*
operand does not need its bytes sent again.  A request may replace an
inline array with a reference entry in the header's ``"refs"`` object::

    {"refs": {"a": {"fingerprint": "9f3c…", "side": "A"}}}

naming the content fingerprint (:func:`repro.core.operand.
matrix_fingerprint`) of a previously-uploaded operand.  The server resolves
it against the session cache; if the entry has been evicted it answers with
the ``operand-missing`` error code and the client retries with the full
bytes (see :class:`repro.service.client.ServiceClient` — the retry is
automatic and the client un-learns the stale fingerprint).  Responses ack
newly-cached operands in a ``"learned"`` object, which is what authorises
the client to go fingerprint-only next time.

Error responses are headers with ``"ok": false`` and an ``"error"`` object
carrying a machine-readable ``code`` (:data:`ERROR_OPERAND_MISSING`,
:data:`ERROR_BAD_REQUEST`, :data:`ERROR_INTERNAL`,
:data:`ERROR_OVERLOADED`, :data:`ERROR_DEADLINE`) and a human-readable
``message``.  Load-shed responses (:data:`ERROR_OVERLOADED`) additionally
carry ``retry_after_seconds`` — the server's backoff hint, mirrored in the
HTTP ``Retry-After`` header — which the client's retry loop honours.
"""

from __future__ import annotations

import json
import struct
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ValidationError

__all__ = [
    "MAGIC",
    "PROTOCOL_VERSION",
    "ERROR_OPERAND_MISSING",
    "ERROR_BAD_REQUEST",
    "ERROR_INTERNAL",
    "ERROR_OVERLOADED",
    "ERROR_DEADLINE",
    "encode_frame",
    "decode_frame",
    "error_frame",
]

#: Frame magic: rejects accidental plain-HTTP/garbage bodies cheaply.
MAGIC = b"RPR1"

#: Protocol revision, echoed by ``/v1/health`` (bump on breaking changes).
PROTOCOL_VERSION = 1

#: A fingerprint reference named an operand the server no longer holds.
ERROR_OPERAND_MISSING = "operand-missing"
#: The request was malformed (bad frame, unknown op, shape mismatch, …).
ERROR_BAD_REQUEST = "bad-request"
#: The computation itself raised.
ERROR_INTERNAL = "internal"
#: The server shed the request: its coalescer backlog exceeds the
#: ``--max-queue`` budget.  Sent with HTTP 503 + ``Retry-After``.
ERROR_OVERLOADED = "overloaded"
#: The request's propagated deadline expired before the result was ready.
#: Sent with HTTP 504; retrying cannot help, the client surfaces it.
ERROR_DEADLINE = "deadline-exceeded"

_HEADER_LEN = struct.Struct(">I")

#: Cap on the declared header length (a corrupt length prefix must not
#: trigger a multi-gigabyte allocation).
_MAX_HEADER_BYTES = 16 * 1024 * 1024


def encode_frame(header: Dict, arrays: Optional[Dict[str, np.ndarray]] = None) -> bytes:
    """Serialise ``header`` plus named ``arrays`` into one wire frame.

    The ``arrays`` entries are appended to (or merged into) the header's
    ``"arrays"`` list in insertion order; each is sent as its C-order raw
    bytes.  The header itself must be JSON-serialisable.
    """
    arrays = arrays or {}
    header = dict(header)
    listing: List[Dict] = []
    payloads: List[bytes] = []
    for name, array in arrays.items():
        array = np.asarray(array)
        listing.append(
            {"name": name, "dtype": array.dtype.str, "shape": list(array.shape)}
        )
        payloads.append(array.tobytes(order="C"))
    header["arrays"] = listing
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    return b"".join([MAGIC, _HEADER_LEN.pack(len(header_bytes)), header_bytes] + payloads)


def decode_frame(data: bytes) -> Tuple[Dict, Dict[str, np.ndarray]]:
    """Parse one wire frame back into ``(header, arrays)``.

    Raises :class:`~repro.errors.ValidationError` on any structural problem
    (bad magic, truncated payload, header/payload length mismatch) — the
    server maps that to a :data:`ERROR_BAD_REQUEST` response rather than a
    stack trace.  Returned arrays are writable copies owned by the caller.
    """
    if len(data) < len(MAGIC) + _HEADER_LEN.size:
        raise ValidationError("frame too short for magic + header length")
    if data[: len(MAGIC)] != MAGIC:
        raise ValidationError(
            f"bad frame magic {data[:len(MAGIC)]!r} (expected {MAGIC!r})"
        )
    (header_len,) = _HEADER_LEN.unpack_from(data, len(MAGIC))
    if header_len > _MAX_HEADER_BYTES:
        raise ValidationError(f"declared header length {header_len} exceeds limit")
    offset = len(MAGIC) + _HEADER_LEN.size
    if len(data) < offset + header_len:
        raise ValidationError("frame truncated inside the header")
    try:
        header = json.loads(data[offset : offset + header_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValidationError(f"frame header is not valid JSON: {exc}") from exc
    if not isinstance(header, dict):
        raise ValidationError("frame header must be a JSON object")
    offset += header_len
    arrays: Dict[str, np.ndarray] = {}
    for entry in header.get("arrays", []):
        try:
            name = entry["name"]
            dtype = np.dtype(entry["dtype"])
            shape = tuple(int(dim) for dim in entry["shape"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"malformed array descriptor {entry!r}") from exc
        nbytes = dtype.itemsize * int(np.prod(shape, dtype=np.int64)) if shape else dtype.itemsize
        if len(data) < offset + nbytes:
            raise ValidationError(f"frame truncated inside payload of {name!r}")
        flat = np.frombuffer(data, dtype=dtype, count=nbytes // dtype.itemsize, offset=offset)
        arrays[name] = flat.reshape(shape).copy()
        offset += nbytes
    if offset != len(data):
        raise ValidationError(
            f"frame carries {len(data) - offset} undeclared trailing bytes"
        )
    return header, arrays


def error_frame(
    code: str, message: str, retry_after: Optional[float] = None
) -> bytes:
    """Build the standard error response frame.

    ``retry_after`` (seconds) is attached for load-shed responses so
    frame-level consumers see the same backoff hint as the HTTP header.
    """
    error: Dict[str, object] = {"code": code, "message": message}
    if retry_after is not None:
        error["retry_after_seconds"] = float(retry_after)
    return encode_frame({"ok": False, "error": error})
