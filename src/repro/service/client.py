"""Client of the residue-GEMM service: fingerprint-negotiated uploads.

:class:`ServiceClient` mirrors the :class:`~repro.session.Session` surface
(``gemm`` / ``gemv`` / ``solve`` / ``prepare`` / ``stats``) over the wire
protocol of :mod:`repro.service.protocol`, on a persistent HTTP/1.1
connection (stdlib :mod:`http.client` — nothing to install).

The interesting part is the operand negotiation.  The first time a matrix
is used, the client uploads its bytes; the server prepares it into its
cache and **acks** the content fingerprint in the response's ``"learned"``
object.  From then on the client sends the 32-hex-digit fingerprint in
place of the payload — megabytes per request become bytes — until the
server answers ``operand-missing`` (the entry was evicted), at which point
the client *un-learns* the fingerprint and transparently retries the same
request with the full bytes.  The negotiation is invisible to the caller
and never changes results: a warm fingerprint hit is served from the very
operand a cold upload would have produced.

Resilience
----------
Every request runs under a retry loop with capped exponential backoff and
seeded jitter: transport faults (dropped connections, server restarts,
reaped keep-alive sockets) reconnect and resend; ``503`` load-shed
responses honour the server's ``Retry-After`` hint before retrying; when
the retries are exhausted the *last* transport error is re-raised
unchanged, so callers (and start-up polling loops) still see the plain
``OSError``/``ConnectionError`` they would get without the loop.  An
optional **deadline** (client default or per-call) is propagated to the
server in the frame header as the remaining budget — the server sheds the
request with ``504`` once it expires, and the client refuses to begin a
backoff sleep it cannot finish in time.

>>> from repro.service import ServiceClient
>>> client = ServiceClient(port=7723)                        # doctest: +SKIP
>>> r = client.gemm(a, b)                                    # doctest: +SKIP
>>> r.value                                                  # doctest: +SKIP
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import threading
import time
from typing import Dict, Optional, Set, Tuple

import numpy as np

from ..analysis.lockorder import named_lock
from ..errors import ReproError, ValidationError
from ..result import Result
from .protocol import (
    ERROR_DEADLINE,
    ERROR_OPERAND_MISSING,
    decode_frame,
    encode_frame,
)

#: Transport-level failures the retry loop reconnects through.  Everything
#: here means "the bytes never made a well-formed HTTP round trip" — the
#: request is safe to resend (the service's operations are idempotent).
_TRANSPORT_ERRORS = (http.client.HTTPException, ConnectionError, OSError)

__all__ = ["ServiceClient", "RemoteResult", "ServiceError"]


class ServiceError(ReproError):
    """The server answered with an error frame (carries its ``code``)."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code


class RemoteResult(Result):
    """A service response: the value array plus the server's metadata.

    ``value`` holds the computed array; :attr:`meta` the JSON result
    document (method name, moduli history, phase seconds, solver
    diagnostics — whatever the endpoint reports).  The historical ``c`` /
    ``x`` spellings work here too.
    """

    def __init__(self, value: np.ndarray, meta: Dict[str, object]) -> None:
        super().__init__(value=value, moduli_history=[
            int(n) for n in meta.get("moduli_history", [])
        ])
        self.meta = meta

    @property
    def c(self) -> np.ndarray:
        """The product array (GEMM/GEMV spelling)."""
        return self.value

    @property
    def x(self) -> np.ndarray:
        """The solution vector (solver spelling)."""
        return self.value

    @property
    def method_name(self) -> str:
        """Server-reported method label (overrides the config-based one)."""
        return str(self.meta.get("method", ""))


class ServiceClient:
    """Talk to a ``repro serve`` instance (see module docstring).

    Parameters
    ----------
    host / port:
        The server's bind address.
    timeout:
        Socket timeout in seconds for each request.
    use_fingerprints:
        Turn the operand negotiation off to always upload bytes (the
        cold-path comparator the throughput benchmark measures against).
    max_retries:
        Transport/load-shed retries *after* the first attempt of each
        request.  ``0`` restores fail-fast behaviour.
    backoff_base / backoff_cap:
        Exponential backoff schedule in seconds: attempt ``i`` sleeps
        ``min(cap, base · 2^i)`` scaled by a jitter factor in ``[0.5, 1)``.
    retry_seed:
        Seed of the jitter RNG — retries are as deterministic as the rest
        of the library.
    deadline:
        Default per-request deadline in seconds (``None`` = none).  The
        remaining budget is sent to the server with every attempt; each
        ``gemm``/``gemv``/``solve``/``prepare`` call can override it.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7723,
        timeout: float = 120.0,
        use_fingerprints: bool = True,
        max_retries: int = 4,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        retry_seed: int = 0,
        deadline: Optional[float] = None,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.use_fingerprints = bool(use_fingerprints)
        self.max_retries = max(0, int(max_retries))
        self.backoff_base = max(0.0, float(backoff_base))
        self.backoff_cap = max(0.0, float(backoff_cap))
        self.deadline = None if deadline is None else float(deadline)
        self._retry_rng = random.Random(int(retry_seed))
        self._known: Set[Tuple[str, str]] = set()
        self._fingerprints: Dict[int, str] = {}
        self._lock = named_lock("service.client._lock")
        self._local = threading.local()

    # -- connection management ----------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        """One persistent keep-alive connection per calling thread."""
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._local.conn = conn
        if conn.sock is None:
            conn.connect()
            # Nagle + delayed ACK stalls each framed request ~40ms on
            # loopback; small header writes must not wait for the body ACK.
            conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return conn

    def close(self) -> None:
        """Close this thread's connection (idle server threads time out)."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- retry machinery -----------------------------------------------------
    def _backoff_seconds(self, attempt: int) -> float:
        """Capped exponential backoff with seeded jitter in ``[0.5, 1)``."""
        base = min(self.backoff_cap, self.backoff_base * (2.0 ** attempt))
        with self._lock:
            factor = 0.5 + 0.5 * self._retry_rng.random()
        return base * factor

    def _sleep_before_retry(
        self,
        attempt: int,
        deadline_at: Optional[float],
        delay: Optional[float] = None,
    ) -> None:
        """Back off before retry ``attempt + 1`` — unless the deadline forbids it.

        ``delay`` overrides the exponential schedule (the server's
        ``Retry-After`` hint).  A sleep that would outlive the request
        deadline is refused: the deadline error surfaces immediately
        instead of after a doomed wait.
        """
        seconds = self._backoff_seconds(attempt) if delay is None else max(0.0, delay)
        if deadline_at is not None and time.monotonic() + seconds >= deadline_at:
            raise ServiceError(
                ERROR_DEADLINE,
                f"deadline expires during the {seconds:.3f}s retry backoff",
            )
        if seconds > 0.0:
            time.sleep(seconds)

    def _roundtrip(
        self, path: str, body: bytes, deadline_at: Optional[float] = None
    ) -> bytes:
        """POST one frame, retrying transport faults and 503 load sheds.

        Keep-alive connections die when the server restarts or the OS
        reaps an idle socket; each transport failure reconnects and
        resends after a capped, jittered backoff.  ``503`` answers sleep
        the server's ``Retry-After`` hint instead.  On exhaustion the last
        transport error is re-raised *unchanged* (callers polling for
        server start-up depend on the plain ``OSError``); an exhausted
        load shed returns the ``overloaded`` error frame for the caller's
        decode path to raise as :class:`ServiceError`.
        """
        for attempt in range(self.max_retries + 1):
            try:
                conn = self._connection()
                conn.request(
                    "POST", path, body=body,
                    headers={"Content-Type": "application/octet-stream"},
                )
                response = conn.getresponse()
                payload = response.read()
            except _TRANSPORT_ERRORS:
                self.close()
                if attempt >= self.max_retries:
                    raise
                self._sleep_before_retry(attempt, deadline_at)
                continue
            if response.status == 503 and attempt < self.max_retries:
                hint = response.getheader("Retry-After")
                try:
                    delay = None if hint is None else float(hint)
                except ValueError:
                    delay = None
                self._sleep_before_retry(attempt, deadline_at, delay)
                continue
            return payload
        raise AssertionError("unreachable: retry loop neither returned nor raised")

    # -- operand negotiation -------------------------------------------------
    def _fingerprint(self, array: np.ndarray) -> str:
        """Content fingerprint, memoised per array object identity.

        The id-keyed memo only short-circuits re-hashing when the *same
        object* is reused (the service workload's common case); a mutated
        or different array object is always re-hashed.
        """
        from ..core.operand import matrix_fingerprint

        key = id(array)
        with self._lock:
            cached = self._fingerprints.get(key)
        if cached is not None:
            return cached
        fingerprint = matrix_fingerprint(array)
        with self._lock:
            if len(self._fingerprints) > 4096:
                self._fingerprints.clear()
            self._fingerprints[key] = fingerprint
        return fingerprint

    def _encode_operand(
        self,
        name: str,
        side: str,
        array: np.ndarray,
        header: Dict,
        arrays: Dict[str, np.ndarray],
        force_inline: bool,
    ) -> None:
        """Reference the operand by fingerprint when acked, else inline it."""
        array = np.ascontiguousarray(array, dtype=np.float64)
        eligible = (
            self.use_fingerprints
            and not force_inline
            and array.ndim == 2
            and min(array.shape) >= 2
        )
        if eligible:
            fingerprint = self._fingerprint(array)
            with self._lock:
                known = (side, fingerprint) in self._known
            if known:
                header.setdefault("refs", {})[name] = {
                    "fingerprint": fingerprint, "side": side
                }
                return
        arrays[name] = array

    def _learn(self, header: Dict, sides: Dict[str, str]) -> None:
        with self._lock:
            for name, fingerprint in (header.get("learned") or {}).items():
                side = sides.get(name)
                if side is not None:
                    self._known.add((side, str(fingerprint)))

    def _unlearn(self, sides: Dict[str, str], operands: Dict[str, np.ndarray]) -> None:
        for name, side in sides.items():
            array = operands.get(name)
            if array is None or array.ndim != 2:
                continue
            fingerprint = self._fingerprint(
                np.ascontiguousarray(array, dtype=np.float64)
            )
            with self._lock:
                self._known.discard((side, fingerprint))

    def _deadline_at(self, deadline: Optional[float]) -> Optional[float]:
        """Absolute monotonic deadline for one request (call overrides client)."""
        budget = self.deadline if deadline is None else float(deadline)
        if budget is None:
            return None
        return time.monotonic() + budget

    @staticmethod
    def _stamp_deadline(header: Dict, deadline_at: Optional[float]) -> None:
        """Attach the *remaining* budget (clock-skew safe, relative ms)."""
        if deadline_at is not None:
            header["deadline_ms"] = max(
                0.0, (deadline_at - time.monotonic()) * 1e3
            )

    def _call(
        self,
        path: str,
        header: Dict,
        operands: Dict[str, Tuple[str, np.ndarray]],
        extra_arrays: Optional[Dict[str, np.ndarray]] = None,
        deadline: Optional[float] = None,
    ) -> Tuple[Dict, Dict[str, np.ndarray]]:
        """One negotiated request: fingerprint first, inline retry on miss."""
        sides = {name: side for name, (side, _) in operands.items()}
        raw = {name: array for name, (_, array) in operands.items()}
        deadline_at = self._deadline_at(deadline)
        for attempt in (0, 1):
            request_header = {key: val for key, val in header.items()}
            self._stamp_deadline(request_header, deadline_at)
            arrays: Dict[str, np.ndarray] = {}
            for name, (side, array) in operands.items():
                self._encode_operand(
                    name, side, array, request_header, arrays, force_inline=attempt > 0
                )
            arrays.update(extra_arrays or {})
            response = self._roundtrip(
                path, encode_frame(request_header, arrays), deadline_at
            )
            resp_header, resp_arrays = decode_frame(response)
            if resp_header.get("ok"):
                self._learn(resp_header, sides)
                return resp_header, resp_arrays
            error = resp_header.get("error") or {}
            code = str(error.get("code", "unknown"))
            if code == ERROR_OPERAND_MISSING and attempt == 0:
                # The server evicted an operand we thought it held: forget
                # the ack and resend the bytes.
                self._unlearn(sides, raw)
                continue
            raise ServiceError(code, str(error.get("message", "")))
        raise ServiceError("retry-exhausted", "inline retry also failed")

    # -- public surface ------------------------------------------------------
    def gemm(
        self,
        a: np.ndarray,
        b: np.ndarray,
        config: Optional[Dict] = None,
        deadline: Optional[float] = None,
    ) -> RemoteResult:
        """Emulated ``A @ B`` on the server; returns value + metadata."""
        header: Dict = {"op": "gemm"}
        if config:
            header["config"] = dict(config)
        resp, arrays = self._call(
            "/v1/gemm",
            header,
            {"a": ("A", np.asarray(a)), "b": ("B", np.asarray(b))},
            deadline=deadline,
        )
        return RemoteResult(arrays["value"], resp.get("result", {}))

    def gemv(
        self,
        a: np.ndarray,
        x: np.ndarray,
        config: Optional[Dict] = None,
        deadline: Optional[float] = None,
    ) -> RemoteResult:
        """Emulated ``A @ x`` on the server (residue-GEMV fast path)."""
        header: Dict = {"op": "gemv"}
        if config:
            header["config"] = dict(config)
        resp, arrays = self._call(
            "/v1/gemv",
            header,
            {"a": ("A", np.asarray(a))},
            extra_arrays={"x": np.ascontiguousarray(x, dtype=np.float64)},
            deadline=deadline,
        )
        return RemoteResult(arrays["value"], resp.get("result", {}))

    def solve(
        self,
        a: np.ndarray,
        b: np.ndarray,
        method: str = "cg",
        config: Optional[Dict] = None,
        deadline: Optional[float] = None,
        **options: object,
    ) -> RemoteResult:
        """Iteratively solve ``A x = b`` on the server."""
        header: Dict = {"op": "solve", "method": method}
        if config:
            header["config"] = dict(config)
        if options:
            header["options"] = options
        resp, arrays = self._call(
            "/v1/solve",
            header,
            {"a": ("A", np.asarray(a))},
            extra_arrays={"b": np.ascontiguousarray(b, dtype=np.float64).ravel()},
            deadline=deadline,
        )
        return RemoteResult(arrays["value"], resp.get("result", {}))

    def prepare(
        self,
        x: np.ndarray,
        side: str = "A",
        config: Optional[Dict] = None,
        deadline: Optional[float] = None,
    ) -> Dict[str, object]:
        """Warm the server's operand cache; returns the fingerprint ack."""
        header: Dict = {"op": "prepare", "side": side}
        if config:
            header["config"] = dict(config)
        deadline_at = self._deadline_at(deadline)
        self._stamp_deadline(header, deadline_at)
        array = np.ascontiguousarray(x, dtype=np.float64)
        response = self._roundtrip(
            "/v1/prepare", encode_frame(header, {"x": array}), deadline_at
        )
        resp_header, _ = decode_frame(response)
        if not resp_header.get("ok"):
            error = resp_header.get("error") or {}
            raise ServiceError(
                str(error.get("code", "unknown")), str(error.get("message", ""))
            )
        self._learn(resp_header, {"x": side.upper()})
        with self._lock:
            self._fingerprints[id(x)] = str(
                (resp_header.get("learned") or {}).get("x", "")
            )
        return dict(resp_header.get("result", {}))

    def _get_json(self, path: str) -> Dict[str, object]:
        conn = self._connection()
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            body = response.read()
        except (http.client.HTTPException, ConnectionError, OSError):
            self.close()
            conn = self._connection()
            conn.request("GET", path)
            response = conn.getresponse()
            body = response.read()
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValidationError(f"server answered non-JSON on {path}: {exc}") from exc

    def stats(self) -> Dict[str, object]:
        """The server's ``/v1/stats`` document."""
        return self._get_json("/v1/stats")

    def health(self) -> Dict[str, object]:
        """The server's ``/v1/health`` document."""
        return self._get_json("/v1/health")
