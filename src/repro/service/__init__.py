"""Residue GEMM as a service: ``repro serve`` and its client.

The service layer puts a long-lived :class:`~repro.session.Session` behind
a socket.  Conversion is the expensive, cacheable part of Ozaki scheme II;
a server that remembers prepared operands across requests — keyed by
content fingerprint, bounded by an LRU byte budget — turns the paper's
convert-once/multiply-many amortisation into an inter-process,
inter-client property.  Everything is standard library: the transport is
HTTP/1.1 keep-alive (:mod:`http.server` / :mod:`http.client`), the frames
are JSON headers plus raw array bytes (:mod:`repro.service.protocol`).

Pieces
------
* :class:`~repro.service.server.ReproServer` — the host: HTTP endpoints,
  operand resolution, request coalescing into the batched runtime,
  ``/v1/stats`` observability.
* :class:`~repro.service.client.ServiceClient` — the caller side, with
  transparent fingerprint negotiation (upload once, reference thereafter,
  automatic inline retry after eviction).
* :class:`~repro.service.cache.OperandCache` — the bounded LRU of prepared
  operands shared by :class:`~repro.session.Session` and the server.
* :class:`~repro.service.coalescer.RequestCoalescer` — concurrent GEMM
  requests merged into :func:`~repro.runtime.batched.ozaki2_gemm_batched`
  calls.

Start a server from the CLI (``repro serve --port 7723``), query it with
``repro serve --stats``, or embed both ends::

    from repro.service import ReproServer, ServiceClient

    with ReproServer(port=0).start() as server:
        client = ServiceClient(port=server.port)
        result = client.gemm(a, b)      # cold: uploads + converts
        result = client.gemm(a, b)      # warm: fingerprint-only, cache hit
"""

from __future__ import annotations

from .cache import DEFAULT_CAPACITY_BYTES, OperandCache, cache_key
from .protocol import (
    ERROR_BAD_REQUEST,
    ERROR_INTERNAL,
    ERROR_OPERAND_MISSING,
    PROTOCOL_VERSION,
    decode_frame,
    encode_frame,
)

# The socket layer (server/client/coalescer) imports repro.session, which in
# turn imports this package for the cache — so those names load lazily
# (PEP 562) to keep the import graph acyclic.  ``from repro.service import
# ReproServer`` works exactly as if the import were eager.
_LAZY = {
    "ReproServer": ("repro.service.server", "ReproServer"),
    "ServiceClient": ("repro.service.client", "ServiceClient"),
    "ServiceError": ("repro.service.client", "ServiceError"),
    "RemoteResult": ("repro.service.client", "RemoteResult"),
    "RequestCoalescer": ("repro.service.coalescer", "RequestCoalescer"),
}


def __getattr__(name: str) -> object:
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(target[0]), target[1])
    globals()[name] = value
    return value


def __dir__() -> "list[str]":
    return sorted(set(globals()) | set(_LAZY))


__all__ = [
    "ReproServer",
    "ServiceClient",
    "ServiceError",
    "RemoteResult",
    "OperandCache",
    "RequestCoalescer",
    "cache_key",
    "DEFAULT_CAPACITY_BYTES",
    "PROTOCOL_VERSION",
    "ERROR_BAD_REQUEST",
    "ERROR_INTERNAL",
    "ERROR_OPERAND_MISSING",
    "encode_frame",
    "decode_frame",
]
