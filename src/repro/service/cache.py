"""Bounded LRU cache of prepared residue operands, keyed by content.

The convert-once/multiply-many machinery of :mod:`repro.core.operand` asks
the *caller* to hold on to the :class:`~repro.core.operand.ResidueOperand`.
That works inside one solver loop, but a long-lived session — and above it
the :mod:`repro.service` server, whose clients are separate processes that
cannot hold Python references at all — needs the library to recognise a
returning operand by *value*.  :class:`OperandCache` provides that:

* keys are content fingerprints (:func:`~repro.core.operand.
  matrix_fingerprint`) plus everything the residues are a function of —
  side, precision, residue kernel and the moduli request — so a hit is
  **bit-identical** to a cold conversion by construction (the cached
  operand *is* what the conversion would have produced; reuse reorders no
  floating-point operation),
* eviction is least-recently-used under a byte budget
  (``capacity_bytes``), accounting each entry at its
  :attr:`~repro.core.operand.ResidueOperand.nbytes` (residues + scales +
  retained source),
* every event is counted — hits, misses, evictions, byte traffic — and,
  when the cache is given a session ledger, folded into the same
  :class:`~repro.engines.base.OpCounter` that records the engine's GEMM
  work, so ``repro serve --stats`` reads one ledger for compute *and*
  caching.

Thread safety: lookups, insertions and evictions hold one internal lock;
conversions (the expensive part) run outside it.  Concurrent misses on the
*same* key are collapsed — the first requester converts, the others wait on
a per-key in-flight latch and then take the hit path — so a burst of
identical requests against a cold cache pays exactly one conversion.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np

from .. import faults
from ..analysis.lockorder import named_lock
from ..config import Ozaki2Config
from ..core.operand import PreparedOperand, matrix_fingerprint, prepare_a, prepare_b
from ..engines.base import OpCounter
from ..errors import ValidationError

__all__ = ["OperandCache", "DEFAULT_CAPACITY_BYTES", "cache_key"]

#: Default byte budget (256 MiB) — roughly thirty prepared 2048x2048 fp64
#: operands at the default moduli count.
DEFAULT_CAPACITY_BYTES = 256 * 1024 * 1024


def cache_key(side: str, fingerprint: str, config: Ozaki2Config) -> Tuple:
    """Cache key of one prepared operand: content identity + residue recipe.

    The cached state is a function of the matrix contents (the
    fingerprint), the side (row vs. column scales), the compute mode (fast
    operands cache residues, accurate operands cache pre-scales — different
    objects entirely), the precision (constant-table bit width), the
    residue kernel, and the moduli request — a fixed count, or the auto
    marker with its accuracy target *and selection model* (auto resolves
    the count from the operand's own magnitudes, so equal-content operands
    under the same target and model always resolve alike and may share an
    entry; the calibrated and rigorous models can resolve different counts
    from identical inputs, so they must not).  Runtime knobs (parallelism,
    blocking, validation) do not affect the cached state and are
    deliberately absent: sessions differing only in those share entries.
    """
    moduli: object
    if config.moduli_is_auto:
        moduli = ("auto", config.target_accuracy, config.selection_model)
    else:
        moduli = int(config.num_moduli)
    return (
        side,
        fingerprint,
        config.mode.value,
        config.precision.name,
        config.residue_kernel.value,
        moduli,
    )


class OperandCache:
    """Thread-safe bounded LRU of prepared operands (see module docstring).

    Parameters
    ----------
    capacity_bytes:
        Byte budget.  Entries are accounted at ``operand.nbytes``; inserting
        past the budget evicts least-recently-used entries first.  An
        operand larger than the whole budget is returned to the caller but
        never stored (storing it would evict everything for a single-use
        entry).  ``0`` disables caching entirely — every lookup converts and
        counts as a miss.
    ledger:
        Optional :class:`~repro.engines.base.OpCounter` to fold cache events
        into (the session's engine ledger); the cache also keeps its own
        internal ledger either way, so :meth:`stats` works standalone.
    """

    def __init__(
        self,
        capacity_bytes: int = DEFAULT_CAPACITY_BYTES,
        ledger: Optional[OpCounter] = None,
    ) -> None:
        capacity_bytes = int(capacity_bytes)
        if capacity_bytes < 0:
            raise ValidationError(
                f"capacity_bytes must be non-negative, got {capacity_bytes}"
            )
        self.capacity_bytes = capacity_bytes
        self._entries: "OrderedDict[Tuple, PreparedOperand]" = OrderedDict()
        self._sizes: Dict[Tuple, int] = {}
        self._current_bytes = 0
        self._lock = named_lock("service.cache._lock")
        self._pending: Dict[Tuple, threading.Event] = {}
        self._counter = OpCounter()
        self._ledgers = [self._counter, *([ledger] if ledger is not None else [])]

    # -- events --------------------------------------------------------------
    def _hit(self) -> None:
        for ledger in self._ledgers:
            ledger.record_cache_hit()

    def _miss(self) -> None:
        for ledger in self._ledgers:
            ledger.record_cache_miss()

    def _inserted(self, nbytes: int) -> None:
        for ledger in self._ledgers:
            ledger.record_cache_insert(nbytes)

    def _evicted(self, nbytes: int) -> None:
        for ledger in self._ledgers:
            ledger.record_cache_eviction(nbytes)

    # -- core lookup ---------------------------------------------------------
    def get(self, key: Tuple) -> Optional[PreparedOperand]:
        """Return the cached operand for ``key`` (refreshing recency), or None.

        Counts a hit or a miss; callers that convert on a miss should insert
        the result with :meth:`put` (which does *not* recount).
        """
        # Fault site ``cache.evict_storm``: a whole-cache eviction right
        # before the lookup — the worst-case cold burst the negotiation
        # protocol must renegotiate through (clear() takes the lock itself).
        if faults.should_fire("cache.evict_storm"):
            self.clear()
        with self._lock:
            operand = self._entries.get(key)
            if operand is not None:
                self._entries.move_to_end(key)
                self._hit()
                return operand
            self._miss()
            return None

    def peek(self, key: Tuple) -> Optional[PreparedOperand]:
        """Like :meth:`get` but counts nothing and keeps recency untouched."""
        with self._lock:
            return self._entries.get(key)

    def put(self, key: Tuple, operand: PreparedOperand) -> None:
        """Insert ``operand`` under ``key``, evicting LRU entries past budget."""
        nbytes = operand.nbytes
        if nbytes > self.capacity_bytes:
            return  # would evict the whole cache for a single-use entry
        with self._lock:
            if key in self._entries:
                # Lost a benign race: another thread inserted the identical
                # conversion first.  Keep the incumbent (same bits).
                self._entries.move_to_end(key)
                return
            self._entries[key] = operand
            self._sizes[key] = nbytes
            self._current_bytes += nbytes
            self._inserted(nbytes)
            while self._current_bytes > self.capacity_bytes:
                old_key, _ = self._entries.popitem(last=False)
                freed = self._sizes.pop(old_key)
                self._current_bytes -= freed
                self._evicted(freed)

    def get_or_prepare(
        self, x: np.ndarray, side: str, config: Ozaki2Config
    ) -> PreparedOperand:
        """The cache's main entry: return a prepared ``side`` operand for ``x``.

        A hit returns the cached operand — a fast-mode
        :class:`~repro.core.operand.ResidueOperand` or an accurate-mode
        :class:`~repro.core.operand.AccurateOperand`, per ``config.mode``
        (bit-identical to converting ``x`` afresh); a miss converts via
        :func:`~repro.core.operand.prepare_a` / ``prepare_b`` and inserts.
        Concurrent misses on the same key wait for the first conversion
        instead of duplicating it.
        """
        if faults.should_fire("cache.evict_storm"):
            self.clear()
        key = cache_key(side, matrix_fingerprint(x), config)
        while True:
            with self._lock:
                operand = self._entries.get(key)
                if operand is not None:
                    self._entries.move_to_end(key)
                    self._hit()
                    return operand
                latch = self._pending.get(key)
                if latch is None:
                    self._pending[key] = threading.Event()
                    self._miss()
                    break  # this thread converts
            # Another thread is converting this very key: wait, then retry
            # the lookup (a hit unless the entry was instantly evicted).
            latch.wait()
        try:
            prepare = prepare_a if side == "A" else prepare_b
            operand = prepare(np.ascontiguousarray(x, dtype=np.float64), config=config)
            self.put(key, operand)
            return operand
        finally:
            with self._lock:
                self._pending.pop(key).set()

    # -- introspection -------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Tuple) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def current_bytes(self) -> int:
        """Bytes currently resident (always ≤ ``capacity_bytes``)."""
        with self._lock:
            return self._current_bytes

    @property
    def counter(self) -> OpCounter:
        """The cache's own event ledger (hits/misses/evictions/bytes)."""
        return self._counter

    def stats(self) -> Dict[str, object]:
        """Snapshot of the cache state and event counters (for ``--stats``)."""
        with self._lock:
            resident = self._current_bytes
            entries = len(self._entries)
        counts = self._counter
        lookups = counts.cache_hits + counts.cache_misses
        return {
            "entries": entries,
            "capacity_bytes": self.capacity_bytes,
            "current_bytes": resident,
            "hits": counts.cache_hits,
            "misses": counts.cache_misses,
            "evictions": counts.cache_evictions,
            "bytes_inserted": counts.cache_bytes_inserted,
            "bytes_evicted": counts.cache_bytes_evicted,
            "hit_rate": (counts.cache_hits / lookups) if lookups else 0.0,
        }

    def clear(self) -> None:
        """Drop every entry (counts each as an eviction)."""
        with self._lock:
            for key in list(self._entries):
                del self._entries[key]
                self._evicted(self._sizes.pop(key))
            self._current_bytes = 0
