"""Execution runtime: planning, worker-pool scheduling and batched GEMM.

Ozaki scheme II is embarrassingly parallel — one emulated GEMM is ``N``
independent INT8 residue GEMMs, times the number of k-blocks, times the
number of output tiles.  This package exploits that structure:

* :mod:`repro.runtime.plan` — :class:`ExecutionPlan` decomposes a problem
  into tasks (and sizes output tiles against a memory budget).
* :mod:`repro.runtime.scheduler` — :class:`Scheduler` fans tasks over a
  thread pool (or, with ``executor="process"``, a persistent
  worker-process pool) with per-worker engine clones and merged op
  ledgers; :func:`execute_plan` runs a plan with bit-identical
  serial/parallel results on every backend.
* :mod:`repro.runtime.process` — the process backend: worker pool plus
  shared-memory task protocol (:mod:`repro.runtime.shm`); residue stacks
  cross the process boundary zero-copy in both directions.
* :mod:`repro.runtime.tilesource` — :class:`TileSource` stages residue
  stacks too large for RAM on disk and streams them through the same
  tiled plans (out-of-core GEMM).
* :mod:`repro.runtime.batched` — :func:`ozaki2_gemm_batched` serves whole
  batches through one shared scheduler, with one residue-conversion pass
  per operand shape.
"""

from __future__ import annotations

from .batched import ozaki2_gemm_batched
from .plan import (
    ExecutionPlan,
    build_plan,
    plan_for_config,
    resolve_executor,
    resolve_parallelism,
)
from .scheduler import Scheduler, execute_plan
from .shm import SharedArray, live_segment_names
from .tilesource import TileSource

__all__ = [
    "ExecutionPlan",
    "build_plan",
    "plan_for_config",
    "resolve_executor",
    "resolve_parallelism",
    "Scheduler",
    "SharedArray",
    "TileSource",
    "execute_plan",
    "live_segment_names",
    "ozaki2_gemm_batched",
]
