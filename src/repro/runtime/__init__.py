"""Execution runtime: planning, worker-pool scheduling and batched GEMM.

Ozaki scheme II is embarrassingly parallel — one emulated GEMM is ``N``
independent INT8 residue GEMMs, times the number of k-blocks, times the
number of output tiles.  This package exploits that structure:

* :mod:`repro.runtime.plan` — :class:`ExecutionPlan` decomposes a problem
  into tasks (and sizes output tiles against a memory budget).
* :mod:`repro.runtime.scheduler` — :class:`Scheduler` fans tasks over a
  thread pool with per-worker engine clones and merged op ledgers;
  :func:`execute_plan` runs a plan with bit-identical serial/parallel
  results.
* :mod:`repro.runtime.batched` — :func:`ozaki2_gemm_batched` serves whole
  batches through one shared scheduler, with one residue-conversion pass
  per operand shape.
"""

from __future__ import annotations

from .batched import ozaki2_gemm_batched
from .plan import ExecutionPlan, build_plan, plan_for_config, resolve_parallelism
from .scheduler import Scheduler, execute_plan

__all__ = [
    "ExecutionPlan",
    "build_plan",
    "plan_for_config",
    "resolve_parallelism",
    "Scheduler",
    "execute_plan",
    "ozaki2_gemm_batched",
]
