"""Batched emulated GEMM: many products through one shared runtime.

:func:`ozaki2_gemm_batched` evaluates ``Cs[j] = As[j] @ Bs[j]`` for a whole
batch with one configuration, sharing everything that does not depend on an
individual item's values:

* one cached :class:`~repro.crt.constants.CRTConstantTable`,
* one :class:`~repro.runtime.scheduler.Scheduler` (worker pool + engine
  clones) kept warm across items,
* one residue-conversion pass per *operand shape*: items of equal shape
  have their truncated operands stacked and pushed through the ``rmod``
  kernels in a single NumPy call per modulus, instead of one call per item,
* one conversion per *distinct matrix*: items that pass the same array
  object (or the same precomputed
  :class:`~repro.core.operand.ResidueOperand`) on a side share a single
  scale/truncate/residue pass in fast mode — the exact situation of LU
  trailing updates and iterative solvers reusing one system matrix.

Each item's tasks still fan out over the pool, and items are retired one at
a time so per-item op ledgers stay exact.  Results are bit-identical to
looping :func:`~repro.core.gemm.ozaki2_gemm` over the batch — the batched
path reorders no floating-point operation, it only amortises fixed costs.
(Shared conversions are charged to the first item that uses them; later
items report 0 for the shared phase, exactly like prepared operands.)
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import ComputeMode, Ozaki2Config
from ..core.accumulation import unscale
from ..core.conversion import residue_slices, truncate_scaled
from ..core.gemm import (
    _AUTO_TABLE_RESTRICTION,
    _resolve_auto_moduli,
    _resolve_prepared_sides,
)
from ..result import GemmResult, PhaseTimes
from ..core.operand import AccurateOperand, PreparedOperand, ResidueOperand
from ..core.scaling import (
    accurate_mode_prescale,
    accurate_scales_from_prescale,
    fast_mode_scale_a,
    fast_mode_scale_b,
)
from ..crt.constants import CRTConstantTable, build_constant_table
from ..engines.base import MatrixEngine
from ..errors import ConfigurationError
from ..types import result_dtype
from ..utils.validation import check_gemm_operands
from .plan import plan_for_config
from .scheduler import Scheduler, execute_plan

__all__ = ["ozaki2_gemm_batched"]


def ozaki2_gemm_batched(
    As: Sequence[np.ndarray],
    Bs: Sequence[np.ndarray],
    config: Optional[Ozaki2Config] = None,
    engine: Optional[MatrixEngine] = None,
    return_details: bool = False,
    constant_table: Optional[CRTConstantTable] = None,
    scheduler: Optional[Scheduler] = None,
    memory_budgets_mb: Optional[Sequence[Optional[float]]] = None,
):
    """Emulate ``As[j] @ Bs[j]`` for every item of a batch (Algorithm 1).

    Parameters
    ----------
    As, Bs:
        Equal-length sequences of operand matrices; item ``j`` must have a
        matching inner dimension.  Shapes may differ between items — equal
        shapes are detected and share one conversion pass.  Entries may
        also be precomputed operands — fast-mode
        :class:`~repro.core.operand.ResidueOperand` or accurate-mode
        :class:`~repro.core.operand.AccurateOperand` objects, matching
        ``config.mode`` — and items passing the *same* array object
        on a side share a single conversion in fast mode.
    config:
        One :class:`~repro.config.Ozaki2Config` applied to every item
        (``parallelism`` and ``memory_budget_mb`` drive the runtime).
    engine:
        Primary INT8 engine; defaults to a fresh one.  Its ledger ends up
        holding the whole batch's operations.
    return_details:
        When True, return a list of :class:`~repro.core.gemm.Ozaki2Result`
        (with per-item op-counter deltas) instead of plain matrices.
    constant_table:
        Precomputed constant table (otherwise built/cached from the config).
    scheduler:
        Existing :class:`Scheduler` to reuse; by default one is created for
        the call (worker count from ``config.parallelism``, backend from
        ``config.executor``) and closed before returning.
    memory_budgets_mb:
        Optional per-item workspace caps (MiB), overriding
        ``config.memory_budget_mb`` item by item — mixed-size batches can
        keep small items untiled while the large ones stream through
        budgeted tiles.  ``None`` entries inherit the config's budget.
        Results are bit-identical for every budget (tiling never reorders
        a floating-point operation).

    Returns
    -------
    List of ``C`` matrices, or list of :class:`Ozaki2Result` when
    ``return_details`` is true, in batch order.
    """
    if len(As) != len(Bs):
        raise ValueError(f"batch length mismatch: {len(As)} A's vs {len(Bs)} B's")
    if memory_budgets_mb is not None and len(memory_budgets_mb) != len(As):
        raise ValueError(
            f"memory_budgets_mb has {len(memory_budgets_mb)} entries for a "
            f"batch of {len(As)}"
        )
    config = config or Ozaki2Config()
    if len(As) == 0:
        # An empty batch is a no-op, not an error: no scheduler, plan or
        # conversion state is set up, and `[]` is returned for both the
        # plain and the return_details flavours.
        return []
    if config.moduli_is_auto:
        # Auto selection is per item (each item's k and magnitudes pick its
        # own count); tables are built per resolved item inside the batch,
        # and a caller-supplied table is rejected exactly as on the single
        # GEMM route.
        if constant_table is not None:
            raise ConfigurationError(_AUTO_TABLE_RESTRICTION)
        table = None
    else:
        table = constant_table or build_constant_table(
            config.num_moduli, 64 if config.is_dgemm else 32
        )
    out_dtype = result_dtype(config.precision)

    own_scheduler = scheduler is None
    sched = scheduler or Scheduler(
        parallelism=config.parallelism,
        engine=engine,
        executor=config.executor,
        max_pool_rebuilds=config.max_pool_rebuilds,
    )
    try:
        return _run_batch(
            As, Bs, config, table, out_dtype, sched, return_details, memory_budgets_mb
        )
    finally:
        if own_scheduler:
            sched.close()


def _run_batch(
    As: Sequence[np.ndarray],
    Bs: Sequence[np.ndarray],
    config: Ozaki2Config,
    table: CRTConstantTable,
    out_dtype,
    sched: Scheduler,
    return_details: bool,
    memory_budgets_mb: Optional[Sequence[Optional[float]]] = None,
) -> List:
    batch = len(As)
    engine = sched.engine
    fast = config.mode is ComputeMode.FAST
    auto = config.moduli_is_auto
    times: List[PhaseTimes] = [PhaseTimes() for _ in range(batch)]

    # -- per-item scaling + truncation (value-dependent, cheap) --------------
    # ``a_primes[j] is None`` means item j needs no residue conversion of its
    # own: the side is prepared, or it aliases (``a_src[j]``) an earlier item
    # that passed the very same array object (fast mode derives each side's
    # scales from that side alone, so identical inputs convert identically).
    a_primes: List[Optional[np.ndarray]] = [None] * batch
    b_primes: List[Optional[np.ndarray]] = [None] * batch
    a_preps: List[Optional[PreparedOperand]] = [None] * batch
    b_preps: List[Optional[PreparedOperand]] = [None] * batch
    a_src = list(range(batch))
    b_src = list(range(batch))
    mus: List[np.ndarray] = [None] * batch  # type: ignore[list-item]
    nus: List[np.ndarray] = [None] * batch  # type: ignore[list-item]
    configs: List[Ozaki2Config] = [None] * batch  # type: ignore[list-item]
    tables: List[CRTConstantTable] = [None] * batch  # type: ignore[list-item]
    selections = [None] * batch
    plans = []
    scale_counters = []
    seen_a: Dict[int, int] = {}
    seen_b: Dict[int, int] = {}
    for j in range(batch):
        a_in, b_in = As[j], Bs[j]
        a_prep = a_in if isinstance(a_in, PreparedOperand) else None
        b_prep = b_in if isinstance(b_in, PreparedOperand) else None

        if a_prep is not None or b_prep is not None:
            a, b = _resolve_prepared_sides(a_in, b_in, a_prep, b_prep, config)
        elif config.validate:
            a, b = check_gemm_operands(a_in, b_in, dtype=np.float64)
        else:
            a = np.asarray(a_in, dtype=np.float64)
            b = np.asarray(b_in, dtype=np.float64)

        m, k = a_prep.shape if a_prep is not None else a.shape
        n = (b_prep.shape if b_prep is not None else b.shape)[1]

        # Per-item auto-N: each item's (k, magnitudes) selects its own
        # count; prepared sides are re-derived at it (cached on the
        # operand, so repeated batch items pay each count once).
        if auto:
            configs[j], a_prep, b_prep, selections[j] = _resolve_auto_moduli(
                a, b, a_prep, b_prep, k, config
            )
        else:
            configs[j] = config
        if table is not None and table.num_moduli == configs[j].num_moduli:
            tables[j] = table
        else:
            tables[j] = build_constant_table(
                configs[j].num_moduli, 64 if config.is_dgemm else 32
            )
        a_preps[j], b_preps[j] = a_prep, b_prep
        # Same-object aliasing requires the same resolved count: equal
        # arrays under one batch config always select equally (the model is
        # deterministic), so the guard only matters defensively.
        alias_a = (
            fast and a_prep is None and id(a_in) in seen_a
            and configs[seen_a[id(a_in)]].num_moduli == configs[j].num_moduli
        )
        alias_b = (
            fast and b_prep is None and id(b_in) in seen_b
            and configs[seen_b[id(b_in)]].num_moduli == configs[j].num_moduli
        )
        # Per-item memory budget: override the config's cap before the plan
        # is built, so mixed-size batches tile each item to its own budget.
        if memory_budgets_mb is not None and memory_budgets_mb[j] is not None:
            configs[j] = configs[j].replace(memory_budget_mb=memory_budgets_mb[j])
        plans.append(plan_for_config(m, k, n, configs[j]))

        # Accurate mode issues engine GEMMs during scaling; snapshot the
        # ledger so those calls are attributed to this item's counter.
        counter_before = engine.counter.copy()
        t0 = time.perf_counter()
        if not fast:
            pa = (
                a_prep.prescale
                if isinstance(a_prep, AccurateOperand)
                else accurate_mode_prescale(a, axis=1)
            )
            pb = (
                b_prep.prescale
                if isinstance(b_prep, AccurateOperand)
                else accurate_mode_prescale(b, axis=0)
            )
            mu, nu = accurate_scales_from_prescale(pa, pb, tables[j], engine)[:2]
        else:
            if a_prep is not None:
                mu = a_prep.scale
            elif alias_a:
                mu = mus[seen_a[id(a_in)]]
            else:
                mu = fast_mode_scale_a(a, tables[j])
            if b_prep is not None:
                nu = b_prep.scale
            elif alias_b:
                nu = nus[seen_b[id(b_in)]]
            else:
                nu = fast_mode_scale_b(b, tables[j])
        times[j].add("scale", time.perf_counter() - t0)
        scale_counters.append(engine.counter.difference(counter_before))
        mus[j], nus[j] = mu, nu

        # Fast-mode ResidueOperands skip truncation entirely (their residues
        # are cached); accurate prepared operands truncate from their
        # retained source — the scales above are partner-coupled.
        if isinstance(a_prep, ResidueOperand) or alias_a:
            times[j].add("convert_A", 0.0)
            if alias_a:
                a_src[j] = a_src[seen_a[id(a_in)]]
        else:
            a_arr = a_prep.source if a_prep is not None else a
            t0 = time.perf_counter()
            a_primes[j] = truncate_scaled(a_arr, mu, side="left")
            times[j].add("convert_A", time.perf_counter() - t0)
            if fast and a_prep is None:
                seen_a[id(a_in)] = j
        if isinstance(b_prep, ResidueOperand) or alias_b:
            times[j].add("convert_B", 0.0)
            if alias_b:
                b_src[j] = b_src[seen_b[id(b_in)]]
        else:
            b_arr = b_prep.source if b_prep is not None else b
            t0 = time.perf_counter()
            b_primes[j] = truncate_scaled(b_arr, nu, side="right")
            times[j].add("convert_B", time.perf_counter() - t0)
            if fast and b_prep is None:
                seen_b[id(b_in)] = j

    # -- shared residue conversion -------------------------------------------
    # Thread/serial schedulers run one pass per (shape, moduli) group; the
    # process backend converts per item through the scheduler instead — the
    # INT8 stacks land in scheduler-owned shared memory (grouped stacking
    # would yield non-contiguous per-item views no worker can attach), the
    # rows band across the worker processes, and the result is bit-identical
    # (residue conversion is elementwise).
    a_slices = b_slices = None
    # Recoveries during the shared conversion phase (shm fallbacks, pool
    # rebuilds, degradation) belong to the whole batch, not any one item's
    # execution window; attribute them to the first detailed result so they
    # stay visible on some ledger instead of falling between snapshots.
    convert_before = engine.counter.copy()
    try:
        if sched.uses_processes:
            a_slices = _scheduler_residue_slices(
                a_primes, tables, config, times, "convert_A", sched
            )
            b_slices = _scheduler_residue_slices(
                b_primes, tables, config, times, "convert_B", sched
            )
        else:
            a_slices = _grouped_residue_slices(
                a_primes, tables, config, times, "convert_A"
            )
            b_slices = _grouped_residue_slices(
                b_primes, tables, config, times, "convert_B"
            )
        for j in range(batch):
            if isinstance(a_preps[j], ResidueOperand):
                a_slices[j] = a_preps[j].slices
            elif a_slices[j] is None:
                a_slices[j] = a_slices[a_src[j]]
            if isinstance(b_preps[j], ResidueOperand):
                b_slices[j] = b_preps[j].slices
            elif b_slices[j] is None:
                b_slices[j] = b_slices[b_src[j]]

        shared_fault_events = dict(
            engine.counter.difference(convert_before).fault_events
        )

        # -- execution: items retired in order, tasks fanned out per item ----
        results = []
        for j in range(batch):
            counter_before = engine.counter.copy()
            c_pp = execute_plan(
                sched,
                plans[j],
                a_slices[j],
                b_slices[j],
                tables[j],
                configs[j],
                times=times[j],
                trusted=True,
            )
            engine.counter.record_emulated(configs[j].num_moduli)
            t0 = time.perf_counter()
            c = unscale(c_pp, mus[j], nus[j], out_dtype=out_dtype)
            times[j].add("unscale", time.perf_counter() - t0)
            if not return_details:
                results.append(c)
                continue
            item_counter = engine.counter.difference(counter_before)
            item_counter.absorb(scale_counters[j])
            if j == 0:
                for event, count in shared_fault_events.items():
                    item_counter.record_fault_event(event, count)
            results.append(
                GemmResult(
                    value=c,
                    config=configs[j],
                    mu=mus[j],
                    nu=nus[j],
                    phase_times=times[j],
                    ledger=item_counter,
                    num_k_blocks=plans[j].num_k_blocks,
                    moduli_selection=selections[j],
                    moduli_history=[configs[j].num_moduli],
                )
            )
        return results
    finally:
        # Free scheduler-owned conversion segments now (the whole batch is
        # retired; aliased items shared them).  No-ops for grouped/prepared
        # arrays, and duplicates release once — `release` pops by identity.
        for arrays in (a_slices, b_slices):
            for arr in arrays or ():
                sched.release(arr)


def _scheduler_residue_slices(
    primes: List[Optional[np.ndarray]],
    tables: List[CRTConstantTable],
    config: Ozaki2Config,
    times: List[PhaseTimes],
    phase_key: str,
    sched: Scheduler,
) -> List[Optional[np.ndarray]]:
    """Per-item residue stacks via the scheduler (process backend).

    Operands are already truncate-scaled (``scale=None``); each item's rows
    band across the worker processes and the INT8 stack comes back as a
    scheduler-shared view that plan execution passes to workers zero-copy.
    ``None`` entries (prepared or aliased) stay ``None`` for the caller.
    """
    out: List[Optional[np.ndarray]] = [None] * len(primes)
    for j, x in enumerate(primes):
        if x is None:
            continue
        t0 = time.perf_counter()
        out[j] = sched.convert_residues(x, None, "left", tables[j], config)
        times[j].add(phase_key, time.perf_counter() - t0)
    return out


def _grouped_residue_slices(
    primes: List[Optional[np.ndarray]],
    tables: List[CRTConstantTable],
    config: Ozaki2Config,
    times: List[PhaseTimes],
    phase_key: str,
) -> List[Optional[np.ndarray]]:
    """Residue stacks for every item, one pass per ``(shape, moduli)`` group.

    Items sharing a shape *and* a (possibly auto-selected, hence per-item)
    moduli count are stacked into a single ``(group, rows, cols)`` array so
    each ``rmod`` kernel runs once per modulus for the whole group (the
    kernels are elementwise, so the stacked result is bit-identical to
    converting items one by one).  The group's conversion time is split
    evenly across its members' phase ledgers.  ``None`` entries (prepared
    or aliased operands) are skipped and stay ``None`` in the output — the
    caller fills them from their source.
    """
    groups: Dict[Tuple[Tuple[int, int], int], List[int]] = {}
    for j, x in enumerate(primes):
        if x is not None:
            groups.setdefault((x.shape, tables[j].num_moduli), []).append(j)

    out: List[Optional[np.ndarray]] = [None] * len(primes)
    for members in groups.values():
        table = tables[members[0]]
        t0 = time.perf_counter()
        if len(members) == 1:
            j = members[0]
            out[j] = residue_slices(
                primes[j],
                table,
                config.residue_kernel,
                single_pass=config.fused_kernels,
            )
        else:
            stacked = np.stack([primes[j] for j in members])
            slices = residue_slices(
                stacked,
                table,
                config.residue_kernel,
                single_pass=config.fused_kernels,
            )
            # slices has shape (N, group, rows, cols) -> per item (N, rows, cols)
            for pos, j in enumerate(members):
                out[j] = slices[:, pos]
        dt = (time.perf_counter() - t0) / len(members)
        for j in members:
            times[j].add(phase_key, dt)
    return out
