"""Batched emulated GEMM: many products through one shared runtime.

:func:`ozaki2_gemm_batched` evaluates ``Cs[j] = As[j] @ Bs[j]`` for a whole
batch with one configuration, sharing everything that does not depend on an
individual item's values:

* one cached :class:`~repro.crt.constants.CRTConstantTable`,
* one :class:`~repro.runtime.scheduler.Scheduler` (worker pool + engine
  clones) kept warm across items,
* one residue-conversion pass per *operand shape*: items of equal shape
  have their truncated operands stacked and pushed through the ``rmod``
  kernels in a single NumPy call per modulus, instead of one call per item.

Each item's tasks still fan out over the pool, and items are retired one at
a time so per-item op ledgers stay exact.  Results are bit-identical to
looping :func:`~repro.core.gemm.ozaki2_gemm` over the batch — the batched
path reorders no floating-point operation, it only amortises fixed costs.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import ComputeMode, Ozaki2Config
from ..core.accumulation import unscale
from ..core.conversion import residue_slices, truncate_scaled
from ..core.gemm import Ozaki2Result, PhaseTimes
from ..core.scaling import accurate_mode_scales, fast_mode_scales
from ..crt.constants import CRTConstantTable, build_constant_table
from ..engines.base import MatrixEngine
from ..types import result_dtype
from ..utils.validation import check_gemm_operands
from .plan import plan_for_config
from .scheduler import Scheduler, execute_plan

__all__ = ["ozaki2_gemm_batched"]


def ozaki2_gemm_batched(
    As: Sequence[np.ndarray],
    Bs: Sequence[np.ndarray],
    config: Optional[Ozaki2Config] = None,
    engine: Optional[MatrixEngine] = None,
    return_details: bool = False,
    constant_table: Optional[CRTConstantTable] = None,
    scheduler: Optional[Scheduler] = None,
):
    """Emulate ``As[j] @ Bs[j]`` for every item of a batch (Algorithm 1).

    Parameters
    ----------
    As, Bs:
        Equal-length sequences of operand matrices; item ``j`` must have a
        matching inner dimension.  Shapes may differ between items — equal
        shapes are detected and share one conversion pass.
    config:
        One :class:`~repro.config.Ozaki2Config` applied to every item
        (``parallelism`` and ``memory_budget_mb`` drive the runtime).
    engine:
        Primary INT8 engine; defaults to a fresh one.  Its ledger ends up
        holding the whole batch's operations.
    return_details:
        When True, return a list of :class:`~repro.core.gemm.Ozaki2Result`
        (with per-item op-counter deltas) instead of plain matrices.
    constant_table:
        Precomputed constant table (otherwise built/cached from the config).
    scheduler:
        Existing :class:`Scheduler` to reuse; by default one is created for
        the call and closed before returning.

    Returns
    -------
    List of ``C`` matrices, or list of :class:`Ozaki2Result` when
    ``return_details`` is true, in batch order.
    """
    if len(As) != len(Bs):
        raise ValueError(f"batch length mismatch: {len(As)} A's vs {len(Bs)} B's")
    config = config or Ozaki2Config()
    if not As:
        return []
    table = constant_table or build_constant_table(
        config.num_moduli, 64 if config.is_dgemm else 32
    )
    out_dtype = result_dtype(config.precision)

    own_scheduler = scheduler is None
    sched = scheduler or Scheduler(parallelism=config.parallelism, engine=engine)
    try:
        return _run_batch(As, Bs, config, table, out_dtype, sched, return_details)
    finally:
        if own_scheduler:
            sched.close()


def _run_batch(
    As: Sequence[np.ndarray],
    Bs: Sequence[np.ndarray],
    config: Ozaki2Config,
    table: CRTConstantTable,
    out_dtype,
    sched: Scheduler,
    return_details: bool,
) -> List:
    batch = len(As)
    engine = sched.engine
    times: List[PhaseTimes] = [PhaseTimes() for _ in range(batch)]

    # -- per-item scaling + truncation (value-dependent, cheap) --------------
    a_primes: List[np.ndarray] = [None] * batch  # type: ignore[list-item]
    b_primes: List[np.ndarray] = [None] * batch  # type: ignore[list-item]
    mus: List[np.ndarray] = [None] * batch  # type: ignore[list-item]
    nus: List[np.ndarray] = [None] * batch  # type: ignore[list-item]
    plans = []
    scale_counters = []
    for j in range(batch):
        if config.validate:
            a, b = check_gemm_operands(As[j], Bs[j], dtype=np.float64)
        else:
            a = np.asarray(As[j], dtype=np.float64)
            b = np.asarray(Bs[j], dtype=np.float64)
        plans.append(plan_for_config(a.shape[0], a.shape[1], b.shape[1], config))

        # Accurate mode issues engine GEMMs during scaling; snapshot the
        # ledger so those calls are attributed to this item's counter.
        counter_before = engine.counter.copy()
        t0 = time.perf_counter()
        if config.mode is ComputeMode.FAST:
            mu, nu = fast_mode_scales(a, b, table)
        else:
            mu, nu, _ = accurate_mode_scales(a, b, table, engine)
        times[j].add("scale", time.perf_counter() - t0)
        scale_counters.append(engine.counter.difference(counter_before))

        t0 = time.perf_counter()
        a_primes[j] = truncate_scaled(a, mu, side="left")
        times[j].add("convert_A", time.perf_counter() - t0)
        t0 = time.perf_counter()
        b_primes[j] = truncate_scaled(b, nu, side="right")
        times[j].add("convert_B", time.perf_counter() - t0)
        mus[j], nus[j] = mu, nu

    # -- shared residue conversion, one pass per operand shape ---------------
    a_slices = _grouped_residue_slices(a_primes, table, config, times, "convert_A")
    b_slices = _grouped_residue_slices(b_primes, table, config, times, "convert_B")

    # -- execution: items retired in order, tasks fanned out per item --------
    results = []
    for j in range(batch):
        counter_before = engine.counter.copy()
        c_pp = execute_plan(
            sched, plans[j], a_slices[j], b_slices[j], table, config, times=times[j]
        )
        t0 = time.perf_counter()
        c = unscale(c_pp, mus[j], nus[j], out_dtype=out_dtype)
        times[j].add("unscale", time.perf_counter() - t0)
        if not return_details:
            results.append(c)
            continue
        item_counter = engine.counter.difference(counter_before)
        item_counter.absorb(scale_counters[j])
        results.append(
            Ozaki2Result(
                c=c,
                config=config,
                mu=mus[j],
                nu=nus[j],
                phase_times=times[j],
                int8_counter=item_counter,
                num_k_blocks=plans[j].num_k_blocks,
            )
        )
    return results


def _grouped_residue_slices(
    primes: List[np.ndarray],
    table: CRTConstantTable,
    config: Ozaki2Config,
    times: List[PhaseTimes],
    phase_key: str,
) -> List[np.ndarray]:
    """Residue stacks for every item, one conversion pass per shape group.

    Items sharing a shape are stacked into a single ``(group, rows, cols)``
    array so each ``rmod`` kernel runs once per modulus for the whole group
    (the kernels are elementwise, so the stacked result is bit-identical to
    converting items one by one).  The group's conversion time is split
    evenly across its members' phase ledgers.
    """
    groups: Dict[Tuple[int, int], List[int]] = {}
    for j, x in enumerate(primes):
        groups.setdefault(x.shape, []).append(j)

    out: List[np.ndarray] = [None] * len(primes)  # type: ignore[list-item]
    for members in groups.values():
        t0 = time.perf_counter()
        if len(members) == 1:
            j = members[0]
            out[j] = residue_slices(primes[j], table, config.residue_kernel)
        else:
            stacked = np.stack([primes[j] for j in members])
            slices = residue_slices(stacked, table, config.residue_kernel)
            # slices has shape (N, group, rows, cols) -> per item (N, rows, cols)
            for pos, j in enumerate(members):
                out[j] = slices[:, pos]
        dt = (time.perf_counter() - t0) / len(members)
        for j in members:
            times[j].add(phase_key, dt)
    return out
