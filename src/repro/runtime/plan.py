"""Execution planning: decompose one emulated GEMM into independent tasks.

Ozaki scheme II turns a high-precision GEMM into ``N`` independent INT8
residue GEMMs (line 6 of Algorithm 1); with k-blocking (Section 4.3) and
output tiling each residue further splits into independent
``(k-block, m/n-tile)`` pieces.  An :class:`ExecutionPlan` enumerates that
decomposition for one problem:

* ``k_ranges`` — the inner-dimension blocks actually used.  The number of
  blocks is derived from these ranges (not from the global
  ``MAX_K_WITHOUT_BLOCKING`` constant), so a plan with blocking disabled
  always reports exactly one block.
* ``m_tiles`` / ``n_tiles`` — output tiles sized so the transient residue
  stack ``(N, m_tile, n_tile)`` respects an optional memory budget.
* ``parallelism`` — the resolved worker count for the scheduler.

Plans are pure data: building one performs no numerical work, so tests can
assert on the decomposition cheaply, and the scheduler can execute the same
plan serially or in parallel with bit-identical results.

A note on adaptive moduli selection (``num_moduli="auto"``): the count is
resolved per *plan* (per GEMM, and per item in the batched runtime), never
per k-block.  The k-blocks of one product accumulate exact integer
partials of the **same** residue system, and condition (3) — hence CRT
uniqueness — is a property of the full-``k`` sum, so every block must use
the full selection; a cheaper per-block count would make the reassembled
product ambiguous modulo the smaller ``P``.
"""

from __future__ import annotations

import dataclasses
import math
import os
from typing import Iterator, Optional, Tuple

from ..config import MAX_K_WITHOUT_BLOCKING, Ozaki2Config
from ..core.blocking import k_block_ranges
from ..errors import OverflowRiskError

__all__ = [
    "ExecutionPlan",
    "build_plan",
    "modulus_chunk_ranges",
    "plan_for_config",
    "resolve_executor",
    "resolve_parallelism",
]

Range = Tuple[int, int]

#: Workspace bytes charged per output element and per modulus: the INT64
#: partial accumulator dominates; the UINT8 residue and FP64 temporaries of
#: the accumulation phase are folded into the same per-modulus figure.
_BYTES_PER_ELEMENT_PER_MODULUS = 8 + 1 + 8

#: Workspace bytes charged per output element independent of ``N`` (the two
#: FP64 accumulators ``C1``/``C2`` and the reconstructed tile).
_BYTES_PER_ELEMENT_FIXED = 3 * 8


def resolve_parallelism(parallelism: "Optional[int] | str") -> int:
    """Resolve a parallelism knob to a concrete worker count (>= 1).

    ``None`` and ``1`` mean serial execution; ``0`` and ``"auto"`` mean one
    worker per available CPU (clamped to the host, never over-subscribing);
    any other positive integer is taken literally.
    """
    if parallelism is None:
        return 1
    if isinstance(parallelism, str):
        if parallelism.strip().lower() == "auto":
            return max(1, os.cpu_count() or 1)
        raise ValueError(f"parallelism must be an integer >= 0 or 'auto', got {parallelism!r}")
    workers = int(parallelism)
    if workers < 0:
        raise ValueError(f"parallelism must be >= 0, got {workers}")
    if workers == 0:
        return max(1, os.cpu_count() or 1)
    return workers


def resolve_executor(executor: str, workers: int) -> str:
    """Resolve an executor knob to a concrete backend name.

    ``"thread"`` and ``"process"`` are taken literally; ``"auto"`` picks the
    process backend whenever it would actually help — more than one worker
    and a platform with a usable ``multiprocessing`` start method — and the
    thread backend otherwise (a serial run gains nothing from forking, and
    the thread path has no pool start-up cost).
    """
    key = str(executor).strip().lower()
    if key not in ("thread", "process", "auto"):
        raise ValueError(
            f"executor must be 'thread', 'process' or 'auto', got {executor!r}"
        )
    if key != "auto":
        return key
    if workers <= 1:
        return "thread"
    try:
        import multiprocessing

        available = bool(multiprocessing.get_all_start_methods())
    except Exception:  # pragma: no cover - restricted platforms only
        available = False
    return "process" if available else "thread"


def modulus_chunk_ranges(num_moduli: int, workers: int) -> Tuple[Range, ...]:
    """Split the ``N`` moduli into contiguous chunks for fused engine calls.

    Each chunk becomes one :meth:`~repro.engines.base.MatrixEngine.
    matmul_stack` task.  A serial run takes the whole stack in a single
    fused call; a parallel run splits it into ``min(workers, N)``
    near-equal contiguous ranges so every worker gets one stacked call per
    k-block.  Chunk boundaries never affect the result — the residue GEMMs
    are independent exact integer products reassembled in fixed modulus
    order — so any worker count stays bit-identical.
    """
    n = int(num_moduli)
    if n <= 0:
        raise ValueError(f"num_moduli must be positive, got {n}")
    w = max(1, int(workers))
    n_chunks = min(n, w)
    base, extra = divmod(n, n_chunks)
    ranges = []
    start = 0
    for j in range(n_chunks):
        stop = start + base + (1 if j < extra else 0)
        ranges.append((start, stop))
        start = stop
    return tuple(ranges)


@dataclasses.dataclass(frozen=True)
class ExecutionPlan:
    """Decomposition of one ``(m, k, n)`` emulated GEMM into tasks.

    Attributes
    ----------
    m, k, n:
        Problem dimensions.
    num_moduli:
        Number ``N`` of residue GEMMs.
    k_ranges:
        ``(start, stop)`` blocks covering ``range(k)``; one entry unless
        k-blocking was required.
    m_tiles / n_tiles:
        ``(start, stop)`` output tiles; one entry each unless a memory
        budget forced tiling.
    parallelism:
        Resolved worker count (>= 1).  This is a recorded planning input:
        entry points construct their :class:`~repro.runtime.scheduler.
        Scheduler` from it, but a plan executed on an explicitly provided
        scheduler runs with *that* scheduler's worker count.
    """

    m: int
    k: int
    n: int
    num_moduli: int
    k_ranges: Tuple[Range, ...]
    m_tiles: Tuple[Range, ...]
    n_tiles: Tuple[Range, ...]
    parallelism: int = 1

    @property
    def num_k_blocks(self) -> int:
        """Number of inner-dimension blocks actually used."""
        return len(self.k_ranges)

    @property
    def num_tiles(self) -> int:
        """Number of independent output tiles."""
        return len(self.m_tiles) * len(self.n_tiles)

    @property
    def tasks_per_tile(self) -> int:
        """Independent residue GEMMs per output tile (``N * k-blocks``).

        This counts the ledger-visible 2-D products.  The fused kernel path
        issues them as :attr:`modulus_chunks` stacked engine calls per
        k-block instead of one call each, but records the identical op
        ledger.
        """
        return self.num_moduli * self.num_k_blocks

    @property
    def total_tasks(self) -> int:
        """Total residue GEMMs the plan will account for."""
        return self.num_tiles * self.tasks_per_tile

    @property
    def modulus_chunks(self) -> Tuple[Range, ...]:
        """Contiguous moduli ranges, one fused stacked call each.

        Derived from the plan's recorded ``parallelism``; a plan executed on
        an explicitly provided scheduler is re-chunked for *that* scheduler's
        worker count (chunking never changes the result, only the fan-out).
        """
        return modulus_chunk_ranges(self.num_moduli, self.parallelism)

    def tiles(self) -> Iterator[Tuple[Range, Range]]:
        """Iterate output tiles as ``((m_start, m_stop), (n_start, n_stop))``."""
        for m_range in self.m_tiles:
            for n_range in self.n_tiles:
                yield m_range, n_range


def _budget_tiles(
    m: int, n: int, num_moduli: int, budget_bytes: float
) -> Tuple[Tuple[Range, ...], Tuple[Range, ...]]:
    """Split the ``m x n`` output into tiles fitting ``budget_bytes``.

    The workspace for one tile is modelled as
    ``tile_elements * (N * 17 + 24)`` bytes (INT64 partials plus the
    accumulation temporaries).  Tiles are kept as square as possible so the
    per-tile GEMMs stay compute-bound; a budget below one element still
    yields 1x1 tiles rather than failing.
    """
    per_element = num_moduli * _BYTES_PER_ELEMENT_PER_MODULUS + _BYTES_PER_ELEMENT_FIXED
    tile_elements = max(1, int(budget_bytes // per_element))
    if m * n <= tile_elements:
        return ((0, m),), ((0, n),)
    side = max(1, math.isqrt(tile_elements))
    tile_m = min(m, side)
    tile_n = max(1, min(n, tile_elements // tile_m))
    m_tiles = tuple(k_block_ranges(m, tile_m))
    n_tiles = tuple(k_block_ranges(n, tile_n))
    return m_tiles, n_tiles


def build_plan(
    m: int,
    k: int,
    n: int,
    num_moduli: int,
    *,
    block_k: bool = True,
    max_block_k: int = MAX_K_WITHOUT_BLOCKING,
    memory_budget_mb: Optional[float] = None,
    parallelism: Optional[int] = 1,
) -> ExecutionPlan:
    """Build an :class:`ExecutionPlan` for one ``(m, k, n)`` problem.

    Parameters
    ----------
    m, k, n:
        Problem dimensions (all positive).
    num_moduli:
        Number of residue GEMMs ``N``.
    block_k:
        Whether k-blocking is permitted.  When False, an inner dimension
        beyond ``max_block_k`` raises
        :class:`~repro.errors.OverflowRiskError` (matching
        ``Ozaki2Config.block_k``) and the plan always has one k-block.
    max_block_k:
        Largest inner dimension per engine call (``2**17`` per Section 4.3;
        overridable so tests can exercise blocking on small problems).
    memory_budget_mb:
        Optional workspace cap in MiB driving m/n tiling.
    parallelism:
        Worker-count knob, resolved via :func:`resolve_parallelism`.
    """
    for name, value in (("m", m), ("k", k), ("n", n)):
        if int(value) <= 0:
            raise ValueError(f"{name} must be positive, got {value}")
    if int(max_block_k) <= 0:
        raise ValueError(f"max_block_k must be positive, got {max_block_k}")

    if k > max_block_k and not block_k:
        raise OverflowRiskError(
            f"k={k} exceeds {max_block_k} and k-blocking is disabled in the config"
        )
    if block_k:
        k_ranges = tuple(k_block_ranges(k, max_block_k))
    else:
        k_ranges = ((0, k),)

    if memory_budget_mb is None:
        m_tiles: Tuple[Range, ...] = ((0, m),)
        n_tiles: Tuple[Range, ...] = ((0, n),)
    else:
        m_tiles, n_tiles = _budget_tiles(m, n, num_moduli, float(memory_budget_mb) * 2**20)

    return ExecutionPlan(
        m=int(m),
        k=int(k),
        n=int(n),
        num_moduli=int(num_moduli),
        k_ranges=k_ranges,
        m_tiles=m_tiles,
        n_tiles=n_tiles,
        parallelism=resolve_parallelism(parallelism),
    )


def plan_for_config(
    m: int,
    k: int,
    n: int,
    config: Ozaki2Config,
    max_block_k: int = MAX_K_WITHOUT_BLOCKING,
) -> ExecutionPlan:
    """Build the plan implied by an :class:`~repro.config.Ozaki2Config`."""
    return build_plan(
        m,
        k,
        n,
        config.num_moduli,
        block_k=config.block_k,
        max_block_k=max_block_k,
        memory_budget_mb=config.memory_budget_mb,
        parallelism=config.parallelism,
    )
