"""Worker-pool scheduler executing :class:`~repro.runtime.plan.ExecutionPlan`s.

The ``N`` residue GEMMs of Ozaki scheme II (and their k-blocks) are
independent integer products, so they can run on any number of workers in
any order and still reconstruct bit-identically: every engine call is exact
in INT32/INT64, the k-block partial sums are exact integer additions, and
the only floating-point accumulation (lines 8–9 of Algorithm 1) is applied
per output tile in a fixed modulus order by exactly the code the serial
path uses.  Under the fused kernel path (``config.fused_kernels``, the
default) a task is a contiguous *modulus chunk* of the residue stack — one
stacked BLAS-backed engine call — rather than a single modulus; chunk
boundaries follow the executing scheduler's worker count and never affect
the value.  The scheduler therefore guarantees

    ``execute_plan(parallelism=W) == execute_plan(parallelism=1)``  (bitwise)

for every worker count ``W`` — and for every executor backend.

Two backends share that contract:

* ``executor="thread"`` — a ``ThreadPoolExecutor``.  Each task is one large
  NumPy matmul, which releases the GIL, so the BLAS calls scale; residue
  conversion and CRT accumulation stay serialised under the GIL.
* ``executor="process"`` — a persistent pool of worker processes
  (:mod:`repro.runtime.process`).  Residue stacks live in shared memory
  (:mod:`repro.runtime.shm`), workers write partial ``c_stack`` chunks and
  reconstructed rows in place, and conversion/accumulation parallelise
  too.  ``executor="auto"`` picks processes whenever ``workers > 1``.

Engine ledgers: thread workers lazily receive ``engine.clone()`` (same
settings, fresh :class:`~repro.engines.base.OpCounter`) and
:meth:`Scheduler.merge_counters` folds the clone ledgers back; process
workers ship a per-task counter delta home with every result, absorbed as
waves complete — including failed tasks', so the ledger stays faithful on
error paths.  Either way the op accounting is indistinguishable from a
serial run.
"""

from __future__ import annotations

import logging
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

from .. import faults
from ..analysis.lockorder import named_lock
from ..config import Ozaki2Config, ResidueKernel
from ..core.accumulation import accumulate_residue_products, reconstruct_crt
from ..core.conversion import residue_slices, truncate_scaled
from ..crt.constants import CRTConstantTable
from ..engines.base import MatrixEngine
from ..result import PhaseTimes
from ..engines.int8 import Int8MatrixEngine
from .plan import ExecutionPlan, modulus_chunk_ranges, resolve_executor, resolve_parallelism
from .process import (
    _TASK_HANDLERS,
    ProcessPool,
    WorkerError,
    WorkerTaskError,
    execute_plan_process,
    table_spec,
)
from .shm import SharedArray

__all__ = ["Scheduler", "execute_plan"]

_LOG = logging.getLogger(__name__)

T = TypeVar("T")
R = TypeVar("R")


class Scheduler:
    """Reusable worker pool mapping tasks over per-worker engine clones.

    Parameters
    ----------
    parallelism:
        Worker-count knob (``None``/``1`` = serial in the calling thread,
        ``0`` = one worker per CPU, else literal).
    engine:
        Primary matrix engine.  The serial path uses it directly; parallel
        workers use clones whose ledgers are merged back into it.
    executor:
        ``"thread"`` (default), ``"process"``, or ``"auto"`` (processes
        whenever more than one worker was requested).  Serial schedulers
        never start a pool of either kind.

    A scheduler may be shared across many GEMMs (this is how the batched API
    amortises pool start-up); use it as a context manager or call
    :meth:`close` to shut the pool down.  Worker failures do not poison the
    scheduler — they are *survived*, with every recovery recorded in the
    op-ledger's ``fault_events`` histogram (never silently):

    * a task raising inside a worker is retried up to ``max_task_retries``
      times (``task_retry``) before :class:`WorkerTaskError` surfaces;
    * a worker *process* dying tears the pool down (``pool_failure``), and
      the whole dispatch wave — whose un-absorbed counters died with it —
      is re-executed on a rebuilt pool (``wave_retry``).  Wave re-execution
      is safe by construction: every task writes an idempotent disjoint
      slice of shared output, and the aborted wave's counters are
      discarded, so the retried ledger equals the fault-free one;
    * after more than ``max_pool_rebuilds`` pool failures the scheduler
      *degrades*: it stops using processes and runs the remaining tasks
      inline on the parent engine (``degraded_to_thread``), preserving
      bit-identity at thread-path speed.  The degradation is recorded in
      the ledger, reported by :meth:`health`, and visible on
      :attr:`Result.degraded <repro.result.Result.degraded>`.
    """

    def __init__(
        self,
        parallelism: Optional[int] = None,
        engine: Optional[MatrixEngine] = None,
        executor: str = "thread",
        max_pool_rebuilds: int = 2,
        max_task_retries: int = 1,
    ) -> None:
        self.engine = engine if engine is not None else Int8MatrixEngine()
        self.workers = resolve_parallelism(parallelism)
        self.executor = resolve_executor(executor, self.workers)
        self.max_pool_rebuilds = int(max_pool_rebuilds)
        self.max_task_retries = int(max_task_retries)
        self.degraded = False
        self.degraded_reason: Optional[str] = None
        self._pool_failures = 0
        self._pool: Optional[ThreadPoolExecutor] = None
        self._process_pool: Optional[ProcessPool] = None
        self._local = threading.local()
        self._clones: List[MatrixEngine] = []
        self._clones_lock = named_lock("runtime.scheduler._clones_lock")
        #: Shared-memory segments this scheduler owns, keyed by ``id()`` of
        #: the parent-side view handed to callers (conversion outputs,
        #: adopted operands).  Lets ``execute_plan`` recognise an operand
        #: that already lives in shared memory and skip the copy.
        self._shared: Dict[int, SharedArray] = {}
        self._shared_lock = named_lock("runtime.scheduler._shared_lock")
        self._closed = False

    # -- lifecycle -----------------------------------------------------------
    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def close(self) -> None:
        """Merge outstanding worker ledgers, shut pools down, free segments.

        Idempotent, and safe to call after a worker error: whatever ledgers
        and shared-memory segments are still outstanding are merged and
        unlinked regardless of how the last dispatch ended.
        """
        if self._closed:
            return
        self.merge_counters()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._teardown_process_pool()
        self.release_shared()
        self._closed = True

    @property
    def is_parallel(self) -> bool:
        """True when tasks run on pool workers rather than inline."""
        return self.workers > 1

    @property
    def uses_processes(self) -> bool:
        """True when parallel tasks run on worker *processes*.

        A scheduler that degraded after repeated pool failures reports
        False: from that point on it routes everything through the
        thread/serial path, which is bit-identical by construction.
        """
        return self.executor == "process" and self.workers > 1 and not self.degraded

    def health(self) -> Dict[str, Any]:
        """Operational snapshot: executor, degradation state, pool failures."""
        return {
            "executor": self.executor,
            "workers": self.workers,
            "degraded": self.degraded,
            "degraded_reason": self.degraded_reason,
            "pool_failures": self._pool_failures,
        }

    # -- engine management ---------------------------------------------------
    def _worker_engine(self) -> MatrixEngine:
        engine = getattr(self._local, "engine", None)
        if engine is None:
            engine = self.engine.clone()
            self._local.engine = engine
            with self._clones_lock:
                self._clones.append(engine)
        return engine

    def merge_counters(self) -> None:
        """Fold every worker clone's ledger into the primary engine's.

        Clone ledgers are reset after merging, so calling this repeatedly
        (e.g. between items of a batch, or on an error path) never
        double-counts.  Must not be called while tasks are in flight.
        Process workers need no equivalent: their per-task counter deltas
        are absorbed as each dispatch wave completes.
        """
        with self._clones_lock:
            for clone in self._clones:
                self.engine.counter.absorb(clone.counter)
                clone.counter.reset()

    # -- task execution ------------------------------------------------------
    def map(self, fn: Callable[[MatrixEngine, T], R], items: Sequence[T]) -> List[R]:
        """Apply ``fn(engine, item)`` to every item, preserving input order.

        Serial schedulers run inline on the primary engine; parallel ones
        fan out over the thread pool with per-thread engine clones.  (The
        process backend does not route through ``map`` — its tasks are the
        shared-memory descriptors of :meth:`run_process_tasks`.)
        """
        if self._closed:
            raise RuntimeError("scheduler has been closed")
        if not self.is_parallel:
            return [fn(self.engine, item) for item in items]
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-runtime"
            )
        return list(self._pool.map(lambda item: fn(self._worker_engine(), item), items))

    # -- process backend -----------------------------------------------------
    def _ensure_process_pool(self) -> ProcessPool:
        if self._closed:
            raise RuntimeError("scheduler has been closed")
        if self._process_pool is None:
            plan = faults.active_plan()
            fault_spec = None if plan is None else (plan.spec(), plan.seed)
            try:
                self._process_pool = ProcessPool(
                    self.workers, self.engine, fault_spec=fault_spec
                )
            except (faults.InjectedFault, OSError) as exc:
                # Pool construction failing (fork EAGAIN, pid exhaustion, or
                # the ``pool.spawn`` injection site) is a pool failure like
                # any other: surface it as WorkerError so the dispatch loop
                # applies the same bounded rebuild-or-degrade policy.
                raise WorkerError(f"failed to start process pool: {exc}") from exc
        return self._process_pool

    def _teardown_process_pool(self, hard: bool = False) -> None:
        pool = self._process_pool
        self._process_pool = None
        if pool is not None:
            if hard:
                pool.terminate()
            else:
                pool.close()

    def _degrade(self, reason: str) -> None:
        """Permanently stop using worker processes; record it everywhere."""
        self.degraded = True
        self.degraded_reason = reason
        self.engine.counter.record_fault_event("degraded_to_thread")
        _LOG.warning(
            "scheduler degraded executor=process -> thread after %d pool "
            "failure(s): %s",
            self._pool_failures,
            reason,
        )

    def _run_tasks_inline(
        self, tasks: Sequence[Tuple[str, Dict[str, Any]]]
    ) -> List[Any]:
        """Degraded path: run process-task payloads on the parent engine.

        The handlers operate on the same shared-memory / mmap descriptors
        the workers would have attached, and the parent engine records the
        identical op totals the absorbed worker deltas would have
        contributed — so mid-plan degradation changes neither the value nor
        the work counters of the run.
        """
        return [_TASK_HANDLERS[kind](self.engine, payload) for kind, payload in tasks]

    def run_process_tasks(self, tasks: Sequence[Tuple[str, Dict[str, Any]]]) -> List[Any]:
        """Dispatch one wave of tasks to the worker processes, resiliently.

        Absorbs every returned :class:`~repro.engines.base.OpCounter` delta
        into the primary engine — for failed tasks too, so partial work
        stays on the ledger.  Failed tasks are retried (``task_retry`` in
        the ledger) before :class:`WorkerTaskError` surfaces; a dead worker
        process triggers a bounded pool rebuild + wave re-execution
        (``pool_failure`` / ``wave_retry``), degrading to inline execution
        (``degraded_to_thread``) once ``max_pool_rebuilds`` is exceeded.
        """
        task_list = list(tasks)
        if self.degraded:
            return self._run_tasks_inline(task_list)
        return self._run_wave(task_list, self.max_task_retries)

    def _run_wave(
        self, tasks: List[Tuple[str, Dict[str, Any]]], retries_left: int
    ) -> List[Any]:
        while True:
            try:
                pool = self._ensure_process_pool()
                results = pool.run(tasks)
                break
            except WorkerError as exc:
                # The aborted wave's counters died un-absorbed with the
                # pool, so re-executing every task keeps the ledger's work
                # totals exactly equal to a fault-free run; the recovery
                # itself is what fault_events records.
                self._teardown_process_pool(hard=True)
                self._pool_failures += 1
                self.engine.counter.record_fault_event("pool_failure")
                if self._pool_failures > self.max_pool_rebuilds:
                    self._degrade(str(exc))
                    return self._run_tasks_inline(tasks)
                self.engine.counter.record_fault_event("wave_retry")
                _LOG.warning(
                    "rebuilding process pool (failure %d/%d) and re-running "
                    "a %d-task wave: %s",
                    self._pool_failures,
                    self.max_pool_rebuilds,
                    len(tasks),
                    exc,
                )
        values: List[Any] = [None] * len(tasks)
        failed: List[int] = []
        failures: List[str] = []
        for index, (ok, value, counter) in enumerate(results):
            if counter is not None:
                self.engine.counter.absorb(counter)
            if ok:
                values[index] = value
            else:
                failed.append(index)
                failures.append(str(value))
        if failed:
            if retries_left <= 0:
                raise WorkerTaskError(
                    f"{len(failures)} runtime worker task(s) failed; first "
                    f"traceback:\n{failures[0]}"
                )
            # Task writes are idempotent disjoint-slice assignments, so
            # re-running just the failed subset cannot corrupt the output;
            # the failed attempts' partial counters were absorbed above, so
            # the retry is additional *accounted* work.
            self.engine.counter.record_fault_event("task_retry", len(failed))
            _LOG.warning(
                "retrying %d failed runtime task(s) (%d retr%s left); first "
                "traceback:\n%s",
                len(failed),
                retries_left,
                "y" if retries_left == 1 else "ies",
                failures[0],
            )
            retried = self._run_wave([tasks[i] for i in failed], retries_left - 1)
            for index, value in zip(failed, retried, strict=True):
                values[index] = value
        return values

    # -- shared-memory registry ----------------------------------------------
    def adopt_shared(self, handle: SharedArray) -> np.ndarray:
        """Take ownership of a segment; return the parent-side view.

        The view is recognised by :meth:`shared_descriptor` (so plan
        execution passes it to workers without copying) and the segment is
        unlinked by :meth:`release` / :meth:`close`.
        """
        with self._shared_lock:
            self._shared[id(handle.array)] = handle
        return handle.array

    def shared_descriptor(self, arr: np.ndarray) -> Optional[Tuple[Any, ...]]:
        """The worker descriptor for a view this scheduler shares, else None."""
        with self._shared_lock:
            handle = self._shared.get(id(arr))
        if handle is None:
            return None
        return ("shm", *handle.descriptor)

    def release(self, arr: Optional[np.ndarray]) -> None:
        """Unlink the segment behind ``arr`` if this scheduler owns one.

        A no-op for ``None`` and for arrays that are not scheduler-shared,
        so callers can release unconditionally.
        """
        if arr is None:
            return
        with self._shared_lock:
            handle = self._shared.pop(id(arr), None)
        if handle is not None:
            handle.close()

    def release_shared(self) -> None:
        """Unlink every segment still registered (close-time sweep)."""
        with self._shared_lock:
            handles = list(self._shared.values())
            self._shared.clear()
        for handle in handles:
            handle.close()

    # -- residue conversion ---------------------------------------------------
    def convert_residues_inline(
        self,
        x: np.ndarray,
        scale: Optional[np.ndarray],
        side: str,
        table: CRTConstantTable,
        config: Ozaki2Config,
    ) -> np.ndarray:
        """The serial conversion pipeline (also the shm-failure fallback)."""
        x_prime = x if scale is None else truncate_scaled(x, scale, side)
        return residue_slices(
            x_prime, table, config.residue_kernel, single_pass=config.fused_kernels
        )

    def convert_residues(
        self,
        x: np.ndarray,
        scale: Optional[np.ndarray],
        side: str,
        table: CRTConstantTable,
        config: Ozaki2Config,
    ) -> np.ndarray:
        """Truncate-scale ``x`` (optional) and convert to INT8 residues.

        The thread/serial path runs the exact inline pipeline
        (:func:`~repro.core.conversion.truncate_scaled` +
        :func:`~repro.core.conversion.residue_slices`).  Under the process
        backend the rows are banded across workers — both steps are
        elementwise in the rows, so the result is bitwise identical — and
        the INT8 stack comes back as a scheduler-owned shared-memory view
        that plan execution hands to workers zero-copy.  Callers should
        :meth:`release` the returned stack when done (close() sweeps any
        stragglers).
        """
        if not self.uses_processes or x.ndim != 2 or x.shape[0] < 2:
            return self.convert_residues_inline(x, scale, side, table, config)
        try:
            source = SharedArray.copy_from(np.ascontiguousarray(x, dtype=np.float64))
        except (MemoryError, faults.InjectedFault) as exc:
            # Shared memory exhausted (or the ``shm.alloc`` site fired):
            # fall back to the inline conversion, which needs no segments
            # and is bit-identical by construction.
            self.engine.counter.record_fault_event("shm_fallback")
            _LOG.warning("shared-memory conversion fell back inline: %s", exc)
            return self.convert_residues_inline(x, scale, side, table, config)
        try:
            out = SharedArray.create((table.num_moduli,) + x.shape, np.int8)
        except (MemoryError, faults.InjectedFault) as exc:
            self.engine.counter.record_fault_event("shm_fallback")
            _LOG.warning("shared-memory conversion fell back inline: %s", exc)
            source.close()
            return self.convert_residues_inline(x, scale, side, table, config)
        try:
            spec = table_spec(table)
            tasks = []
            for r0, r1 in modulus_chunk_ranges(x.shape[0], self.workers):
                if scale is None:
                    scale_band = None
                elif side == "left":
                    # Row scales band with the rows; column scales ("right")
                    # apply whole to every band.
                    scale_band = np.ascontiguousarray(scale[r0:r1])
                else:
                    scale_band = np.ascontiguousarray(scale)
                tasks.append(
                    (
                        "convert",
                        {
                            "x": ("shm", *source.descriptor),
                            "out": ("shm", *out.descriptor),
                            "rows": (r0, r1),
                            "scale": scale_band,
                            "side": side,
                            "table": spec,
                            "kernel": config.residue_kernel,
                            "single_pass": config.fused_kernels,
                        },
                    )
                )
            self.run_process_tasks(tasks)
        except BaseException:
            out.close()
            raise
        finally:
            source.close()
        return self.adopt_shared(out)


def execute_plan(
    scheduler: Scheduler,
    plan: ExecutionPlan,
    a_slices: np.ndarray,
    b_slices: np.ndarray,
    table: CRTConstantTable,
    config: Ozaki2Config,
    times: "PhaseTimes | None" = None,
    trusted: bool = False,
) -> np.ndarray:
    """Run lines 6–11 of Algorithm 1 under a plan; return ``C''`` (float64).

    Parameters
    ----------
    scheduler:
        Worker pool (serial, thread- or process-parallel — the result is
        bit-identical across all of them).
    plan:
        Task decomposition from :func:`~repro.runtime.plan.build_plan`.
    a_slices / b_slices:
        Full INT8 residue stacks of shape ``(N, m, k)`` / ``(N, k, n)``.
        Under the process backend these may be scheduler-shared views (no
        copy), memory-maps (streamed out-of-core), or plain arrays (copied
        into a transient segment for the call).
    table:
        CRT constant table matching ``config``.
    config:
        Configuration.  Selects the ``mod`` kernel of the accumulation and,
        via ``config.fused_kernels``, whether tasks are modulus *chunks* of
        the stack (one fused :meth:`~repro.engines.base.MatrixEngine.
        matmul_stack` call each — serial runs take a single fused call per
        tile and k-block, parallel runs split the stack across workers) or
        the per-modulus 2-D calls of the pre-fusion path.  Both are
        bit-identical and record identical op ledgers.
    times:
        Optional :class:`~repro.core.gemm.PhaseTimes` receiving per-phase
        seconds under the keys ``matmul`` / ``accumulate`` / ``reconstruct``.
        Wall-clock is attributed per stage, so under parallelism the
        ``matmul`` entry is the elapsed (not summed per-worker) time.
    trusted:
        Declare the residue stacks as produced by this library's own
        conversion (INT8, in range by construction), letting the fused path
        skip the engine's per-call validation sweeps.  Off by default so
        external callers handing in arbitrary stacks keep full validation.

    Tiles are processed one at a time — bounding the transient workspace to
    a single ``(N, m_tile, n_tile)`` stack, which is what the memory budget
    promises — while the engine calls inside each tile fan out across the
    pool.
    """
    n_mod = plan.num_moduli
    if a_slices.shape != (n_mod, plan.m, plan.k):
        raise ValueError(
            f"A residue stack has shape {a_slices.shape}, plan expects "
            f"{(n_mod, plan.m, plan.k)}"
        )
    if b_slices.shape != (n_mod, plan.k, plan.n):
        raise ValueError(
            f"B residue stack has shape {b_slices.shape}, plan expects "
            f"{(n_mod, plan.k, plan.n)}"
        )

    if scheduler.uses_processes:
        try:
            return execute_plan_process(
                scheduler, plan, a_slices, b_slices, table, config, times, trusted
            )
        except (MemoryError, faults.InjectedFault) as exc:
            # Shared-memory allocation failed in the parent (or the
            # ``shm.alloc`` site fired) before/between dispatch waves: the
            # plan has not produced any output yet this tile, so fall
            # through to the thread path — bit-identical by construction —
            # rather than failing the whole GEMM.  Recorded, never silent.
            scheduler.engine.counter.record_fault_event("shm_fallback")
            _LOG.warning(
                "process-backend plan execution fell back to the thread "
                "path: %s",
                exc,
            )

    blocked = plan.num_k_blocks > 1
    fused = config.fused_kernels
    if fused:
        # Modulus chunks sized for the worker count actually executing the
        # plan: the plan's own decomposition when the scheduler matches its
        # recorded parallelism (the entry points always construct the
        # scheduler from it), re-chunked for an externally supplied
        # scheduler with a different worker count.  Tasks are ordered
        # chunk-major so the unblocked fast path can reassemble the stack
        # by concatenation; chunking never affects the value.
        if scheduler.workers == plan.parallelism:
            chunks = plan.modulus_chunks
        else:
            chunks = modulus_chunk_ranges(n_mod, scheduler.workers)
        tasks = [
            (lo, hi, start, stop)
            for lo, hi in chunks
            for start, stop in plan.k_ranges
        ]
    else:
        tasks = [
            (i, i + 1, start, stop)
            for i in range(n_mod)
            for start, stop in plan.k_ranges
        ]
    c_pp = np.empty((plan.m, plan.n), dtype=np.float64)

    try:
        for (m0, m1), (n0, n1) in plan.tiles():

            def _matmul(engine: MatrixEngine, task, _m0=m0, _m1=m1, _n0=n0, _n1=n1):
                lo, hi, start, stop = task
                if fused:
                    return engine.matmul_stack(
                        a_slices[lo:hi, _m0:_m1, start:stop],
                        b_slices[lo:hi, start:stop, _n0:_n1],
                        trusted=trusted,
                    )
                return engine.matmul(
                    a_slices[lo, _m0:_m1, start:stop], b_slices[lo, start:stop, _n0:_n1]
                )

            t0 = time.perf_counter()
            partials = scheduler.map(_matmul, tasks)
            t1 = time.perf_counter()

            if blocked:
                # Exact INT64 accumulation over k-blocks, in ascending-k order
                # (the order is irrelevant to the value — integer addition is
                # associative — but keeping it fixed documents the determinism).
                c_stack = np.zeros((n_mod, m1 - m0, n1 - n0), dtype=np.int64)
                for (lo, hi, _, _), partial in zip(tasks, partials, strict=True):
                    if fused:
                        c_stack[lo:hi] += partial.astype(np.int64)
                    else:
                        c_stack[lo] += partial.astype(np.int64)
            elif fused:
                # One k-block: tasks are the chunks in modulus order already.
                c_stack = partials[0] if len(partials) == 1 else np.concatenate(partials)
            else:
                c_stack = np.asarray(partials)

            use_mulhi = (
                config.residue_kernel is ResidueKernel.FAST_FMA
                and c_stack.dtype == np.int32
            )
            c1, c2 = accumulate_residue_products(
                c_stack, table, use_mulhi=use_mulhi, vectorized=fused
            )
            t2 = time.perf_counter()
            c_pp[m0:m1, n0:n1] = reconstruct_crt(c1, c2, table)
            t3 = time.perf_counter()

            if times is not None:
                times.add("matmul", t1 - t0)
                times.add("accumulate", t2 - t1)
                times.add("reconstruct", t3 - t2)
    finally:
        # Merge on the error path too, so a failing task never strands the
        # completed tasks' ledgers in the clones.
        scheduler.merge_counters()
    return c_pp
