"""Process-parallel execution backend (the "break the GIL" path).

The thread scheduler only scales the BLAS call itself: residue conversion,
CRT accumulation and reconstruction are NumPy ufunc chains that hold the
GIL, so ``runtime_scaling.txt`` historically showed 2 workers ≈ 1.0x.  This
module dispatches the same task decomposition to a persistent pool of
*worker processes* instead:

* operands travel through named shared memory (:mod:`repro.runtime.shm`) or
  read-only ``mmap`` descriptors — matrices are never pickled in either
  direction, only small task dicts cross the pipe;
* workers write partial ``c_stack`` chunks and reconstructed output rows
  straight into shared buffers;
* every task ships its per-task :class:`~repro.engines.base.OpCounter`
  delta back to the parent, which absorbs them into the primary engine so
  the merged ledger is indistinguishable from a serial run.

Bit-identity is preserved by construction: the INT8 residue products are
exact integers whatever process computes them, k-block partial sums are
exact integer additions, and the accumulation/reconstruction applied to a
row band of a tile is elementwise in the output positions — so splitting a
tile into row bands reproduces the serial float64 result bitwise (the same
argument that makes the thread path worker-count invariant).

Failure semantics: a task that raises inside a worker reports its traceback
and leaves the pool alive (:class:`WorkerTaskError`); a worker *process*
dying (OOM kill, segfault) tears the pool down (:class:`WorkerError`) and
the owning :class:`~repro.runtime.scheduler.Scheduler` lazily restarts it
on the next dispatch.
"""

from __future__ import annotations

import math
import mmap
import os
import pickle
import time
import traceback
from contextlib import ExitStack
from queue import Empty
from typing import Any, Dict, List, Optional, Sequence, Tuple

import multiprocessing
import numpy as np

from .. import faults
from ..core.accumulation import accumulate_residue_products, reconstruct_crt
from ..core.conversion import residue_slices, truncate_scaled
from ..crt.constants import CRTConstantTable, build_constant_table
from ..engines.base import MatrixEngine, OpCounter
from .shm import SharedArray, attach_view

__all__ = [
    "ProcessPool",
    "WorkerError",
    "WorkerTaskError",
    "execute_plan_process",
    "operand_descriptor",
    "preferred_context",
]

#: Tagged wire descriptor of one operand: ``("shm", name, shape, dtype)``
#: for a shared-memory segment, ``("mmap", path, shape, dtype, offset)``
#: for an on-disk array opened read-only in the worker (out-of-core tiles).
OperandDescriptor = Tuple[Any, ...]

#: Table wire spec ``(num_moduli, precision_bits, moduli)`` — workers rebuild
#: the table from the process-local cache instead of unpickling megabytes.
TableSpec = Tuple[int, int, Tuple[int, ...]]


class WorkerError(RuntimeError):
    """A worker *process* died; the pool had to be torn down."""


class WorkerTaskError(RuntimeError):
    """A task raised inside a worker; the pool itself is still usable."""


def preferred_start_method() -> str:
    """The start method for runtime workers: ``fork`` when the platform has
    it (no re-import cost, workers inherit warmed NumPy), else ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def preferred_context() -> multiprocessing.context.BaseContext:
    """The multiprocessing context for :func:`preferred_start_method`."""
    return multiprocessing.get_context(preferred_start_method())


def table_spec(table: CRTConstantTable) -> TableSpec:
    """Compress a constant table to the tuple workers rebuild it from."""
    return (table.num_moduli, table.precision_bits, tuple(table.moduli))


def _table_from_spec(spec: TableSpec) -> CRTConstantTable:
    num_moduli, precision_bits, moduli = spec
    # build_constant_table is itself cached per (moduli, bits) pair, so each
    # worker pays the construction cost at most once per table.
    return build_constant_table(num_moduli, precision_bits, moduli=moduli)


def operand_descriptor(
    arr: np.ndarray,
) -> Tuple[OperandDescriptor, Optional[SharedArray]]:
    """Describe ``arr`` for zero-copy worker access.

    Returns ``(descriptor, temp)`` where ``temp`` is a temporary
    :class:`SharedArray` the caller must close after the dispatch (``None``
    when the array was already worker-reachable).  Root memory-maps — the
    out-of-core residue stacks — are described by filename/offset so each
    worker pages only the tiles it touches; anything else is copied into a
    fresh segment once.
    """
    if (
        isinstance(arr, np.memmap)
        and isinstance(arr.base, mmap.mmap)
        and arr.flags["C_CONTIGUOUS"]
        and arr.filename is not None
    ):
        return (
            ("mmap", str(arr.filename), tuple(arr.shape), arr.dtype.str, int(arr.offset)),
            None,
        )
    temp = SharedArray.copy_from(np.ascontiguousarray(arr))
    return ("shm", *temp.descriptor), temp


def _open_operand(desc: OperandDescriptor, stack: ExitStack) -> np.ndarray:
    """Worker-side: materialise a descriptor as a NumPy view."""
    if desc[0] == "shm":
        return stack.enter_context(attach_view(desc[1:]))
    if desc[0] == "mmap":
        # The ``tile.read`` injection site models an out-of-core tile whose
        # backing file fails to page in (disk error, truncated stage file).
        faults.raise_if("tile.read")
        _, path, shape, dtype_str, offset = desc
        return np.memmap(
            path,
            dtype=np.dtype(dtype_str),
            mode="r",
            offset=offset,
            shape=tuple(shape),
            order="C",
        )
    raise ValueError(f"unknown operand descriptor kind {desc[0]!r}")


# -- worker-side task handlers --------------------------------------------


def _task_matmul(engine: MatrixEngine, p: Dict[str, Any]) -> None:
    """One modulus chunk of one tile: INT8 products for every k-block.

    Replays exactly the engine calls the thread path makes for this chunk
    (one ``matmul_stack`` per k-block when fused, one 2-D ``matmul`` when
    not), accumulating k-block partials in exact INT64 before writing the
    chunk's rows of the shared ``c_stack``.
    """
    with ExitStack() as stack:
        a = _open_operand(p["a"], stack)
        b = _open_operand(p["b"], stack)
        c = _open_operand(p["c"], stack)
        lo, hi = p["chunk"]
        m0, m1 = p["m_range"]
        n0, n1 = p["n_range"]
        fused = p["fused"]
        k_ranges: Sequence[Tuple[int, int]] = p["k_ranges"]
        blocked = len(k_ranges) > 1
        acc: Optional[np.ndarray] = None
        for start, stop in k_ranges:
            if fused:
                partial = engine.matmul_stack(
                    a[lo:hi, m0:m1, start:stop],
                    b[lo:hi, start:stop, n0:n1],
                    trusted=p["trusted"],
                )
            else:
                partial = engine.matmul(
                    a[lo, m0:m1, start:stop], b[lo, start:stop, n0:n1]
                )
            if not blocked:
                acc = partial
            elif acc is None:
                acc = partial.astype(np.int64)
            else:
                acc += partial.astype(np.int64)
        if fused:
            c[lo:hi] = acc
        else:
            c[lo] = acc


def _task_accumulate(engine: MatrixEngine, p: Dict[str, Any]) -> Tuple[float, float]:
    """One row band of one tile: CRT accumulation + reconstruction.

    Reads the shared ``c_stack`` rows ``[r0, r1)``, writes the reconstructed
    float64 rows into the shared output at the tile's offset, and returns
    the measured ``(accumulate_seconds, reconstruct_seconds)`` so the parent
    can split the stage's wall-clock between the two phases.
    """
    with ExitStack() as stack:
        c = _open_operand(p["c"], stack)
        out = _open_operand(p["out"], stack)
        r0, r1 = p["rows"]
        m0, _ = p["m_range"]
        n0, n1 = p["n_range"]
        table = _table_from_spec(p["table"])
        t0 = time.perf_counter()
        c1, c2 = accumulate_residue_products(
            c[:, r0:r1, :],
            table,
            use_mulhi=p["use_mulhi"],
            vectorized=p["vectorized"],
        )
        t1 = time.perf_counter()
        out[m0 + r0 : m0 + r1, n0:n1] = reconstruct_crt(c1, c2, table)
        t2 = time.perf_counter()
        return (t1 - t0, t2 - t1)


def _task_convert(engine: MatrixEngine, p: Dict[str, Any]) -> None:
    """One row band of one operand: truncate-scale + INT8 residue slices.

    Both steps are elementwise in the rows, so banding reproduces the
    full-matrix conversion bitwise.
    """
    with ExitStack() as stack:
        x = _open_operand(p["x"], stack)
        out = _open_operand(p["out"], stack)
        r0, r1 = p["rows"]
        band = x[r0:r1]
        scale = p["scale"]
        if scale is not None:
            band = truncate_scaled(band, scale, p["side"])
        table = _table_from_spec(p["table"])
        out[:, r0:r1] = residue_slices(
            band, table, p["kernel"], single_pass=p["single_pass"]
        )


_TASK_HANDLERS = {
    "matmul": _task_matmul,
    "accumulate": _task_accumulate,
    "convert": _task_convert,
}


def _worker_main(
    task_queue: "multiprocessing.queues.Queue",
    result_queue: "multiprocessing.queues.Queue",
    engine_bytes: bytes,
    start_method: str,
    fault_spec: Optional[Tuple[str, int]] = None,
) -> None:
    """Worker loop: pull tasks until the ``None`` sentinel, report results.

    Every result carries the task's :class:`OpCounter` delta (the engine
    counter is reset before each task) — including failed tasks, so partial
    work stays accounted for in the merged ledger.

    ``fault_spec`` is the parent's armed ``(spec_string, seed)`` fault plan,
    if any: the worker installs its own freshly-counted copy (counters are
    per process), and explicitly disarms otherwise so ``fork`` workers do
    not inherit the parent's live plan object.
    """
    from .shm import configure_worker

    configure_worker(start_method)
    if fault_spec is not None:
        faults.install(faults.FaultPlan.parse(fault_spec[0], seed=fault_spec[1]))
    else:
        faults.uninstall()
    engine: MatrixEngine = pickle.loads(engine_bytes)
    while True:
        task = task_queue.get()
        if task is None:
            return
        if faults.should_fire("worker.crash"):
            # Simulate an OOM kill / segfault: die without reporting.  The
            # parent's collection loop notices the dead process and raises
            # WorkerError, exactly as for the real thing.
            os._exit(3)
        task_id, kind, payload = task
        engine.counter.reset()
        try:
            faults.raise_if("worker.task_error")
            value = _TASK_HANDLERS[kind](engine, payload)
            ok, report = True, value
        except Exception:
            ok, report = False, traceback.format_exc()
        # Snapshot the counter: Queue.put serialises on a feeder thread,
        # which may run *after* the next task's reset() — shipping the live
        # counter object would race away most of the ledger.
        result_queue.put((task_id, ok, report, engine.counter.copy()))


class ProcessPool:
    """A persistent pool of runtime worker processes.

    Workers are started once (daemonic, so an aborted parent never strands
    them) with a pickled clone of the scheduler's engine; tasks and results
    travel over a pair of queues.  :meth:`run` is strictly synchronous — one
    dispatch wave at a time — which is all the tile-at-a-time executor
    needs.
    """

    def __init__(
        self,
        workers: int,
        engine: MatrixEngine,
        fault_spec: Optional[Tuple[str, int]] = None,
    ) -> None:
        # The ``pool.spawn`` injection site models process creation failing
        # outright (fork EAGAIN, pid exhaustion) — before any worker starts.
        faults.raise_if("pool.spawn")
        self.workers = int(workers)
        self.start_method = preferred_start_method()
        self._ctx = multiprocessing.get_context(self.start_method)
        self._tasks: "multiprocessing.queues.Queue" = self._ctx.Queue()
        self._results: "multiprocessing.queues.Queue" = self._ctx.Queue()
        self._next_id = 0
        self._closed = False
        engine_bytes = pickle.dumps(engine.clone())
        self._procs = [
            self._ctx.Process(
                target=_worker_main,
                args=(
                    self._tasks,
                    self._results,
                    engine_bytes,
                    self.start_method,
                    fault_spec,
                ),
                name=f"repro-runtime-{i}",
                daemon=True,
            )
            for i in range(self.workers)
        ]
        for proc in self._procs:
            proc.start()

    @property
    def closed(self) -> bool:
        return self._closed

    def run(
        self, tasks: Sequence[Tuple[str, Dict[str, Any]]]
    ) -> List[Tuple[bool, Any, OpCounter]]:
        """Dispatch one wave of ``(kind, payload)`` tasks; collect in order.

        Task-level exceptions are *returned* (``ok=False`` with the worker
        traceback as the value) so the caller can absorb the counters of the
        tasks that did succeed before raising.  A worker process dying
        mid-wave raises :class:`WorkerError` — the pool is no longer
        coherent and must be closed.
        """
        if self._closed:
            raise RuntimeError("process pool has been closed")
        ids = []
        for kind, payload in tasks:
            task_id = self._next_id
            self._next_id += 1
            ids.append(task_id)
            self._tasks.put((task_id, kind, payload))
        collected: Dict[int, Tuple[bool, Any, OpCounter]] = {}
        while len(collected) < len(ids):
            try:
                task_id, ok, value, counter = self._results.get(timeout=1.0)
            except Empty:
                dead = [p.name for p in self._procs if not p.is_alive()]
                if dead:
                    raise WorkerError(
                        f"runtime worker process(es) died mid-dispatch: "
                        f"{', '.join(dead)}"
                    ) from None
                continue
            collected[task_id] = (ok, value, counter)
        return [collected[task_id] for task_id in ids]

    def close(self, timeout: float = 5.0) -> None:
        """Stop every worker (sentinel first, terminate stragglers)."""
        if self._closed:
            return
        self._closed = True
        for _ in self._procs:
            try:
                self._tasks.put(None)
            except Exception:  # pragma: no cover - queue already broken
                break
        for proc in self._procs:
            proc.join(timeout=timeout)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=timeout)
        for queue in (self._tasks, self._results):
            queue.close()
            # Don't block interpreter exit on an unflushed feeder thread.
            queue.cancel_join_thread()

    def terminate(self) -> None:
        """Hard stop: kill workers without draining the queues."""
        if self._closed:
            return
        self._closed = True
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(timeout=5.0)
        for queue in (self._tasks, self._results):
            queue.close()
            queue.cancel_join_thread()


def execute_plan_process(
    scheduler: "Scheduler",  # noqa: F821 - circular-import quoted type
    plan: "ExecutionPlan",  # noqa: F821
    a_slices: np.ndarray,
    b_slices: np.ndarray,
    table: CRTConstantTable,
    config: "Ozaki2Config",  # noqa: F821
    times: "PhaseTimes | None" = None,  # noqa: F821
    trusted: bool = False,
) -> np.ndarray:
    """Process-backend twin of :func:`~repro.runtime.scheduler.execute_plan`.

    Same task decomposition (modulus chunks × k-blocks per tile, the chunk
    boundaries chosen exactly as the thread path chooses them), but the
    matmul wave writes a shared ``c_stack`` and a second wave of row-band
    tasks performs accumulation + reconstruction *in the workers* — the two
    phases the GIL serialises under threads.  Bit-identical to the serial
    path; op ledgers merge to the identical totals.
    """
    from .plan import modulus_chunk_ranges

    n_mod = plan.num_moduli
    fused = config.fused_kernels
    blocked = plan.num_k_blocks > 1
    if fused:
        if scheduler.workers == plan.parallelism:
            chunks = plan.modulus_chunks
        else:
            chunks = modulus_chunk_ranges(n_mod, scheduler.workers)
    else:
        chunks = [(i, i + 1) for i in range(n_mod)]
    # matmul_stack always yields INT32; k-blocked runs accumulate partials
    # exactly in INT64 — the same dtypes the thread path materialises.
    c_dtype = np.int64 if blocked else np.int32
    use_mulhi = (
        config.residue_kernel.name == "FAST_FMA" and c_dtype == np.int32
    )
    spec = table_spec(table)

    temps: List[SharedArray] = []
    a_desc, a_temp = operand_descriptor_for(scheduler, a_slices)
    if a_temp is not None:
        temps.append(a_temp)
    b_desc, b_temp = operand_descriptor_for(scheduler, b_slices)
    if b_temp is not None:
        temps.append(b_temp)
    out_handle = SharedArray.create((plan.m, plan.n), np.float64)
    try:
        for (m0, m1), (n0, n1) in plan.tiles():
            tile_rows = m1 - m0
            c_handle = SharedArray.create(
                (n_mod, tile_rows, n1 - n0), c_dtype
            )
            try:
                c_desc = ("shm", *c_handle.descriptor)
                matmul_tasks = [
                    (
                        "matmul",
                        {
                            "a": a_desc,
                            "b": b_desc,
                            "c": c_desc,
                            "chunk": chunk,
                            "m_range": (m0, m1),
                            "n_range": (n0, n1),
                            "k_ranges": tuple(plan.k_ranges),
                            "fused": fused,
                            "trusted": trusted,
                        },
                    )
                    for chunk in chunks
                ]
                t0 = time.perf_counter()
                scheduler.run_process_tasks(matmul_tasks)
                t1 = time.perf_counter()

                out_desc = ("shm", *out_handle.descriptor)
                bands = modulus_chunk_ranges(tile_rows, scheduler.workers)
                acc_tasks = [
                    (
                        "accumulate",
                        {
                            "c": c_desc,
                            "out": out_desc,
                            "rows": band,
                            "m_range": (m0, m1),
                            "n_range": (n0, n1),
                            "table": spec,
                            "use_mulhi": use_mulhi,
                            "vectorized": fused,
                        },
                    )
                    for band in bands
                ]
                phase_seconds = scheduler.run_process_tasks(acc_tasks)
                t2 = time.perf_counter()
            finally:
                c_handle.close()

            if times is not None:
                times.add("matmul", t1 - t0)
                acc_sum = math.fsum(s[0] for s in phase_seconds)
                rec_sum = math.fsum(s[1] for s in phase_seconds)
                stage = t2 - t1
                total = acc_sum + rec_sum
                # Split the band stage's wall-clock between the two phases
                # in proportion to the summed in-worker timings.
                share = (acc_sum / total) if total > 0.0 else 1.0
                times.add("accumulate", stage * share)
                times.add("reconstruct", stage * (1.0 - share))
        c_pp = np.array(out_handle.array, dtype=np.float64, copy=True)
    finally:
        out_handle.close()
        for temp in temps:
            temp.close()
    return c_pp


def operand_descriptor_for(
    scheduler: "Scheduler",  # noqa: F821
    arr: np.ndarray,
) -> Tuple[OperandDescriptor, Optional[SharedArray]]:
    """Like :func:`operand_descriptor`, but reuse the scheduler's segment
    when ``arr`` is a view the scheduler already shares (conversion output,
    adopted operand) — avoiding a second copy of the residue stack."""
    desc = scheduler.shared_descriptor(arr)
    if desc is not None:
        return desc, None
    return operand_descriptor(arr)
