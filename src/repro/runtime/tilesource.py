"""Out-of-core operands: residue stacks staged on disk, streamed as tiles.

An ``(N, rows, cols)`` INT8 residue stack is ``N`` times the footprint of
the (float64) operand it encodes — N=15 DGEMM emulation at 32768² is a
16 GiB stack per side.  :class:`TileSource` prepares such operands without
ever materialising the stack in RAM:

* the source matrix is scanned in *strips* (row strips for the A side,
  column strips for the B side — the direction of that side's scale
  vector), each strip's pre-scale bounds computed independently and
  concatenated.  The fast-mode scale formula is per-row/per-column, so the
  strip-wise pass is **bit-identical** to a whole-matrix
  :func:`~repro.core.scaling.fast_mode_prescale`;
* each strip is truncate-scaled and residue-converted on its own, and the
  INT8 slices written straight into a disk-backed ``.npy``
  (:func:`numpy.lib.format.open_memmap`) — peak RAM is one strip, not one
  stack;
* the staged file is reopened read-only and wrapped in a regular
  :class:`~repro.core.operand.ResidueOperand` whose ``slices`` is the
  memory-map.  Everything downstream works unchanged: the
  :class:`~repro.runtime.plan.ExecutionPlan` tiles the output under
  ``memory_budget_mb``, the thread scheduler slices the map (the OS pages
  in only the touched tiles), and the process backend ships the map as a
  filename/offset descriptor so every worker streams its own tiles
  (:func:`~repro.runtime.process.operand_descriptor`).

Results are bit-identical to the in-core path: conversion is elementwise,
so neither the strip boundaries nor the storage medium can change a bit.

The source matrix itself may be a memory-map too — it is only ever read in
strips — which is how operands too large for RAM enter the pipeline.
"""

from __future__ import annotations

import logging
import os
import shutil
import tempfile
import time
from typing import List, Optional

import numpy as np

from .. import faults
from ..config import ComputeMode, Ozaki2Config
from ..core.conversion import residue_slices, truncate_scaled
from ..core.operand import ResidueOperand
from ..core.scaling import (
    PrescaleBounds,
    fast_mode_prescale,
    scale_exponent_budget,
    scale_from_prescale,
)
from ..crt.adaptive import select_num_moduli
from ..crt.constants import build_constant_table
from ..errors import ConfigurationError

__all__ = ["TileSource"]

_LOG = logging.getLogger(__name__)

#: Default strip budget: float64 elements read per strip (~32 MiB).  Small
#: enough that strip workspace never rivals the budgeted tile workspace,
#: large enough that the per-strip Python overhead vanishes.
_DEFAULT_STRIP_ELEMENTS = 4 * 2**20


def _strip_width(total: int, other: int, strip_elements: Optional[int]) -> int:
    """Rows (or columns) per strip so one strip holds ``strip_elements``."""
    budget = int(strip_elements or _DEFAULT_STRIP_ELEMENTS)
    return max(1, min(int(total), budget // max(1, int(other))))


def _concat_prescale(parts: List[PrescaleBounds], axis: int) -> PrescaleBounds:
    """Concatenate strip-wise prescale bounds into the whole-matrix bounds.

    Every field of :class:`PrescaleBounds` is per-row (A side) or per-column
    (B side), and each strip computed its rows/columns from exactly the same
    elements the whole-matrix pass would — so concatenation reproduces
    ``fast_mode_prescale(x, axis)`` bitwise.
    """
    return PrescaleBounds(
        axis=axis,
        clamp_term=np.concatenate([p.clamp_term for p in parts]),
        m_exp=np.concatenate([p.m_exp for p in parts]),
        max_abs=np.concatenate([p.max_abs for p in parts]),
    )


class TileSource:
    """Stage residue stacks on disk and serve them as memory-mapped operands.

    Use as a context manager (or call :meth:`close`); the staging directory
    and every ``.npy`` written into it are removed on exit.  The returned
    :class:`~repro.core.operand.ResidueOperand` objects become invalid once
    the source is closed — multiply first, close last.

    Parameters
    ----------
    directory:
        Where to stage the stacks.  Defaults to a fresh temporary directory
        (removed wholesale on close); an explicit directory must exist and
        only the files this source created are removed from it.
    strip_elements:
        Float64 elements read per conversion strip (peak RAM of the
        preparation); default ~4M elements (32 MiB) per strip.
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        strip_elements: Optional[int] = None,
    ) -> None:
        self._own_dir = directory is None
        self.directory = directory or tempfile.mkdtemp(prefix="repro-tiles-")
        if not os.path.isdir(self.directory):
            raise ConfigurationError(
                f"TileSource staging directory does not exist: {self.directory!r}"
            )
        self.strip_elements = strip_elements
        self._files: List[str] = []
        self._count = 0
        self._closed = False

    # -- lifecycle -----------------------------------------------------------
    def __enter__(self) -> "TileSource":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def close(self) -> None:
        """Remove every staged stack (and the owned staging directory)."""
        if self._closed:
            return
        self._closed = True
        if self._own_dir:
            shutil.rmtree(self.directory, ignore_errors=True)
        else:
            for path in self._files:
                try:
                    os.remove(path)
                except FileNotFoundError:
                    pass
        self._files.clear()

    # -- preparation ---------------------------------------------------------
    def prepare_a(
        self, a: np.ndarray, config: Optional[Ozaki2Config] = None
    ) -> ResidueOperand:
        """Stage the left operand's residues on disk; see :class:`TileSource`."""
        return self._prepare(a, "A", config)

    def prepare_b(
        self, b: np.ndarray, config: Optional[Ozaki2Config] = None
    ) -> ResidueOperand:
        """Stage the right operand's residues on disk."""
        return self._prepare(b, "B", config)

    def _prepare(
        self, x: np.ndarray, side: str, config: Optional[Ozaki2Config]
    ) -> ResidueOperand:
        if self._closed:
            raise ConfigurationError("TileSource has been closed")
        config = config or Ozaki2Config()
        if config.mode is not ComputeMode.FAST:
            raise ConfigurationError(
                "out-of-core preparation is fast-mode only (accurate mode "
                "couples the two sides' scale determination; see "
                "repro.core.operand)"
            )
        x = np.asarray(x)
        if x.ndim != 2 or x.dtype != np.float64:
            raise ConfigurationError(
                f"TileSource operands must be 2-D float64 (memmap or array), "
                f"got {x.dtype} with shape {x.shape}"
            )
        rows, cols = x.shape
        axis = 1 if side == "A" else 0

        start = time.perf_counter()
        # Pass 1 — strip-wise prescale bounds (row strips for A, column
        # strips for B: the direction the per-row/per-column quantities run).
        parts: List[PrescaleBounds] = []
        if side == "A":
            width = _strip_width(rows, cols, self.strip_elements)
            for r0 in range(0, rows, width):
                parts.append(fast_mode_prescale(x[r0 : r0 + width], axis=1))
        else:
            width = _strip_width(cols, rows, self.strip_elements)
            for c0 in range(0, cols, width):
                parts.append(fast_mode_prescale(x[:, c0 : c0 + width], axis=0))
        prescale = _concat_prescale(parts, axis)

        if config.moduli_is_auto:
            # Same resolution rule as in-core preparation: the operand's own
            # max-abs (just scanned) selects the count.
            inner = cols if side == "A" else rows
            selection = select_num_moduli(
                inner,
                prescale.global_max_abs,
                prescale.global_max_abs,
                64 if config.is_dgemm else 32,
                target=config.target_accuracy,
                mode=config.mode.value,
            )
            config = config.resolved(selection.num_moduli)
        table = build_constant_table(
            config.num_moduli, 64 if config.is_dgemm else 32
        )
        scale = scale_from_prescale(prescale, scale_exponent_budget(table, "fast"))

        # Pass 2 — truncate + residue-convert strip by strip, writing the
        # INT8 slices straight into the disk-backed stack.
        path = os.path.join(
            self.directory, f"operand_{side}_{self._count:04d}.npy"
        )
        self._count += 1
        staged = np.lib.format.open_memmap(
            path, mode="w+", dtype=np.int8, shape=(config.num_moduli, rows, cols)
        )
        def stage_strip(lo: int, hi: int) -> None:
            """Stage one strip, absorbing one write fault per strip.

            Strip conversion is a pure elementwise function of the source
            and the (already fixed) scale, and each strip owns a disjoint
            slab of the stack — rewriting it is idempotent.  One transient
            write failure (fault site ``tile.stage``, or a real
            :class:`OSError` from the filesystem) is therefore retried in
            place; a second consecutive failure on the *same* strip is a
            persistent storage problem and propagates.
            """
            for attempt in (0, 1):
                try:
                    faults.raise_if("tile.stage")
                    if side == "A":
                        strip = truncate_scaled(x[lo:hi], scale[lo:hi], side="left")
                        staged[:, lo:hi, :] = residue_slices(
                            strip,
                            table,
                            config.residue_kernel,
                            single_pass=config.fused_kernels,
                        )
                    else:
                        strip = truncate_scaled(
                            x[:, lo:hi], scale[lo:hi], side="right"
                        )
                        staged[:, :, lo:hi] = residue_slices(
                            strip,
                            table,
                            config.residue_kernel,
                            single_pass=config.fused_kernels,
                        )
                    return
                except (faults.InjectedFault, OSError) as exc:
                    if attempt:
                        raise
                    _LOG.warning(
                        "stage_retry: re-staging %s strip [%d:%d) after a "
                        "write fault: %s",
                        side,
                        lo,
                        hi,
                        exc,
                    )

        try:
            total = rows if side == "A" else cols
            for lo in range(0, total, width):
                stage_strip(lo, min(total, lo + width))
            staged.flush()
        finally:
            del staged  # release the writable map before the read-only open
        self._files.append(path)
        slices = np.lib.format.open_memmap(path, mode="r")
        elapsed = time.perf_counter() - start

        # No retained source: the whole point is that neither the stack nor
        # the matrix needs to stay in RAM.  resolve_for therefore raises for
        # out-of-core operands (re-prepare at the other count instead).
        return ResidueOperand(
            side=side,
            scale=scale,
            slices=slices,
            config=config,
            convert_seconds=elapsed,
            prescale=prescale,
            source=None,
        )
