"""Shared-memory arrays for the process-parallel runtime.

The process backend of :mod:`repro.runtime.scheduler` moves residue stacks
between the parent and its worker processes through POSIX shared memory
(`multiprocessing.shared_memory`) instead of pickling them over pipes: the
parent places the INT8 operand stacks (and the integer/float output
buffers) in named segments, workers attach by name, compute on zero-copy
NumPy views and write their partial results straight into the shared
output.  Matrices therefore cross the process boundary exactly zero times
in either direction — only the small task descriptors travel.

Lifecycle guarantees (the part that is easy to get wrong):

* every segment created through :class:`SharedArray` is recorded in a
  module-global registry (guarded by a ``named_lock``) and unlinked by an
  ``atexit`` sweep, so an interrupted run never leaks ``/dev/shm`` space
  and tests never see ``resource_tracker`` "leaked shared_memory"
  warnings;
* :func:`attach_view` — the worker-side attach — immediately *unregisters*
  the segment from the attaching process's ``resource_tracker``: on this
  Python version the tracker registers attachments exactly like creations
  (the well-known bpo-38119 behaviour), and without the unregister every
  worker exit would warn about (and attempt to destroy) segments the
  parent still owns.  Ownership stays with the creating process only.
"""

from __future__ import annotations

import atexit
import secrets
from contextlib import contextmanager
from multiprocessing import shared_memory
from typing import Dict, Iterator, Tuple

import numpy as np

from ..analysis.lockorder import named_lock
from ..faults import raise_if as _fault_raise_if

__all__ = ["SharedArray", "ShmDescriptor", "attach_view", "live_segment_names"]

#: Wire-format descriptor of one shared array: ``(name, shape, dtype_str)``.
#: Plain tuples of builtins so task messages stay tiny and version-stable.
ShmDescriptor = Tuple[str, Tuple[int, ...], str]

#: Every live segment created by this process, keyed by segment name.  The
#: atexit sweep (and Scheduler.close) unlinks whatever is still here, so a
#: crashed or interrupted run cannot leak /dev/shm space.
_LIVE: Dict[str, shared_memory.SharedMemory] = {}
_LIVE_LOCK = named_lock("runtime.shm._live_lock")

#: Whether :func:`attach_view` drops its attach-time resource_tracker
#: registration.  True for ``spawn`` workers (each child runs its *own*
#: tracker, whose exit would otherwise warn about — and destroy — segments
#: the parent owns).  ``fork`` workers share the parent's tracker process:
#: there the attach-time REGISTER is an idempotent duplicate, and an
#: UNREGISTER would strip the *parent's* registration out of the shared
#: cache (the parent's later unlink then KeyErrors inside the tracker).
#: Configured per worker by :func:`configure_worker`.
_ATTACH_UNREGISTERS = True


def _tracker_unregister(name: str) -> None:
    """Drop one segment from this process's resource_tracker, if present.

    Best-effort by design: the tracker is an implementation detail whose
    module layout has moved between Python versions, and a failure to
    unregister only costs a spurious warning at interpreter exit.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister("/" + name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary by version
        pass


class SharedArray:
    """One NumPy array backed by a named shared-memory segment.

    Created by the parent (:meth:`create`), attached by workers via
    :func:`attach_view`.  The parent-side object owns the segment: it is
    unlinked by :meth:`close` (idempotent), by :meth:`Scheduler.close
    <repro.runtime.scheduler.Scheduler.close>` via the scheduler's registry,
    or — as the last line of defence — by the module's ``atexit`` sweep.
    """

    __slots__ = ("_shm", "array", "name", "shape", "dtype")

    def __init__(
        self, shm: shared_memory.SharedMemory, shape: Tuple[int, ...], dtype: np.dtype
    ) -> None:
        self._shm = shm
        self.name = shm.name
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        self.array = np.ndarray(self.shape, dtype=self.dtype, buffer=shm.buf)

    @classmethod
    def create(cls, shape: Tuple[int, ...], dtype) -> "SharedArray":
        """Allocate a zero-initialised segment sized for ``shape``/``dtype``.

        The ``shm.alloc`` injection site fires here — before the kernel is
        asked for a segment — so chaos runs exercise the same recovery the
        runtime performs when ``/dev/shm`` is genuinely exhausted
        (:class:`MemoryError`/:class:`OSError` from ``SharedMemory``).
        """
        _fault_raise_if("shm.alloc")
        dt = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape, dtype=np.int64)) * dt.itemsize)
        # Explicit names keep descriptors readable in tracebacks/registries.
        name = f"repro_{secrets.token_hex(8)}"
        shm = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
        handle = cls(shm, tuple(shape), dt)
        with _LIVE_LOCK:
            _LIVE[handle.name] = shm
        return handle

    @classmethod
    def copy_from(cls, source: np.ndarray) -> "SharedArray":
        """Allocate a segment and memcpy ``source`` into it (one pass)."""
        handle = cls.create(source.shape, source.dtype)
        handle.array[...] = source
        return handle

    @property
    def descriptor(self) -> ShmDescriptor:
        """The ``(name, shape, dtype_str)`` tuple workers attach with."""
        return (self.name, self.shape, self.dtype.str)

    def close(self) -> None:
        """Release the view and unlink the segment (idempotent).

        Unlinking is decoupled from unmapping on purpose: callers may still
        hold NumPy views into the segment (``shm.close`` would then raise
        ``BufferError``), but ``unlink`` only removes the *name* — the
        memory itself is freed by the kernel when the last mapping goes
        away, so an early close can never invalidate a live view.
        """
        with _LIVE_LOCK:
            _LIVE.pop(self.name, None)
        self.array = None  # type: ignore[assignment]
        _close_and_unlink(self._shm)


def _close_and_unlink(shm: shared_memory.SharedMemory) -> None:
    """Unmap (tolerating exported views) and remove the segment's name."""
    try:
        shm.close()
    except BufferError:
        # A NumPy view still exports the buffer; the mapping is released
        # when the view dies (GC), and unlink below frees the name now.
        pass
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already unlinked
        pass


@contextmanager
def attach_view(descriptor: ShmDescriptor) -> Iterator[np.ndarray]:
    """Worker-side attach: yield a zero-copy view, detach on exit.

    Attaching registers the segment with *this* process's resource tracker
    (see the module docstring); the registration is dropped immediately so
    the owning parent keeps sole responsibility for the unlink and worker
    exits stay warning-free.
    """
    name, shape, dtype_str = descriptor
    shm = shared_memory.SharedMemory(name=name)
    if _ATTACH_UNREGISTERS:
        _tracker_unregister(name)
    try:
        yield np.ndarray(tuple(shape), dtype=np.dtype(dtype_str), buffer=shm.buf)
    finally:
        try:
            shm.close()
        except BufferError:  # the caller's view outlives the block; GC unmaps
            pass


def live_segment_names() -> Tuple[str, ...]:
    """Names of segments this process created and has not yet unlinked."""
    with _LIVE_LOCK:
        return tuple(sorted(_LIVE))


def configure_worker(start_method: str) -> None:
    """Initialise shared-memory state inside a runtime worker process.

    Forgets any registry entries inherited across ``fork`` (keeping those
    would make the worker's exit sweep unlink segments the parent still
    owns) and sets the attach-time tracker policy for the start method —
    see :data:`_ATTACH_UNREGISTERS`.  Workers call this first thing.
    """
    global _ATTACH_UNREGISTERS
    with _LIVE_LOCK:
        _LIVE.clear()
    _ATTACH_UNREGISTERS = start_method != "fork"


def _unlink_all() -> None:
    """The atexit sweep: unlink anything a caller forgot (or crashed past)."""
    with _LIVE_LOCK:
        leftovers = list(_LIVE.values())
        _LIVE.clear()
    for shm in leftovers:
        _close_and_unlink(shm)


atexit.register(_unlink_all)
