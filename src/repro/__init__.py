"""repro — Ozaki scheme II GEMM emulation on INT8 matrix engines.

Reproduction of "High-Performance and Power-Efficient Emulation of Matrix
Multiplication using INT8 Matrix Engines" (Uchino, Ozaki, Imamura — SC'25).

Quick start
-----------
>>> import numpy as np
>>> from repro import emulated_dgemm
>>> rng = np.random.default_rng(0)
>>> a = rng.standard_normal((256, 256))
>>> b = rng.standard_normal((256, 256))
>>> c = emulated_dgemm(a, b, num_moduli=15)
>>> float(np.max(np.abs(c - a @ b)))  # doctest: +SKIP
1e-13

Main entry points
-----------------
* :func:`repro.emulated_dgemm`, :func:`repro.emulated_sgemm`,
  :func:`repro.ozaki2_gemm` — the paper's contribution.
* :mod:`repro.baselines` — Ozaki scheme I (ozIMMU), cuMpSGEMM-style FP16,
  BF16x9, TF32 and native GEMM baselines.
* :mod:`repro.engines` — INT8 / FP16 / BF16 / TF32 matrix-engine simulators.
* :mod:`repro.runtime` — batched / parallel execution runtime
  (:func:`repro.ozaki2_gemm_batched`, :class:`repro.Scheduler`).
* :mod:`repro.perfmodel` — GPU throughput / power model used to regenerate
  the paper's performance figures.
* :mod:`repro.harness` — one function per paper figure.
"""

from .config import ComputeMode, Ozaki2Config, ResidueKernel
from .core.blas_like import gemm
from .core.gemm import Ozaki2Result, emulated_dgemm, emulated_sgemm, ozaki2_gemm
from .core.gemv import GemvResult, prepared_gemv
from .core.operand import ResidueOperand, prepare_a, prepare_b
from .core.planner import choose_num_moduli
from .crt.adaptive import AdaptiveSelection, select_num_moduli
from .runtime import ExecutionPlan, Scheduler, ozaki2_gemm_batched
from .errors import (
    ConfigurationError,
    EngineError,
    ModuliError,
    OverflowRiskError,
    PerfModelError,
    ReproError,
    ValidationError,
)
from .types import BF16, FP16, FP32, FP64, INT8, TF32, Format, get_format

__version__ = "1.2.0"

__all__ = [
    "__version__",
    "ComputeMode",
    "Ozaki2Config",
    "ResidueKernel",
    "Ozaki2Result",
    "GemvResult",
    "emulated_dgemm",
    "emulated_sgemm",
    "ozaki2_gemm",
    "prepared_gemv",
    "ozaki2_gemm_batched",
    "ResidueOperand",
    "prepare_a",
    "prepare_b",
    "ExecutionPlan",
    "Scheduler",
    "gemm",
    "choose_num_moduli",
    "AdaptiveSelection",
    "select_num_moduli",
    "ConfigurationError",
    "EngineError",
    "ModuliError",
    "OverflowRiskError",
    "PerfModelError",
    "ReproError",
    "ValidationError",
    "BF16",
    "FP16",
    "FP32",
    "FP64",
    "INT8",
    "TF32",
    "Format",
    "get_format",
]
