"""repro — Ozaki scheme II GEMM emulation on INT8 matrix engines.

Reproduction of "High-Performance and Power-Efficient Emulation of Matrix
Multiplication using INT8 Matrix Engines" (Uchino, Ozaki, Imamura — SC'25).

Quick start
-----------
>>> import numpy as np
>>> import repro
>>> rng = np.random.default_rng(0)
>>> a = rng.standard_normal((256, 256))
>>> b = rng.standard_normal((256, 256))
>>> with repro.Session() as session:
...     result = session.gemm(a, b)
>>> float(np.max(np.abs(result.value - a @ b)))  # doctest: +SKIP
1e-13

Main entry points
-----------------
* :class:`repro.Session` — the facade: one configuration, one engine
  ledger, a warm scheduler pool and a transparent prepared-operand cache
  shared by ``gemm`` / ``gemv`` / ``solve`` / ``gemm_batched`` /
  ``prepare``.  Every operation returns a :class:`repro.Result` subclass.
* :mod:`repro.service` — the same Session behind a socket: ``repro serve``
  (:class:`repro.service.ReproServer`) and
  :class:`repro.service.ServiceClient` with fingerprint-negotiated operand
  reuse.
* :func:`repro.emulated_dgemm`, :func:`repro.emulated_sgemm` — one-shot
  convenience wrappers (the paper's ``OS II-<mode>-<N>``).
* :mod:`repro.baselines` — Ozaki scheme I (ozIMMU), cuMpSGEMM-style FP16,
  BF16x9, TF32 and native GEMM baselines.
* :mod:`repro.engines` — INT8 / FP16 / BF16 / TF32 matrix-engine simulators.
* :mod:`repro.runtime` — batched / parallel execution runtime.
* :mod:`repro.perfmodel` — GPU throughput / power model used to regenerate
  the paper's performance figures.
* :mod:`repro.harness` — one function per paper figure.

Deprecated spellings
--------------------
The pre-Session free functions (``repro.ozaki2_gemm``,
``repro.prepared_gemv``, ``repro.ozaki2_gemm_batched``, ``repro.prepare_a``,
``repro.prepare_b``) keep working bit-identically but emit one
:class:`DeprecationWarning` per process pointing at :class:`Session`; the
defining submodules (e.g. :func:`repro.core.gemm.ozaki2_gemm`) remain the
supported low-level spelling.
"""

from __future__ import annotations

__version__ = "1.3.0"

from ._compat import deprecated_alias as _deprecated_alias
from ._compat import reset_deprecation_warnings
from .config import ComputeMode, Ozaki2Config, ResidueKernel
from .core.blas_like import gemm
from .core import gemm as _gemm_module
from .core import gemv as _gemv_module
from .core import operand as _operand_module
from .core.gemm import Ozaki2Result, emulated_dgemm, emulated_sgemm
from .core.gemv import GemvResult
from .core.operand import (
    AccurateOperand,
    PreparedOperand,
    ResidueOperand,
    matrix_fingerprint,
)
from .core.planner import choose_num_moduli
from .crt.adaptive import AdaptiveSelection, select_num_moduli
from .crt.calibration import DEFAULT_CALIBRATION, CalibrationEntry, CalibrationTable
from . import faults
from .faults import FaultPlan, InjectedFault
from .result import GemmResult, PhaseTimes, Result
from .runtime import ExecutionPlan, Scheduler
from .runtime import batched as _batched_module
from .apps.solvers import SolveResult
from .session import SOLVE_METHODS, Session
from .service import ReproServer, ServiceClient
from .errors import (
    ConfigurationError,
    EngineError,
    ModuliError,
    OverflowRiskError,
    PerfModelError,
    ReproError,
    ValidationError,
)
from .types import BF16, FP16, FP32, FP64, INT8, TF32, Format, get_format

# -- deprecated free-function shims (see repro._compat) ----------------------
ozaki2_gemm = _deprecated_alias(
    "ozaki2_gemm", "Session.gemm", _gemm_module.ozaki2_gemm
)
prepared_gemv = _deprecated_alias(
    "prepared_gemv", "Session.gemv", _gemv_module.prepared_gemv
)
ozaki2_gemm_batched = _deprecated_alias(
    "ozaki2_gemm_batched", "Session.gemm_batched", _batched_module.ozaki2_gemm_batched
)
prepare_a = _deprecated_alias(
    "prepare_a", "Session.prepare(x, side='A')", _operand_module.prepare_a
)
prepare_b = _deprecated_alias(
    "prepare_b", "Session.prepare(x, side='B')", _operand_module.prepare_b
)

__all__ = [
    "__version__",
    # facade
    "Session",
    "SOLVE_METHODS",
    "ReproServer",
    "ServiceClient",
    # results
    "Result",
    "GemmResult",
    "GemvResult",
    "SolveResult",
    "Ozaki2Result",
    "PhaseTimes",
    # configuration
    "ComputeMode",
    "Ozaki2Config",
    "ResidueKernel",
    # one-shot entry points
    "emulated_dgemm",
    "emulated_sgemm",
    "gemm",
    # deprecated free functions (shimmed)
    "ozaki2_gemm",
    "prepared_gemv",
    "ozaki2_gemm_batched",
    "prepare_a",
    "prepare_b",
    "reset_deprecation_warnings",
    # operands
    "PreparedOperand",
    "ResidueOperand",
    "AccurateOperand",
    "matrix_fingerprint",
    # runtime
    "ExecutionPlan",
    "Scheduler",
    # fault injection / resilience
    "faults",
    "FaultPlan",
    "InjectedFault",
    # moduli selection
    "choose_num_moduli",
    "AdaptiveSelection",
    "select_num_moduli",
    "CalibrationEntry",
    "CalibrationTable",
    "DEFAULT_CALIBRATION",
    # errors
    "ConfigurationError",
    "EngineError",
    "ModuliError",
    "OverflowRiskError",
    "PerfModelError",
    "ReproError",
    "ValidationError",
    # formats
    "BF16",
    "FP16",
    "FP32",
    "FP64",
    "INT8",
    "TF32",
    "Format",
    "get_format",
]
