"""`Session` — the library's long-lived facade: one config, one warm runtime.

The historical entry points are free functions: every
:func:`~repro.core.gemm.ozaki2_gemm` call builds its own engine, spins its
own scheduler pool, and forgets its conversions the moment it returns.
That is the right shape for a one-shot benchmark and the wrong shape for
everything the paper's use cases actually look like — solvers, batches and
services multiplying *recurring* operands under *one* configuration.

:class:`Session` owns the long-lived pieces once:

* an :class:`~repro.engines.int8.Int8MatrixEngine` whose
  :class:`~repro.engines.base.OpCounter` ledger accumulates across every
  call (GEMM work *and* operand-cache events — one ledger to read),
* a warm :class:`~repro.runtime.scheduler.Scheduler` pool sized from
  ``config.parallelism`` (pool start-up is paid once, not per call),
* a transparent :class:`~repro.service.cache.OperandCache`: matrix
  operands are recognised by *content fingerprint*
  (:func:`~repro.core.operand.matrix_fingerprint`) and their prepared
  state reused across calls — fast mode caches residue conversions,
  accurate mode the ``N``-independent pre-scale half — bit-identical to
  converting afresh, so ``session.gemm(a, b)`` equals ``ozaki2_gemm(a, b)``
  bitwise whether the cache hit or missed.

Every operation returns a :class:`~repro.result.Result` subclass —
:class:`~repro.result.GemmResult`, :class:`~repro.core.gemv.GemvResult`,
:class:`~repro.apps.solvers.SolveResult` — sharing ``value`` / ``config`` /
``phase_times`` / ``ledger`` / ``moduli_history``.

Migration from the free functions::

    ozaki2_gemm(a, b, config=cfg)            -> Session(cfg).gemm(a, b).value
    prepared_gemv(prep, x, config=cfg)       -> session.gemv(a, x).value
    ozaki2_gemm_batched(As, Bs, config=cfg)  -> session.gemm_batched(As, Bs)
    prepare_a(a, config=cfg)                 -> session.prepare(a, side="A")
    cg_solve(a, b, config=cfg)               -> session.solve(a, b, method="cg")

The free functions keep working (with a deprecation pointer at this class);
:mod:`repro.service` is this class behind a socket.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from .config import Ozaki2Config
from .core.gemm import ozaki2_gemm
from .core.gemv import GemvResult, prepared_gemv
from .core.operand import PreparedOperand
from .engines.base import MatrixEngine, OpCounter
from .engines.int8 import Int8MatrixEngine
from .errors import ValidationError
from .result import GemmResult
from .runtime.batched import ozaki2_gemm_batched
from .runtime.scheduler import Scheduler
from .service.cache import DEFAULT_CAPACITY_BYTES, OperandCache

__all__ = ["Session", "SOLVE_METHODS"]

#: Solver names accepted by :meth:`Session.solve`.
SOLVE_METHODS = ("cg", "pcg", "jacobi", "ir")


class Session:
    """Long-lived emulation context: engine + scheduler + operand cache.

    Parameters
    ----------
    config:
        The session's default :class:`~repro.config.Ozaki2Config`
        (FP64 fast mode when omitted).  Every call may override it with its
        own ``config=``; the session resources (engine, pool, cache) are
        shared either way.
    cache_bytes:
        Byte budget of the transparent operand cache; ``0`` disables
        caching (every call converts, exactly like the free functions).
    engine:
        Matrix engine to retire the INT8 work on (a fresh
        :class:`~repro.engines.int8.Int8MatrixEngine` when omitted).  Its
        counter is the session ledger.

    Use as a context manager (or call :meth:`close`) to shut the worker
    pool down deterministically.
    """

    def __init__(
        self,
        config: Optional[Ozaki2Config] = None,
        cache_bytes: int = DEFAULT_CAPACITY_BYTES,
        engine: Optional[MatrixEngine] = None,
    ) -> None:
        self.config = config or Ozaki2Config.for_dgemm()
        self._engine = engine if engine is not None else Int8MatrixEngine()
        self._scheduler = Scheduler(
            parallelism=self.config.parallelism,
            engine=self._engine,
            executor=self.config.executor,
            max_pool_rebuilds=self.config.max_pool_rebuilds,
        )
        self._cache = OperandCache(cache_bytes, ledger=self._engine.counter)
        self._started = time.perf_counter()
        self._requests = 0
        self._closed = False

    # -- lifecycle -----------------------------------------------------------
    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Shut the worker pool down and drop the cache."""
        if self._closed:
            return
        self._closed = True
        self._scheduler.close()
        self._cache.clear()

    def _require_open(self) -> None:
        if self._closed:
            raise ValidationError("this Session is closed")

    # -- operand handling ----------------------------------------------------
    def _call_config(self, config: Optional[Ozaki2Config]) -> Ozaki2Config:
        return config or self.config

    def _operand(self, x, side: str, config: Ozaki2Config):
        """Route a raw matrix through the cache; pass everything else through.

        2-D float operands in either mode are cacheable — fast mode caches
        the residue stack, accurate mode the ``N``-independent pre-scale
        half (see :mod:`repro.core.operand`); vectors are cheaper to
        convert than to fingerprint-and-hold.  A caller-prepared operand is
        used as-is.
        """
        if isinstance(x, PreparedOperand):
            return x
        if self._cache.capacity_bytes == 0:
            return x
        arr = np.asarray(x)
        if arr.ndim != 2 or arr.shape[0] < 2 or arr.shape[1] < 2:
            return x
        return self._cache.get_or_prepare(arr, side, config)

    def prepare(
        self, x: np.ndarray, side: str = "A", config: Optional[Ozaki2Config] = None
    ) -> PreparedOperand:
        """Prepare (or fetch from cache) one operand's residue conversion.

        The explicit form of what :meth:`gemm` / :meth:`gemv` do
        transparently; useful to warm the cache or to hold an operand across
        sessions.  ``side`` is ``"A"`` (per-row scales) or ``"B"``.
        """
        self._require_open()
        if side not in ("A", "B"):
            raise ValidationError(f"side must be 'A' or 'B', got {side!r}")
        config = self._call_config(config)
        arr = np.asarray(x)
        if arr.ndim != 2:
            raise ValidationError(f"prepare expects a 2-D matrix, got shape {arr.shape}")
        if self._cache.capacity_bytes == 0:
            from .core.operand import prepare_a, prepare_b

            prepare = prepare_a if side == "A" else prepare_b
            return prepare(np.ascontiguousarray(arr, dtype=np.float64), config=config)
        return self._cache.get_or_prepare(arr, side, config)

    # -- operations ----------------------------------------------------------
    def gemm(
        self,
        a,
        b,
        config: Optional[Ozaki2Config] = None,
    ) -> GemmResult:
        """Emulated ``A @ B`` through the session; returns a full result.

        Matrix operands hit the transparent cache in either mode
        (bit-identical either way); the product array is ``result.value``.
        """
        self._require_open()
        self._requests += 1
        config = self._call_config(config)
        a = self._operand(a, "A", config)
        b = self._operand(b, "B", config)
        return ozaki2_gemm(
            a, b, config=config, scheduler=self._scheduler, return_details=True
        )

    def gemv(
        self,
        a,
        x: np.ndarray,
        config: Optional[Ozaki2Config] = None,
    ) -> GemvResult:
        """Emulated ``A @ x`` via the residue-GEMV fast path.

        ``a`` is cached/reused exactly like a GEMM left operand, so a loop
        of matrix–vector products against one matrix pays one conversion.
        """
        self._require_open()
        self._requests += 1
        config = self._call_config(config)
        a = self._operand(a, "A", config)
        return prepared_gemv(
            a, x, config=config, engine=self._engine, return_details=True
        )

    def gemm_batched(
        self,
        As: Sequence,
        Bs: Sequence,
        config: Optional[Ozaki2Config] = None,
    ) -> List[GemmResult]:
        """Emulate ``As[j] @ Bs[j]`` for a whole batch on the warm pool.

        Matrix operands route through the cache first, so batches sharing a
        weight matrix convert it once even across *separate* calls (the
        batched runtime itself already dedupes within one call).
        """
        self._require_open()
        self._requests += 1
        config = self._call_config(config)
        As = [self._operand(a, "A", config) for a in As]
        Bs = [self._operand(b, "B", config) for b in Bs]
        return ozaki2_gemm_batched(
            As, Bs, config=config, scheduler=self._scheduler, return_details=True
        )

    def solve(
        self,
        a: np.ndarray,
        b: np.ndarray,
        method: str = "cg",
        config: Optional[Ozaki2Config] = None,
        **kwargs,
    ):
        """Iteratively solve ``A x = b`` with emulated products.

        ``method`` is one of :data:`SOLVE_METHODS` — ``"cg"`` / ``"pcg"``
        (:func:`~repro.apps.solvers.cg_solve` /
        :func:`~repro.apps.solvers.pcg_solve`), ``"jacobi"``
        (:func:`~repro.apps.solvers.jacobi_solve`) or ``"ir"``
        (:func:`~repro.apps.solvers.iterative_refinement_solve`); extra
        keyword arguments (``tol``, ``max_iter``, ``precond``,
        ``progressive``, …) pass through.  The system matrix's preparation
        goes through the session cache, so repeated solves against one
        matrix — or a solve after a :meth:`gemm` with the same left
        operand — skip the preparation.
        """
        from .apps import solvers

        self._require_open()
        self._requests += 1
        config = self._call_config(config)
        dispatch = {
            "cg": solvers.cg_solve,
            "pcg": solvers.pcg_solve,
            "jacobi": solvers.jacobi_solve,
            "ir": solvers.iterative_refinement_solve,
        }
        if method not in dispatch:
            raise ValidationError(
                f"unknown solve method {method!r}; expected one of {SOLVE_METHODS}"
            )
        if "prepared" not in kwargs and self._cache.capacity_bytes > 0:
            arr = np.asarray(a)
            if arr.ndim == 2 and arr.shape[0] == arr.shape[1] and arr.shape[0] >= 2:
                kwargs["prepared"] = self._cache.get_or_prepare(arr, "A", config)
        return dispatch[method](a, b, config=config, **kwargs)

    # -- introspection -------------------------------------------------------
    @property
    def ledger(self) -> OpCounter:
        """The session-wide op ledger (engine work + cache events)."""
        return self._engine.counter

    @property
    def cache(self) -> OperandCache:
        """The session's transparent operand cache."""
        return self._cache

    @property
    def engine(self) -> MatrixEngine:
        """The session's matrix engine."""
        return self._engine

    def stats(self) -> Dict[str, object]:
        """Snapshot for dashboards: uptime, requests, cache, ledger, runtime.

        The ``"runtime"`` entry is the scheduler's health document —
        executor, worker count, pool-failure tally and (never silent)
        degradation state.
        """
        return {
            "uptime_seconds": time.perf_counter() - self._started,
            "requests": self._requests,
            "method": self.config.method_name,
            "cache": self._cache.stats(),
            "ledger": self._engine.counter.as_dict(),
            "runtime": self._scheduler.health(),
        }

    def reset_ledger(self) -> None:
        """Zero the session ledger (cache contents stay resident)."""
        self._engine.counter.reset()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else "open"
        return (
            f"<Session {state} requests={self._requests} "
            f"cache_entries={len(self._cache)}>"
        )
