"""Exact CRT arithmetic: product of moduli and modular inverses.

All quantities here are computed with Python integers, so they are exact
regardless of size (``P`` reaches about ``2**159`` for ``N = 20``).  The
floating-point representations used inside Algorithm 1 are derived from
these exact values in :mod:`repro.crt.constants`.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..errors import ModuliError
from .moduli import validate_moduli

__all__ = ["moduli_product", "modular_inverses", "crt_weights", "crt_reconstruct_int"]


def moduli_product(moduli: Sequence[int]) -> int:
    """Exact product ``P = prod(p_i)`` as a Python integer."""
    mods = validate_moduli(moduli)
    prod = 1
    for p in mods:
        prod *= p
    return prod


def modular_inverses(moduli: Sequence[int]) -> Tuple[int, ...]:
    """Modular multiplicative inverses ``q_i`` of ``P/p_i`` modulo ``p_i``.

    These are the CRT reconstruction coefficients of Theorem 1:
    ``(P/p_i) * q_i ≡ 1 (mod p_i)``.
    """
    mods = validate_moduli(moduli)
    total = moduli_product(mods)
    inverses = []
    for p in mods:
        partial = total // p
        try:
            q = pow(partial, -1, p)
        except ValueError:  # pragma: no cover - coprimality already validated
            raise ModuliError(f"P/{p} is not invertible modulo {p}") from None
        inverses.append(q)
    return tuple(inverses)


def crt_weights(moduli: Sequence[int]) -> Tuple[int, ...]:
    """Exact CRT weights ``w_i = (P/p_i) * q_i`` as Python integers.

    The reconstruction of Theorem 1 is ``x ≡ Σ_i w_i y_i (mod P)``.
    """
    mods = validate_moduli(moduli)
    total = moduli_product(mods)
    inverses = modular_inverses(mods)
    return tuple((total // p) * q for p, q in zip(mods, inverses, strict=True))


def crt_reconstruct_int(residues: Sequence[int], moduli: Sequence[int]) -> int:
    """Exact CRT reconstruction of one integer (reference implementation).

    Given residues ``y_i = x mod p_i`` (in ``[0, p_i)``), returns the unique
    representative of ``x`` in the *centred* range ``(-P/2, P/2]``.  Used by
    the test suite to validate the floating-point reconstruction of
    Algorithm 1.
    """
    mods = validate_moduli(moduli)
    if len(residues) != len(mods):
        raise ModuliError(
            f"got {len(residues)} residues for {len(mods)} moduli"
        )
    total = moduli_product(mods)
    weights = crt_weights(mods)
    acc = 0
    for w, y, p in zip(weights, residues, mods, strict=True):
        y_int = int(y) % p
        acc += w * y_int
    acc %= total
    if acc > total // 2:
        acc -= total
    return acc
