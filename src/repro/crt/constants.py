"""Precomputed constant tables of Section 4.1.

Because the moduli are fixed in advance, every derived constant can be
precomputed once per ``(number of moduli, target precision)`` pair:

* the exact product ``P`` and the CRT weights ``w_i = (P/p_i) q_i``
  (Python integers),
* the double-double representation ``P = P1 + P2`` used by the DGEMM
  reconstruction (``P2 = 0`` for SGEMM),
* the split weights ``s_i1 + s_i2 ≈ w_i`` where ``s_i1`` keeps only the top
  ``β_i`` bits so that the accumulation ``Σ_i s_i1 U_i`` is *error-free* in
  FP64 (the core trick of Section 4.3),
* reciprocal tables ``1/p_i`` in FP64/FP32 and the integer reciprocal
  ``⌊2^32/p_i − 1⌋`` used by the ``__mulhi``-style ``mod`` kernel,
* the scale budgets ``P'_fast`` and ``P'_accu``.

Tables are cached, mirroring the lookup tables the CUDA implementation
builds at compile time.
"""

from __future__ import annotations

import dataclasses
import functools
import math
from fractions import Fraction
from typing import Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from .inverses import crt_weights, moduli_product
from .moduli import select_moduli, validate_moduli

__all__ = ["CRTConstantTable", "build_constant_table", "split_weight_bits"]


def _double(x: int) -> float:
    """Round a (possibly huge) Python integer to the nearest float64."""
    return float(x)


def _double_reciprocal(x: int) -> float:
    """Correctly-rounded float64 of ``1/x`` for a Python integer ``x``."""
    return float(Fraction(1, x))


def split_weight_bits(weights: Sequence[int], num_moduli: int) -> Tuple[int, ...]:
    """Bit budgets ``β_i`` for the high parts of the CRT weights.

    Section 4.1 defines::

        β_i = 53 - 8 - ceil(log2 N) + floor(log2 w_i) - floor(log2 max_j w_j)

    so that every product ``s_i1 * U_i`` (with ``U_i < 2^8``) is an integer
    multiple of the same power of two and the sum of ``N`` such terms stays
    below 2^53 times that unit — hence the FP64 accumulation on line 8 of
    Algorithm 1 commits no rounding error.
    """
    n = int(num_moduli)
    if n < 2:
        raise ConfigurationError("need at least two moduli")
    exps = [w.bit_length() - 1 for w in weights]
    e_max = max(exps)
    ceil_log2_n = math.ceil(math.log2(n))
    betas = []
    for e in exps:
        beta = 53 - 8 - ceil_log2_n + e - e_max
        if beta < 1:
            raise ConfigurationError(
                "split-weight bit budget underflowed; the moduli table is "
                "inconsistent with the assumptions of Section 4.1"
            )
        betas.append(min(beta, 53))
    return tuple(betas)


@dataclasses.dataclass(frozen=True)
class CRTConstantTable:
    """All precomputed constants for one ``(moduli, precision)`` pair.

    Attributes
    ----------
    moduli:
        The selected pairwise-coprime moduli ``p_1 > p_2 > ...``.
    precision_bits:
        64 for DGEMM emulation, 32 for SGEMM emulation.  Controls whether
        the weights are split (``s_i2``) and whether ``P`` keeps a
        double-double tail (``P2``).
    P_int / weights_int:
        Exact ``P`` and ``w_i`` as Python integers.
    P1, P2:
        ``P ≈ P1 + P2`` in float64 (``P2 = 0`` for SGEMM emulation).
    Pinv:
        ``double(1/P)``.
    s1, s2:
        Split weights: ``w_i ≈ s1[i] + s2[i]`` with ``s1[i]`` truncated to
        ``beta[i]`` bits (for SGEMM emulation ``s1[i] = double(w_i)`` and
        ``s2[i] = 0``).
    beta:
        The bit budgets of :func:`split_weight_bits` (all 53 for SGEMM).
    p_f64:
        Moduli as float64, shape ``(N,)``.
    pinv64 / pinv32:
        ``1/p_i`` rounded to float64 / float32.
    pinv_prime:
        ``⌊2^32 / p_i − 1⌋`` as int64, used by the ``__mulhi`` mod kernel.
    P_fast / P_accu:
        ``single(log2(P-1) - 1.5)`` and ``single(log2(P-1) - 0.5)`` — the
        scale budgets of Section 4.1.
    log2_P:
        ``log2(P)`` in float64 (convenience for the planner and reports).
    """

    moduli: Tuple[int, ...]
    precision_bits: int
    P_int: int
    weights_int: Tuple[int, ...]
    P1: float
    P2: float
    Pinv: float
    s1: np.ndarray
    s2: np.ndarray
    beta: Tuple[int, ...]
    p_f64: np.ndarray
    pinv64: np.ndarray
    pinv32: np.ndarray
    pinv_prime: np.ndarray
    P_fast: float
    P_accu: float
    log2_P: float

    @property
    def num_moduli(self) -> int:
        """Number of moduli ``N``."""
        return len(self.moduli)

    def __post_init__(self) -> None:
        for name in ("s1", "s2", "p_f64", "pinv64", "pinv_prime"):
            getattr(self, name).setflags(write=False)
        self.pinv32.setflags(write=False)


def _split_weight(weight: int, beta: int) -> Tuple[float, float]:
    """Split an exact CRT weight into ``(s1, s2)`` per Section 4.1.

    ``s1`` is the weight truncated to its top ``beta`` bits (exactly
    representable in float64 because ``beta <= 53``); ``s2`` is the nearest
    float64 to the remainder.
    """
    e = weight.bit_length() - 1
    shift = e - beta + 1
    if shift <= 0:
        return float(weight), 0.0
    high = (weight >> shift) << shift
    rest = weight - high
    return float(high), float(rest)


@functools.lru_cache(maxsize=None)
def _build_cached(moduli: Tuple[int, ...], precision_bits: int) -> CRTConstantTable:
    mods = validate_moduli(moduli)
    if precision_bits not in (32, 64):
        raise ConfigurationError(
            f"precision_bits must be 32 or 64, got {precision_bits}"
        )
    n = len(mods)
    P = moduli_product(mods)
    weights = crt_weights(mods)

    P1 = _double(P)
    if precision_bits == 64:
        P2 = _double(P - int(P1))
        betas = split_weight_bits(weights, n)
        pairs = [_split_weight(w, b) for w, b in zip(weights, betas, strict=True)]
        s1 = np.array([p[0] for p in pairs], dtype=np.float64)
        s2 = np.array([p[1] for p in pairs], dtype=np.float64)
    else:
        P2 = 0.0
        betas = tuple(53 for _ in mods)
        s1 = np.array([_double(w) for w in weights], dtype=np.float64)
        s2 = np.zeros(n, dtype=np.float64)

    Pinv = _double_reciprocal(P)
    p_f64 = np.array(mods, dtype=np.float64)
    pinv64 = np.array([_double_reciprocal(p) for p in mods], dtype=np.float64)
    pinv32 = pinv64.astype(np.float32)
    pinv_prime = np.array([(2**32) // p - 1 for p in mods], dtype=np.int64)

    log2_p_minus_1 = math.log2(P - 1)
    P_fast = float(np.float32(log2_p_minus_1 - 1.5))
    P_accu = float(np.float32(log2_p_minus_1 - 0.5))

    return CRTConstantTable(
        moduli=mods,
        precision_bits=precision_bits,
        P_int=P,
        weights_int=weights,
        P1=P1,
        P2=P2,
        Pinv=Pinv,
        s1=s1,
        s2=s2,
        beta=betas,
        p_f64=p_f64,
        pinv64=pinv64,
        pinv32=pinv32,
        pinv_prime=pinv_prime,
        P_fast=P_fast,
        P_accu=P_accu,
        log2_P=math.log2(P),
    )


def build_constant_table(
    num_moduli: int,
    precision_bits: int = 64,
    moduli: Sequence[int] | None = None,
) -> CRTConstantTable:
    """Build (or fetch from cache) the constant table for ``num_moduli``.

    Parameters
    ----------
    num_moduli:
        Number of moduli ``N`` (2..20 with the default table).
    precision_bits:
        64 for DGEMM emulation, 32 for SGEMM emulation.
    moduli:
        Optional explicit moduli selection; defaults to the first ``N``
        entries of :data:`repro.crt.moduli.MODULI_TABLE`.
    """
    if moduli is None:
        mods = select_moduli(num_moduli)
    else:
        mods = validate_moduli(moduli)
        if len(mods) != num_moduli:
            raise ConfigurationError(
                f"got {len(mods)} moduli but num_moduli={num_moduli}"
            )
    return _build_cached(tuple(mods), int(precision_bits))
