"""Chinese Remainder Theorem machinery for Ozaki scheme II.

This subpackage provides everything Algorithm 1 needs around the CRT:

* :mod:`repro.crt.moduli` — the table of pairwise-coprime INT8-compatible
  moduli ``{256, 255, 253, 251, ...}`` and selection/validation helpers,
* :mod:`repro.crt.inverses` — exact modular inverses ``q_i`` and the product
  ``P`` (computed with Python integers, hence exact at any size),
* :mod:`repro.crt.constants` — the precomputed floating-point constant table
  of Section 4.1 (``P1``/``P2``, the split weights ``s_i1``/``s_i2`` with
  their ``β_i`` bit budgets, reciprocal tables, ``P'_fast``/``P'_accu``),
* :mod:`repro.crt.residues` — the residue kernels ``rmod``/``mod`` in both
  an IEEE-exact reference form and the paper's fast FMA / ``__mulhi`` form
  (Sections 4.2 and 4.3).
"""

from __future__ import annotations

from .adaptive import (
    AUTO_MODULI,
    DEFAULT_TARGET_ACCURACY,
    AdaptiveSelection,
    elementwise_error_bound,
    relative_error_bound,
    select_num_moduli,
)
from .constants import CRTConstantTable, build_constant_table
from .inverses import crt_weights, modular_inverses, moduli_product
from .moduli import (
    MAX_TABLE_SIZE,
    MODULI_TABLE,
    select_moduli,
    validate_moduli,
)
from .residues import (
    mod_exact,
    mod_fast_mulhi,
    residues_to_int8,
    rmod_exact,
    rmod_fast_fma,
)

__all__ = [
    "AUTO_MODULI",
    "DEFAULT_TARGET_ACCURACY",
    "AdaptiveSelection",
    "elementwise_error_bound",
    "relative_error_bound",
    "select_num_moduli",
    "CRTConstantTable",
    "build_constant_table",
    "crt_weights",
    "modular_inverses",
    "moduli_product",
    "MAX_TABLE_SIZE",
    "MODULI_TABLE",
    "select_moduli",
    "validate_moduli",
    "mod_exact",
    "mod_fast_mulhi",
    "residues_to_int8",
    "rmod_exact",
    "rmod_fast_fma",
]
