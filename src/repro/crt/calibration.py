"""Empirically calibrated margins for adaptive moduli selection.

The rigorous a-priori bound of :mod:`repro.crt.adaptive` is a *worst-case*
chase through the scale construction: every floor, clamp and round-up is
charged in full, so the guaranteed truncation bound sits 3–7.5 bits above
the error actually measured across workload families — the conservatism
grows with the inner dimension ``k``, because the Cauchy–Schwarz sum bound
behind the scale exponents gets looser as more terms accumulate (see
``benchmarks/results/calibration_qc.txt``).  Auto selection pays for that
conservatism in moduli: one modulus is worth ~4 bits of budget, so where
the measured margin clears the guard plus the gap to the next count the
rigorous model is provably over-provisioning by one or more moduli — and
every downstream phase (conversion, the N INT8 GEMMs, accumulation,
reconstruction) costs time linear in N.

This module holds the *measured* side of the story: per (precision, mode,
k-band) entries recording the smallest truncation-error conservatism (in
bits) observed across the QC harness's sensitivity sweep
(:func:`repro.accuracy.qc.sensitivity_sweep` — workload families ×
seeds × moduli counts in the truncation-dominated regime).  The calibrated
bound deducts a fixed *guard* from the observed margin and tightens only
the truncation term of the rigorous bound by the remainder::

    calibrated ρ(N, k) = trunc(N, k) · 2^(−margin_bits) + floor(N, k)

where ``floor`` is the accumulation/output-precision floor the margin never
touches.  Selection under ``model="calibrated"``
(:func:`repro.crt.adaptive.select_num_moduli`) may only *lower* the moduli
count relative to the rigorous selection, and only when the **margin test**
passes: a calibration entry must cover the requested ``(precision, mode,
k)`` and its observed margin must exceed the guard.  Everything else —
k beyond the calibrated range, a precision/mode pair without
measurements, an entry whose observed margin is consumed by the guard —
falls back to the rigorous selection, which remains a true upper bound.

The numbers below are *data with provenance*, not theory: they were fit by
running the sensitivity sweep in the repository's CI container (see the
``provenance`` field of :data:`DEFAULT_CALIBRATION`) and they are
re-checked on every benchmark run by the QC harness's negative controls
and the calibrated-selection property test
(``tests/property/test_calibration_property.py``).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from ..errors import ConfigurationError

__all__ = [
    "GUARD_BITS",
    "CalibrationEntry",
    "CalibrationTable",
    "DEFAULT_CALIBRATION",
    "K_BANDS",
]

#: Safety deduction (in bits) between the observed conservatism and the
#: margin the calibrated bound actually claims.  1.5 bits keeps the
#: calibrated bound ~2.8x above the worst error the sweep ever measured
#: in-band (a minimum over 450 cells per band: 5 families x 3 seeds x
#: 2-3 k values x the truncation-dominated counts in 2..16).  The guard
#: trades certification power against sampling risk: one modulus is worth
#: ~4 bits of budget, and the smallest observed margins (~3 bits on the
#: k <= 16 band, where the sum bound is tightest) leave nothing claimable
#: under a 3-bit guard while larger k bands clear one modulus comfortably.
GUARD_BITS: float = 1.5

#: Inclusive k-bands the calibration is fit over.  Inner dimensions beyond
#: the last band are uncalibrated: the margin test fails and selection
#: falls back to the rigorous model.
K_BANDS: Tuple[Tuple[int, int], ...] = (
    (1, 16),
    (17, 64),
    (65, 256),
    (257, 1024),
    (1025, 4096),
)


@dataclasses.dataclass(frozen=True)
class CalibrationEntry:
    """Measured truncation-bound conservatism over one k-band.

    Attributes
    ----------
    k_lo / k_hi:
        Inclusive inner-dimension range the entry was fit over.
    observed_margin_bits:
        The *smallest* ``log2(rigorous truncation bound / measured error)``
        across the sweep's families, seeds and truncation-dominated moduli
        counts in this band.
    guard_bits:
        Safety deduction; the claimed margin is
        ``observed_margin_bits − guard_bits`` (clamped at 0).
    """

    k_lo: int
    k_hi: int
    observed_margin_bits: float
    guard_bits: float = GUARD_BITS

    def __post_init__(self) -> None:
        if not (1 <= self.k_lo <= self.k_hi):
            raise ConfigurationError(
                f"calibration band must satisfy 1 <= k_lo <= k_hi, got "
                f"[{self.k_lo}, {self.k_hi}]"
            )
        if self.guard_bits < 0.0:
            raise ConfigurationError(
                f"guard_bits must be non-negative, got {self.guard_bits}"
            )

    @property
    def margin_bits(self) -> float:
        """The margin the calibrated bound claims (observed minus guard)."""
        return max(0.0, float(self.observed_margin_bits) - float(self.guard_bits))

    @property
    def margin_test_passes(self) -> bool:
        """True when this entry licenses a calibrated tightening at all."""
        return self.margin_bits > 0.0


@dataclasses.dataclass(frozen=True)
class CalibrationTable:
    """Calibration entries keyed by ``(precision_bits, mode)``.

    ``entries`` maps ``(64 | 32, "fast" | "accurate")`` to a tuple of
    :class:`CalibrationEntry` bands; ``provenance`` records where the
    numbers came from (host class, sweep, date) so the table is auditable.
    """

    entries: Dict[Tuple[int, str], Tuple[CalibrationEntry, ...]]
    provenance: str = ""

    def entry_for(
        self, k: int, precision_bits: int, mode: str
    ) -> Optional[CalibrationEntry]:
        """The band covering ``k`` for this precision/mode, or ``None``."""
        bands = self.entries.get((int(precision_bits), str(mode)))
        if not bands:
            return None
        k = int(k)
        for entry in bands:
            if entry.k_lo <= k <= entry.k_hi:
                return entry
        return None


def _bands(*observed: float) -> Tuple[CalibrationEntry, ...]:
    return tuple(
        CalibrationEntry(k_lo=lo, k_hi=hi, observed_margin_bits=bits)
        for (lo, hi), bits in zip(K_BANDS, observed, strict=True)
    )


#: The shipped calibration, fit by ``repro.accuracy.qc.sensitivity_sweep``
#: over 9000 measured cells with **zero** rigorous-bound violations.  Each
#: number is the minimum observed truncation margin (bits) in its band,
#: floored to two decimals (flooring can only under-claim); the guard is
#: applied on top at lookup time.  The binding family is ``uniform`` at
#: small k — full-scale entries sit closest to the worst-case truncation —
#: while the phi families run 3-5 bits more conservative still.
DEFAULT_CALIBRATION = CalibrationTable(
    entries={
        (64, "fast"): _bands(3.18, 4.25, 4.95, 6.24, 7.15),
        (64, "accurate"): _bands(2.94, 4.35, 5.05, 6.34, 7.46),
        (32, "fast"): _bands(3.46, 4.50, 5.62, 6.60, 7.50),
        (32, "accurate"): _bands(3.44, 4.60, 5.72, 6.70, 7.60),
    },
    provenance=(
        "fit 2026-08-07 by repro.accuracy.qc.sensitivity_sweep on the CI "
        "container (1 CPU, NumPy INT8 engine): families "
        "gaussian/uniform/phi0.5/phi1/phi2, seeds 0-2, "
        "k in (8,16,32,64,128,256,512,1024,2048,4096), moduli counts 2-16 "
        "(truncation-dominated cells only), m=n=64, both precisions and "
        "modes; 9000 rows, 0 rigorous-bound violations"
    ),
)
