"""Accuracy-driven moduli-count selection (the auto-N engine).

Every phase of the emulation — conversion, the ``N`` INT8 GEMMs, the
accumulation, the CRT reconstruction — costs time linear in the moduli
count, yet the *required* ``N`` is a function of the problem: the inner
dimension ``k``, the operand magnitudes, and the accuracy the caller
actually needs.  This module turns the scaling construction of
:mod:`repro.core.scaling` into a rigorous a-priori bound on the emulated
product's element-wise error and inverts it: given a target accuracy,
:func:`select_num_moduli` returns the smallest ``N`` whose bound meets it.

Derivation
----------
Write ``A' = trunc(diag(μ)·A)`` and ``B' = trunc(B·diag(ν))``.  The CRT
pipeline reproduces ``A'B'`` exactly (the residue GEMMs are exact integer
products and the split-weight accumulation of Section 4.3 commits only the
reconstruction roundoff), so the dominant error is the truncation::

    (AB − C)_ij = Σ_h [ a_ih·δb_h / ν_j + b_hj·δa_h / μ_i − δa_h·δb_h/(μ_i ν_j) ]

with ``|δa|, |δb| < 1``.  The fast-mode scale construction
(:func:`repro.core.scaling.fast_mode_scale_a`) picks the exponent
``⌊α − max(1, 0.51·log2 S_i)⌋ − M_i`` where ``α = (log2(P−1) − 1.5)/2`` is
the per-side budget, ``M_i = ⌊log2 max_h |a_ih|⌋`` and ``S_i ≤ 4k·(1+γ)``
bounds the sum of squares of the ``2^{−M_i}``-normalised row.  Chasing the
floor and the clamp through gives the guaranteed scale lower bound

.. math::

    1/μ_i \\;\\le\\; \\max|A| \\cdot 2^{\\,c(k) − α}, \\qquad
    c(k) = 1 + \\max(1,\\; 0.51\\,\\log_2(4k(1+γ))) + c_{slack}

(and the analogous bound for ``ν``; accurate mode's direct-product scales
obey the same form with ``c(k) = 0.51·log2(4096·k) − 4 + c_slack``, since
``C̄`` entries are at most ``k·2^{12}``).  Substituting into the truncation
sum and adding the reconstruction roundoff ``u_acc·k`` (``u_acc = 2^{−52}``
for the split 64-bit tables, ``2^{−36}`` for the unsplit 32-bit tables, as
in :mod:`repro.accuracy.error_bounds`) yields the **relative** bound

.. math::

    \\frac{\\max_{ij} |(AB − C)_{ij}|}{k\\,\\max|A|\\,\\max|B|}
    \\;\\le\\; ρ(N, k) = 2^{\\,c(k)+1−α(N)} + 2^{\\,2(c(k)−α(N))} + u_{acc}\\,k.

``ρ`` depends only on ``(N, k, precision, mode)`` — the operand magnitudes
cancel against the natural scale ``k·max|A|·max|B|`` — so the selection is
magnitude-invariant: rescaling the data by powers of two never changes the
chosen ``N``.  This is what makes prepared-operand reuse sound under auto
selection: the ``N`` chosen at preparation time (from the operand's own
max-abs scan) is exactly the ``N`` every partner's multiplication selects
under the same target (see :mod:`repro.core.operand`).

The bound is deliberately coarse (the property suite measures it two to
four orders above the observed error) but it is a *true* upper bound for
this library's scaling construction, which ``tests/crt/test_adaptive.py``
and the adaptive benchmark verify across workload families.
"""

from __future__ import annotations

import dataclasses
import math
import warnings
from typing import Optional

from ..config import MAX_MODULI
from ..errors import ConfigurationError
from ..utils.fp import upper_bound_inflation
from .calibration import DEFAULT_CALIBRATION, CalibrationTable
from .constants import build_constant_table

__all__ = [
    "AUTO_MODULI",
    "DEFAULT_TARGET_ACCURACY",
    "SELECTION_MODELS",
    "AdaptiveSelection",
    "truncation_margin_exponent",
    "truncation_relative_bound",
    "floor_relative_bound",
    "relative_error_bound",
    "calibrated_relative_bound",
    "elementwise_error_bound",
    "select_num_moduli",
]

#: Sentinel value of ``Ozaki2Config.num_moduli`` requesting auto selection.
AUTO_MODULI = "auto"

#: Default relative accuracy target per precision (keyed on the constant
#: table's bit width).  The values match the library's default solver
#: tolerances (``repro solve``: 1e-10 for fp64, 1e-5 for fp32) — "as
#: accurate as the rest of the pipeline asks for", not "as accurate as the
#: format allows"; callers wanting the full fixed-N accuracy pass a tighter
#: ``target_accuracy`` or a fixed ``num_moduli``.
DEFAULT_TARGET_ACCURACY = {64: 1e-10, 32: 1e-5}

#: Smallest moduli count the selector may return (the constant tables
#: require at least two moduli).
_MIN_MODULI = 2

#: Slack (in bits) absorbing the floating-point evaluation of the scale
#: exponents themselves (the ``0.51·log2 S`` term is computed in float64;
#: its rounding is far below one bit, 0.1 is generous).
_SLACK_BITS = 0.1

#: Accumulation/reconstruction unit roundoff per table bit width (matches
#: :mod:`repro.accuracy.error_bounds`).
_U_ACC = {64: 2.0**-52, 32: 2.0**-36}

#: Output-precision rounding floor: the final :func:`~repro.core.
#: accumulation.unscale` rounds the reconstructed product into the target
#: dtype, committing up to one unit roundoff of the *result* format
#: relative to the natural scale ``k·max|A|·max|B|``.  For fp64 targets
#: this is absorbed by ``u_acc·k``; for fp32 targets (2^-24) it dominates
#: the floor at every k — without it the model would promise targets
#: tighter than float32 can represent, and a tight-target selection would
#: report ``met=True`` for an error the output rounding alone exceeds.
_U_OUT = {64: 2.0**-52, 32: 2.0**-24}

#: Selection models accepted by :func:`select_num_moduli` and
#: ``Ozaki2Config.selection_model``.
SELECTION_MODELS = ("rigorous", "calibrated")

#: Once-per-process latch of the clamp warning (see ``_warn_clamped``).
_CLAMP_WARNING_EMITTED = False


@dataclasses.dataclass(frozen=True)
class AdaptiveSelection:
    """Outcome of one auto-N selection.

    Attributes
    ----------
    num_moduli:
        The selected moduli count (clamped to ``[2, MAX_MODULI]``).
    target:
        The relative accuracy target the selection aimed for.
    met:
        Whether the a-priori bound at ``num_moduli`` meets ``target``.
        False only when even ``MAX_MODULI`` moduli cannot — the selection
        then clamps rather than failing, and ``bound`` reports what *is*
        guaranteed.
    bound:
        Guaranteed absolute element-wise error bound
        ``max_ij |(AB − C)_ij| ≤ bound`` at the selected ``N``.
    relative_bound:
        The same bound divided by the natural scale ``k·max|A|·max|B|``
        (0 when either operand is identically zero).
    k:
        Inner dimension the selection was made for.
    max_abs_a / max_abs_b:
        The operand max-abs values used (the B value is the partner's, or
        the operand's own at preparation time — the relative bound is
        magnitude-invariant, so this never changes the selected ``N``).
    precision_bits:
        64 (DGEMM emulation) or 32 (SGEMM emulation).
    mode:
        ``"fast"`` or ``"accurate"`` — selects the margin constant.
    model:
        The selection model that was *requested* (``"rigorous"`` or
        ``"calibrated"``).
    decided_by:
        The model that actually fixed ``num_moduli``.  Under
        ``model="calibrated"`` this is ``"calibrated"`` only when the
        margin test passed *and* the calibrated bound lowered the count;
        otherwise the guaranteed-safe rigorous selection decided and this
        reads ``"rigorous"`` (the fallback engaging is observable here).
    rigorous_num_moduli:
        The count the rigorous model selects for the same inputs — equal to
        ``num_moduli`` unless the calibrated model lowered it.
    calibration_margin_bits:
        The margin (bits) the calibrated bound claimed when it decided;
        0.0 when the rigorous model decided.
    """

    num_moduli: int
    target: float
    met: bool
    bound: float
    relative_bound: float
    k: int
    max_abs_a: float
    max_abs_b: float
    precision_bits: int
    mode: str
    model: str = "rigorous"
    decided_by: str = "rigorous"
    rigorous_num_moduli: Optional[int] = None
    calibration_margin_bits: float = 0.0

    @property
    def scale(self) -> float:
        """The natural error scale ``k·max|A|·max|B|``."""
        return float(self.k) * self.max_abs_a * self.max_abs_b


def truncation_margin_exponent(k: int, mode: str = "fast") -> float:
    """The margin ``c(k)`` of the scale lower bound ``1/μ ≤ max|A|·2^{c−α}``.

    Fast mode: the clamp term of the exponent formula is at most
    ``max(1, 0.51·log2(4k·(1+γ)))`` (normalised entries are below 2 in
    magnitude, so the round-up sum of squares is below ``4k`` inflated by
    :func:`repro.utils.fp.upper_bound_inflation`); the floor loses one more
    bit.  Accurate mode: the direct-product bound matrix ``C̄`` has entries
    at most ``k·2^{12}`` (both magnitude matrices are below ``2^6``), and
    the pre-scale ``μ'`` contributes ``2^{M−5}``.
    """
    k = int(k)
    if k < 1:
        raise ConfigurationError(f"k must be positive, got {k}")
    if mode == "fast":
        inflation = upper_bound_inflation(2 * k)
        clamp = max(1.0, 0.51 * math.log2(4.0 * k * inflation))
        return 1.0 + clamp + _SLACK_BITS
    if mode == "accurate":
        return 0.51 * math.log2(4096.0 * k) - 4.0 + _SLACK_BITS
    raise ConfigurationError(f"unknown compute mode {mode!r}")


def truncation_relative_bound(
    k: int, num_moduli: int, precision_bits: int = 64, mode: str = "fast"
) -> float:
    """The truncation term of ``ρ(N, k)`` alone (no accumulation floor).

    This is the part of the bound the worst-case derivation inflates — and
    therefore the only part the calibrated model is allowed to tighten
    (:func:`calibrated_relative_bound`); the roundoff floor of
    :func:`floor_relative_bound` is charged in full by both models.
    """
    if precision_bits not in _U_ACC:
        raise ConfigurationError(
            f"precision_bits must be 32 or 64, got {precision_bits}"
        )
    table = build_constant_table(int(num_moduli), int(precision_bits))
    alpha = 0.5 * float(table.P_fast)
    c = truncation_margin_exponent(k, mode)
    return 2.0 ** (c - alpha + 1.0) + 2.0 ** (2.0 * (c - alpha))


def floor_relative_bound(k: int, precision_bits: int = 64) -> float:
    """The N-independent roundoff floor of ``ρ``: ``u_acc·k + u_out``.

    ``u_acc·k`` is the accumulation/reconstruction roundoff of the split
    tables; ``u_out`` is the final rounding into the target dtype (see
    ``_U_OUT`` — material for fp32 targets, negligible for fp64).  No
    moduli count can push the error below this floor, so targets beneath
    it report ``met=False`` instead of promising the impossible.
    """
    if precision_bits not in _U_ACC:
        raise ConfigurationError(
            f"precision_bits must be 32 or 64, got {precision_bits}"
        )
    k = int(k)
    if k < 1:
        raise ConfigurationError(f"k must be positive, got {k}")
    bits = int(precision_bits)
    return _U_ACC[bits] * float(k) + _U_OUT[bits]


def relative_error_bound(
    k: int, num_moduli: int, precision_bits: int = 64, mode: str = "fast"
) -> float:
    """Relative bound ``ρ(N, k)``: max element error over ``k·max|A|·max|B|``.

    Magnitude-invariant (see the module docstring): this is the quantity
    the selection compares against ``target_accuracy``.  The sum of
    :func:`truncation_relative_bound` and :func:`floor_relative_bound`.
    """
    return truncation_relative_bound(
        k, num_moduli, precision_bits, mode
    ) + floor_relative_bound(k, precision_bits)


def calibrated_relative_bound(
    k: int,
    num_moduli: int,
    precision_bits: int = 64,
    mode: str = "fast",
    calibration: Optional[CalibrationTable] = None,
) -> Optional[float]:
    """Calibrated relative bound, or ``None`` when the margin test fails.

    The truncation term is tightened by the band's claimed margin
    (observed conservatism minus the guard — see
    :mod:`repro.crt.calibration`); the roundoff floor is charged in full.
    ``None`` means no calibration entry covers ``(precision, mode, k)`` or
    its observed margin is consumed by the guard: callers must fall back
    to :func:`relative_error_bound`.
    """
    table = calibration if calibration is not None else DEFAULT_CALIBRATION
    entry = table.entry_for(k, precision_bits, mode)
    if entry is None or not entry.margin_test_passes:
        return None
    trunc = truncation_relative_bound(k, num_moduli, precision_bits, mode)
    return trunc * 2.0**-entry.margin_bits + floor_relative_bound(
        k, precision_bits
    )


def elementwise_error_bound(
    k: int,
    max_abs_a: float,
    max_abs_b: float,
    num_moduli: int,
    precision_bits: int = 64,
    mode: str = "fast",
) -> float:
    """Absolute element-wise bound ``max_ij |(AB − C)_ij|`` of one emulation.

    The product of :func:`relative_error_bound` and the natural scale
    ``k·max|A|·max|B|``.  Zero operands give a zero bound (the emulated
    product of a zero matrix is exactly zero).
    """
    max_abs_a = _check_max_abs(max_abs_a, "A")
    max_abs_b = _check_max_abs(max_abs_b, "B")
    scale = float(k) * max_abs_a * max_abs_b
    if scale == 0.0:
        return 0.0
    return relative_error_bound(k, num_moduli, precision_bits, mode) * scale


def _check_max_abs(value: float, which: str) -> float:
    value = float(value)
    if not (value >= 0.0) or math.isinf(value):
        raise ConfigurationError(
            f"max|{which}| must be a finite non-negative value, got {value}"
        )
    return value


def _warn_clamped(target: float, max_moduli: int, relative_bound: float) -> None:
    """Once-per-process warning when selection clamps with ``met=False``.

    Silent clamping was a bug: every caller (GEMM, GEMV, batches, the
    solvers) received a result missing its requested ``target_accuracy``
    with no signal.  The warning fires once per process (a solver loop
    re-selecting every iteration must not spam); programmatic callers read
    ``AdaptiveSelection.met`` / ``Result.bound_met`` instead.
    """
    global _CLAMP_WARNING_EMITTED
    if _CLAMP_WARNING_EMITTED:
        return
    _CLAMP_WARNING_EMITTED = True
    warnings.warn(
        f"target_accuracy={target:g} is unreachable: even num_moduli="
        f"{max_moduli} only guarantees a relative bound of "
        f"{relative_bound:g}; proceeding with the clamped count "
        "(selection.met / Result.bound_met report False; this warning is "
        "emitted once per process)",
        RuntimeWarning,
        stacklevel=4,
    )


def select_num_moduli(
    k: int,
    max_abs_a: float,
    max_abs_b: float,
    precision_bits: int = 64,
    target: "float | None" = None,
    mode: str = "fast",
    max_moduli: int = MAX_MODULI,
    model: str = "rigorous",
    calibration: Optional[CalibrationTable] = None,
) -> AdaptiveSelection:
    """Smallest ``N`` whose a-priori bound meets the accuracy target.

    Parameters
    ----------
    k:
        Inner dimension of the product.
    max_abs_a / max_abs_b:
        ``max|A|`` / ``max|B|`` — the max-abs scans the scaling pass
        performs anyway.  They parameterise the returned absolute bound;
        the *selection* is magnitude-invariant (the relative bound does not
        depend on them), except that a zero operand short-circuits to the
        minimum ``N`` with a zero bound.
    precision_bits:
        64 for DGEMM emulation, 32 for SGEMM emulation.
    target:
        Relative accuracy target in ``(0, 1)``; ``None`` uses
        :data:`DEFAULT_TARGET_ACCURACY` for the precision.
    mode:
        ``"fast"`` or ``"accurate"``.
    max_moduli:
        Upper clamp (:data:`repro.config.MAX_MODULI` by default).  A target
        unreachable even at the clamp returns ``met=False`` with the clamp
        value rather than raising — auto selection degrades to the most
        accurate supported configuration, the returned ``bound`` states
        what is actually guaranteed, and a once-per-process
        ``RuntimeWarning`` flags the shortfall.
    model:
        ``"rigorous"`` (default) selects from the guaranteed a-priori
        bound alone.  ``"calibrated"`` additionally consults the measured
        calibration (:mod:`repro.crt.calibration`): when the margin test
        passes, the count may be *lowered* to the smallest ``N`` whose
        calibrated bound meets the target — never raised, and never past
        a failed margin test (uncovered ``k``, missing entry, guard-
        consumed margin), where the rigorous selection stands unchanged.
        ``decided_by`` on the result records which model fixed the count.
    calibration:
        Calibration table override for ``model="calibrated"``; defaults to
        the shipped :data:`repro.crt.calibration.DEFAULT_CALIBRATION`.
    """
    k = int(k)
    if k < 1:
        raise ConfigurationError(f"k must be positive, got {k}")
    if precision_bits not in _U_ACC:
        raise ConfigurationError(
            f"precision_bits must be 32 or 64, got {precision_bits}"
        )
    if target is None:
        target = DEFAULT_TARGET_ACCURACY[int(precision_bits)]
    target = float(target)
    if not (0.0 < target < 1.0):
        raise ConfigurationError(
            f"target_accuracy must lie in (0, 1), got {target}"
        )
    max_moduli = int(max_moduli)
    if not (_MIN_MODULI <= max_moduli <= MAX_MODULI):
        raise ConfigurationError(
            f"max_moduli must lie in [{_MIN_MODULI}, {MAX_MODULI}], got {max_moduli}"
        )
    model = str(model).strip().lower()
    if model not in SELECTION_MODELS:
        raise ConfigurationError(
            f"selection model must be one of {SELECTION_MODELS}, got {model!r}"
        )
    max_abs_a = _check_max_abs(max_abs_a, "A")
    max_abs_b = _check_max_abs(max_abs_b, "B")

    scale = float(k) * max_abs_a * max_abs_b
    if scale == 0.0:
        # A zero operand: the emulated product is exactly zero for any N.
        return AdaptiveSelection(
            num_moduli=_MIN_MODULI,
            target=target,
            met=True,
            bound=0.0,
            relative_bound=0.0,
            k=k,
            max_abs_a=max_abs_a,
            max_abs_b=max_abs_b,
            precision_bits=int(precision_bits),
            mode=mode,
            model=model,
            decided_by="rigorous",
            rigorous_num_moduli=_MIN_MODULI,
        )

    chosen, met, rel = max_moduli, False, relative_error_bound(
        k, max_moduli, precision_bits, mode
    )
    for n in range(_MIN_MODULI, max_moduli + 1):
        candidate = relative_error_bound(k, n, precision_bits, mode)
        if candidate <= target:
            chosen, met, rel = n, True, candidate
            break
    if not met:
        _warn_clamped(target, max_moduli, rel)

    rigorous_chosen = chosen
    decided_by = "rigorous"
    margin_bits = 0.0
    if model == "calibrated" and met:
        # The calibrated model may only *lower* the count, and only when
        # the margin test passes (calibrated_relative_bound returns None
        # otherwise — the guaranteed-safe fallback is the selection above).
        for n in range(_MIN_MODULI, rigorous_chosen):
            candidate = calibrated_relative_bound(
                k, n, precision_bits, mode, calibration
            )
            if candidate is None:
                break
            if candidate <= target:
                table = (
                    calibration if calibration is not None else DEFAULT_CALIBRATION
                )
                entry = table.entry_for(k, precision_bits, mode)
                assert entry is not None  # candidate is not None above
                chosen, rel = n, candidate
                decided_by = "calibrated"
                margin_bits = entry.margin_bits
                break
    return AdaptiveSelection(
        num_moduli=chosen,
        target=target,
        met=met,
        bound=rel * scale,
        relative_bound=rel,
        k=k,
        max_abs_a=max_abs_a,
        max_abs_b=max_abs_b,
        precision_bits=int(precision_bits),
        mode=mode,
        model=model,
        decided_by=decided_by,
        rigorous_num_moduli=rigorous_chosen,
        calibration_margin_bits=margin_bits,
    )
