"""Pairwise-coprime moduli compatible with INT8 matrix engines.

Section 4.1 of the paper fixes the moduli as pairwise-coprime integers taken
from a descending table starting at 256 (``{256, 255, 253, 251, ...}``), so
that the centred residues ``rmod(X, p_i)`` always fit the INT8 input range
``[-128, 127]`` (with the single value ``+128`` wrapping harmlessly to
``-128`` for ``p_1 = 256``).

The table below is generated greedily: walk downward from 256 and keep every
integer that is coprime with all previously kept ones.  This maximises each
modulus (hence the product ``P`` and therefore the attainable accuracy for a
given ``N``) and reproduces the head of the paper's table exactly
(256, 255, 253, 251, ...).  Thirty-two entries are kept, comfortably more
than the ``N <= 20`` supported by the constant tables.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence, Tuple

from ..errors import ModuliError

__all__ = [
    "MODULI_TABLE",
    "MAX_TABLE_SIZE",
    "generate_moduli_table",
    "select_moduli",
    "validate_moduli",
]


def generate_moduli_table(max_value: int = 256, count: int = 32) -> Tuple[int, ...]:
    """Generate the descending pairwise-coprime moduli table.

    Starting from ``max_value`` and walking down, an integer is kept when it
    is coprime with every integer already kept.  The walk stops after
    ``count`` entries or when the candidate drops below 2.
    """
    if max_value < 2:
        raise ModuliError("max_value must be at least 2")
    if count < 1:
        raise ModuliError("count must be positive")
    chosen: list[int] = []
    candidate = max_value
    while candidate >= 2 and len(chosen) < count:
        if all(math.gcd(candidate, p) == 1 for p in chosen):
            chosen.append(candidate)
        candidate -= 1
    return tuple(chosen)


#: Size of the precomputed table.
MAX_TABLE_SIZE: int = 32

#: The default moduli table: descending, pairwise coprime, all <= 256.
MODULI_TABLE: Tuple[int, ...] = generate_moduli_table(256, MAX_TABLE_SIZE)


def validate_moduli(moduli: Sequence[int]) -> Tuple[int, ...]:
    """Validate a user-supplied moduli sequence.

    Checks that there are at least two moduli, that each lies in ``[2, 256]``
    (so its centred residues fit INT8), and that they are pairwise coprime.
    Returns the moduli as a tuple.
    """
    mods = tuple(int(p) for p in moduli)
    if len(mods) < 2:
        raise ModuliError(f"need at least 2 moduli, got {len(mods)}")
    if len(set(mods)) != len(mods):
        raise ModuliError("moduli must be distinct")
    for p in mods:
        if not (2 <= p <= 256):
            raise ModuliError(f"modulus {p} outside the INT8-compatible range [2, 256]")
    for i, p in enumerate(mods):
        for q in mods[i + 1:]:
            if math.gcd(p, q) != 1:
                raise ModuliError(f"moduli {p} and {q} are not coprime")
    return mods


def select_moduli(num_moduli: int, table: Iterable[int] = MODULI_TABLE) -> Tuple[int, ...]:
    """Return the first ``num_moduli`` entries of the moduli table.

    Taking the largest available moduli maximises ``P`` and therefore the
    accuracy attainable with a given number of INT8 GEMMs.
    """
    table = tuple(table)
    if not (2 <= num_moduli <= len(table)):
        raise ModuliError(
            f"num_moduli must be between 2 and {len(table)}, got {num_moduli}"
        )
    return validate_moduli(table[:num_moduli])
