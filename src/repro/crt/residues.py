"""Residue kernels: ``rmod`` and ``mod`` (Sections 4.2 and 4.3).

Two families of implementations are provided.

Reference kernels
    :func:`rmod_exact` and :func:`mod_exact` use IEEE-exact remainder
    operations (``fmod`` on floats is exact; integer ``%`` is exact), so
    they realise the mathematical definitions

    .. math::

        \\mathrm{rmod}(X, p) = X - p\\,\\mathrm{round}(X/p), \\qquad
        \\mathrm{mod}(X, p)  = X - p\\,\\lfloor X/p \\rfloor

    with no error.  They are the default used by the emulation.

Fast kernels
    :func:`rmod_fast_fma` reproduces the FMA/reciprocal kernel of
    Section 4.2 (built-in ``fmod`` is slow on GPUs, so the paper multiplies
    by a precomputed reciprocal, rounds, and corrects with up to two extra
    FMA steps depending on ``N``), and :func:`mod_fast_mulhi` reproduces the
    ``__mulhi``-based integer kernel of Section 4.3.  They exist both for
    fidelity to the paper and so the test-suite can check the windows of
    validity the paper states (``N <= 18`` for FP32 inputs, ``N <= 20`` for
    FP64 inputs).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from ..utils.fma import fma

__all__ = [
    "rmod_exact",
    "mod_exact",
    "rmod_fast_fma",
    "mod_fast_mulhi",
    "residues_to_int8",
    "uint8_residues",
    "uint8_residues_stack",
]

#: Correction-step thresholds (N1, N2) of the fast rmod kernel, per input
#: precision (Section 4.2).
_FAST_RMOD_THRESHOLDS = {64: (13, 19), 32: (5, 11)}


#: Largest magnitude that is safely converted to int64 for the fast integer
#: remainder path (one bit of headroom below 2**63).
_INT64_SAFE_LIMIT = 2.0**62


def _nonneg_mod_integer_valued(
    x: np.ndarray, p: int, max_abs: float | None = None
) -> np.ndarray:
    """Exact ``x mod p`` in ``[0, p)`` for integer-valued float64 ``x``.

    Uses int64 remainders (much faster than ``fmod``) whenever the values
    fit; larger values — which occur for many moduli, where the scaled
    matrices can exceed 2**62 — are split exactly into
    ``x = hi * 2**31 + lo`` (both parts fit int64) and recombined modulo
    ``p``.  Either way the result is exact.

    ``max_abs`` lets callers that reduce the *same* matrix by many moduli
    pass a precomputed ``max(|x|)``, so the full-matrix scan that selects the
    int64 path runs once per conversion instead of once per modulus.
    """
    x = np.asarray(x, dtype=np.float64)
    p_int = int(p)
    if max_abs is None:
        max_abs = float(np.max(np.abs(x))) if x.size else 0.0
    if max_abs < _INT64_SAFE_LIMIT:
        return np.remainder(x.astype(np.int64), p_int).astype(np.float64)
    # Exact split: hi = floor(x / 2^31) is an integer below 2^62 for
    # |x| < 2^93 (far above anything the scaling can produce); lo = x - hi*2^31
    # lies in [0, 2^31).  Both steps are exact in float64.
    hi = np.floor(np.ldexp(x, -31))
    lo = x - np.ldexp(hi, 31)
    hi_mod = np.remainder(hi.astype(np.int64), p_int)
    lo_mod = np.remainder(lo.astype(np.int64), p_int)
    shift_mod = pow(2, 31, p_int)
    return np.remainder(hi_mod * shift_mod + lo_mod, p_int).astype(np.float64)


def rmod_exact(x: np.ndarray, p: int, max_abs: float | None = None) -> np.ndarray:
    """Centred remainder ``x - p*round(x/p)`` computed exactly.

    ``x`` must contain integer-valued float64 entries (as produced by the
    truncation step of Algorithm 1).  The result lies in ``[-p/2, p/2]``;
    for even ``p`` the boundary value ``+p/2`` is kept (the INT8 engine
    wraps ``+128`` to ``-128``, which is congruent modulo 256).  ``max_abs``
    is an optional precomputed ``max(|x|)`` (see
    :func:`_nonneg_mod_integer_valued`).
    """
    p_f = float(int(p))
    r = _nonneg_mod_integer_valued(x, p, max_abs=max_abs)
    return np.where(r > p_f / 2.0, r - p_f, r)


def mod_exact(x: np.ndarray, p: int) -> np.ndarray:
    """Non-negative remainder ``x mod p`` in ``[0, p)`` (exact)."""
    x = np.asarray(x)
    if np.issubdtype(x.dtype, np.floating):
        return _nonneg_mod_integer_valued(x, p)
    return np.mod(x, np.asarray(p, dtype=x.dtype))


def rmod_fast_fma(
    x: np.ndarray,
    p: int,
    pinv_b: float,
    pinv32: float,
    num_moduli: int,
    precision_bits: int,
) -> np.ndarray:
    """The paper's fast ``rmod`` kernel (Section 4.2).

    Steps (with ``fma(a, b, c) = a*b + c``):

    1. ``y = single(fma(round(x * pinv_b), -p, x))``
    2. if ``N >= N1``: ``y = fma(round(y * pinv32), -p, y)``
    3. if ``N >= N2``: ``y = fma(round(y * pinv32), -p, y)``

    where ``(N1, N2) = (13, 19)`` for FP64 inputs and ``(5, 11)`` for FP32
    inputs.  The kernel returns values congruent to ``x`` modulo ``p`` whose
    magnitude fits INT8 for the ``N`` ranges stated in the paper; the test
    suite verifies this window against :func:`rmod_exact`.
    """
    try:
        n1, n2 = _FAST_RMOD_THRESHOLDS[int(precision_bits)]
    except KeyError:
        raise ConfigurationError(
            f"precision_bits must be 32 or 64, got {precision_bits}"
        ) from None
    x = np.asarray(x, dtype=np.float64)
    p_f = float(int(p))
    y = fma(np.rint(x * float(pinv_b)), -p_f, x)
    # The paper stores the first correction in FP32; the value is already
    # small (order p * number-of-correction-steps), so this cast is lossless
    # for integers below 2^24 and mirrors the GPU register usage.
    y = np.asarray(y, dtype=np.float32).astype(np.float64)
    if num_moduli >= n1:
        y = fma(np.rint(y * float(pinv32)), -p_f, y)
    if num_moduli >= n2:
        y = fma(np.rint(y * float(pinv32)), -p_f, y)
    return y


def mod_fast_mulhi(c: np.ndarray, p: int, pinv_prime: int) -> np.ndarray:
    """The paper's ``__mulhi``-based ``mod`` kernel for INT32 inputs.

    Steps (Section 4.3), with ``mulhi`` the upper 32 bits of the 64-bit
    product:

    1. ``y = x - mulhi(x, pinv') * p``
    2. ``y = y - (y >= p) * p``
    3. ``y = y + (y < 0) * p``

    Returns values in ``[0, p)`` equal to ``c mod p``.
    """
    c64 = np.asarray(c, dtype=np.int64)
    t = (c64 * np.int64(int(pinv_prime))) >> np.int64(32)
    y = c64 - t * np.int64(int(p))
    y = y - (y >= p) * np.int64(int(p))
    y = y + (y < 0) * np.int64(int(p))
    return y


def _wrap_to_int8(r: np.ndarray) -> np.ndarray:
    """Cast centred residues to INT8, wrapping ``+128`` to ``-128``.

    Values must already lie in ``[-128, 128]``; the single boundary value
    ``+128`` (reachable only for ``p = 256``) wraps exactly as the hardware
    cast does and is congruent modulo 256 (Section 4.1).
    """
    r_int = np.rint(r).astype(np.int16)
    r_int = np.where(r_int == 128, np.int16(-128), r_int)
    return r_int.astype(np.int8)


def residues_to_int8(
    x: np.ndarray,
    moduli: Sequence[int],
    kernel: str = "exact",
    pinv_b: np.ndarray | None = None,
    pinv32: np.ndarray | None = None,
    precision_bits: int = 64,
    single_pass: bool = True,
) -> np.ndarray:
    """Residues of an integer-valued array for every modulus, as INT8.

    Returns an array of shape ``(N, *x.shape)`` holding
    ``rmod(x, p_i)`` cast to INT8 (lines 4-5 of Algorithm 1).  ``x`` may be
    any shape — the kernels are element-wise, so a 1-D vector (the ``n = 1``
    GEMV operand of :func:`repro.core.gemv.prepared_gemv`) converts in the
    same single pass as a matrix and is bit-identical to converting the
    equivalent ``(k, 1)`` column: a vector-shaped conversion is simply a
    matrix-shaped one without the dead trailing axis.

    Parameters
    ----------
    x:
        Integer-valued float64 array (``A'``, ``B'`` or a GEMV vector
        ``x'``).
    moduli:
        Sequence of moduli.
    kernel:
        ``"exact"`` (default) or ``"fast_fma"`` for the Section 4.2 kernel.
    pinv_b, pinv32, precision_bits:
        Reciprocal tables and input precision, required by the fast kernel.
    single_pass:
        When True (default), convert once and broadcast the remainder across
        a leading moduli axis: the ``max(|x|)`` scan and the float64→int64
        conversion run a single time for all ``N`` moduli instead of once
        per modulus.  When False, fall back to the per-modulus loop (kept as
        the pre-fusion comparator for benchmarks and bit-identity tests).
        Both paths are exact integer arithmetic and bit-identical.
    """
    x = np.asarray(x, dtype=np.float64)
    mods = [int(p) for p in moduli]
    if kernel not in ("exact", "fast_fma"):
        raise ConfigurationError(f"unknown residue kernel {kernel!r}")
    if kernel == "fast_fma" and (pinv_b is None or pinv32 is None):
        raise ConfigurationError("fast_fma kernel requires pinv_b and pinv32 tables")
    if single_pass:
        return _residues_to_int8_single_pass(
            x, mods, kernel, pinv_b, pinv32, precision_bits
        )
    return _residues_to_int8_loop(x, mods, kernel, pinv_b, pinv32, precision_bits)


def _residues_to_int8_loop(
    x: np.ndarray,
    mods: "list[int]",
    kernel: str,
    pinv_b: np.ndarray | None,
    pinv32: np.ndarray | None,
    precision_bits: int,
) -> np.ndarray:
    """Per-modulus conversion loop (the pre-fusion reference path).

    The only cross-modulus saving applied here is the hoisted ``max(|x|)``
    scan: one conversion serves all ``N`` moduli of the exact kernel instead
    of rescanning the same matrix per modulus.
    """
    out = np.empty((len(mods),) + x.shape, dtype=np.int8)
    max_abs = float(np.max(np.abs(x))) if x.size else 0.0
    for i, p in enumerate(mods):
        if kernel == "exact":
            r = rmod_exact(x, p, max_abs=max_abs)
        else:
            r = rmod_fast_fma(
                x, p, float(pinv_b[i]), float(pinv32[i]), len(mods), precision_bits
            )
        out[i] = _wrap_to_int8(r)
    return out


def _residues_to_int8_single_pass(
    x: np.ndarray,
    mods: "list[int]",
    kernel: str,
    pinv_b: np.ndarray | None,
    pinv32: np.ndarray | None,
    precision_bits: int,
) -> np.ndarray:
    """Single-pass conversion of the exact kernel for all ``N`` moduli.

    The ``max(|x|)`` scan and the float64→int64 conversion run **once** and
    serve every modulus; each residue is then produced entirely in the
    integer domain with the shifted remainder

        ``rmod(x, p) = ((x + ⌊p/2⌋) mod p) − ⌊p/2⌋``

    which yields the centred representative directly — no float64
    round-trip, no separate centring pass, and ``+p/2`` lands on ``−p/2``
    for even ``p`` exactly as the INT8 wrap does.  The result is
    bit-identical to the per-modulus loop.  The remainder itself runs per
    modulus with a *scalar* divisor: NumPy's scalar-divisor inner loop is
    several times faster than a broadcast against an ``(N, 1, ...)``
    divisor array, so looping the one cheap op beats broadcasting the
    whole chain.

    The fast-FMA kernel delegates to the loop: it is pure per-modulus
    floating-point arithmetic with no shared scan or conversion to hoist,
    and stacking it only adds temporary-array pressure.
    """
    if kernel == "fast_fma":
        return _residues_to_int8_loop(x, mods, kernel, pinv_b, pinv32, precision_bits)

    out = np.empty((len(mods),) + x.shape, dtype=np.int8)
    max_abs = float(np.max(np.abs(x))) if x.size else 0.0
    if max_abs < _INT64_SAFE_LIMIT:
        xi = x.astype(np.int64)
        scratch = np.empty_like(xi)
        for i, p in enumerate(mods):
            half = p // 2
            # |xi| < 2**62, so the +half shift cannot overflow int64.
            np.add(xi, half, out=scratch)
            np.remainder(scratch, p, out=scratch)
            scratch -= half
            out[i] = scratch.astype(np.int8)
        return out

    # Beyond the int64-safe limit: the same exact hi/lo split as
    # _nonneg_mod_integer_valued, performed once for all moduli.
    hi = np.floor(np.ldexp(x, -31))
    lo = x - np.ldexp(hi, 31)
    hi_i64 = hi.astype(np.int64)
    lo_i64 = lo.astype(np.int64)
    for i, p in enumerate(mods):
        half = p // 2
        shift_mod = pow(2, 31, p)
        hi_mod = np.remainder(hi_i64, p)
        lo_mod = np.remainder(lo_i64, p)
        # hi_mod, lo_mod < p <= 256 and shift_mod < p, so the combination
        # stays far below the int64 range.
        r = np.remainder(hi_mod * shift_mod + lo_mod + half, p)
        r -= half
        out[i] = r.astype(np.int8)
    return out


def uint8_residues(c_int32: np.ndarray, p: int, pinv_prime: int | None = None) -> np.ndarray:
    """``U_i = mod(C'_i, p_i)`` as UINT8 (line 7 of Algorithm 1).

    When ``pinv_prime`` is given the ``__mulhi`` fast kernel is used,
    otherwise the exact integer remainder.
    """
    if pinv_prime is None:
        u = np.mod(np.asarray(c_int32, dtype=np.int64), int(p))
    else:
        u = mod_fast_mulhi(c_int32, p, pinv_prime)
    return u.astype(np.uint8)


def uint8_residues_stack(
    c_stack: np.ndarray,
    moduli: Sequence[int],
    pinv_prime: np.ndarray | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """``U = [mod(C'_1, p_1), ..., mod(C'_N, p_N)]`` for the whole stack.

    ``c_stack`` is the ``(N, m, n)`` integer residue-product stack; entry
    ``i`` is reduced by modulus ``moduli[i]``.  Bit-identical to calling
    :func:`uint8_residues` per modulus, without the per-call int64
    casts and UINT8/float round-trips: each remainder runs with a scalar
    divisor (NumPy's fastest inner loop) straight into the output stack.
    When ``pinv_prime`` (the ``⌊2^32/p_i − 1⌋`` table) is given, the
    ``__mulhi`` fast kernel of Section 4.3 is used instead of the exact
    remainder.

    ``out`` may supply a preallocated ``c_stack.shape`` array of any dtype
    that can represent ``[0, 255]``; the fused accumulation passes a
    float64 stack so the residues land in their final representation with
    no separate widening pass.  Without ``out``, a UINT8 stack is returned.
    """
    c = np.asarray(c_stack)
    u = out if out is not None else np.empty(c.shape, dtype=np.uint8)
    if pinv_prime is None:
        p_dtype = c.dtype.type
        for i, p in enumerate(moduli):
            u[i] = np.remainder(c[i], p_dtype(p))
    else:
        for i, p in enumerate(moduli):
            u[i] = mod_fast_mulhi(c[i], p, int(pinv_prime[i]))
    return u
