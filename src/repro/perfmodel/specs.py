"""GPU specification database.

Peak throughput numbers are the publicly documented *dense* (no sparsity)
peaks.  ``TFLOPS``/``TOPS`` values are in units of 1e12 operations per
second; bandwidth is in GB/s; power is the board TDP in watts.

The three evaluation GPUs of the paper (A100 SXM4, GH200's H100 die, RTX
5080) are included together with the earlier generations plotted in
Figure 1 (V100, A100, H100, B200 on the NVIDIA side; MI100, MI250X, MI300X
on the AMD side).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from ..errors import PerfModelError

__all__ = ["GpuSpec", "GPUS", "FIGURE1_GPUS", "get_gpu"]


@dataclasses.dataclass(frozen=True)
class GpuSpec:
    """Peak capabilities of one GPU.

    Attributes
    ----------
    name / vendor / year:
        Identification (year of introduction, used by Figure 1).
    fp64 / fp64_tc:
        FP64 peak on the vector units and on the FP64 tensor/matrix cores
        (TFLOPS).  cuBLAS DGEMM uses the tensor-core path when present.
    fp32:
        FP32 peak (TFLOPS) on the vector units (cuBLAS SGEMM).
    tf32_tc / fp16_tc / bf16_tc:
        Tensor-core peaks (TFLOPS) for TF32 / FP16 / BF16 inputs.
    int8_tops:
        INT8 tensor-core peak (TOPS).
    bandwidth_gbps:
        Device-memory bandwidth (GB/s).
    tdp_watts:
        Board power limit (W).
    idle_fraction:
        Fraction of TDP drawn when the chip is busy but poorly utilised
        (memory-bound phases); used by the power model.
    supports_bf16x9:
        Whether cuBLAS exposes the BF16x9 emulated-FP32 compute type
        (Blackwell only); elsewhere BF16x9 requests fall back to FP32.
    kernel_overhead_s:
        Fixed per-kernel launch/tail latency used by the roofline model.
    vector_efficiency / tensor_efficiency:
        Fraction of the datasheet peak a well-tuned GEMM library sustains on
        the vector pipelines / the low-precision tensor engines.  These are
        the only calibration constants of the model (large tensor-core GEMMs
        typically sustain ~65–75% of peak, classic BLAS closer to 85–90%);
        they are shared by every GPU and every method.
    """

    name: str
    vendor: str
    year: int
    fp64: float
    fp32: float
    fp16_tc: float
    int8_tops: float
    bandwidth_gbps: float
    tdp_watts: float
    fp64_tc: Optional[float] = None
    tf32_tc: Optional[float] = None
    bf16_tc: Optional[float] = None
    idle_fraction: float = 0.25
    supports_bf16x9: bool = False
    kernel_overhead_s: float = 8e-6
    vector_efficiency: float = 0.88
    tensor_efficiency: float = 0.68

    def peak_for(self, engine: str, sustained: bool = True) -> float:
        """Peak operations/second for an engine name.

        Engines: ``fp64`` (tensor-core path if available), ``fp64_simt``,
        ``fp32``, ``tf32``, ``fp16``, ``bf16``, ``int8``.  With
        ``sustained=True`` (default) the datasheet peak is scaled by the
        sustained-efficiency factor of the corresponding pipeline; pass
        ``sustained=False`` for the raw datasheet number (Figure 1).
        """
        table = {
            "fp64": ((self.fp64_tc or self.fp64) * 1e12, self.vector_efficiency),
            "fp64_simt": (self.fp64 * 1e12, self.vector_efficiency),
            "fp32": (self.fp32 * 1e12, self.vector_efficiency),
            "tf32": ((self.tf32_tc or self.fp32) * 1e12, self.tensor_efficiency),
            "fp16": (self.fp16_tc * 1e12, self.tensor_efficiency),
            "bf16": ((self.bf16_tc or self.fp16_tc) * 1e12, self.tensor_efficiency),
            "int8": (self.int8_tops * 1e12, self.tensor_efficiency),
        }
        try:
            peak, eff = table[engine]
        except KeyError:
            raise PerfModelError(
                f"unknown engine {engine!r}; known: {sorted(table)}"
            ) from None
        return peak * eff if sustained else peak

    @property
    def bandwidth_bytes_per_s(self) -> float:
        """Memory bandwidth in bytes/second."""
        return self.bandwidth_gbps * 1e9


#: The GPUs used in the paper's evaluation (Section 5) plus the Figure 1 set.
GPUS: Dict[str, GpuSpec] = {
    # --- evaluation GPUs -----------------------------------------------------
    "A100": GpuSpec(
        name="A100",
        vendor="NVIDIA",
        year=2020,
        fp64=9.7,
        fp64_tc=19.5,
        fp32=19.5,
        tf32_tc=156.0,
        fp16_tc=312.0,
        bf16_tc=312.0,
        int8_tops=624.0,
        bandwidth_gbps=2039.0,
        tdp_watts=400.0,
    ),
    "GH200": GpuSpec(
        # Hopper H100 die of the GH200 Grace Hopper Superchip (SXM, HBM3).
        name="GH200",
        vendor="NVIDIA",
        year=2023,
        fp64=34.0,
        fp64_tc=67.0,
        fp32=67.0,
        tf32_tc=494.0,
        fp16_tc=989.0,
        bf16_tc=989.0,
        int8_tops=1979.0,
        bandwidth_gbps=4000.0,
        tdp_watts=700.0,
    ),
    "RTX5080": GpuSpec(
        # Blackwell consumer GPU: FP64 runs at 1/64 of FP32 rate.
        name="RTX5080",
        vendor="NVIDIA",
        year=2025,
        fp64=0.88,
        fp64_tc=None,
        fp32=56.3,
        tf32_tc=112.0,
        fp16_tc=225.0,
        bf16_tc=225.0,
        int8_tops=450.0,
        bandwidth_gbps=960.0,
        tdp_watts=360.0,
        supports_bf16x9=True,
        # Consumer Blackwell sustains a lower fraction of its FP32 peak
        # (power/boost limited) while its INT8 tensor path is comparatively
        # efficient; these factors reproduce the paper's observation that
        # INT8 GEMM outruns SGEMM by ~5x and that OS II-fast-6..8 edge out
        # SGEMM at large n on this card.
        vector_efficiency=0.62,
        tensor_efficiency=0.75,
    ),
    # --- additional Figure 1 generations ------------------------------------
    "V100": GpuSpec(
        name="V100",
        vendor="NVIDIA",
        year=2017,
        fp64=7.8,
        fp32=15.7,
        fp16_tc=125.0,
        int8_tops=62.0,
        bandwidth_gbps=900.0,
        tdp_watts=300.0,
    ),
    "H100": GpuSpec(
        name="H100",
        vendor="NVIDIA",
        year=2022,
        fp64=34.0,
        fp64_tc=67.0,
        fp32=67.0,
        tf32_tc=494.0,
        fp16_tc=989.0,
        bf16_tc=989.0,
        int8_tops=1979.0,
        bandwidth_gbps=3350.0,
        tdp_watts=700.0,
    ),
    "B200": GpuSpec(
        name="B200",
        vendor="NVIDIA",
        year=2024,
        fp64=37.0,
        fp64_tc=37.0,
        fp32=75.0,
        tf32_tc=1100.0,
        fp16_tc=2250.0,
        bf16_tc=2250.0,
        int8_tops=4500.0,
        bandwidth_gbps=8000.0,
        tdp_watts=1000.0,
        supports_bf16x9=True,
    ),
    "MI100": GpuSpec(
        name="MI100",
        vendor="AMD",
        year=2020,
        fp64=11.5,
        fp32=23.1,
        fp16_tc=184.6,
        int8_tops=184.6,
        bandwidth_gbps=1230.0,
        tdp_watts=300.0,
    ),
    "MI250X": GpuSpec(
        name="MI250X",
        vendor="AMD",
        year=2021,
        fp64=47.9,
        fp64_tc=95.7,
        fp32=47.9,
        fp16_tc=383.0,
        bf16_tc=383.0,
        int8_tops=383.0,
        bandwidth_gbps=3276.0,
        tdp_watts=560.0,
    ),
    "MI300X": GpuSpec(
        name="MI300X",
        vendor="AMD",
        year=2023,
        fp64=81.7,
        fp64_tc=163.4,
        fp32=163.4,
        tf32_tc=653.7,
        fp16_tc=1307.4,
        bf16_tc=1307.4,
        int8_tops=2614.9,
        bandwidth_gbps=5300.0,
        tdp_watts=750.0,
    ),
}

#: Names plotted by the Figure 1 reproduction, in chronological order.
FIGURE1_GPUS: Tuple[str, ...] = (
    "V100",
    "MI100",
    "A100",
    "MI250X",
    "H100",
    "MI300X",
    "B200",
    "RTX5080",
)


def get_gpu(name: str) -> GpuSpec:
    """Look up a GPU spec by (case-insensitive) name."""
    key = str(name).strip()
    for candidate, spec in GPUS.items():
        if candidate.lower() == key.lower():
            return spec
    raise PerfModelError(f"unknown GPU {name!r}; known GPUs: {sorted(GPUS)}")
