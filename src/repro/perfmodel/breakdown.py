"""Per-phase time breakdowns (Figures 6 and 7).

The paper's breakdown figures group the time of the emulation into the
phases of Algorithm 1 (conversion of the inputs, the INT8 GEMMs, the
accumulation, the reconstruction/inverse scaling).  :func:`phase_breakdown`
produces the same grouping from the cost/roofline model, as fractions of the
total modelled time.
"""

from __future__ import annotations

from typing import Dict

from ..errors import PerfModelError
from ..types import FP64, Format
from .costmodel import method_cost
from .roofline import phase_times
from .specs import GpuSpec, get_gpu

__all__ = ["phase_breakdown"]

#: Display order of phases (phases absent from a method are omitted).
PHASE_ORDER = (
    "scale",
    "convert",
    "convert_A",
    "convert_B",
    "matmul",
    "accumulate",
    "reconstruct",
    "unscale",
)


def phase_breakdown(
    method: str,
    gpu: "GpuSpec | str",
    m: int,
    k: int,
    n: int,
    target: "Format | str" = FP64,
    as_fractions: bool = True,
) -> Dict[str, float]:
    """Per-phase modelled time of ``method`` on ``gpu``.

    Returns an ordered mapping ``phase name -> seconds`` (or fraction of the
    total when ``as_fractions`` is True, matching the stacked-bar style of
    Figures 6 and 7).
    """
    gpu_spec = gpu if isinstance(gpu, GpuSpec) else get_gpu(gpu)
    cost = method_cost(method, m, k, n, target=target)
    per_phase: Dict[str, float] = {}
    for phase, t in phase_times(cost, gpu_spec):
        per_phase[phase.name] = per_phase.get(phase.name, 0.0) + t
    total = sum(per_phase.values())
    if total <= 0:
        raise PerfModelError("modelled time is non-positive")
    ordered = {
        name: per_phase[name] for name in PHASE_ORDER if name in per_phase
    }
    # Preserve any phase names not in the canonical order (defensive).
    for name, value in per_phase.items():
        ordered.setdefault(name, value)
    if as_fractions:
        return {name: value / total for name, value in ordered.items()}
    return ordered
