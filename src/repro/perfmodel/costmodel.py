"""Per-phase operation and byte counts of every GEMM method.

For a problem of size ``m x k x n``, :func:`method_cost` decomposes a method
into the phases the paper's time-breakdown figures use and attributes to
each phase:

* ``ops`` — the number of scalar operations (2 per multiply-accumulate for
  GEMM phases, roughly counted for element-wise phases),
* ``engine`` — which hardware pipeline executes them (``int8``, ``fp64``,
  ``fp32``, ``tf32``, ``fp16``, ``bf16``),
* ``bytes_moved`` — the device-memory traffic assuming each operand tile is
  read/written once per kernel,
* ``kernels`` — how many kernel launches the phase issues (feeds the fixed
  launch-overhead term of the roofline model).

The counts mirror Algorithm 1 and the baseline definitions of Section 2; the
element-wise constants (operations per element for conversions,
accumulations, ...) are small integers taken from the algorithm statements,
not tuned to the paper's measurements.
"""

from __future__ import annotations

import dataclasses
from typing import List

from ..baselines.registry import MethodSpec, get_method
from ..config import ComputeMode
from ..errors import PerfModelError
from ..types import FP64, Format, get_format

__all__ = ["PhaseCost", "MethodCost", "method_cost", "adaptive_moduli_savings"]


@dataclasses.dataclass(frozen=True)
class PhaseCost:
    """Work performed by one phase of a method."""

    name: str
    engine: str
    ops: float
    bytes_moved: float
    kernels: int = 1


@dataclasses.dataclass(frozen=True)
class MethodCost:
    """All phases of one method on one problem size."""

    method: str
    target: Format
    m: int
    k: int
    n: int
    phases: List[PhaseCost]

    @property
    def useful_flops(self) -> float:
        """FLOPs credited to the method: 2·m·n·k (the emulated GEMM)."""
        return 2.0 * self.m * self.n * self.k

    def total_ops(self) -> float:
        """Total scalar operations across all phases."""
        return sum(p.ops for p in self.phases)

    def total_bytes(self) -> float:
        """Total modelled memory traffic (bytes)."""
        return sum(p.bytes_moved for p in self.phases)


def _gemm_phase(name: str, engine: str, m: int, n: int, k: int, count: int,
                in_bytes: float, out_bytes: float) -> PhaseCost:
    """Cost of ``count`` GEMM kernels of shape m x k x n on ``engine``."""
    ops = 2.0 * m * n * k * count
    traffic = count * ((m * k + k * n) * in_bytes + m * n * out_bytes)
    return PhaseCost(name=name, engine=engine, ops=ops, bytes_moved=traffic, kernels=count)


def _elementwise_phase(name: str, engine: str, elements: float, ops_per_element: float,
                       read_bytes_per_element: float, write_bytes_per_element: float,
                       kernels: int = 1) -> PhaseCost:
    """Cost of an element-wise pass over ``elements`` values."""
    return PhaseCost(
        name=name,
        engine=engine,
        ops=elements * ops_per_element,
        bytes_moved=elements * (read_bytes_per_element + write_bytes_per_element),
        kernels=kernels,
    )


def _native_cost(spec: MethodSpec, m: int, k: int, n: int) -> List[PhaseCost]:
    if spec.target == FP64:
        return [_gemm_phase("matmul", "fp64", m, n, k, 1, 8, 8)]
    return [_gemm_phase("matmul", "fp32", m, n, k, 1, 4, 4)]


def _tf32_cost(m: int, k: int, n: int) -> List[PhaseCost]:
    return [
        _elementwise_phase("convert", "fp32", m * k + k * n, 1, 4, 4, kernels=2),
        _gemm_phase("matmul", "tf32", m, n, k, 1, 4, 4),
    ]


def _bf16x9_cost(m: int, k: int, n: int) -> List[PhaseCost]:
    # 3 splits per operand, 9 BF16 GEMMs, FP32 accumulation of 9 terms.
    return [
        _elementwise_phase("convert", "fp32", m * k + k * n, 6, 4, 3 * 2, kernels=2),
        _gemm_phase("matmul", "bf16", m, n, k, 9, 2, 4),
        _elementwise_phase("accumulate", "fp32", 9 * m * n, 2, 4, 4.0 / 9.0, kernels=1),
    ]


def _cumpsgemm_cost(m: int, k: int, n: int) -> List[PhaseCost]:
    # 2 splits per operand, 3 FP16 GEMMs, correction accumulation.
    return [
        _elementwise_phase("convert", "fp32", m * k + k * n, 5, 4, 2 * 2, kernels=2),
        _gemm_phase("matmul", "fp16", m, n, k, 3, 2, 4),
        _elementwise_phase("accumulate", "fp32", 3 * m * n, 2, 4, 4.0 / 3.0, kernels=1),
    ]


def _ozimmu_cost(num_slices: int, m: int, k: int, n: int) -> List[PhaseCost]:
    s = num_slices
    num_gemms = s * (s + 1) // 2
    return [
        _elementwise_phase("convert", "fp64", (m * k + k * n), 4 * s, 8, s, kernels=2),
        _gemm_phase("matmul", "int8", m, n, k, num_gemms, 1, 4),
        # Each INT32 product is scaled and added into the FP64 accumulator.
        _elementwise_phase("accumulate", "fp64", num_gemms * m * n, 2, 4, 8.0 / num_gemms,
                           kernels=num_gemms),
    ]


def _ozaki2_cost(num_moduli: int, mode: ComputeMode, target: Format,
                 m: int, k: int, n: int) -> List[PhaseCost]:
    nmod = num_moduli
    hp_engine = "fp64" if target == FP64 else "fp32"
    hp_bytes = 8 if target == FP64 else 4
    phases: List[PhaseCost] = []

    # Line 1: scale vectors. Fast mode reads A and B once (row/column norms);
    # accurate mode additionally runs one INT8 GEMM on the magnitude matrices.
    scale_phases = [
        _elementwise_phase("scale", hp_engine, m * k + k * n, 2, hp_bytes, 0, kernels=2),
    ]
    if mode is ComputeMode.ACCURATE:
        scale_phases.append(
            _elementwise_phase("scale", hp_engine, m * k + k * n, 2, hp_bytes, 1, kernels=2)
        )
        scale_phases.append(_gemm_phase("scale", "int8", m, n, k, 1, 1, 4))
    phases.extend(scale_phases)

    # Lines 2+4 / 3+5: truncation and N residues per element (about 5 flops
    # per residue with the fast rmod kernel), writing N INT8 matrices.
    phases.append(
        _elementwise_phase("convert_A", hp_engine, m * k, 2 + 5 * nmod, hp_bytes, nmod, kernels=1)
    )
    phases.append(
        _elementwise_phase("convert_B", hp_engine, k * n, 2 + 5 * nmod, hp_bytes, nmod, kernels=1)
    )

    # Line 6: N INT8 GEMMs.
    phases.append(_gemm_phase("matmul", "int8", m, n, k, nmod, 1, 4))

    # Lines 7-9: mod to UINT8 and the two split accumulations, fused over the
    # N INT32 product matrices (single kernel in the paper's implementation).
    ops_per = 3 + (4 if target == FP64 else 2)
    phases.append(
        _elementwise_phase("accumulate", hp_engine, nmod * m * n, ops_per, 4, 16.0 / nmod,
                           kernels=1)
    )

    # Lines 10-11: reconstruction; line 12: inverse scaling.
    phases.append(_elementwise_phase("reconstruct", hp_engine, m * n, 8, 16, 8, kernels=1))
    phases.append(_elementwise_phase("unscale", hp_engine, m * n, 2, 8, hp_bytes, kernels=1))
    return phases


def method_cost(
    method: "MethodSpec | str",
    m: int,
    k: int,
    n: int,
    target: "Format | str" = FP64,
) -> MethodCost:
    """Build the :class:`MethodCost` of ``method`` on an ``m x k x n`` problem."""
    if isinstance(method, MethodSpec):
        spec = method
    else:
        spec = get_method(method, target=target)
    if min(m, k, n) < 1:
        raise PerfModelError(f"invalid problem size {(m, k, n)}")

    if spec.family == "native":
        phases = _native_cost(spec, m, k, n)
    elif spec.family == "tf32":
        phases = _tf32_cost(m, k, n)
    elif spec.family == "bf16x9":
        phases = _bf16x9_cost(m, k, n)
    elif spec.family == "cumpsgemm":
        phases = _cumpsgemm_cost(m, k, n)
    elif spec.family == "ozimmu":
        phases = _ozimmu_cost(spec.num_slices, m, k, n)
    elif spec.family == "ozaki2":
        phases = _ozaki2_cost(spec.num_moduli, spec.mode, spec.target, m, k, n)
    else:  # pragma: no cover - registry and cost model are kept in sync
        raise PerfModelError(f"no cost model for method family {spec.family!r}")

    return MethodCost(method=spec.name, target=spec.target, m=m, k=k, n=n, phases=phases)


def adaptive_moduli_savings(
    m: int,
    k: int,
    n: int,
    num_moduli_fixed: int,
    num_moduli_auto: int,
    target: "Format | str" = FP64,
    mode: "ComputeMode | str" = ComputeMode.FAST,
) -> dict:
    """Predicted cost savings of auto-N against a fixed moduli count.

    Evaluates the Ozaki-II phase cost model at both counts and reports the
    fixed/auto ratios for scalar operations and modelled memory traffic —
    the *predicted* speedup the adaptive benchmark compares against its
    measured wall-clock ratio (``predicted-vs-actual N savings``).  Both
    ratios are >= 1 whenever ``num_moduli_auto <= num_moduli_fixed`` since
    every N-dependent phase shrinks linearly and no phase grows.
    """
    mode = ComputeMode.parse(mode)
    fmt = get_format(target)
    costs = {}
    for label, nmod in (("fixed", int(num_moduli_fixed)), ("auto", int(num_moduli_auto))):
        phases = _ozaki2_cost(nmod, mode, fmt, int(m), int(k), int(n))
        costs[label] = (
            sum(p.ops for p in phases),
            sum(p.bytes_moved for p in phases),
        )
    ops_fixed, bytes_fixed = costs["fixed"]
    ops_auto, bytes_auto = costs["auto"]
    return {
        "num_moduli_fixed": int(num_moduli_fixed),
        "num_moduli_auto": int(num_moduli_auto),
        "ops_fixed": ops_fixed,
        "ops_auto": ops_auto,
        "bytes_fixed": bytes_fixed,
        "bytes_auto": bytes_auto,
        "predicted_ops_speedup": ops_fixed / ops_auto,
        "predicted_bytes_speedup": bytes_fixed / bytes_auto,
    }
