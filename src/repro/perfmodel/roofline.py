"""Roofline time model.

Each :class:`~repro.perfmodel.costmodel.PhaseCost` is converted to a time
estimate::

    t_phase = max(ops / peak(engine), bytes / bandwidth) + kernels * overhead

i.e. a classic roofline: the phase is limited by whichever of the compute
pipeline or the memory system it saturates, plus a fixed launch/tail latency
per kernel.  The BF16x9 special case (supported natively only on Blackwell;
elsewhere cuBLAS falls back to the FP32 pipeline) is handled here because it
is a property of the *GPU*, not of the method.

The model deliberately has no tuned efficiency factors: its purpose is to
reproduce the qualitative shape of Figures 4–9 (which method wins, by
roughly what factor, and where emulation overtakes the native routine as the
problem grows), not the absolute TFLOPS of the authors' testbed.
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import PerfModelError
from ..types import FP64, Format
from .costmodel import MethodCost, PhaseCost, method_cost
from .specs import GpuSpec, get_gpu

__all__ = ["phase_times", "modeled_time", "modeled_tflops"]


def _effective_engine(engine: str, gpu: GpuSpec, method: str) -> str:
    """Map a requested engine onto what the GPU actually provides."""
    if engine == "bf16" and method == "BF16x9" and not gpu.supports_bf16x9:
        # cuBLAS without the emulated-BF16x9 compute type runs the request
        # as a plain FP32 GEMM (one kernel instead of nine is accounted for
        # in phase_times below by scaling the op count back).
        return "fp32"
    return engine


def phase_times(
    cost: MethodCost, gpu: "GpuSpec | str"
) -> List[Tuple[PhaseCost, float]]:
    """Per-phase modelled execution times (seconds) on ``gpu``."""
    gpu = gpu if isinstance(gpu, GpuSpec) else get_gpu(gpu)
    results: List[Tuple[PhaseCost, float]] = []
    for phase in cost.phases:
        engine = _effective_engine(phase.engine, gpu, cost.method)
        ops = phase.ops
        kernels = phase.kernels
        if engine != phase.engine and cost.method == "BF16x9" and phase.name == "matmul":
            # Fallback path: a single FP32 GEMM replaces the nine BF16 GEMMs.
            ops = 2.0 * cost.m * cost.n * cost.k
            kernels = 1
        peak = gpu.peak_for(engine)
        compute_time = ops / peak if peak > 0 else float("inf")
        memory_time = phase.bytes_moved / gpu.bandwidth_bytes_per_s
        t = max(compute_time, memory_time) + kernels * gpu.kernel_overhead_s
        results.append((phase, t))
    return results


def modeled_time(
    method: "str | MethodCost",
    gpu: "GpuSpec | str",
    m: int | None = None,
    k: int | None = None,
    n: int | None = None,
    target: "Format | str" = FP64,
) -> float:
    """Total modelled time (seconds) of ``method`` on ``gpu``.

    ``method`` may be a prebuilt :class:`MethodCost` or a method name, in
    which case the problem size ``(m, k, n)`` must be supplied.
    """
    if isinstance(method, MethodCost):
        cost = method
    else:
        if None in (m, k, n):
            raise PerfModelError("problem size (m, k, n) is required with a method name")
        cost = method_cost(method, m, k, n, target=target)
    return sum(t for _, t in phase_times(cost, gpu))


def modeled_tflops(
    method: "str | MethodCost",
    gpu: "GpuSpec | str",
    m: int | None = None,
    k: int | None = None,
    n: int | None = None,
    target: "Format | str" = FP64,
) -> float:
    """Modelled effective TFLOPS: ``2·m·n·k`` divided by the modelled time.

    This matches the paper's convention of crediting every method with the
    FLOPs of the *emulated* operation, regardless of how much internal work
    the emulation performs.
    """
    if isinstance(method, MethodCost):
        cost = method
    else:
        if None in (m, k, n):
            raise PerfModelError("problem size (m, k, n) is required with a method name")
        cost = method_cost(method, m, k, n, target=target)
    total = sum(t for _, t in phase_times(cost, gpu))
    if total <= 0:
        raise PerfModelError("modelled time is non-positive")
    return cost.useful_flops / total / 1e12
