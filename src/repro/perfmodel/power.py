"""Power and power-efficiency model (Figures 8 and 9).

The model assigns each phase a power draw between an idle floor and the
board TDP, proportional to how well the phase utilises its compute pipeline::

    utilisation = compute_time / max(compute_time, memory_time)
    power       = idle + (TDP − idle) · utilisation

A compute-bound GEMM therefore runs near TDP while a memory-bound conversion
or a small GEMM draws much less — which is exactly the effect the paper
points out in Section 5.4 ("the performance ratio between INT8 GEMM and
SGEMM at n = 1024 was 5.3x, while the power efficiency ratio was as high as
13.3x"): the INT8 engine finishes its compute so quickly that the phase is
memory-bound and cheap in energy.

Power efficiency is reported as GFLOPS/W with the paper's convention of
crediting the emulated operation's ``2·m·n·k`` FLOPs.
"""

from __future__ import annotations


from ..errors import PerfModelError
from ..types import FP64, Format
from .costmodel import MethodCost, method_cost
from .roofline import phase_times
from .specs import GpuSpec, get_gpu

__all__ = ["modeled_energy", "modeled_power", "power_efficiency"]


def _phase_power(phase, time_s: float, gpu: GpuSpec, cost: MethodCost) -> float:
    """Average power draw (W) while executing ``phase``."""
    engine = phase.engine
    peak = gpu.peak_for(engine if engine != "bf16" or gpu.supports_bf16x9 else "fp32")
    compute_time = phase.ops / peak if peak > 0 else 0.0
    utilisation = 0.0 if time_s <= 0 else min(1.0, compute_time / time_s)
    idle = gpu.idle_fraction * gpu.tdp_watts
    return idle + (gpu.tdp_watts - idle) * utilisation


def modeled_energy(
    method: "str | MethodCost",
    gpu: "GpuSpec | str",
    m: int | None = None,
    k: int | None = None,
    n: int | None = None,
    target: "Format | str" = FP64,
) -> float:
    """Total modelled energy (joules) of one emulated GEMM."""
    gpu = gpu if isinstance(gpu, GpuSpec) else get_gpu(gpu)
    if isinstance(method, MethodCost):
        cost = method
    else:
        if None in (m, k, n):
            raise PerfModelError("problem size (m, k, n) is required with a method name")
        cost = method_cost(method, m, k, n, target=target)
    energy = 0.0
    for phase, t in phase_times(cost, gpu):
        energy += _phase_power(phase, t, gpu, cost) * t
    return energy


def modeled_power(
    method: "str | MethodCost",
    gpu: "GpuSpec | str",
    m: int | None = None,
    k: int | None = None,
    n: int | None = None,
    target: "Format | str" = FP64,
) -> float:
    """Average modelled power draw (W) over the whole emulated GEMM."""
    gpu_spec = gpu if isinstance(gpu, GpuSpec) else get_gpu(gpu)
    if isinstance(method, MethodCost):
        cost = method
    else:
        if None in (m, k, n):
            raise PerfModelError("problem size (m, k, n) is required with a method name")
        cost = method_cost(method, m, k, n, target=target)
    times = phase_times(cost, gpu_spec)
    total_time = sum(t for _, t in times)
    if total_time <= 0:
        raise PerfModelError("modelled time is non-positive")
    energy = sum(_phase_power(p, t, gpu_spec, cost) * t for p, t in times)
    return energy / total_time


def power_efficiency(
    method: "str | MethodCost",
    gpu: "GpuSpec | str",
    m: int | None = None,
    k: int | None = None,
    n: int | None = None,
    target: "Format | str" = FP64,
) -> float:
    """Modelled power efficiency in GFLOPS/W (the metric of Figures 8–9)."""
    gpu_spec = gpu if isinstance(gpu, GpuSpec) else get_gpu(gpu)
    if isinstance(method, MethodCost):
        cost = method
    else:
        if None in (m, k, n):
            raise PerfModelError("problem size (m, k, n) is required with a method name")
        cost = method_cost(method, m, k, n, target=target)
    energy = modeled_energy(cost, gpu_spec)
    if energy <= 0:
        raise PerfModelError("modelled energy is non-positive")
    return cost.useful_flops / energy / 1e9
