"""Analytic GPU performance and power model.

The paper's throughput (Figures 4, 5), time-breakdown (Figures 6, 7) and
power-efficiency (Figures 8, 9) results were measured on NVIDIA A100, GH200
and RTX 5080 hardware.  That hardware is not available in this
reproduction, so this subpackage models it analytically:

* :mod:`specs` — a database of public peak throughput / bandwidth / TDP
  numbers per GPU (including the older generations shown in Figure 1),
* :mod:`costmodel` — per-phase operation and byte counts of every method
  (native GEMM, TF32, BF16x9, cuMpSGEMM, ozIMMU, Ozaki scheme II),
* :mod:`roofline` — phase time = max(compute time, memory time) plus a
  kernel-launch overhead, evaluated against the GPU's per-engine peaks,
* :mod:`power` — a utilisation-based power model yielding GFLOPS/W,
* :mod:`breakdown` — per-phase time fractions (Figures 6 and 7).

The model is calibrated only by public peak numbers; it reproduces the
*shape* of the paper's results (who wins, approximate factors, where the
crossovers sit), not the absolute TFLOPS of the authors' testbed.
"""

from __future__ import annotations

from .breakdown import phase_breakdown
from .costmodel import MethodCost, PhaseCost, adaptive_moduli_savings, method_cost
from .power import power_efficiency, modeled_power
from .roofline import modeled_time, modeled_tflops, phase_times
from .specs import GPUS, FIGURE1_GPUS, GpuSpec, get_gpu

__all__ = [
    "phase_breakdown",
    "MethodCost",
    "PhaseCost",
    "method_cost",
    "adaptive_moduli_savings",
    "power_efficiency",
    "modeled_power",
    "modeled_time",
    "modeled_tflops",
    "phase_times",
    "GPUS",
    "FIGURE1_GPUS",
    "GpuSpec",
    "get_gpu",
]
