"""INT8 matrix engine with INT32 accumulation.

This simulator reproduces the arithmetic contract of NVIDIA INT8 Tensor
Cores (and the equivalent AMD/Intel units): operands are 8-bit signed
integers, products are accumulated in 32-bit signed integers, and an
accumulator overflow wraps around in two's complement.  Both Ozaki scheme I
(ozIMMU) and Ozaki scheme II issue all of their inner products through this
engine.

Two computation paths are provided:

* ``use_blas=True`` (default): operands are promoted to float64 and
  multiplied with BLAS.  Because ``|a| <= 128``, ``|b| <= 128`` and
  ``k <= 2**17``, every exact inner product is bounded by ``2**31`` and is
  therefore exactly representable in float64 (well below ``2**53``); the
  result is then reduced modulo ``2**32`` to reproduce the hardware
  wraparound bit-for-bit.  This path is typically 10-50x faster on CPUs.
* ``use_blas=False``: operands are multiplied directly with NumPy integer
  arithmetic (int32 accumulators with native wraparound).  This is the
  byte-level reference used in the test suite to validate the fast path.

Section 4.3 of the paper discusses the only overflow case (``k = 2**17`` and
``p_1 = 256`` can reach exactly ``2**31``) and shows it is harmless because
the wrapped value is congruent modulo every modulus.  The engine reproduces
that wraparound exactly.
"""

from __future__ import annotations

import numpy as np

from ..errors import EngineError, OverflowRiskError
from ..types import INT8, INT32
from .base import MatrixEngine

__all__ = ["Int8MatrixEngine"]

#: Largest inner dimension for which an INT8 x INT8 -> INT32 product cannot
#: exceed the INT32 range by more than the single harmless 2**31 case.
_MAX_EXACT_K = 2**17


class Int8MatrixEngine(MatrixEngine):
    """Simulated INT8 Tensor Core (INT8 inputs, INT32 accumulation).

    Parameters
    ----------
    use_blas:
        Select the float64/BLAS-backed fast path (exact, default) or the
        pure-integer reference path.
    strict_k:
        If True (default), refuse inner dimensions above ``2**17`` with
        :class:`~repro.errors.OverflowRiskError`; callers are expected to
        block the product (see :mod:`repro.core.blocking`).  If False, the
        engine performs the multiplication anyway with full wraparound
        semantics (useful for overflow-behaviour tests).
    """

    input_format = INT8
    output_format = INT32
    name = "int8"

    def __init__(self, use_blas: bool = True, strict_k: bool = True) -> None:
        super().__init__()
        self.use_blas = bool(use_blas)
        self.strict_k = bool(strict_k)

    # -- MatrixEngine hooks --------------------------------------------------
    def _prepare(self, x: np.ndarray, which: str) -> np.ndarray:
        if np.issubdtype(x.dtype, np.floating):
            if not np.all(x == np.round(x)):
                raise EngineError(
                    f"int8 engine: operand {which} contains non-integer values"
                )
        xi = np.asarray(x)
        lo, hi = self.input_format.int_min, self.input_format.int_max
        # Allow +128 on input: the hardware cast wraps it to -128, which is
        # congruent modulo 256 (Section 4.1); anything else out of range is a
        # caller bug.
        if np.any((xi < lo) | (xi > hi + 1)):
            raise EngineError(
                f"int8 engine: operand {which} has values outside [{lo}, {hi + 1}]"
            )
        as_int8 = xi.astype(np.int64)
        as_int8 = np.where(as_int8 == hi + 1, lo, as_int8)
        return as_int8.astype(np.int8)

    def _compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        k = a.shape[1]
        if self.strict_k and k > _MAX_EXACT_K:
            raise OverflowRiskError(
                f"inner dimension k={k} exceeds 2**17; block the product "
                "(core.blocking) or construct the engine with strict_k=False"
            )
        if self.use_blas:
            return self._compute_blas(a, b)
        return self._compute_integer(a, b)

    # -- fused stacked path ---------------------------------------------------
    def matmul_stack(self, a: np.ndarray, b: np.ndarray, trusted: bool = False) -> np.ndarray:
        """Fused batched product ``(N, m, k) @ (N, k, n) -> (N, m, n)``.

        Unlike the generic per-slice fallback, this override converts each
        residue stack to float64 **once** and issues a single stacked
        BLAS-backed :func:`numpy.matmul`, so the ``N`` residue GEMMs of one
        modulus chunk cost one engine call's worth of Python/NumPy overhead.
        The INT32 wraparound reduction is applied only when the inner
        dimension can actually reach the accumulator boundary (see
        :meth:`_wrap_int32`).

        ``trusted=True`` additionally skips the per-call validation sweeps
        when the operands are already INT8 — the contract for residue stacks
        produced by this library's own conversion (:func:`repro.core.
        conversion.residue_slices` and prepared operands), whose values are
        in range by construction.  Operands of any other dtype are validated
        regardless of the flag, so external callers keep full validation by
        default.  Results are bit-identical to ``N`` separate
        :meth:`~repro.engines.base.MatrixEngine.matmul` calls, and the op
        ledger records the same ``N`` GEMMs.
        """
        a = np.asarray(a)
        b = np.asarray(b)
        self._check_stack_shapes(a, b)
        n_stack, m, k = a.shape
        n = b.shape[2]
        if self.strict_k and k > _MAX_EXACT_K:
            raise OverflowRiskError(
                f"inner dimension k={k} exceeds 2**17; block the product "
                "(core.blocking) or construct the engine with strict_k=False"
            )
        if trusted and a.dtype == np.int8 and b.dtype == np.int8:
            a8, b8 = a, b
        else:
            a8 = self._prepare(a, "A")
            b8 = self._prepare(b, "B")
        if self.use_blas:
            prod = np.matmul(a8.astype(np.float64), b8.astype(np.float64))
            out = self._wrap_int32(prod, k)
        else:
            with np.errstate(over="ignore"):
                out = np.matmul(a8.astype(np.int32), b8.astype(np.int32)).astype(np.int32)
        self.counter.record_matmul(
            m,
            n,
            k,
            in_bytes=self.input_format.bytes_per_element,
            out_bytes=self.output_format.bytes_per_element,
            count=n_stack,
        )
        return out

    # -- fused stacked GEMV path ----------------------------------------------
    def matvec_stack(self, a: np.ndarray, v: np.ndarray, trusted: bool = False) -> np.ndarray:
        """Fused batched GEMV ``(N, m, k) @ (N, k) -> (N, m)``.

        The ``n = 1`` products are bandwidth-bound on the INT8 residue
        stack, so promoting it to float64 for BLAS — the right call for
        GEMM, where the arithmetic amortises the 8x promotion traffic —
        costs more than the whole product here.  This override instead
        contracts the INT8 operands directly with an INT32-accumulating
        :func:`numpy.einsum`, reading the stack once at one byte per
        element (measured ~12x faster than the float64 stacked matmul at
        4096² on one core).

        INT32 accumulation wraps in two's complement exactly like the
        hardware accumulator: every partial sum is congruent modulo 2**32
        regardless of order, so the result is bit-identical to the float64
        path's :meth:`_wrap_int32` reduction for every ``k`` the engine
        accepts (only ``k = 2**17`` can reach the ``±2**31`` boundary,
        Section 4.3).  ``trusted`` has the :meth:`matmul_stack` contract:
        INT8 stacks produced by this library's own conversion skip the
        per-call validation sweeps; any other dtype is validated regardless.
        The op ledger records the same ``N`` GEMVs as the generic fallback.
        """
        a = np.asarray(a)
        v = np.asarray(v)
        self._check_vec_stack_shapes(a, v)
        n_stack, m, k = a.shape
        if self.strict_k and k > _MAX_EXACT_K:
            raise OverflowRiskError(
                f"inner dimension k={k} exceeds 2**17; block the product "
                "(core.blocking) or construct the engine with strict_k=False"
            )
        if trusted and a.dtype == np.int8 and v.dtype == np.int8:
            a8, v8 = a, v
        else:
            a8 = self._prepare(a, "A")
            v8 = self._prepare(v, "B")
        with np.errstate(over="ignore"):
            out = np.einsum("nmk,nk->nm", a8, v8, dtype=np.int32)
        self.counter.record_matmul(
            m,
            1,
            k,
            in_bytes=self.input_format.bytes_per_element,
            out_bytes=self.output_format.bytes_per_element,
            count=n_stack,
        )
        return out

    @staticmethod
    def _wrap_int32(prod: np.ndarray, k: int) -> np.ndarray:
        """Reduce exact float64 products into the signed INT32 range.

        Every prepared operand entry is bounded by ``|a|, |b| <= 128``, so an
        exact inner product over ``k`` terms is bounded by
        ``k * 128 * 128 = k * 2**14``.  For ``k < 2**17`` that bound is
        strictly below ``2**31``: every product already lies inside the INT32
        range, the wraparound reduction is the identity, and the two
        full-array ``mod``/``where`` passes can be skipped — the plain cast
        is exact.  Only ``k >= 2**17`` can reach ``±2**31`` (the single
        boundary case of Section 4.3 at ``k = 2**17``) and takes the
        reduction.
        """
        if k < _MAX_EXACT_K:
            return prod.astype(np.int32)
        wrapped = np.mod(prod, 4294967296.0)
        wrapped = np.where(wrapped >= 2147483648.0, wrapped - 4294967296.0, wrapped)
        return wrapped.astype(np.int32)

    # -- computation paths ---------------------------------------------------
    @staticmethod
    def _compute_blas(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Exact product via float64 BLAS, then INT32 wraparound."""
        prod = np.matmul(a.astype(np.float64), b.astype(np.float64))
        # Reduce modulo 2**32 into the signed INT32 range to emulate the
        # hardware accumulator wraparound (only reachable at k = 2**17).
        wrapped = np.mod(prod, 4294967296.0)
        wrapped = np.where(wrapped >= 2147483648.0, wrapped - 4294967296.0, wrapped)
        return wrapped.astype(np.int32)

    @staticmethod
    def _compute_integer(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Reference integer product with native int32 wraparound."""
        with np.errstate(over="ignore"):
            return np.matmul(a.astype(np.int32), b.astype(np.int32)).astype(np.int32)
