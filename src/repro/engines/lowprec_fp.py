"""Low-precision floating-point matrix engines (FP16, BF16, TF32).

These reproduce the numerical behaviour of NVIDIA's mixed-precision Tensor
Core modes: inputs are rounded onto the respective value grid and the dot
products are accumulated in FP32.  They back the baseline emulation methods
compared against in Section 5 (cuMpSGEMM uses FP16, BF16x9 uses BF16,
TF32GEMM uses TF32).

The accumulation here is a float32 BLAS GEMM.  Hardware Tensor Cores
accumulate in a fixed tree order whereas BLAS uses a different (also
non-deterministic across libraries) order, so individual rounding errors may
differ by a few ulps — the *statistical* accuracy behaviour, which is what
Figure 3 measures, is unaffected.
"""

from __future__ import annotations

import numpy as np

from ..errors import EngineError
from ..formats.lowprec import round_to_bf16, round_to_fp16, round_to_tf32
from ..types import BF16, FP16, FP32, TF32
from .base import MatrixEngine

__all__ = ["Fp16MatrixEngine", "Bf16MatrixEngine", "Tf32MatrixEngine"]


class _LowPrecFpEngine(MatrixEngine):
    """Shared implementation: round inputs to a grid, accumulate in FP32."""

    output_format = FP32

    def _round(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - overridden
        raise NotImplementedError

    def _prepare(self, x: np.ndarray, which: str) -> np.ndarray:
        if not np.issubdtype(np.asarray(x).dtype, np.number):
            raise EngineError(f"{self.name} engine: operand {which} is not numeric")
        return self._round(np.asarray(x, dtype=np.float32))

    def _compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.matmul(a.astype(np.float32), b.astype(np.float32), dtype=np.float32)


class Fp16MatrixEngine(_LowPrecFpEngine):
    """FP16 Tensor Core: binary16 inputs, FP32 accumulation."""

    input_format = FP16
    name = "fp16"

    def _round(self, x: np.ndarray) -> np.ndarray:
        return round_to_fp16(x)


class Bf16MatrixEngine(_LowPrecFpEngine):
    """BF16 Tensor Core: bfloat16 inputs, FP32 accumulation."""

    input_format = BF16
    name = "bf16"

    def _round(self, x: np.ndarray) -> np.ndarray:
        return round_to_bf16(x)


class Tf32MatrixEngine(_LowPrecFpEngine):
    """TF32 Tensor Core: TF32 inputs, FP32 accumulation."""

    input_format = TF32
    name = "tf32"

    def _round(self, x: np.ndarray) -> np.ndarray:
        return round_to_tf32(x)
