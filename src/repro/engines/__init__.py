"""Matrix-engine simulators.

These classes reproduce the *arithmetic contract* of the hardware matrix
engines the paper relies on, on top of NumPy:

* :class:`Int8MatrixEngine` — INT8 inputs, INT32 accumulation with
  two's-complement wraparound (NVIDIA INT8 Tensor Core contract used by both
  Ozaki scheme I and II).
* :class:`Fp16MatrixEngine`, :class:`Bf16MatrixEngine`,
  :class:`Tf32MatrixEngine` — low-precision floating-point inputs with FP32
  accumulation (used by the cuMpSGEMM, BF16x9 and TF32GEMM baselines).
* :class:`Fp32MatrixEngine`, :class:`Fp64MatrixEngine` — native SGEMM /
  DGEMM.

Every engine keeps an :class:`OpCounter` ledger of the operations and bytes
it performed, which the performance model (:mod:`repro.perfmodel`) consumes
to translate work into modelled GPU time and energy.
"""

from __future__ import annotations

from .base import MatrixEngine, OpCounter
from .int8 import Int8MatrixEngine
from .lowprec_fp import Bf16MatrixEngine, Fp16MatrixEngine, Tf32MatrixEngine
from .native import Fp32MatrixEngine, Fp64MatrixEngine
from .registry import available_engines, get_engine

__all__ = [
    "MatrixEngine",
    "OpCounter",
    "Int8MatrixEngine",
    "Fp16MatrixEngine",
    "Bf16MatrixEngine",
    "Tf32MatrixEngine",
    "Fp32MatrixEngine",
    "Fp64MatrixEngine",
    "available_engines",
    "get_engine",
]
