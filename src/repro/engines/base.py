"""Matrix-engine interface and operation accounting.

An engine exposes a single :meth:`MatrixEngine.matmul` operation whose
numerical behaviour matches the corresponding hardware unit.  Engines also
record how much work they performed in an :class:`OpCounter`; the
performance model uses those ledgers to convert algorithmic work into
modelled GPU time and power (the hardware itself is not available in this
reproduction — see DESIGN.md, Section 2).
"""

from __future__ import annotations

import abc
import copy
import dataclasses
from typing import Dict

import numpy as np

from ..errors import EngineError
from ..types import Format

__all__ = ["OpCounter", "MatrixEngine"]


@dataclasses.dataclass
class OpCounter:
    """Ledger of operations and memory traffic performed by an engine.

    Attributes
    ----------
    matmul_calls:
        Number of GEMM invocations.
    mac_ops:
        Number of multiply-accumulate operations (``m*n*k`` per GEMM).  The
        conventional "FLOPs" figure is ``2 * mac_ops``.
    elementwise_ops:
        Number of scalar element-wise operations (conversions, scalings).
    bytes_read / bytes_written:
        Modelled memory traffic in bytes, assuming each operand is read or
        written once per invocation (no cache model).
    emulated_calls:
        Histogram ``{N: count}`` of emulated GEMM/GEMV calls retired
        through this engine, keyed by the moduli count each call actually
        ran with.  Recorded by the emulation entry points (not by the raw
        engine ops), so fused/unfused and GEMV/GEMM execution strategies
        stay ledger-identical; under ``num_moduli="auto"`` this is where
        the per-call selected ``N`` becomes observable.
    cache_hits / cache_misses / cache_evictions:
        Prepared-operand cache events (:class:`repro.service.cache.
        OperandCache`): lookups served from a cached
        :class:`~repro.core.operand.ResidueOperand`, lookups that had to
        convert, and entries evicted to stay within the byte budget.  All
        zero for sessions running without a cache.
    cache_bytes_inserted / cache_bytes_evicted:
        Byte traffic of those cache events (an entry's residues + scales +
        retained source), so the resident footprint of a window is
        ``inserted − evicted``.
    fault_events:
        Histogram ``{event: count}`` of resilience events the runtime
        survived while producing this ledger — e.g. ``task_retry``,
        ``wave_retry``, ``pool_failure``, ``shm_fallback``,
        ``degraded_to_thread``, ``stage_retry``.  Recorded by the recovery
        paths (:mod:`repro.runtime.scheduler` and friends), never by the
        engine ops, so a fault-free run has an empty histogram and its
        integer counters compare equal to a faulted-but-recovered run of
        the same product.  This is how degradations surface in
        :class:`~repro.result.Result` instead of happening silently.
    """

    matmul_calls: int = 0
    mac_ops: int = 0
    elementwise_ops: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    cache_bytes_inserted: int = 0
    cache_bytes_evicted: int = 0
    emulated_calls: Dict[int, int] = dataclasses.field(default_factory=dict)
    fault_events: Dict[str, int] = dataclasses.field(default_factory=dict)

    #: Plain integer counters (the dict field needs per-key arithmetic).
    _INT_FIELDS = (
        "matmul_calls",
        "mac_ops",
        "elementwise_ops",
        "bytes_read",
        "bytes_written",
        "cache_hits",
        "cache_misses",
        "cache_evictions",
        "cache_bytes_inserted",
        "cache_bytes_evicted",
    )

    def record_matmul(
        self,
        m: int,
        n: int,
        k: int,
        in_bytes: float,
        out_bytes: float,
        count: int = 1,
    ) -> None:
        """Record ``count`` identical ``m x k`` by ``k x n`` GEMMs.

        A fused stacked call (:meth:`MatrixEngine.matmul_stack`) records its
        whole stack through ``count`` so the ledger is indistinguishable from
        ``count`` separate 2-D calls: the per-call byte figures are rounded
        first and then multiplied, exactly as repeated single calls would
        accumulate them.
        """
        count = int(count)
        self.matmul_calls += count
        self.mac_ops += count * int(m) * int(n) * int(k)
        self.bytes_read += count * int(round((m * k + k * n) * in_bytes))
        self.bytes_written += count * int(round(m * n * out_bytes))

    def record_elementwise(self, count: int, in_bytes: float = 0.0, out_bytes: float = 0.0) -> None:
        """Record ``count`` element-wise operations and their traffic."""
        self.elementwise_ops += int(count)
        self.bytes_read += int(round(count * in_bytes))
        self.bytes_written += int(round(count * out_bytes))

    def record_emulated(self, num_moduli: int, count: int = 1) -> None:
        """Record ``count`` emulated GEMM/GEMV calls run with ``num_moduli``.

        Called once per emulated product by the entry points
        (:func:`repro.core.gemm.ozaki2_gemm`,
        :func:`repro.core.gemv.prepared_gemv`, the batched runtime) — never
        by the engine's raw ops, so every execution strategy of the same
        product records the identical ledger.
        """
        key = int(num_moduli)
        self.emulated_calls[key] = self.emulated_calls.get(key, 0) + int(count)

    def record_cache_hit(self, count: int = 1) -> None:
        """Record ``count`` operand-cache lookups served from the cache."""
        self.cache_hits += int(count)

    def record_cache_miss(self, count: int = 1) -> None:
        """Record ``count`` operand-cache lookups that had to convert."""
        self.cache_misses += int(count)

    def record_cache_insert(self, nbytes: int) -> None:
        """Record one entry of ``nbytes`` entering the operand cache."""
        self.cache_bytes_inserted += int(nbytes)

    def record_cache_eviction(self, nbytes: int, count: int = 1) -> None:
        """Record ``count`` evictions releasing ``nbytes`` from the cache."""
        self.cache_evictions += int(count)
        self.cache_bytes_evicted += int(nbytes)

    def record_fault_event(self, event: str, count: int = 1) -> None:
        """Record ``count`` occurrences of a survived resilience ``event``.

        Called by the recovery paths (task/wave retries, pool rebuilds,
        shared-memory fallbacks, process→thread degradation) so that no
        fault is absorbed silently: the merged ledger of a run that hit
        faults differs from a fault-free run exactly here, and nowhere in
        the work counters.
        """
        self.fault_events[event] = self.fault_events.get(event, 0) + int(count)

    @property
    def flops(self) -> int:
        """Conventional floating/integer-op count: 2 ops per MAC."""
        return 2 * self.mac_ops

    def reset(self) -> None:
        """Zero every counter."""
        for name in self._INT_FIELDS:
            setattr(self, name, 0)
        self.emulated_calls = {}
        self.fault_events = {}

    def as_dict(self) -> Dict[str, object]:
        """Return the counters as a plain dictionary (for reports/tests)."""
        out: Dict[str, object] = {name: getattr(self, name) for name in self._INT_FIELDS}
        out["flops"] = self.flops
        out["emulated_calls"] = dict(self.emulated_calls)
        out["fault_events"] = dict(self.fault_events)
        return out

    def merge(self, other: "OpCounter") -> "OpCounter":
        """Return a new counter with the sum of both ledgers."""
        merged = self.copy()
        merged.absorb(other)
        return merged

    def absorb(self, other: "OpCounter") -> None:
        """Add ``other``'s ledger into this counter in place."""
        for name in self._INT_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        for moduli, count in other.emulated_calls.items():
            self.emulated_calls[moduli] = self.emulated_calls.get(moduli, 0) + count
        for event, count in other.fault_events.items():
            self.fault_events[event] = self.fault_events.get(event, 0) + count

    def copy(self) -> "OpCounter":
        """Return an independent snapshot of this ledger."""
        snapshot = dataclasses.replace(self)
        snapshot.emulated_calls = dict(self.emulated_calls)
        snapshot.fault_events = dict(self.fault_events)
        return snapshot

    def difference(self, earlier: "OpCounter") -> "OpCounter":
        """Return the per-field delta ``self - earlier`` as a new counter.

        Histogram entries whose delta is zero are dropped, so a window in
        which no emulated call retired reports an empty histogram.
        """
        delta = OpCounter()
        for name in self._INT_FIELDS:
            setattr(delta, name, getattr(self, name) - getattr(earlier, name))
        keys = set(self.emulated_calls) | set(earlier.emulated_calls)
        for moduli in sorted(keys):
            count = self.emulated_calls.get(moduli, 0) - earlier.emulated_calls.get(moduli, 0)
            if count:
                delta.emulated_calls[moduli] = count
        events = set(self.fault_events) | set(earlier.fault_events)
        for event in sorted(events):
            count = self.fault_events.get(event, 0) - earlier.fault_events.get(event, 0)
            if count:
                delta.fault_events[event] = count
        return delta


class MatrixEngine(abc.ABC):
    """Abstract base class of all matrix-engine simulators.

    Subclasses define :attr:`input_format` / :attr:`output_format` and
    implement :meth:`_compute`, which receives operands already converted to
    the engine's input representation.
    """

    #: Number format accepted as input by the engine.
    input_format: Format
    #: Number format of the accumulator / output.
    output_format: Format
    #: Human-readable engine name used by the registry and the perf model.
    name: str = "abstract"

    def __init__(self) -> None:
        self.counter = OpCounter()

    # -- public API ---------------------------------------------------------
    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Multiply ``a @ b`` with the engine's numerical behaviour.

        The operands must already be representable in the engine's input
        format (for integer engines, within the INT8 range); violations raise
        :class:`~repro.errors.EngineError` rather than silently wrapping, so
        that algorithm bugs surface immediately.
        """
        a = np.asarray(a)
        b = np.asarray(b)
        if a.ndim != 2 or b.ndim != 2:
            raise EngineError(
                f"{self.name}: operands must be 2-D, got {a.ndim}-D and {b.ndim}-D"
            )
        if a.shape[1] != b.shape[0]:
            raise EngineError(
                f"{self.name}: inner dimensions mismatch {a.shape} x {b.shape}"
            )
        a_in = self._prepare(a, "A")
        b_in = self._prepare(b, "B")
        out = self._compute(a_in, b_in)
        m, k = a.shape
        n = b.shape[1]
        self.counter.record_matmul(
            m,
            n,
            k,
            in_bytes=self.input_format.bytes_per_element,
            out_bytes=self.output_format.bytes_per_element,
        )
        return out

    def matmul_stack(self, a: np.ndarray, b: np.ndarray, trusted: bool = False) -> np.ndarray:
        """Batched product ``out[i] = a[i] @ b[i]`` over a 3-D operand stack.

        ``a`` has shape ``(N, m, k)`` and ``b`` has shape ``(N, k, n)``; the
        result is the ``(N, m, n)`` stack of per-slice products with the
        engine's numerical behaviour.  The op ledger records exactly what
        ``N`` separate :meth:`matmul` calls would.

        ``trusted`` asserts the operands are already in the engine's input
        representation (e.g. INT8 residue stacks produced by this library's
        own conversion), letting subclasses skip their per-call validation
        sweeps.  The generic fallback ignores the flag and validates — only
        engines that override this method with a fused implementation may
        honour it, so external callers keep full validation by default.
        """
        a = np.asarray(a)
        b = np.asarray(b)
        self._check_stack_shapes(a, b)
        outs = [
            self._compute(self._prepare(a[i], "A"), self._prepare(b[i], "B"))
            for i in range(a.shape[0])
        ]
        n_stack, m, k = a.shape
        n = b.shape[2]
        self.counter.record_matmul(
            m,
            n,
            k,
            in_bytes=self.input_format.bytes_per_element,
            out_bytes=self.output_format.bytes_per_element,
            count=n_stack,
        )
        return np.stack(outs)

    def matvec_stack(self, a: np.ndarray, v: np.ndarray, trusted: bool = False) -> np.ndarray:
        """Batched matrix–vector product ``out[i] = a[i] @ v[i]`` over a stack.

        ``a`` has shape ``(N, m, k)`` and ``v`` has shape ``(N, k)``; the
        result is the ``(N, m)`` stack of per-slice products with the
        engine's numerical behaviour.  This is the ``n = 1`` specialisation
        of :meth:`matmul_stack` — the op ledger records exactly what ``N``
        separate ``(m, k) @ (k, 1)`` :meth:`matmul` calls would, so a GEMV
        issued through this op is indistinguishable in the accounting from
        the same product routed through the GEMM machinery.

        ``trusted`` has the same contract as in :meth:`matmul_stack`: the
        generic fallback ignores it and validates every slice; only engines
        overriding this method with a fused implementation may honour it.
        """
        a = np.asarray(a)
        v = np.asarray(v)
        self._check_vec_stack_shapes(a, v)
        outs = [
            self._compute(self._prepare(a[i], "A"), self._prepare(v[i][:, None], "B"))[:, 0]
            for i in range(a.shape[0])
        ]
        n_stack, m, k = a.shape
        self.counter.record_matmul(
            m,
            1,
            k,
            in_bytes=self.input_format.bytes_per_element,
            out_bytes=self.output_format.bytes_per_element,
            count=n_stack,
        )
        return np.stack(outs)

    def _check_vec_stack_shapes(self, a: np.ndarray, v: np.ndarray) -> None:
        """Validate a :meth:`matvec_stack` operand pair (3-D x 2-D, conforming)."""
        if a.ndim != 3 or v.ndim != 2:
            raise EngineError(
                f"{self.name}: matvec_stack expects a 3-D matrix stack and a "
                f"2-D vector stack, got {a.ndim}-D and {v.ndim}-D"
            )
        if a.shape[0] != v.shape[0]:
            raise EngineError(
                f"{self.name}: stack sizes mismatch {a.shape} x {v.shape}"
            )
        if a.shape[0] == 0:
            raise EngineError(f"{self.name}: matvec_stack requires a non-empty stack")
        if a.shape[2] != v.shape[1]:
            raise EngineError(
                f"{self.name}: inner dimensions mismatch {a.shape} x {v.shape}"
            )

    def _check_stack_shapes(self, a: np.ndarray, b: np.ndarray) -> None:
        """Validate a :meth:`matmul_stack` operand pair (3-D, conforming)."""
        if a.ndim != 3 or b.ndim != 3:
            raise EngineError(
                f"{self.name}: stacked operands must be 3-D, got "
                f"{a.ndim}-D and {b.ndim}-D"
            )
        if a.shape[0] != b.shape[0]:
            raise EngineError(
                f"{self.name}: stack sizes mismatch {a.shape} x {b.shape}"
            )
        if a.shape[0] == 0:
            raise EngineError(f"{self.name}: matmul_stack requires a non-empty stack")
        if a.shape[2] != b.shape[1]:
            raise EngineError(
                f"{self.name}: inner dimensions mismatch {a.shape} x {b.shape}"
            )

    def reset_counter(self) -> None:
        """Reset the engine's operation ledger."""
        self.counter.reset()

    def clone(self) -> "MatrixEngine":
        """Return an engine with identical settings and a fresh ledger.

        Engines are cheap value objects whose only mutable state is the
        :class:`OpCounter`; a shallow copy with its own counter is therefore
        an independent, pool-safe instance.  The runtime scheduler gives one
        clone to each worker thread so that concurrent ``matmul`` calls never
        race on a shared ledger, and merges the clone ledgers back afterwards
        (see :mod:`repro.runtime.scheduler`).
        """
        dup = copy.copy(self)
        dup.counter = OpCounter()
        return dup

    # -- subclass hooks ------------------------------------------------------
    @abc.abstractmethod
    def _prepare(self, x: np.ndarray, which: str) -> np.ndarray:
        """Convert/validate an operand into the engine's input representation."""

    @abc.abstractmethod
    def _compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Perform the engine-accurate product of prepared operands."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"
