"""Engine registry: look up matrix-engine simulators by name."""

from __future__ import annotations

from typing import Any, Callable, Dict

from ..errors import EngineError
from .base import MatrixEngine
from .int8 import Int8MatrixEngine
from .lowprec_fp import Bf16MatrixEngine, Fp16MatrixEngine, Tf32MatrixEngine
from .native import Fp32MatrixEngine, Fp64MatrixEngine

__all__ = ["available_engines", "get_engine", "register_engine"]

_FACTORIES: Dict[str, Callable[[], MatrixEngine]] = {
    "int8": Int8MatrixEngine,
    "fp16": Fp16MatrixEngine,
    "bf16": Bf16MatrixEngine,
    "tf32": Tf32MatrixEngine,
    "fp32": Fp32MatrixEngine,
    "fp64": Fp64MatrixEngine,
}


def register_engine(name: str, factory: Callable[[], MatrixEngine]) -> None:
    """Register a custom engine factory under ``name``.

    Registering an existing name replaces the previous factory, which lets
    tests substitute instrumented engines.
    """
    _FACTORIES[str(name).lower()] = factory


def available_engines() -> list[str]:
    """Names of all registered engines, sorted."""
    return sorted(_FACTORIES)


def get_engine(name: str, **kwargs: Any) -> MatrixEngine:
    """Instantiate the engine registered under ``name``.

    Keyword arguments are forwarded to the engine constructor (for example
    ``get_engine("int8", use_blas=False)``).
    """
    key = str(name).lower()
    try:
        factory = _FACTORIES[key]
    except KeyError:
        raise EngineError(
            f"unknown engine {name!r}; available engines: {available_engines()}"
        ) from None
    return factory(**kwargs)
