"""Native FP32 / FP64 GEMM engines.

These wrap NumPy's BLAS-backed ``matmul`` in the :class:`MatrixEngine`
interface so that native SGEMM / DGEMM participate in the same accounting
and registry as the emulation paths.  Numerically they are IEEE binary32 /
binary64 GEMMs, exactly like the cuBLAS routines the paper compares against.
"""

from __future__ import annotations

import numpy as np

from ..errors import EngineError
from ..types import FP32, FP64
from .base import MatrixEngine

__all__ = ["Fp32MatrixEngine", "Fp64MatrixEngine"]


class Fp64MatrixEngine(MatrixEngine):
    """Native DGEMM (IEEE binary64)."""

    input_format = FP64
    output_format = FP64
    name = "fp64"

    def _prepare(self, x: np.ndarray, which: str) -> np.ndarray:
        if not np.issubdtype(np.asarray(x).dtype, np.number):
            raise EngineError(f"fp64 engine: operand {which} is not numeric")
        return np.asarray(x, dtype=np.float64)

    def _compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.matmul(a, b)


class Fp32MatrixEngine(MatrixEngine):
    """Native SGEMM (IEEE binary32)."""

    input_format = FP32
    output_format = FP32
    name = "fp32"

    def _prepare(self, x: np.ndarray, which: str) -> np.ndarray:
        if not np.issubdtype(np.asarray(x).dtype, np.number):
            raise EngineError(f"fp32 engine: operand {which} is not numeric")
        return np.asarray(x, dtype=np.float32)

    def _compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.matmul(a, b, dtype=np.float32)
