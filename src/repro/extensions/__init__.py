"""Extensions sketched in the paper's conclusion.

Section 6 notes that the approach "can also be extended to matrix
multiplication using arbitrary combinations of floating-point formats,
including both homogeneous (e.g., double-double) and heterogeneous (e.g.,
FP16 and FP32) types".  This subpackage provides those two extensions on top
of the same INT8 engine substrate:

* :func:`repro.extensions.ddgemm.dd_gemm` — a GEMM whose result is returned
  as a double-double (~106-bit) pair, computed entirely from INT8 engine
  products,
* :func:`repro.extensions.mixed.mixed_gemm` — GEMM for operands of different
  floating-point formats (e.g. FP32 × FP64, FP16 × FP32).
"""

from __future__ import annotations

from .ddgemm import dd_gemm
from .mixed import mixed_gemm

__all__ = ["dd_gemm", "mixed_gemm"]
