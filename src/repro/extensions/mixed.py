"""Heterogeneous-format GEMM (mixed-precision inputs).

The paper's conclusion mentions extending the emulation to "heterogeneous
(e.g., FP16 and FP32) types": multiplying two matrices stored in different
floating-point formats.  Because Ozaki scheme II never splits significands —
it only scales, truncates and takes residues — supporting mixed inputs is a
matter of (a) materialising each operand's values exactly in the FP64
working precision (every FP16/BF16/TF32/FP32 value is exactly representable
in FP64) and (b) choosing the number of moduli from the *output* format's
precision requirement.

:func:`mixed_gemm` implements exactly that, with the output format defaulting
to the wider of the two input formats.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import ComputeMode, Ozaki2Config
from ..core.gemm import ozaki2_gemm
from ..core.planner import choose_num_moduli
from ..errors import ConfigurationError
from ..formats.lowprec import round_to_format
from ..types import BF16, FP16, FP32, FP64, TF32, Format, get_format

__all__ = ["mixed_gemm"]

#: Formats accepted as mixed-precision inputs.
_INPUT_FORMATS = (FP64, FP32, TF32, BF16, FP16)


def _wider(lhs: Format, rhs: Format) -> Format:
    """The wider (more significand bits) of two formats."""
    return lhs if lhs.significand_bits >= rhs.significand_bits else rhs


def mixed_gemm(
    a: np.ndarray,
    b: np.ndarray,
    a_format: "str | Format",
    b_format: "str | Format",
    out_format: "str | Format | None" = None,
    num_moduli: Optional[int] = None,
    mode: "ComputeMode | str" = ComputeMode.FAST,
) -> np.ndarray:
    """Emulated GEMM for operands stored in (possibly different) formats.

    Parameters
    ----------
    a, b:
        Input matrices.  Each is first rounded onto its declared format's
        value grid (a no-op when it is already stored in that format), so the
        emulation sees exactly the values the low-precision storage holds.
    a_format, b_format:
        Declared storage formats (``"fp64"``, ``"fp32"``, ``"tf32"``,
        ``"bf16"``, ``"fp16"``).
    out_format:
        Result format; defaults to the wider of the two input formats, with
        FP16/BF16/TF32 promoted to FP32 (the natural accumulation target).
    num_moduli:
        Number of CRT moduli; by default chosen by the planner from the
        output format's precision and the inner dimension.
    mode:
        Fast or accurate scaling mode.

    Returns
    -------
    The product in ``out_format``'s storage dtype (float64 for FP64, float32
    otherwise).
    """
    fmt_a = get_format(a_format)
    fmt_b = get_format(b_format)
    for fmt, name in ((fmt_a, "a_format"), (fmt_b, "b_format")):
        if fmt not in _INPUT_FORMATS:
            raise ConfigurationError(
                f"{name} must be one of {[f.name for f in _INPUT_FORMATS]}, got {fmt.name}"
            )

    if out_format is None:
        widest = _wider(fmt_a, fmt_b)
        out_fmt = FP64 if widest == FP64 else FP32
    else:
        out_fmt = get_format(out_format)
        if out_fmt not in (FP64, FP32):
            raise ConfigurationError("out_format must be fp64 or fp32")

    # Materialise the declared storage values exactly in float64.
    a_exact = np.asarray(round_to_format(a, fmt_a), dtype=np.float64)
    b_exact = np.asarray(round_to_format(b, fmt_b), dtype=np.float64)

    k = a_exact.shape[1] if a_exact.ndim == 2 else 1
    if num_moduli is None:
        num_moduli = choose_num_moduli(out_fmt, k=max(k, 1))
    config = Ozaki2Config(precision=out_fmt, num_moduli=num_moduli, mode=mode)
    return ozaki2_gemm(a_exact, b_exact, config=config)
