"""Double-double GEMM on INT8 matrix engines (homogeneous extension).

The conclusion of the paper points out that the emulation idea extends to
"homogeneous (e.g., double-double)" output formats.  This module provides
that extension: :func:`dd_gemm` computes ``A @ B`` for FP64 inputs and
returns the result as an unevaluated double-double pair ``(hi, lo)`` with
roughly 106 significand bits — twice the precision of native DGEMM — while
still performing *all* inner products on the INT8 engine.

The construction follows the error-free-splitting route (Ozaki scheme I with
enough slices to cover 106 bits of each operand): each row/column is scaled
by a power of two, cut into ``S`` exact 7-bit INT8 slices, all slice pairs
with ``s + t <= S + 1`` are multiplied on the INT8 engine (exact INT32
results), and the weighted partial products are accumulated in double-double
arithmetic.  With ``S = 16`` the splitting residual is below ``2^-112`` of
each row/column scale, so the result is a faithful double-double product.

This is substantially more expensive than plain DGEMM emulation
(``S(S+1)/2 = 136`` INT8 GEMMs for ``S = 16`` versus ~15), which is exactly
the trade-off the extension offers: quadruple-like precision at a cost that
still scales with the INT8 engine's throughput rather than the FP64 unit's.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..baselines.ozaki1 import _row_scales, slice_width, split_into_slices
from ..config import MAX_K_WITHOUT_BLOCKING
from ..engines.base import MatrixEngine
from ..engines.int8 import Int8MatrixEngine
from ..errors import ConfigurationError
from ..utils.doubledouble import dd_add, dd_mul_fp
from ..utils.validation import check_gemm_operands

__all__ = ["dd_gemm"]

#: Default number of slices: 16 x 7 bits = 112 bits per operand, enough to
#: cover a double-double result.
_DEFAULT_SLICES = 16


def dd_gemm(
    a: np.ndarray,
    b: np.ndarray,
    num_slices: int = _DEFAULT_SLICES,
    engine: MatrixEngine | None = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Double-double matrix product of FP64 matrices via INT8 engines.

    Returns ``(hi, lo)`` float64 arrays with ``hi + lo ≈ A @ B`` to roughly
    ``num_slices * 7`` bits relative to each row/column scale.

    Parameters
    ----------
    a, b:
        FP64 operands.
    num_slices:
        Number of 7-bit slices per operand (4..24).  16 covers a full
        double-double result; smaller values trade precision for fewer INT8
        GEMMs.
    engine:
        INT8 engine to run the slice products on.
    """
    if not (4 <= int(num_slices) <= 24):
        raise ConfigurationError(f"num_slices must be in [4, 24], got {num_slices}")
    num_slices = int(num_slices)
    engine = engine or Int8MatrixEngine()
    a, b = check_gemm_operands(a, b, dtype=np.float64)
    m, k = a.shape
    n = b.shape[1]
    width = slice_width(min(k, MAX_K_WITHOUT_BLOCKING))

    row_scale = _row_scales(a, axis=1)
    col_scale = _row_scales(b, axis=0)
    a_slices = split_into_slices(a * row_scale[:, None], num_slices, width)
    b_slices = split_into_slices(b * col_scale[None, :], num_slices, width)

    hi = np.zeros((m, n), dtype=np.float64)
    lo = np.zeros((m, n), dtype=np.float64)
    block = MAX_K_WITHOUT_BLOCKING
    # Accumulate the smallest-weight terms first so nothing is lost when the
    # large leading terms join the double-double sum.
    pairs = [
        (s, t)
        for s in range(1, num_slices + 1)
        for t in range(1, num_slices + 1)
        if s + t <= num_slices + 1
    ]
    for s, t in sorted(pairs, key=lambda st: -(st[0] + st[1])):
        partial = np.zeros((m, n), dtype=np.float64)
        for start in range(0, k, block):
            stop = min(start + block, k)
            product = engine.matmul(
                a_slices[s - 1][:, start:stop], b_slices[t - 1][start:stop, :]
            )
            partial += product.astype(np.float64)
        term = np.ldexp(partial, -width * (s + t))
        hi, lo = dd_add((hi, lo), (term, np.zeros_like(term)))

    inv_row = 1.0 / row_scale
    inv_col = 1.0 / col_scale
    hi, lo = dd_mul_fp((hi, lo), inv_row[:, None])
    hi, lo = dd_mul_fp((hi, lo), inv_col[None, :])
    return hi, lo
