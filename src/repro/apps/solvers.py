"""Iterative solvers whose inner products reuse a prepared system matrix.

Iterative methods apply the *same* system matrix ``A`` every iteration —
the textbook convert-once/multiply-many workload for Ozaki scheme II.  Each
solver here prepares ``A`` exactly once (:func:`repro.core.operand.prepare_a`:
scales, truncation and INT8 residues) and then drives every matrix–vector
product of the iteration through the emulated GEMM with the prepared
operand, skipping the dominant ``convert_A`` phase on every call.  The
emulated products are bit-identical to unprepared calls, so the solvers'
numerics are exactly those of a loop over :func:`~repro.core.gemm.ozaki2_gemm`.

Three solvers are provided:

* :func:`jacobi_solve` — for strictly diagonally dominant systems
  (e.g. :func:`repro.workloads.diagonally_dominant_matrix`),
* :func:`cg_solve` — conjugate gradients for symmetric positive-definite
  systems (e.g. :func:`repro.workloads.spd_matrix`),
* :func:`iterative_refinement_solve` — LU once (optionally with emulated
  trailing updates, see :mod:`repro.apps.lu`), then refinement steps whose
  residuals ``r = b − A·x`` run through the prepared emulated GEMM.

All three accept a shared :class:`~repro.runtime.scheduler.Scheduler` via
``config.parallelism`` internally: one warm worker pool serves every
iteration's residue GEMMs.
"""

from __future__ import annotations

import dataclasses
import time
from typing import List, Optional

import numpy as np

from ..config import Ozaki2Config
from ..core.gemm import ozaki2_gemm
from ..core.operand import ResidueOperand, prepare_a
from ..errors import ValidationError
from ..runtime.scheduler import Scheduler
from ..utils.validation import ensure_2d

__all__ = [
    "SolveResult",
    "prepared_matvec",
    "jacobi_solve",
    "cg_solve",
    "iterative_refinement_solve",
]


@dataclasses.dataclass
class SolveResult:
    """Outcome of one iterative solve.

    Attributes
    ----------
    x:
        The computed solution vector.
    converged:
        Whether the stopping tolerance was met within ``max_iter``.
    iterations:
        Number of iterations actually performed.
    residual_norm:
        Final relative residual ``‖b − A·x‖₂ / ‖b‖₂``.
    residual_history:
        Relative residual after every iteration (length ``iterations``).
    method:
        Solver label, e.g. ``"jacobi(OS II-fast-15)"``.
    prepare_seconds:
        One-time cost of preparing the system matrix (the amortised phase).
    seconds:
        Total wall-clock of the solve, including preparation.
    """

    x: np.ndarray
    converged: bool
    iterations: int
    residual_norm: float
    residual_history: List[float]
    method: str
    prepare_seconds: float
    seconds: float


def prepared_matvec(
    operand: ResidueOperand,
    v: np.ndarray,
    config: Optional[Ozaki2Config] = None,
    scheduler: Optional[Scheduler] = None,
) -> np.ndarray:
    """Emulated ``A @ v`` through a prepared left operand (GEMV as n=1 GEMM)."""
    config = config or operand.config
    v = np.asarray(v, dtype=np.float64)
    if v.ndim != 1:
        raise ValidationError(f"matvec expects a 1-D vector, got shape {v.shape}")
    product = ozaki2_gemm(operand, v[:, None], config=config, scheduler=scheduler)
    return np.asarray(product, dtype=np.float64).ravel()


def _check_system(a: np.ndarray, b: np.ndarray) -> tuple:
    a = ensure_2d(a, "A")
    if a.shape[0] != a.shape[1]:
        raise ValidationError(f"iterative solvers need a square matrix, got {a.shape}")
    b = np.asarray(b, dtype=np.float64).ravel()
    if b.shape[0] != a.shape[0]:
        raise ValidationError(
            f"right-hand side has {b.shape[0]} entries for a {a.shape[0]}-row matrix"
        )
    return np.asarray(a, dtype=np.float64), b


def _solver_config(config: Optional[Ozaki2Config]) -> Ozaki2Config:
    return config or Ozaki2Config.for_dgemm()


def _check_max_iter(max_iter: int) -> int:
    """At least one iteration, so the reported residual is always measured."""
    max_iter = int(max_iter)
    if max_iter < 1:
        raise ValidationError(f"max_iter must be at least 1, got {max_iter}")
    return max_iter


def jacobi_solve(
    a: np.ndarray,
    b: np.ndarray,
    config: Optional[Ozaki2Config] = None,
    tol: float = 1e-10,
    max_iter: int = 200,
    x0: Optional[np.ndarray] = None,
) -> SolveResult:
    """Jacobi iteration ``x ← x + D⁻¹(b − A·x)`` with emulated residuals.

    Converges for strictly diagonally dominant ``A``.  The system matrix is
    prepared once; every iteration's ``A·x`` reuses the cached residues.
    """
    config = _solver_config(config)
    a, b = _check_system(a, b)
    max_iter = _check_max_iter(max_iter)
    diag = np.diag(a).copy()
    if np.any(diag == 0.0):
        raise ValidationError("Jacobi requires a zero-free diagonal")

    start = time.perf_counter()
    prep = prepare_a(a, config=config)
    prepare_seconds = time.perf_counter() - start

    x = np.zeros_like(b) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    b_norm = float(np.linalg.norm(b)) or 1.0
    history: List[float] = []
    converged = False
    with Scheduler(parallelism=config.parallelism) as sched:
        for _ in range(max_iter):
            residual = b - prepared_matvec(prep, x, config, sched)
            rel = float(np.linalg.norm(residual)) / b_norm
            history.append(rel)
            if rel <= tol:
                converged = True
                break
            x = x + residual / diag
    return SolveResult(
        x=x,
        converged=converged,
        iterations=len(history),
        residual_norm=history[-1] if history else float("nan"),
        residual_history=history,
        method=f"jacobi({config.method_name})",
        prepare_seconds=prepare_seconds,
        seconds=time.perf_counter() - start,
    )


def cg_solve(
    a: np.ndarray,
    b: np.ndarray,
    config: Optional[Ozaki2Config] = None,
    tol: float = 1e-10,
    max_iter: Optional[int] = None,
    x0: Optional[np.ndarray] = None,
) -> SolveResult:
    """Conjugate gradients for SPD ``A`` with emulated ``A·p`` products.

    One matrix–vector product per iteration, all through the prepared
    operand.  ``max_iter`` defaults to ``2n`` (CG reaches the exact solution
    in at most ``n`` exact-arithmetic steps; the slack absorbs rounding).
    """
    config = _solver_config(config)
    a, b = _check_system(a, b)
    n = a.shape[0]
    max_iter = 2 * n if max_iter is None else _check_max_iter(max_iter)

    start = time.perf_counter()
    prep = prepare_a(a, config=config)
    prepare_seconds = time.perf_counter() - start

    x = np.zeros_like(b) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    b_norm = float(np.linalg.norm(b)) or 1.0
    history: List[float] = []
    converged = False
    with Scheduler(parallelism=config.parallelism) as sched:
        r = b - prepared_matvec(prep, x, config, sched)
        p = r.copy()
        rs = float(r @ r)
        for _ in range(max_iter):
            rel = float(np.sqrt(rs)) / b_norm
            history.append(rel)
            if rel <= tol:
                converged = True
                break
            ap = prepared_matvec(prep, p, config, sched)
            denom = float(p @ ap)
            if denom <= 0.0:
                # Loss of positive-definiteness in the emulated product —
                # stop rather than diverge silently.
                break
            alpha = rs / denom
            x = x + alpha * p
            r = r - alpha * ap
            rs_next = float(r @ r)
            p = r + (rs_next / rs) * p
            rs = rs_next
    return SolveResult(
        x=x,
        converged=converged,
        iterations=len(history),
        residual_norm=history[-1] if history else float("nan"),
        residual_history=history,
        method=f"cg({config.method_name})",
        prepare_seconds=prepare_seconds,
        seconds=time.perf_counter() - start,
    )


def iterative_refinement_solve(
    a: np.ndarray,
    b: np.ndarray,
    config: Optional[Ozaki2Config] = None,
    tol: float = 1e-13,
    max_iter: int = 20,
    lu_block: int = 64,
    emulated_factorization: bool = False,
) -> SolveResult:
    """LU once, then refinement steps with emulated residuals.

    Factors ``P·A = L·U`` once (with
    :func:`repro.apps.lu.blocked_lu`; ``emulated_factorization`` routes the
    trailing updates through the emulated GEMM with prepared ``L21`` panels),
    then iterates ``x ← x + U⁻¹L⁻¹P(b − A·x)`` where the residual product
    ``A·x`` runs through the prepared system matrix every step — the classic
    HPL-style pairing of a fast factorization with high-quality residuals.
    """
    from .lu import blocked_lu, prepared_update_gemm

    config = _solver_config(config)
    a, b = _check_system(a, b)
    max_iter = _check_max_iter(max_iter)

    start = time.perf_counter()
    prep = prepare_a(a, config=config)
    prepare_seconds = time.perf_counter() - start

    if emulated_factorization:
        # Convert-once trailing panels: L21 is prepared once per panel and
        # reused across the U12 column strips (see lu_with_prepared_updates).
        p, lower, upper = blocked_lu(
            a,
            block=lu_block,
            gemm=prepared_update_gemm(config),
            prepare_left=lambda l21: prepare_a(l21, config=config),
            trail_cols=lu_block,
        )
    else:
        p, lower, upper = blocked_lu(a, block=lu_block)

    def correction(residual: np.ndarray) -> np.ndarray:
        y = np.linalg.solve(lower, p @ residual)
        return np.linalg.solve(upper, y)

    x = correction(b)
    b_norm = float(np.linalg.norm(b)) or 1.0
    history: List[float] = []
    converged = False
    with Scheduler(parallelism=config.parallelism) as sched:
        for _ in range(max_iter):
            residual = b - prepared_matvec(prep, x, config, sched)
            rel = float(np.linalg.norm(residual)) / b_norm
            history.append(rel)
            if rel <= tol:
                converged = True
                break
            x = x + correction(residual)
    return SolveResult(
        x=x,
        converged=converged,
        iterations=len(history),
        residual_norm=history[-1] if history else float("nan"),
        residual_history=history,
        method=f"ir({config.method_name})",
        prepare_seconds=prepare_seconds,
        seconds=time.perf_counter() - start,
    )
