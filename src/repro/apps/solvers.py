"""Iterative solvers whose inner products reuse a prepared system matrix.

Iterative methods apply the *same* system matrix ``A`` every iteration —
the textbook convert-once/multiply-many workload for Ozaki scheme II.  Each
solver here prepares ``A`` exactly once (:func:`repro.core.operand.prepare_a`:
scales, truncation and INT8 residues) and then drives every matrix–vector
product of the iteration through the emulated GEMM with the prepared
operand, skipping the dominant ``convert_A`` phase on every call.  The
emulated products are bit-identical to unprepared calls, so the solvers'
numerics are exactly those of a loop over :func:`~repro.core.gemm.ozaki2_gemm`.

Each matrix–vector product takes the dedicated residue-GEMV fast path
(:func:`repro.core.gemv.prepared_gemv`) by default — one fused stacked
engine GEMV on the cached residues, bypassing the GEMM plan/scheduler
machinery entirely — and falls back to the bit-identical ``n = 1`` GEMM
route when ``Ozaki2Config.gemv_fast_path`` is off (see
:func:`prepared_matvec`).

Four solvers are provided:

* :func:`jacobi_solve` — for strictly diagonally dominant systems
  (e.g. :func:`repro.workloads.diagonally_dominant_matrix`); a ``precond``
  upgrades the sweep to preconditioned Richardson,
* :func:`cg_solve` — conjugate gradients for symmetric positive-definite
  systems (e.g. :func:`repro.workloads.spd_matrix`),
* :func:`pcg_solve` — preconditioned CG whose ``M ≈ A`` is factored once
  (:mod:`repro.apps.preconditioners`: ILU(0), SSOR), cutting the iteration
  count — and with it the number of emulated products — on
  ill-conditioned systems,
* :func:`iterative_refinement_solve` — LU once (optionally with emulated
  trailing updates, see :mod:`repro.apps.lu`), then refinement steps whose
  residuals ``r = b − A·x`` run through the prepared emulated GEMM.

All three accept a shared :class:`~repro.runtime.scheduler.Scheduler` via
``config.parallelism`` internally: one warm worker pool serves every
iteration's residue GEMMs.
"""

from __future__ import annotations

import dataclasses
import time
from typing import List, Optional

import numpy as np

from ..config import Ozaki2Config
from ..core.gemm import ozaki2_gemm
from ..core.gemv import prepared_gemv
from ..core.operand import PreparedOperand, prepare_a
from ..crt.adaptive import select_num_moduli
from ..errors import ValidationError
from ..result import Result
from ..runtime.scheduler import Scheduler
from ..utils.validation import ensure_2d
from .preconditioners import Preconditioner, make_preconditioner

__all__ = [
    "SolveResult",
    "moduli_schedule_segments",
    "prepared_matvec",
    "jacobi_solve",
    "cg_solve",
    "pcg_solve",
    "iterative_refinement_solve",
]


def moduli_schedule_segments(moduli_history: List[int]) -> List[tuple]:
    """Run-length encode a moduli history into ``(count, iterations)`` pairs.

    ``[6, 6, 12, 15, 15]`` becomes ``[(6, 2), (12, 1), (15, 2)]`` — the
    form the CLI and the progressive-solver sweep render schedules in.
    """
    segments: List[list] = []
    for count in moduli_history:
        if segments and segments[-1][0] == count:
            segments[-1][1] += 1
        else:
            segments.append([count, 1])
    return [tuple(segment) for segment in segments]


class _ModuliLadder:
    """Escalation schedule of a progressive-precision solve.

    Early iterations of an iterative solver cannot profit from a matvec
    whose error sits ten orders below the current residual — the adaptive
    error model (:mod:`repro.crt.adaptive`) says how many moduli suffice to
    keep the matvec's error safely below the residual, and that is all a
    contraction needs.  The ladder maps the current relative residual to a
    moduli count, never descends, escalates in strides of at least
    :data:`_ESCALATION_STRIDE` (each stage re-derives the prepared operand
    once — cached on it — so fewer, larger jumps amortise better), and
    pins the endgame to the full count: once the residual is within a
    decade of the tolerance every iteration runs at ``n_full``, so a
    converged answer has passed exactly the fixed-count residual check.

    Two deliberately-heuristic ingredients (the *correctness* of a
    progressive solve never rests on them — only its speed — because
    convergence is declared solely from a full-count residual):

    * the stage rule stays on a count while the stage's guaranteed
      relative bound remains within :data:`_BOUND_SLACK_CREDIT` of the
      residual — the bound's documented two-to-four-order conservatism
      means the true matvec error then sits far below the residual;
    * a stall guard (:meth:`stalled`) escalates anyway whenever a window
      of iterations stops making progress — the backstop for matrices on
      which that slack did not materialise.

    The selection is intentionally fed unit magnitudes: the model's
    relative bound is magnitude-invariant, so the ladder depends only on
    ``(k, precision, mode)`` and the residual.
    """

    def __init__(self, inner_dim: int, config: Ozaki2Config, tol: float) -> None:
        self.k = int(inner_dim)
        self.n_full = int(config.num_moduli)
        self.bits = 64 if config.is_dgemm else 32
        self.mode = config.mode.value
        self.model = config.selection_model
        self.tol = float(tol)
        self._window: List[float] = []

    def moduli_for(self, rel_residual: float, current: int) -> int:
        """Moduli count for the next iteration given the residual now."""
        if not np.isfinite(rel_residual) or rel_residual <= 10.0 * self.tol:
            return self.n_full
        target = min(_BOUND_SLACK_CREDIT * rel_residual, 0.099)
        want = select_num_moduli(
            self.k, 1.0, 1.0, self.bits, target=target, mode=self.mode,
            model=self.model,
        ).num_moduli
        want = min(self.n_full, want)
        if want <= current:
            return current
        return min(self.n_full, max(want, current + _ESCALATION_STRIDE))

    def next_stride(self, current: int) -> int:
        """One forced escalation step (the stall guard's move)."""
        return min(self.n_full, current + _ESCALATION_STRIDE)

    def advance(self, rel_residual: float, current: int) -> int:
        """Count for the next iteration: the stage rule plus the stall guard.

        Covers the ordinary escalation (the residual shrank past the
        current stage), a low-count residual meeting the tolerance (the
        stage rule then pins the full count for the verification pass),
        and the stall guard (no progress at this stage's error floor).
        Resets the progress window whenever an escalation is due, so the
        caller only has to swap operands when the result exceeds
        ``current``.
        """
        want = self.moduli_for(rel_residual, current)
        if want == current and current < self.n_full and self.stalled(rel_residual):
            want = self.next_stride(current)
        if want > current:
            self.reset_window()
        return want

    def stalled(self, rel_residual: float) -> bool:
        """True when the recent iterations stopped making progress.

        CG residuals oscillate, so single samples cannot be compared; the
        guard instead compares the *best* residual of the newest half of a
        sliding window against the best of the oldest half, and reports a
        stall only when the improvement is under 10%.  A full window must
        accumulate first, which doubles as a grace period after every
        escalation/restart (escalations clear the window).
        """
        self._window.append(float(rel_residual))
        if len(self._window) < _STALL_WINDOW:
            return False
        if len(self._window) > _STALL_WINDOW:
            self._window.pop(0)
        half = _STALL_WINDOW // 2
        return min(self._window[half:]) > 0.9 * min(self._window[:half])

    def reset_window(self) -> None:
        """Forget the progress window (call after every escalation)."""
        self._window.clear()

    def initial(self) -> int:
        """Starting count (the ladder entry for an unconverged residual)."""
        return self.moduli_for(1.0, 0)


#: Minimum escalation jump of the progressive ladder (see _ModuliLadder).
#: Tuned on the adaptive-moduli benchmark: smaller strides add operand
#: re-derivations and CG restarts that cost more than their finer-grained
#: stages save.
_ESCALATION_STRIDE = 6

#: Stage rule: stay on a count while its *guaranteed* relative bound is
#: below ``credit x residual``.  1.0 keeps the guarantee exactly at the
#: residual; the bound's measured two-to-four-order conservatism means the
#: true matvec error then sits far below it, and the stall guard covers
#: the exceptions.  (Values well above 1 over-stay stages on
#: ill-conditioned systems; values below 1 escalate before the cheap
#: stages have paid for their derivation.)
_BOUND_SLACK_CREDIT = 1.0

#: Sliding-window length of the stall guard (compared in halves; also the
#: post-escalation grace period, since escalations clear the window).
_STALL_WINDOW = 20


@dataclasses.dataclass
class SolveResult(Result):
    """Outcome of one iterative solve.

    Attributes
    ----------
    value:
        The computed solution vector (also reachable under the historical
        name :attr:`x`).
    converged:
        Whether the stopping tolerance was met within ``max_iter``.
    iterations:
        Number of iterations actually performed.
    residual_norm:
        Final relative residual ``‖b − A·x‖₂ / ‖b‖₂``.
    residual_history:
        Relative residual after every iteration (length ``iterations``).
    method:
        Solver label, e.g. ``"jacobi(OS II-fast-15)"`` or
        ``"pcg+ilu0(OS II-fast-15)"``.
    prepare_seconds:
        One-time cost of preparing the system matrix (the amortised phase).
    seconds:
        Total wall-clock of the solve, including preparation.
    precond:
        Preconditioner kind actually applied (``"none"`` when the solver
        ran unpreconditioned).
    precond_seconds:
        One-time cost of factoring the preconditioner (0 for ``"none"``) —
        amortised over the iterations exactly like ``prepare_seconds``.
    moduli_history:
        Moduli count each iteration's emulated products ran with (aligned
        with ``residual_history``).  Constant for plain solves; a
        non-descending ladder ending at the full count for progressive
        solves (``progressive=True``) — convergence is only ever declared
        from a full-count residual check.
    """

    converged: bool = False
    iterations: int = 0
    residual_norm: float = float("nan")
    residual_history: List[float] = dataclasses.field(default_factory=list)
    method: str = ""
    prepare_seconds: float = 0.0
    seconds: float = 0.0
    precond: str = "none"
    precond_seconds: float = 0.0

    @property
    def x(self) -> np.ndarray:
        """The solution vector (historical alias of :attr:`value`)."""
        return self.value


def prepared_matvec(
    operand: PreparedOperand,
    v: np.ndarray,
    config: Optional[Ozaki2Config] = None,
    scheduler: Optional[Scheduler] = None,
) -> np.ndarray:
    """Emulated ``A @ v`` through a prepared left operand.

    With ``config.gemv_fast_path`` (the default) the product takes the
    dedicated residue-GEMV kernel (:func:`repro.core.gemv.prepared_gemv`):
    one fused stacked engine GEMV on the cached residues, no
    plan/scheduler machinery.  With the flag off it routes through the full
    ``n = 1`` GEMM path instead — the verification comparator.  Both are
    bit-identical (and, for configurations that do not force output tiling
    via ``memory_budget_mb``, record identical op ledgers), so solvers
    behave numerically the same either way.
    """
    config = config or operand.config
    v = np.asarray(v, dtype=np.float64)
    if v.ndim != 1:
        raise ValidationError(f"matvec expects a 1-D vector, got shape {v.shape}")
    if config.gemv_fast_path:
        engine = scheduler.engine if scheduler is not None else None
        product = prepared_gemv(operand, v, config=config, engine=engine)
        return np.asarray(product, dtype=np.float64).ravel()
    product = ozaki2_gemm(operand, v[:, None], config=config, scheduler=scheduler)
    return np.asarray(product, dtype=np.float64).ravel()


def _check_system(a: np.ndarray, b: np.ndarray) -> tuple:
    a = ensure_2d(a, "A")
    if a.shape[0] != a.shape[1]:
        raise ValidationError(f"iterative solvers need a square matrix, got {a.shape}")
    b = np.asarray(b, dtype=np.float64).ravel()
    if b.shape[0] != a.shape[0]:
        raise ValidationError(
            f"right-hand side has {b.shape[0]} entries for a {a.shape[0]}-row matrix"
        )
    return np.asarray(a, dtype=np.float64), b


def _solver_config(config: Optional[Ozaki2Config]) -> Ozaki2Config:
    return config or Ozaki2Config.for_dgemm()


def _check_max_iter(max_iter: int) -> int:
    """At least one iteration, so the reported residual is always measured."""
    max_iter = int(max_iter)
    if max_iter < 1:
        raise ValidationError(f"max_iter must be at least 1, got {max_iter}")
    return max_iter


def _adopt_prepared(
    a: np.ndarray, config: Ozaki2Config, prepared: PreparedOperand
) -> tuple:
    """Validate a caller-supplied prepared system matrix and adopt it.

    Callers that already hold ``A``'s prepared operand (fast-mode
    :class:`~repro.core.operand.ResidueOperand` or accurate-mode
    :class:`~repro.core.operand.AccurateOperand`) — the
    :class:`~repro.session.Session` facade's transparent operand cache, or a
    user reusing one system matrix across many right-hand sides — pass it as
    ``prepared=`` and the solver skips its own :func:`prepare_a` (the
    one-time conversion was paid elsewhere, so ``prepare_seconds`` reports
    0).  The operand must be an A-side preparation of this very system
    matrix; a fixed-count ``config`` at another moduli count re-derives the
    operand (``resolve_for``, cached, bit-identical to a fresh
    preparation).  Returns ``(operand, concrete_config)``.
    """
    if prepared.side != "A":
        raise ValidationError(
            "the prepared system matrix must be an A-side operand "
            "(per-row scales); use prepare_a / Session.prepare(side='A')"
        )
    if tuple(prepared.shape) != tuple(a.shape):
        raise ValidationError(
            f"prepared operand shape {tuple(prepared.shape)} does not match "
            f"the system matrix {tuple(a.shape)}"
        )
    if config.moduli_is_auto:
        prepared.require_compatible(config)
        return prepared, prepared.config
    # Mode/precision/kernel must match outright; the count may differ and is
    # reachable through the operand's cached re-derivation.
    prepared.require_compatible(config.replace(num_moduli="auto", target_accuracy=None))
    return prepared.resolve_for(config.num_moduli), config


def jacobi_solve(
    a: np.ndarray,
    b: np.ndarray,
    config: Optional[Ozaki2Config] = None,
    tol: float = 1e-10,
    max_iter: Optional[int] = None,
    x0: Optional[np.ndarray] = None,
    precond: "str | Preconditioner | None" = None,
    omega: float = 1.0,
    progressive: bool = False,
    prepared: Optional[PreparedOperand] = None,
) -> SolveResult:
    """Jacobi iteration ``x ← x + D⁻¹(b − A·x)`` with emulated residuals.

    Converges for strictly diagonally dominant ``A``.  The system matrix is
    prepared once; every iteration's ``A·x`` reuses the cached residues.

    ``precond`` upgrades the sweep to the preconditioned Richardson
    iteration ``x ← x + M⁻¹(b − A·x)``: classic Jacobi *is* this sweep with
    ``M = diag(A)``, and passing ``"ilu0"``/``"ssor"`` (or a factored
    :class:`~repro.apps.preconditioners.Preconditioner`) swaps in the
    stronger factored-once ``M``, widening the convergent class well beyond
    diagonal dominance.  ``None`` (default) keeps the classic diagonal
    sweep bit-for-bit.

    ``progressive`` runs the sweep at a reduced moduli count while the
    residual is large and escalates along the adaptive ladder
    (:class:`_ModuliLadder`); the stationary iteration tolerates the
    larger early matvec error, and convergence is only declared from a
    full-count residual check, so a converged answer passed exactly the
    plain solve's criterion.
    """
    config = _solver_config(config)
    a, b = _check_system(a, b)
    # Progressive sweeps spend iterations on ladder stages and full-count
    # verification passes, so their default budget carries 50% slack
    # (matching pcg_solve's 3n-instead-of-2n default).
    if max_iter is None:
        max_iter = 300 if progressive else 200
    else:
        max_iter = _check_max_iter(max_iter)
    # Both one-time costs count towards the reported total wall clock, so
    # the timer starts before the preconditioner is factored.
    start = time.perf_counter()
    m_inv: Optional[Preconditioner] = None
    precond_seconds = 0.0
    kind = "none"
    if precond is not None:
        candidate = make_preconditioner(a, precond, omega=omega)
        if candidate.kind != "none":
            m_inv, kind = candidate, candidate.kind
            precond_seconds = candidate.factor_seconds
    if m_inv is None:
        diag = np.diag(a).copy()
        if np.any(diag == 0.0):
            raise ValidationError("Jacobi requires a zero-free diagonal")
    label = "jacobi" if m_inv is None else f"jacobi+{kind}"

    if prepared is not None:
        prep, config = _adopt_prepared(a, config, prepared)
        prepare_seconds = 0.0
    else:
        prep_start = time.perf_counter()
        prep = prepare_a(a, config=config)
        config = prep.config  # concrete under num_moduli="auto"
        prepare_seconds = time.perf_counter() - prep_start

    n_full = config.num_moduli
    ladder = _ModuliLadder(a.shape[1], config, tol) if progressive else None
    cur_n = ladder.initial() if ladder is not None else n_full
    prep_cur = prep.resolve_for(cur_n)
    cfg_cur = config.resolved(cur_n)
    if progressive:
        label += "-prog"

    x = np.zeros_like(b) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    b_norm = float(np.linalg.norm(b)) or 1.0
    history: List[float] = []
    moduli: List[int] = []
    converged = False
    with Scheduler(
        parallelism=config.parallelism,
        executor=config.executor,
        max_pool_rebuilds=config.max_pool_rebuilds,
    ) as sched:
        for _ in range(max_iter):
            residual = b - prepared_matvec(prep_cur, x, cfg_cur, sched)
            rel = float(np.linalg.norm(residual)) / b_norm
            history.append(rel)
            moduli.append(cur_n)
            if rel <= tol:
                if cur_n == n_full:
                    converged = True
                    break
                # A low-count residual met the tolerance: re-verify at the
                # full count before claiming convergence (no sweep applied
                # — x may already be converged).
                cur_n = n_full
                prep_cur, cfg_cur = prep.resolve_for(cur_n), config.resolved(cur_n)
                continue
            if ladder is not None:
                want = ladder.advance(rel, cur_n)
                if want > cur_n:
                    # Escalate for the *next* sweep; the residual in hand is
                    # still a valid stationary-iteration correction.
                    cur_n = want
                    prep_cur, cfg_cur = prep.resolve_for(cur_n), config.resolved(cur_n)
            if m_inv is None:
                x = x + residual / diag
            else:
                x = x + m_inv.apply(residual)
    return SolveResult(
        value=x,
        config=config,
        converged=converged,
        iterations=len(history),
        residual_norm=history[-1] if history else float("nan"),
        residual_history=history,
        method=f"{label}({config.method_name})",
        prepare_seconds=prepare_seconds,
        seconds=time.perf_counter() - start,
        precond=kind,
        precond_seconds=precond_seconds,
        moduli_history=moduli,
    )


def cg_solve(
    a: np.ndarray,
    b: np.ndarray,
    config: Optional[Ozaki2Config] = None,
    tol: float = 1e-10,
    max_iter: Optional[int] = None,
    x0: Optional[np.ndarray] = None,
    precond: "str | Preconditioner | None" = None,
    omega: float = 1.0,
    progressive: bool = False,
    prepared: Optional[PreparedOperand] = None,
) -> SolveResult:
    """Conjugate gradients for SPD ``A`` with emulated ``A·p`` products.

    One matrix–vector product per iteration, all through the prepared
    operand.  ``max_iter`` defaults to ``2n`` (CG reaches the exact solution
    in at most ``n`` exact-arithmetic steps; the slack absorbs rounding).
    This is :func:`pcg_solve` with the identity preconditioner — the
    preconditioned iteration with ``M = I`` performs bit-for-bit the plain
    CG recurrence — and passing ``precond`` upgrades it to preconditioned
    CG outright (reported under the ``pcg+<kind>`` label).
    ``progressive`` enables the moduli-escalation ladder (see
    :func:`pcg_solve`).
    """
    # Decide from the preconditioner *kind*, so a factored
    # IdentityPreconditioner instance labels the run "cg" exactly like
    # precond=None / "none" does.
    if precond is None:
        unpreconditioned = True
    elif isinstance(precond, Preconditioner):
        unpreconditioned = precond.kind == "none"
    else:
        unpreconditioned = str(precond).strip().lower() in ("none", "")
    return pcg_solve(
        a,
        b,
        config=config,
        tol=tol,
        max_iter=max_iter,
        x0=x0,
        precond="none" if unpreconditioned else precond,
        omega=omega,
        progressive=progressive,
        prepared=prepared,
        _method_label="cg" if unpreconditioned else None,
    )


def pcg_solve(
    a: np.ndarray,
    b: np.ndarray,
    config: Optional[Ozaki2Config] = None,
    tol: float = 1e-10,
    max_iter: Optional[int] = None,
    x0: Optional[np.ndarray] = None,
    precond: "str | Preconditioner" = "ilu0",
    omega: float = 1.0,
    progressive: bool = False,
    prepared: Optional[PreparedOperand] = None,
    _method_label: Optional[str] = None,
) -> SolveResult:
    """Preconditioned conjugate gradients with emulated ``A·p`` products.

    Both one-time costs follow the convert-once pattern: the system matrix
    is prepared for the emulated GEMV (:func:`~repro.core.operand.
    prepare_a`) and the preconditioner ``M ≈ A`` is factored
    (:func:`~repro.apps.preconditioners.make_preconditioner`) before the
    first iteration; every step then costs one emulated matrix–vector
    product plus the O(n²) preconditioner application ``z = M⁻¹ r``.  On
    ill-conditioned SPD systems the preconditioned iteration converges in
    strictly fewer steps than plain CG — fewer emulated products, which is
    the whole budget of the solve.

    ``precond`` is a kind from :data:`~repro.apps.preconditioners.
    PRECONDITIONER_KINDS` (``"none"``, ``"ilu0"``, ``"ssor"``) or an
    already-factored :class:`~repro.apps.preconditioners.Preconditioner`
    to reuse across solves; ``omega`` is the SSOR relaxation factor.

    ``progressive`` iterates at a reduced moduli count while the residual
    is large and escalates along the adaptive ladder
    (:class:`_ModuliLadder`).  CG's recurrence assumes one fixed operator,
    so every escalation *restarts* the recurrence from the current iterate
    (a fresh residual, preconditioned direction and ``r·z`` at the new
    count); the endgame runs at the full count, so a converged answer
    passed exactly the plain solve's residual check.
    """
    config = _solver_config(config)
    a, b = _check_system(a, b)
    n = a.shape[0]
    # Progressive solves spend iterations on ladder stages and restarts, so
    # their default budget carries an extra n of slack.
    if max_iter is None:
        max_iter = (3 if progressive else 2) * n
    else:
        max_iter = _check_max_iter(max_iter)

    start = time.perf_counter()
    # Factor the preconditioner before the (expensive) operand preparation,
    # so invalid precond arguments fail before any residue conversion runs.
    # The one-time factor cost is recorded where it happens (an
    # already-factored instance passed in reports its original cost).
    m_inv = make_preconditioner(a, precond, omega=omega)
    precond_seconds = m_inv.factor_seconds

    if prepared is not None:
        prep, config = _adopt_prepared(a, config, prepared)
        prepare_seconds = 0.0
    else:
        prep_start = time.perf_counter()
        prep = prepare_a(a, config=config)
        config = prep.config  # concrete under num_moduli="auto"
        prepare_seconds = time.perf_counter() - prep_start

    if _method_label is None:
        _method_label = "pcg" if m_inv.kind == "none" else f"pcg+{m_inv.kind}"
    if progressive:
        _method_label += "-prog"

    n_full = config.num_moduli
    ladder = _ModuliLadder(a.shape[1], config, tol) if progressive else None
    cur_n = ladder.initial() if ladder is not None else n_full
    prep_cur = prep.resolve_for(cur_n)
    cfg_cur = config.resolved(cur_n)

    x = np.zeros_like(b) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    b_norm = float(np.linalg.norm(b)) or 1.0
    history: List[float] = []
    moduli: List[int] = []
    converged = False
    with Scheduler(
        parallelism=config.parallelism,
        executor=config.executor,
        max_pool_rebuilds=config.max_pool_rebuilds,
    ) as sched:

        def _restart():
            """(Re)start the recurrence from x at the current count."""
            r = b - prepared_matvec(prep_cur, x, cfg_cur, sched)
            z = m_inv.apply(r)
            return r, z, z.copy(), float(r @ z)

        def _recover_from_breakdown():
            """Escalate to the full count after a low-count breakdown.

            At a reduced count the emulated ``A·p`` carries the ladder's
            deliberately larger error, which can destroy the recurrence's
            positive-definiteness; that is an artefact of the stage, not
            of the problem, so the progressive solve escalates straight
            to the full count and restarts instead of aborting.
            Returns True when a recovery restart was performed.
            """
            nonlocal cur_n, prep_cur, cfg_cur, r, z, p, rz
            if ladder is None or cur_n >= n_full:
                return False
            cur_n = n_full
            prep_cur = prep.resolve_for(cur_n)
            cfg_cur = config.resolved(cur_n)
            ladder.reset_window()
            r, z, p, rz = _restart()
            return True

        r, z, p, rz = _restart()
        for _ in range(max_iter):
            rel = float(np.linalg.norm(r)) / b_norm
            history.append(rel)
            moduli.append(cur_n)
            if rel <= tol and cur_n == n_full:
                converged = True
                break
            if ladder is not None:
                want = ladder.advance(rel, cur_n)
                if want > cur_n:
                    cur_n = want
                    prep_cur = prep.resolve_for(cur_n)
                    cfg_cur = config.resolved(cur_n)
                    r, z, p, rz = _restart()
                    continue
            if rz == 0.0:
                # Breakdown: the preconditioned inner product vanished while
                # the residual has not.  At the full count this is possible
                # only for a degenerate user-supplied preconditioner — alpha
                # would be 0 and the beta division undefined, so stop rather
                # than crash.
                if _recover_from_breakdown():
                    continue
                break
            ap = prepared_matvec(prep_cur, p, cfg_cur, sched)
            denom = float(p @ ap)
            if denom <= 0.0:
                # Loss of positive-definiteness in the emulated product (or
                # an indefinite preconditioner) — stop rather than diverge
                # silently, unless a reduced-count stage caused it.
                if _recover_from_breakdown():
                    continue
                break
            alpha = rz / denom
            x = x + alpha * p
            r = r - alpha * ap
            z = m_inv.apply(r)
            rz_next = float(r @ z)
            p = z + (rz_next / rz) * p
            rz = rz_next
    return SolveResult(
        value=x,
        config=config,
        converged=converged,
        iterations=len(history),
        residual_norm=history[-1] if history else float("nan"),
        residual_history=history,
        method=f"{_method_label}({config.method_name})",
        prepare_seconds=prepare_seconds,
        seconds=time.perf_counter() - start,
        precond=m_inv.kind,
        precond_seconds=precond_seconds,
        moduli_history=moduli,
    )


def iterative_refinement_solve(
    a: np.ndarray,
    b: np.ndarray,
    config: Optional[Ozaki2Config] = None,
    tol: float = 1e-13,
    max_iter: Optional[int] = None,
    lu_block: int = 64,
    emulated_factorization: bool = False,
    progressive: bool = False,
    prepared: Optional[PreparedOperand] = None,
) -> SolveResult:
    """LU once, then refinement steps with emulated residuals.

    Factors ``P·A = L·U`` once (with
    :func:`repro.apps.lu.blocked_lu`; ``emulated_factorization`` routes the
    trailing updates through the emulated GEMM with prepared ``L21`` panels),
    then iterates ``x ← x + U⁻¹L⁻¹P(b − A·x)`` where the residual product
    ``A·x`` runs through the prepared system matrix every step — the classic
    HPL-style pairing of a fast factorization with high-quality residuals.

    ``progressive`` computes the early residuals at a reduced moduli count
    (mixed-precision refinement's textbook move) and escalates along the
    adaptive ladder; the convergence check always happens at the full
    count.
    """
    from .lu import blocked_lu, prepared_update_gemm

    config = _solver_config(config)
    a, b = _check_system(a, b)
    # Progressive refinement spends steps on ladder stages and full-count
    # verification passes; widen the default budget accordingly.
    if max_iter is None:
        max_iter = 30 if progressive else 20
    else:
        max_iter = _check_max_iter(max_iter)

    start = time.perf_counter()
    if prepared is not None:
        prep, config = _adopt_prepared(a, config, prepared)
        prepare_seconds = 0.0
    else:
        prep = prepare_a(a, config=config)
        config = prep.config  # concrete under num_moduli="auto"
        prepare_seconds = time.perf_counter() - start

    if emulated_factorization:
        # Convert-once trailing panels: L21 is prepared once per panel and
        # reused across the U12 column strips (see lu_with_prepared_updates).
        p, lower, upper = blocked_lu(
            a,
            block=lu_block,
            gemm=prepared_update_gemm(config),
            prepare_left=lambda l21: prepare_a(l21, config=config),
            trail_cols=lu_block,
        )
    else:
        p, lower, upper = blocked_lu(a, block=lu_block)

    def correction(residual: np.ndarray) -> np.ndarray:
        y = np.linalg.solve(lower, p @ residual)
        return np.linalg.solve(upper, y)

    n_full = config.num_moduli
    ladder = _ModuliLadder(a.shape[1], config, tol) if progressive else None
    cur_n = ladder.initial() if ladder is not None else n_full
    prep_cur = prep.resolve_for(cur_n)
    cfg_cur = config.resolved(cur_n)

    x = correction(b)
    b_norm = float(np.linalg.norm(b)) or 1.0
    history: List[float] = []
    moduli: List[int] = []
    converged = False
    with Scheduler(
        parallelism=config.parallelism,
        executor=config.executor,
        max_pool_rebuilds=config.max_pool_rebuilds,
    ) as sched:
        for _ in range(max_iter):
            residual = b - prepared_matvec(prep_cur, x, cfg_cur, sched)
            rel = float(np.linalg.norm(residual)) / b_norm
            history.append(rel)
            moduli.append(cur_n)
            if rel <= tol:
                if cur_n == n_full:
                    converged = True
                    break
                # Re-verify at the full count before claiming convergence.
                cur_n = n_full
                prep_cur, cfg_cur = prep.resolve_for(cur_n), config.resolved(cur_n)
                continue
            if ladder is not None:
                want = ladder.advance(rel, cur_n)
                if want > cur_n:
                    cur_n = want
                    prep_cur, cfg_cur = prep.resolve_for(cur_n), config.resolved(cur_n)
            x = x + correction(residual)
    return SolveResult(
        value=x,
        config=config,
        converged=converged,
        iterations=len(history),
        residual_norm=history[-1] if history else float("nan"),
        residual_history=history,
        method=f"ir{'-prog' if progressive else ''}({config.method_name})",
        prepare_seconds=prepare_seconds,
        seconds=time.perf_counter() - start,
        moduli_history=moduli,
    )
