"""Blocked LU factorisation with pluggable GEMM (the HPL kernel).

HPL spends essentially all of its time in the trailing-matrix update
``A22 <- A22 - L21 @ U12`` — a large DGEMM.  Section 5.1 of the paper argues
that this update can run through Ozaki scheme II with 14–15 moduli without
degrading the solution.  :func:`blocked_lu` implements a right-looking
blocked LU (partial pivoting optional) whose update GEMM is any callable, and
:func:`lu_with_method` wires it to the method registry so the claim can be
checked for every emulation method in one line.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple

import numpy as np

from ..baselines.registry import get_method
from ..config import Ozaki2Config
from ..errors import ValidationError
from ..utils.validation import ensure_2d

__all__ = [
    "blocked_lu",
    "lu_backward_error",
    "lu_with_method",
    "lu_with_prepared_updates",
    "prepared_update_gemm",
]

GemmFn = Callable[[Any, np.ndarray], np.ndarray]


def prepared_update_gemm(config: Optional[Ozaki2Config] = None) -> GemmFn:
    """Trailing-update GEMM through Ozaki scheme II.

    The returned callable accepts either a raw ``L21`` panel or a
    :class:`~repro.core.operand.ResidueOperand` prepared from it (see
    :func:`blocked_lu`'s ``prepare_left``), so one prepared panel can be
    multiplied against many ``U12`` column strips.
    """
    from ..core.gemm import ozaki2_gemm

    config = config or Ozaki2Config.for_dgemm()

    def gemm(left, right: np.ndarray) -> np.ndarray:
        return ozaki2_gemm(left, right, config=config)

    return gemm


def blocked_lu(
    a: np.ndarray,
    block: int = 128,
    gemm: GemmFn | None = None,
    pivot: bool = True,
    prepare_left: Callable[[np.ndarray], Any] | None = None,
    trail_cols: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Right-looking blocked LU factorisation ``P A = L U``.

    Parameters
    ----------
    a:
        Square matrix to factor (not modified).
    block:
        Panel width; the trailing update multiplies an
        ``(n-j) x block`` by a ``block x (n-j)`` matrix each step.
    gemm:
        Callable used for the trailing update (defaults to ``numpy.matmul``).
        This is where an emulated DGEMM plugs in.
    pivot:
        Apply partial (row) pivoting.  Disable only for diagonally dominant
        matrices.
    prepare_left:
        Optional one-time conversion of each panel's ``L21`` before the
        trailing update — e.g. ``lambda l21: prepare_a(l21, config)`` — so
        its residues are computed once and reused across every ``U12``
        column strip of the row-block loop (``gemm`` receives the prepared
        object as its first argument).
    trail_cols:
        When set, the trailing update ``A22 −= L21·U12`` is evaluated in
        column strips of this width, each through one ``gemm`` call sharing
        the same (possibly prepared) ``L21``.  Each output column depends
        only on its own column of ``U12``, so the emulated GEMM (exact
        integer arithmetic inside) gives bit-identical results to the
        single-call update; a native BLAS ``gemm`` may differ in the last
        bit because its kernel choice varies with the call shape.

    Returns
    -------
    (P, L, U):
        Permutation matrix, unit-lower-triangular ``L`` and upper-triangular
        ``U`` with ``P @ A ≈ L @ U``.
    """
    a = ensure_2d(a, "A")
    n = a.shape[0]
    if a.shape[0] != a.shape[1]:
        raise ValidationError(f"LU requires a square matrix, got {a.shape}")
    if block < 1:
        raise ValidationError(f"block must be positive, got {block}")
    if trail_cols is not None and trail_cols < 1:
        raise ValidationError(f"trail_cols must be positive, got {trail_cols}")
    gemm = gemm or (lambda x, y: x @ y)

    lu = np.array(a, dtype=np.float64, copy=True)
    perm = np.arange(n)

    for start in range(0, n, block):
        stop = min(start + block, n)

        # Unblocked, partially pivoted factorisation of the panel
        # lu[start:, start:stop].
        for j in range(start, stop):
            if pivot:
                pivot_row = start + int(np.argmax(np.abs(lu[j:, j]))) + (j - start)
                if pivot_row != j:
                    lu[[j, pivot_row], :] = lu[[pivot_row, j], :]
                    perm[[j, pivot_row]] = perm[[pivot_row, j]]
            diag = lu[j, j]
            if diag == 0.0:
                raise ValidationError("matrix is singular to working precision")
            lu[j + 1:, j] /= diag
            if j + 1 < n:
                lu[j + 1:, j + 1:stop] -= np.outer(lu[j + 1:, j], lu[j, j + 1:stop])

        if stop >= n:
            break

        panel = slice(start, stop)
        trail = slice(stop, n)
        # U12 <- L11^{-1} A12 (unit lower triangular solve).
        l11 = np.tril(lu[panel, panel], -1) + np.eye(stop - start)
        lu[panel, trail] = np.linalg.solve(l11, lu[panel, trail])
        # Trailing update: the HPL GEMM.  L21 is converted at most once per
        # panel and reused across every column strip of the row-block loop.
        left = lu[trail, panel]
        if prepare_left is not None:
            left = prepare_left(np.ascontiguousarray(left))
        if trail_cols is None:
            lu[trail, trail] -= gemm(left, lu[panel, trail])
        else:
            for c0 in range(stop, n, trail_cols):
                c1 = min(c0 + trail_cols, n)
                lu[trail, c0:c1] -= gemm(left, lu[panel, c0:c1])

    lower = np.tril(lu, -1) + np.eye(n)
    upper = np.triu(lu)
    p_matrix = np.eye(n)[perm]
    return p_matrix, lower, upper


def lu_backward_error(a: np.ndarray, p: np.ndarray, lower: np.ndarray, upper: np.ndarray) -> float:
    """Normwise backward error ``||P A - L U|| / ||A||`` (Frobenius)."""
    a = ensure_2d(a, "A")
    residual = p @ a - lower @ upper
    denom = float(np.linalg.norm(a))
    return float(np.linalg.norm(residual)) / denom if denom > 0 else float(np.linalg.norm(residual))


def lu_with_method(
    a: np.ndarray,
    method: str = "OS II-fast-15",
    block: int = 128,
    pivot: bool = True,
) -> Tuple[float, Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Factor ``A`` with the trailing updates running through ``method``.

    Returns ``(backward_error, (P, L, U))``.  ``method`` is any registry name
    (``"DGEMM"``, ``"OS II-fast-15"``, ``"ozIMMU_EF-9"``, ...).
    """
    spec = get_method(method, target="fp64")
    p, lower, upper = blocked_lu(a, block=block, gemm=spec, pivot=pivot)
    return lu_backward_error(a, p, lower, upper), (p, lower, upper)


def lu_with_prepared_updates(
    a: np.ndarray,
    config: Optional[Ozaki2Config] = None,
    block: int = 128,
    pivot: bool = True,
    trail_cols: Optional[int] = None,
) -> Tuple[float, Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Emulated-GEMM LU with convert-once trailing panels.

    Each panel's ``L21`` is prepared once (scales + truncation + INT8
    residues) and multiplied against the ``U12`` column strips of the
    row-block loop — the HPL trailing-update pattern the prepared-operand
    subsystem exists for.  ``trail_cols`` defaults to the panel width.

    Returns ``(backward_error, (P, L, U))`` like :func:`lu_with_method`.
    """
    from ..core.operand import prepare_a

    config = config or Ozaki2Config.for_dgemm()
    p, lower, upper = blocked_lu(
        a,
        block=block,
        gemm=prepared_update_gemm(config),
        pivot=pivot,
        prepare_left=lambda l21: prepare_a(l21, config=config),
        trail_cols=trail_cols or block,
    )
    return lu_backward_error(a, p, lower, upper), (p, lower, upper)
