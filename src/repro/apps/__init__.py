"""Mini-applications built on the emulated GEMM.

These are library-quality versions of the workloads the paper motivates
(Section 5.1 singles out HPL): a blocked LU factorisation whose trailing
updates run through any GEMM method of the registry, with backward-error
reporting.  The examples under ``examples/`` use the same algorithms in
script form.
"""

from .lu import blocked_lu, lu_backward_error, lu_with_method

__all__ = ["blocked_lu", "lu_backward_error", "lu_with_method"]
