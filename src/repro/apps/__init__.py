"""Mini-applications built on the emulated GEMM.

These are library-quality versions of the workloads the paper motivates
(Section 5.1 singles out HPL): a blocked LU factorisation whose trailing
updates run through any GEMM method of the registry (with convert-once
``L21`` panels via the prepared-operand subsystem), and iterative solvers —
Jacobi, conjugate gradients, iterative refinement — whose inner products
reuse a prepared system matrix every iteration.  The examples under
``examples/`` use the same algorithms in script form.
"""

from .lu import (
    blocked_lu,
    lu_backward_error,
    lu_with_method,
    lu_with_prepared_updates,
    prepared_update_gemm,
)
from .solvers import (
    SolveResult,
    cg_solve,
    iterative_refinement_solve,
    jacobi_solve,
    prepared_matvec,
)

__all__ = [
    "blocked_lu",
    "lu_backward_error",
    "lu_with_method",
    "lu_with_prepared_updates",
    "prepared_update_gemm",
    "SolveResult",
    "cg_solve",
    "iterative_refinement_solve",
    "jacobi_solve",
    "prepared_matvec",
]
