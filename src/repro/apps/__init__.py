"""Mini-applications built on the emulated GEMM.

These are library-quality versions of the workloads the paper motivates
(Section 5.1 singles out HPL): a blocked LU factorisation whose trailing
updates run through any GEMM method of the registry (with convert-once
``L21`` panels via the prepared-operand subsystem), and iterative solvers —
Jacobi, conjugate gradients (plain and preconditioned), iterative
refinement — whose inner products reuse a prepared system matrix every
iteration through the residue-GEMV fast path, with ILU(0)/SSOR
preconditioners factored once (:mod:`repro.apps.preconditioners`).  The
examples under ``examples/`` use the same algorithms in script form.
"""

from __future__ import annotations

from .lu import (
    blocked_lu,
    lu_backward_error,
    lu_with_method,
    lu_with_prepared_updates,
    prepared_update_gemm,
)
from .preconditioners import (
    ILU0Preconditioner,
    IdentityPreconditioner,
    PRECONDITIONER_KINDS,
    Preconditioner,
    SSORPreconditioner,
    make_preconditioner,
)
from .solvers import (
    SolveResult,
    cg_solve,
    iterative_refinement_solve,
    jacobi_solve,
    pcg_solve,
    prepared_matvec,
)

__all__ = [
    "blocked_lu",
    "lu_backward_error",
    "lu_with_method",
    "lu_with_prepared_updates",
    "prepared_update_gemm",
    "Preconditioner",
    "IdentityPreconditioner",
    "ILU0Preconditioner",
    "SSORPreconditioner",
    "PRECONDITIONER_KINDS",
    "make_preconditioner",
    "SolveResult",
    "cg_solve",
    "pcg_solve",
    "iterative_refinement_solve",
    "jacobi_solve",
    "prepared_matvec",
]
