"""Preconditioners factored once, applied every iteration.

The solvers of :mod:`repro.apps.solvers` already treat the *system matrix*
as a convert-once object (:func:`repro.core.operand.prepare_a`: scales,
truncation and INT8 residues cached before the first iteration).  A
preconditioner is the same pattern one level up: an approximation ``M ≈ A``
whose factorisation (including the inversion of its triangular sweeps) is
computed **once**, before the iteration starts, so every per-step
application ``z = M⁻¹ r`` is O(n²) matvec work — shrinking the effective
condition number for the price of a few cheap passes per iteration: fewer
iterations, hence fewer emulated matrix–vector products.

Two classic factorisations are provided, plus the identity:

* :class:`ILU0Preconditioner` — incomplete LU with zero fill-in: the
  factorisation runs Gaussian elimination but only updates entries inside
  the sparsity pattern of ``A`` (for a structurally dense matrix it
  degenerates to the exact LU, the strongest — and most expensive — member
  of the family).
* :class:`SSORPreconditioner` — symmetric successive over-relaxation:
  ``M = ω/(2−ω) · (D/ω + L) D⁻¹ (D/ω + U)``, assembled from the
  lower/upper triangles of ``A`` itself, so "factoring" is just splitting.
  For symmetric ``A`` and ``ω ∈ (0, 2)``, ``M`` is symmetric positive
  definite — the textbook requirement for preconditioned CG.
* :class:`IdentityPreconditioner` — ``M = I``; turns
  :func:`~repro.apps.solvers.pcg_solve` back into plain CG and is the
  ``--precond none`` default on the CLI.

Preconditioner *applications* run in exact float64 NumPy — they steer the
iteration; only the matrix–vector products against the system matrix go
through the emulated GEMV/GEMM.
"""

from __future__ import annotations

import time

import numpy as np

from ..errors import ValidationError
from ..utils.validation import ensure_2d

__all__ = [
    "Preconditioner",
    "IdentityPreconditioner",
    "ILU0Preconditioner",
    "SSORPreconditioner",
    "make_preconditioner",
    "PRECONDITIONER_KINDS",
]

#: Preconditioner kinds accepted by :func:`make_preconditioner` and the CLI.
PRECONDITIONER_KINDS = ("none", "ilu0", "ssor")


class Preconditioner:
    """Base class: a factored ``M ≈ A`` with an ``apply`` solve.

    Attributes
    ----------
    kind:
        Registry name (``"none"``, ``"ilu0"``, ``"ssor"``).
    factor_seconds:
        One-time wall-clock cost of the factorisation — the analogue of
        :attr:`repro.core.operand.ResidueOperand.convert_seconds` for the
        prepared system matrix.
    """

    kind: str = "none"

    def __init__(self) -> None:
        self.factor_seconds = 0.0

    def apply(self, r: np.ndarray) -> np.ndarray:
        """Return ``z = M⁻¹ r`` (must not modify ``r``)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} kind={self.kind!r}>"


class IdentityPreconditioner(Preconditioner):
    """``M = I``: the no-op preconditioner (plain CG / plain sweeps)."""

    kind = "none"

    def apply(self, r: np.ndarray) -> np.ndarray:
        return r


def _check_square(a: np.ndarray) -> np.ndarray:
    a = ensure_2d(a, "A")
    if a.shape[0] != a.shape[1]:
        raise ValidationError(
            f"preconditioners need a square matrix, got {a.shape}"
        )
    return np.asarray(a, dtype=np.float64)


class ILU0Preconditioner(Preconditioner):
    """Incomplete LU with zero fill-in, factored once at construction.

    Runs right-looking Gaussian elimination without pivoting, but keeps
    every entry *outside* the sparsity pattern of ``A`` at exactly zero
    (zero fill-in).  The triangular factors are **inverted once** at
    construction — the whole point of a factored-once preconditioner is
    that the per-iteration ``apply`` must be cheap, so the O(n³) work is
    paid up front and ``z = U⁻¹ (L⁻¹ r)`` is two O(n²) BLAS matvecs per
    step, not two dense solves.

    For a structurally dense ``A`` the pattern constraint never binds and
    the factorisation is the exact ``A = L·U`` — the preconditioned
    iteration then converges in a handful of steps, paying one O(n³)
    factorisation up front.  A zero pivot (possible without pivoting)
    raises :class:`~repro.errors.ValidationError` at construction, not
    mid-iteration.
    """

    kind = "ilu0"

    def __init__(self, a: np.ndarray) -> None:
        super().__init__()
        a = _check_square(a)
        start = time.perf_counter()
        n = a.shape[0]
        pattern = a != 0.0
        lu = a.copy()
        for kk in range(n - 1):
            pivot = lu[kk, kk]
            if pivot == 0.0:
                raise ValidationError(
                    f"ILU(0) hit a zero pivot at position {kk}; the matrix "
                    "needs pivoting — use SSOR or no preconditioner"
                )
            # Multipliers for rows below the pivot, only inside the pattern.
            col = np.where(pattern[kk + 1 :, kk], lu[kk + 1 :, kk] / pivot, 0.0)
            lu[kk + 1 :, kk] = col
            # Schur-complement update, masked to the pattern (zero fill-in).
            update = np.outer(col, lu[kk, kk + 1 :])
            lu[kk + 1 :, kk + 1 :] -= np.where(
                pattern[kk + 1 :, kk + 1 :], update, 0.0
            )
        if lu[n - 1, n - 1] == 0.0:
            raise ValidationError(
                f"ILU(0) hit a zero pivot at position {n - 1}; the matrix "
                "needs pivoting — use SSOR or no preconditioner"
            )
        # Only the inverses are retained: the factors themselves are never
        # read by apply(), and at solver scale each would pin another n²
        # float64 array for the (reusable) preconditioner's lifetime.
        self._lower_inv = np.linalg.inv(np.tril(lu, -1) + np.eye(n))
        self._upper_inv = np.linalg.inv(np.triu(lu))
        self.factor_seconds = time.perf_counter() - start

    def apply(self, r: np.ndarray) -> np.ndarray:
        y = self._lower_inv @ np.asarray(r, dtype=np.float64)
        return self._upper_inv @ y


class SSORPreconditioner(Preconditioner):
    """Symmetric SOR preconditioner ``M = ω/(2−ω)·(D/ω + L) D⁻¹ (D/ω + U)``.

    ``D``/``L``/``U`` are the diagonal and strict triangles of ``A``;
    factoring inverts the two triangular sweeps once, so every ``apply``
    is a forward matvec, a diagonal scaling and a backward matvec — all
    O(n²) BLAS work:

        ``z = (2−ω)/ω · (D/ω + U)⁻¹ D (D/ω + L)⁻¹ r``

    For symmetric ``A`` with a positive diagonal and ``ω ∈ (0, 2)``, ``M``
    is symmetric positive definite, so it is a valid CG preconditioner.
    ``ω = 1`` (the default) is symmetric Gauss–Seidel.
    """

    kind = "ssor"

    def __init__(self, a: np.ndarray, omega: float = 1.0) -> None:
        super().__init__()
        a = _check_square(a)
        omega = float(omega)
        if not 0.0 < omega < 2.0:
            raise ValidationError(
                f"SSOR relaxation omega must lie in (0, 2), got {omega}"
            )
        diag = np.diag(a).copy()
        if np.any(diag == 0.0):
            raise ValidationError("SSOR requires a zero-free diagonal")
        start = time.perf_counter()
        self._omega = omega
        self._diag = diag
        # As in ILU(0), only the inverted sweeps are retained.
        self._lower_inv = np.linalg.inv(np.tril(a, -1) + np.diag(diag / omega))
        self._upper_inv = np.linalg.inv(np.triu(a, 1) + np.diag(diag / omega))
        self.factor_seconds = time.perf_counter() - start

    def apply(self, r: np.ndarray) -> np.ndarray:
        y = self._lower_inv @ np.asarray(r, dtype=np.float64)
        y = self._diag * y
        z = self._upper_inv @ y
        return ((2.0 - self._omega) / self._omega) * z


def make_preconditioner(
    a: np.ndarray, kind: "str | Preconditioner" = "none", omega: float = 1.0
) -> Preconditioner:
    """Factor a preconditioner for ``a`` by registry name.

    ``kind`` is one of :data:`PRECONDITIONER_KINDS` (case-insensitive) or an
    already-factored :class:`Preconditioner`, which is passed through — the
    factor-once analogue of handing a solver a prepared
    :class:`~repro.core.operand.ResidueOperand`.
    """
    if isinstance(kind, Preconditioner):
        return kind
    key = str(kind).strip().lower()
    if key in ("none", ""):
        return IdentityPreconditioner()
    if key == "ilu0":
        return ILU0Preconditioner(a)
    if key == "ssor":
        return SSORPreconditioner(a, omega=omega)
    raise ValidationError(
        f"unknown preconditioner {kind!r}; expected one of {PRECONDITIONER_KINDS}"
    )
