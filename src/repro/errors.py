"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library-specific failures without masking programming
errors coming from NumPy or the standard library.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ValidationError",
    "ModuliError",
    "OverflowRiskError",
    "EngineError",
    "PerfModelError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """Raised when a user-supplied configuration value is invalid.

    Examples include requesting an unsupported number of moduli, an unknown
    computing mode, or an unknown precision name.
    """


class ValidationError(ReproError, ValueError):
    """Raised when input matrices fail shape, dtype, or finiteness checks."""


class ModuliError(ReproError):
    """Raised when a set of CRT moduli is inconsistent.

    This covers non-coprime selections, moduli outside the INT8-compatible
    table, or requesting more moduli than the table provides.
    """


class OverflowRiskError(ReproError):
    """Raised when an operation could silently overflow its accumulator.

    The INT8 engine accumulates in INT32; products with an inner dimension
    above ``2**17`` must be blocked (see :mod:`repro.core.blocking`), and the
    library refuses to continue rather than produce wrapped results when the
    caller disabled blocking.
    """


class EngineError(ReproError):
    """Raised when a matrix-engine simulator is misused.

    Typical causes are feeding a matrix whose dtype does not match the
    engine's input format or requesting an unknown engine from the registry.
    """


class PerfModelError(ReproError):
    """Raised by the performance/power model for unknown GPUs or methods."""
