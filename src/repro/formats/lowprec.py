"""Rounding onto the FP16 / BF16 / TF32 value grids.

NVIDIA's tensor-core formats BF16 and TF32 have no native NumPy dtype, but
their value grids are simply float32 with the significand shortened to 8 and
11 bits respectively (same 8-bit exponent as float32).  Rounding a float32
value to such a grid with round-to-nearest-even can be done exactly through
bit manipulation on the float32 representation; this is what
:func:`truncate_significand` implements.  FP16 is handled by NumPy's native
``float16`` dtype.

These conversions are used by:

* the FP16 / BF16 / TF32 matrix engines (:mod:`repro.engines`),
* the cuMpSGEMM and BF16x9 baseline decompositions
  (:mod:`repro.baselines.cumpsgemm`, :mod:`repro.baselines.bf16x9`).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..types import BF16, FP16, FP32, TF32, Format, get_format

__all__ = [
    "truncate_significand",
    "round_to_bf16",
    "round_to_tf32",
    "round_to_fp16",
    "round_to_format",
]


def truncate_significand(x, keep_bits: int) -> np.ndarray:
    """Round float32 values to ``keep_bits`` significand bits (RNE).

    ``keep_bits`` counts the significand bits *including* the implicit
    leading one, matching the convention of :class:`repro.types.Format`
    (so FP32 itself is ``keep_bits=24``, TF32 is 11, BF16 is 8).

    The rounding is performed on the integer representation of the float32
    values with round-to-nearest-even on the discarded bits, which is exactly
    what the hardware conversion units do.  Overflow to infinity cannot occur
    because the exponent field is untouched; subnormal inputs are rounded on
    the same fixed bit position, which matches the flush-free behaviour of
    NVIDIA's conversion instructions closely enough for this library's use
    (the workloads never produce float32 subnormals).
    """
    if not (1 <= keep_bits <= 24):
        raise ConfigurationError(f"keep_bits must be in [1, 24], got {keep_bits}")
    x32 = np.asarray(x, dtype=np.float32)
    if keep_bits == 24:
        return x32.copy()
    drop = 24 - keep_bits
    bits = x32.view(np.uint32)
    # Round-to-nearest-even on the low `drop` bits of the 23-bit stored
    # significand: add half-ulp-of-kept-grid, using the lowest kept bit to
    # break ties toward even.
    lsb = (bits >> np.uint32(drop)) & np.uint32(1)
    round_bias = np.uint32((1 << (drop - 1)) - 1) + lsb
    rounded = (bits + round_bias) >> np.uint32(drop) << np.uint32(drop)
    out = rounded.view(np.float32)
    # Preserve zeros' signs and avoid touching NaN/Inf payloads.
    special = ~np.isfinite(x32)
    return np.where(special, x32, out)


def round_to_bf16(x) -> np.ndarray:
    """Round to the bfloat16 value grid, returned as float32 storage."""
    return truncate_significand(x, BF16.significand_bits)


def round_to_tf32(x) -> np.ndarray:
    """Round to the TF32 value grid, returned as float32 storage."""
    return truncate_significand(x, TF32.significand_bits)


def round_to_fp16(x) -> np.ndarray:
    """Round to IEEE binary16, returned as float16 storage.

    Unlike BF16/TF32, FP16 has a 5-bit exponent, so overflow (to inf) and
    underflow (to subnormals/zero) genuinely occur; NumPy's cast reproduces
    the hardware behaviour (the overflow warning is silenced because the
    saturation to infinity is the intended semantics).
    """
    with np.errstate(over="ignore"):
        return np.asarray(x, dtype=np.float32).astype(np.float16)


def round_to_format(x, fmt: str | Format) -> np.ndarray:
    """Round ``x`` onto the value grid of ``fmt``.

    FP64/FP32 are plain casts; FP16 uses the native dtype; BF16/TF32 use
    significand truncation with float32 storage.
    """
    fmt = get_format(fmt)
    if fmt.name == "fp64":
        return np.asarray(x, dtype=np.float64)
    if fmt == FP32:
        return np.asarray(x, dtype=np.float32)
    if fmt == FP16:
        return round_to_fp16(x)
    if fmt == BF16:
        return round_to_bf16(x)
    if fmt == TF32:
        return round_to_tf32(x)
    raise ConfigurationError(f"cannot round to format {fmt.name!r}")
