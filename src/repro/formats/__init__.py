"""Low-precision value-grid conversions (FP16, BF16, TF32).

The baseline emulation methods (cuMpSGEMM, BF16x9, TF32GEMM) feed their
matrix engines with values rounded onto the FP16 / BF16 / TF32 grids.  The
functions in :mod:`repro.formats.lowprec` perform exactly that rounding while
keeping the data in float32/float64 NumPy storage, so the *numerical* effect
of the hardware formats is reproduced bit-for-bit.
"""

from __future__ import annotations

from .lowprec import (
    round_to_bf16,
    round_to_fp16,
    round_to_format,
    round_to_tf32,
    truncate_significand,
)

__all__ = [
    "round_to_bf16",
    "round_to_fp16",
    "round_to_format",
    "round_to_tf32",
    "truncate_significand",
]
