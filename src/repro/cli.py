"""Command-line interface: the ``repro`` script or ``python -m repro``.

Subcommands
-----------
``run``
    Run emulated GEMMs through the execution runtime — generated workloads,
    optional batching (``--batch``), worker-pool parallelism
    (``--parallel``) and convert-once operand reuse (``--prepare-a`` /
    ``--prepare-b``) — and print per-item timing/accuracy.
``solve``
    Solve a generated linear system with an iterative solver (Jacobi, CG or
    LU + iterative refinement) whose inner products reuse a prepared system
    matrix every iteration.
``figures``
    Regenerate one or all of the paper's figures and print the tables
    (optionally at the paper's full problem sizes).
``accuracy``
    Run an accuracy sweep for arbitrary methods / phi values / sizes.
``throughput``
    Evaluate the modelled GPU throughput of arbitrary methods and sizes.
``gemm``
    Multiply two ``.npy`` matrices with a chosen method and store / check the
    result (handy for quick experiments on real data).
``serve``
    Host the residue-GEMM service (:mod:`repro.service`): a long-lived
    :class:`~repro.session.Session` behind HTTP with transparent
    prepared-operand caching and request coalescing; ``--stats`` queries a
    running server's counters instead of serving.
``lint``
    Run the domain-aware static analyser (:mod:`repro.analysis`): RPR0xx
    rules enforcing dtype, determinism, ledger and lock discipline, with
    ``--format text|json`` output; exits nonzero on findings.
``selfcheck``
    Print version/configuration and run a fast end-to-end correctness check
    (used by CI as a post-install smoke test), including a ``repro lint``
    pass over the installed package.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    from . import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Ozaki scheme II GEMM-emulation reproduction toolkit",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="run emulated GEMMs through the batched/parallel runtime"
    )
    run.add_argument("--size", default="512", help="problem size n or m,k,n")
    run.add_argument("--batch", type=int, default=1, help="number of GEMMs in the batch")
    run.add_argument(
        "--parallel",
        type=int,
        default=1,
        help="worker threads for the residue GEMMs (0 = one per CPU)",
    )
    run.add_argument(
        "--executor",
        default="thread",
        choices=["thread", "process", "auto"],
        help="worker pool backend: 'thread' (GIL-bound), 'process' "
        "(shared-memory worker processes), or 'auto' (processes whenever "
        "--parallel > 1)",
    )
    run.add_argument(
        "--moduli",
        default=None,
        help="number of CRT moduli N, or 'auto' for accuracy-driven selection",
    )
    run.add_argument(
        "--target-accuracy",
        type=float,
        default=None,
        help="relative accuracy target of --moduli auto (default: 1e-10 "
        "for fp64, 1e-5 for fp32)",
    )
    run.add_argument(
        "--selection-model",
        default="calibrated",
        choices=["calibrated", "rigorous"],
        help="error model of --moduli auto: 'calibrated' (measured margins, "
        "rigorous fallback) or 'rigorous' (a-priori bound only)",
    )
    run.add_argument("--mode", default="fast", choices=["fast", "accurate"])
    run.add_argument("--precision", default="fp64", choices=["fp64", "fp32"])
    run.add_argument(
        "--memory-budget-mb",
        type=float,
        default=None,
        help="cap the residue workspace; forces m/n output tiling",
    )
    run.add_argument("--phi", type=float, default=0.5, help="exponent spread of the workload")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--check", action="store_true", help="report error vs the high-precision reference"
    )
    run.add_argument(
        "--prepare-a",
        action="store_true",
        help="share one A across the batch, converted once (convert-once/multiply-many)",
    )
    run.add_argument(
        "--prepare-b",
        action="store_true",
        help="share one B across the batch, converted once",
    )
    run.add_argument(
        "--no-fused",
        action="store_true",
        help="use the per-modulus loop path instead of the fused stacked "
        "kernels (bit-identical; for verification and benchmarking)",
    )
    run.add_argument(
        "--inject-faults",
        default=None,
        metavar="SPEC",
        help="arm seeded fault injection for this run, e.g. "
        "'worker.crash:times=1;shm.alloc:rate=0.5' (see repro.faults); "
        "the run must still produce bit-identical results",
    )
    run.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed of the fault plan's per-site RNGs (with --inject-faults)",
    )

    solve = sub.add_parser(
        "solve", help="iterative solvers reusing a prepared system matrix"
    )
    _SOLVERS = ["jacobi", "cg", "pcg", "ir"]
    solve.add_argument(
        "solver_pos", nargs="?", default=None, choices=_SOLVERS, metavar="solver",
        help="jacobi (diagonally dominant), cg (SPD), pcg (preconditioned CG "
        "on the ill-conditioned SPD family), ir (LU + refinement); "
        "default jacobi",
    )
    solve.add_argument(
        "--solver", dest="solver_opt", default=None, choices=_SOLVERS,
        help="alias for the positional solver argument",
    )
    solve.add_argument("--size", type=int, default=256, help="system dimension n")
    solve.add_argument(
        "--moduli",
        default=None,
        help="number of CRT moduli N, or 'auto' for accuracy-driven selection",
    )
    solve.add_argument(
        "--target-accuracy",
        type=float,
        default=None,
        help="relative accuracy target of --moduli auto (default: 1e-10 "
        "for fp64, 1e-5 for fp32)",
    )
    solve.add_argument(
        "--selection-model",
        default="calibrated",
        choices=["calibrated", "rigorous"],
        help="error model of --moduli auto: 'calibrated' (measured margins, "
        "rigorous fallback) or 'rigorous' (a-priori bound only)",
    )
    solve.add_argument(
        "--progressive",
        action="store_true",
        help="iterate at a reduced moduli count early and escalate as the "
        "residual shrinks (final iterations always run at the full count)",
    )
    solve.add_argument("--precision", default="fp64", choices=["fp64", "fp32"])
    solve.add_argument(
        "--tol", type=float, default=None,
        help="relative residual tolerance (default 1e-10 for fp64, 1e-5 for fp32)",
    )
    solve.add_argument("--max-iter", type=int, default=None)
    solve.add_argument(
        "--parallel", type=int, default=1,
        help="worker threads for the residue GEMMs (0 = one per CPU)",
    )
    solve.add_argument(
        "--executor",
        default="thread",
        choices=["thread", "process", "auto"],
        help="worker pool backend for the residue GEMMs",
    )
    solve.add_argument(
        "--precond", default=None, choices=["none", "ilu0", "ssor"],
        help="preconditioner factored once before the iteration (jacobi/cg/pcg; "
        "pcg defaults to ilu0)",
    )
    solve.add_argument(
        "--omega", type=float, default=1.0,
        help="SSOR relaxation factor in (0, 2); 1.0 is symmetric Gauss-Seidel",
    )
    solve.add_argument(
        "--cond", type=float, default=None,
        help="condition number of the generated system (pcg's ill-conditioned "
        "SPD family only; default 1e4)",
    )
    solve.add_argument(
        "--no-gemv-fast",
        action="store_true",
        help="route the per-iteration matvecs through the n=1 GEMM "
        "plan/scheduler path instead of the residue-GEMV kernel "
        "(bit-identical; for verification and benchmarking)",
    )
    solve.add_argument("--phi", type=float, default=0.5)
    solve.add_argument("--seed", type=int, default=0)

    figures = sub.add_parser("figures", help="regenerate the paper's figures")
    figures.add_argument(
        "--only",
        default=None,
        help="comma-separated figure ids: 1, 3d, 3s, 4, 5, 6, 7, 8, 9, headline",
    )
    figures.add_argument("--full", action="store_true", help="use the paper's problem sizes")

    accuracy = sub.add_parser("accuracy", help="run an accuracy sweep")
    accuracy.add_argument("--methods", default="DGEMM,OS II-fast-15", help="comma-separated names")
    accuracy.add_argument("--phi", default="0.5", help="comma-separated phi values")
    accuracy.add_argument("--k", default="512", help="comma-separated inner dimensions")
    accuracy.add_argument("--m", type=int, default=256)
    accuracy.add_argument("--n", type=int, default=256)
    accuracy.add_argument("--precision", default="fp64", choices=["fp64", "fp32"])
    accuracy.add_argument("--seed", type=int, default=0)

    throughput = sub.add_parser("throughput", help="modelled GPU throughput")
    throughput.add_argument("--methods", default="DGEMM,OS II-fast-15,ozIMMU_EF-9")
    throughput.add_argument("--gpus", default="A100,GH200,RTX5080")
    throughput.add_argument("--sizes", default="1024,4096,16384")
    throughput.add_argument("--target", default="fp64", choices=["fp64", "fp32"])

    gemm = sub.add_parser("gemm", help="multiply two .npy matrices with a chosen method")
    gemm.add_argument("a", help="path to A (.npy)")
    gemm.add_argument("b", help="path to B (.npy)")
    gemm.add_argument("--method", default="OS II-fast-15")
    gemm.add_argument("--precision", default="fp64", choices=["fp64", "fp32"])
    gemm.add_argument("--out", default=None, help="where to save the product (.npy)")
    gemm.add_argument(
        "--check", action="store_true", help="also report the error vs the high-precision reference"
    )

    serve = sub.add_parser(
        "serve",
        help="host the residue-GEMM service (or query a running one with --stats)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind / query address")
    serve.add_argument(
        "--port", type=int, default=7723, help="bind / query port (0 = pick a free one)"
    )
    serve.add_argument(
        "--cache-mb",
        type=float,
        default=256.0,
        help="prepared-operand cache budget in MiB (0 disables caching)",
    )
    serve.add_argument(
        "--moduli",
        default=None,
        help="default moduli count N, or 'auto' for accuracy-driven selection",
    )
    serve.add_argument(
        "--target-accuracy",
        type=float,
        default=None,
        help="relative accuracy target of --moduli auto",
    )
    serve.add_argument(
        "--selection-model",
        default="calibrated",
        choices=["calibrated", "rigorous"],
        help="error model of --moduli auto: 'calibrated' (measured margins, "
        "rigorous fallback) or 'rigorous' (a-priori bound only)",
    )
    serve.add_argument("--mode", default="fast", choices=["fast", "accurate"])
    serve.add_argument("--precision", default="fp64", choices=["fp64", "fp32"])
    serve.add_argument(
        "--parallel",
        type=int,
        default=1,
        help="worker threads of the session scheduler (0 = one per CPU)",
    )
    serve.add_argument(
        "--executor",
        default="thread",
        choices=["thread", "process", "auto"],
        help="worker pool backend of the session scheduler",
    )
    serve.add_argument(
        "--coalesce-window-ms",
        type=float,
        default=2.0,
        help="how long to collect concurrent GEMMs into one batched call",
    )
    serve.add_argument(
        "--max-batch", type=int, default=16, help="largest coalesced batch"
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=0,
        help="shed GEMM requests (HTTP 503 + Retry-After) once the "
        "coalescer backlog reaches this many queued requests (0 = never)",
    )
    serve.add_argument(
        "--stats",
        action="store_true",
        help="query a RUNNING server's /v1/stats and print it (does not serve)",
    )

    lint = sub.add_parser(
        "lint",
        help="run the domain-aware static analyser (RPR0xx rules) over paths",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyse (default: src/repro)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    lint.add_argument(
        "--select",
        default=None,
        help="comma-separated rule-code prefixes to run (e.g. 'RPR01,RPR030')",
    )

    sub.add_parser(
        "selfcheck",
        help="print version/config and run a fast end-to-end correctness check",
    )
    return parser


def _parse_list(text: str) -> List[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def _parse_size(text: str) -> tuple:
    """Parse ``--size``: either ``n`` (square) or ``m,k,n``."""
    try:
        parts = [int(p) for p in _parse_list(text)]
    except ValueError:
        raise SystemExit(f"--size expects integers ('n' or 'm,k,n'), got {text!r}") from None
    if len(parts) == 1:
        return parts[0], parts[0], parts[0]
    if len(parts) == 3:
        return tuple(parts)
    raise SystemExit(f"--size expects 'n' or 'm,k,n', got {text!r}")


def _resolve_workers(parallel: int) -> int:
    """Map the CLI's ``--parallel 0`` (one worker per CPU) to a real count."""
    import os

    return parallel if parallel != 0 else max(1, os.cpu_count() or 1)


def _default_moduli(precision: str, moduli) -> "int | str":
    from .config import DEFAULT_MODULI_DGEMM, DEFAULT_MODULI_SGEMM

    if moduli is None:
        return DEFAULT_MODULI_DGEMM if precision == "fp64" else DEFAULT_MODULI_SGEMM
    if isinstance(moduli, str):
        key = moduli.strip().lower()
        if key == "auto":
            return "auto"
        try:
            return int(key)
        except ValueError:
            raise SystemExit(
                f"--moduli expects an integer or 'auto', got {moduli!r}"
            ) from None
    return moduli


def _cmd_run(args) -> int:
    import contextlib
    import time

    from . import faults
    from .config import Ozaki2Config
    from .core.operand import prepare_a, prepare_b
    from .harness import format_table
    from .runtime import ozaki2_gemm_batched
    from .workloads import phi_pair

    m, k, n = _parse_size(args.size)
    config = Ozaki2Config(
        precision=args.precision,
        num_moduli=_default_moduli(args.precision, args.moduli),
        mode=args.mode,
        parallelism=_resolve_workers(args.parallel),
        executor=args.executor,
        memory_budget_mb=args.memory_budget_mb,
        fused_kernels=not args.no_fused,
        target_accuracy=args.target_accuracy,
        selection_model=args.selection_model,
    )
    batch = max(1, args.batch)
    pairs = [
        phi_pair(m, k, n, phi=args.phi, precision=args.precision, seed=args.seed + j)
        for j in range(batch)
    ]
    # --prepare-a / --prepare-b: every batch item shares one operand on that
    # side, converted exactly once (the LU / iterative-solver reuse pattern).
    if args.prepare_a:
        pairs = [(pairs[0][0], b) for _, b in pairs]
    if args.prepare_b:
        pairs = [(a, pairs[0][1]) for a, _ in pairs]

    # --inject-faults arms the seeded chaos plan for exactly the prepared +
    # batched execution below; the resilience layers must absorb every fire
    # and the results must still be bit-identical to a fault-free run.
    armed = (
        faults.inject(args.inject_faults, seed=args.fault_seed)
        if args.inject_faults
        else contextlib.nullcontext()
    )
    start = time.perf_counter()
    with armed as plan:
        As = [prepare_a(pairs[0][0], config)] * batch if args.prepare_a else [a for a, _ in pairs]
        Bs = [prepare_b(pairs[0][1], config)] * batch if args.prepare_b else [b for _, b in pairs]
        results = ozaki2_gemm_batched(As, Bs, config=config, return_details=True)
    elapsed = time.perf_counter() - start

    rows = []
    for j, result in enumerate(results):
        row = {
            "item": j,
            "method": result.method_name,
            "shape": f"{m}x{k}x{n}",
            "k_blocks": result.num_k_blocks,
            "int8_gemms": result.int8_counter.matmul_calls,
            "seconds": result.phase_times.total,
        }
        if args.check:
            from .accuracy import max_relative_error, reference_gemm

            a, b = pairs[j]
            row["max_rel_error"] = max_relative_error(result.c, reference_gemm(a, b))
        rows.append(row)
    prepared = "".join(
        label for label, on in (("A", args.prepare_a), ("B", args.prepare_b)) if on
    )
    title = f"repro run (batch={len(results)}, parallel={config.parallelism}"
    if config.executor != "thread":
        title += f", executor={config.executor}"
    if prepared:
        title += f", prepared={prepared}"
    print(format_table(rows, float_format=".3e", title=title + ")"))
    mnk = 2.0 * m * k * n * len(results)
    print(f"wall time {elapsed:.3f} s  ({mnk / elapsed / 1e9:.2f} effective GFLOP/s)")
    if plan is not None:
        listing = ", ".join(
            f"{site} {stat['fired']}/{stat['hits']}"
            for site, stat in plan.report().items()
        )
        print(f"fault plan (seed {plan.seed}): fired/hits per site — {listing}")
        events: dict = {}
        for result in results:
            for event, count in result.fault_events.items():
                events[event] = events.get(event, 0) + count
        if events:
            survived = ", ".join(f"{k}={v}" for k, v in sorted(events.items()))
            print(f"recovered on the ledger: {survived}")
    return 0


def _cmd_solve(args) -> int:
    from .apps import cg_solve, iterative_refinement_solve, jacobi_solve, pcg_solve
    from .config import Ozaki2Config
    from .workloads import linear_system

    if (
        args.solver_opt is not None
        and args.solver_pos is not None
        and args.solver_opt != args.solver_pos
    ):
        print(
            f"error: conflicting solver selections: positional {args.solver_pos!r} "
            f"vs --solver {args.solver_opt!r}",
            file=sys.stderr,
        )
        return 2
    solver = args.solver_opt or args.solver_pos or "jacobi"
    if solver == "ir" and args.precond is not None:
        print(
            "error: --precond does not apply to the ir solver (iterative "
            "refinement corrects with its own LU factors); use jacobi, cg or pcg",
            file=sys.stderr,
        )
        return 2
    if solver != "pcg" and args.cond is not None:
        print(
            "warning: --cond only shapes pcg's ill-conditioned SPD family; "
            f"ignored for the {solver} solver",
            file=sys.stderr,
        )
    config = Ozaki2Config(
        precision=args.precision,
        num_moduli=_default_moduli(args.precision, args.moduli),
        parallelism=_resolve_workers(args.parallel),
        executor=args.executor,
        gemv_fast_path=not args.no_gemv_fast,
        target_accuracy=args.target_accuracy,
        selection_model=args.selection_model,
    )
    if solver == "pcg":
        kind = "ill_spd"
    elif solver == "cg":
        kind = "spd"
    else:
        kind = "diag_dominant"
    a, b, x_true = linear_system(
        args.size, kind=kind, phi=args.phi, seed=args.seed,
        cond=args.cond if args.cond is not None else 1e4,
    )

    # The fp32 emulation's residual floor sits around 1e-7, so the fp64
    # default tolerance would make every fp32 solve "fail"; scale it.
    tol = args.tol if args.tol is not None else (
        1e-10 if args.precision == "fp64" else 1e-5
    )
    # --precond default: pcg factors ILU(0) unless told otherwise; the other
    # solvers stay unpreconditioned unless a kind is requested explicitly.
    precond = args.precond if args.precond is not None else (
        "ilu0" if solver == "pcg" else None
    )
    solvers = {
        "jacobi": lambda: jacobi_solve(
            a, b, config=config, tol=tol, max_iter=args.max_iter,
            precond=precond, omega=args.omega, progressive=args.progressive,
        ),
        "cg": lambda: cg_solve(
            a, b, config=config, tol=tol, max_iter=args.max_iter,
            precond=precond, omega=args.omega, progressive=args.progressive,
        ),
        "pcg": lambda: pcg_solve(
            a, b, config=config, tol=tol, max_iter=args.max_iter,
            precond=precond or "none", omega=args.omega,
            progressive=args.progressive,
        ),
        "ir": lambda: iterative_refinement_solve(
            a, b, config=config, tol=tol, max_iter=args.max_iter,
            progressive=args.progressive,
        ),
    }
    result = solvers[solver]()

    error = float(np.max(np.abs(result.x - x_true)))
    matvecs = max(1, result.iterations)
    route = "gemv fast path" if config.gemv_fast_path else "n=1 GEMM route"
    print(f"repro solve: {result.method} on n={args.size} ({kind}, {route})")
    print(f"  converged            {result.converged} ({result.iterations} iterations)")
    print(f"  relative residual    {result.residual_norm:.3e}  (tol {tol:.1e})")
    print(f"  max |x - x_true|     {error:.3e}")
    print(
        f"  prepare once         {result.prepare_seconds:.3e} s "
        f"(amortised {result.prepare_seconds / matvecs:.3e} s over {matvecs} matvecs)"
    )
    if result.precond != "none":
        print(
            f"  precondition once    {result.precond_seconds:.3e} s "
            f"({result.precond} factored before the iteration)"
        )
    if args.progressive and result.moduli_history:
        from .apps.solvers import moduli_schedule_segments

        schedule = " -> ".join(
            f"N={c} x{i}" for c, i in moduli_schedule_segments(result.moduli_history)
        )
        print(f"  moduli schedule      {schedule}")
    print(f"  total wall time      {result.seconds:.3f} s")
    if not result.converged:
        print("error: solver did not reach the tolerance", file=sys.stderr)
        return 1
    return 0


def _cmd_lint(args) -> int:
    from .analysis import render_json, render_text, run_lint

    select = _parse_list(args.select) if args.select else ()
    findings, files_checked = run_lint(args.paths, select=select)
    if args.format == "json":
        print(render_json(findings))
    else:
        print(render_text(findings))
        print(f"({files_checked} files checked)")
    return 1 if findings else 0


def _cmd_selfcheck(args) -> int:
    import platform

    import numpy

    from . import __version__
    from .accuracy import max_relative_error, reference_gemm
    from .config import Ozaki2Config
    from .core.gemm import ozaki2_gemm
    from .crt.constants import build_constant_table
    from .runtime import ozaki2_gemm_batched
    from .workloads import phi_pair

    print(f"repro {__version__}")
    print(f"python {platform.python_version()}  numpy {numpy.__version__}")

    table = build_constant_table(15, 64)
    print(f"constant table: N=15, P has {table.P_int.bit_length()} bits")

    a, b = phi_pair(96, 128, 80, phi=0.5, seed=0)
    checks = []
    serial = ozaki2_gemm(a, b, config=Ozaki2Config(parallelism=1))
    err = max_relative_error(serial, reference_gemm(a, b))
    checks.append(("serial OS II-fast-15 error < 1e-12", err < 1e-12, f"{err:.3e}"))

    parallel = ozaki2_gemm(a, b, config=Ozaki2Config(parallelism=2))
    checks.append(
        ("parallel result bit-identical", bool(np.array_equal(serial, parallel)), "")
    )

    process = ozaki2_gemm(
        a, b, config=Ozaki2Config(parallelism=2, executor="process")
    )
    checks.append(
        (
            "process-executor result bit-identical",
            bool(np.array_equal(serial, process)),
            "",
        )
    )

    tiled = ozaki2_gemm(a, b, config=Ozaki2Config(memory_budget_mb=0.25))
    checks.append(("tiled result bit-identical", bool(np.array_equal(serial, tiled)), ""))

    from .runtime import TileSource, live_segment_names

    with TileSource() as tiles:
        ooc_config = Ozaki2Config(
            parallelism=2, executor="process", memory_budget_mb=0.25
        )
        out_of_core = ozaki2_gemm(
            tiles.prepare_a(a, ooc_config),
            tiles.prepare_b(b, ooc_config),
            config=ooc_config,
        )
    checks.append(
        (
            "out-of-core streamed tiles bit-identical",
            bool(np.array_equal(serial, out_of_core)),
            "",
        )
    )
    checks.append(
        (
            "no leaked shared-memory segments",
            not live_segment_names(),
            "",
        )
    )

    batched = ozaki2_gemm_batched([a, a], [b, b], config=Ozaki2Config(parallelism=2))
    checks.append(
        (
            "batched results bit-identical",
            all(np.array_equal(serial, c) for c in batched),
            "",
        )
    )

    from .core.operand import prepare_a, prepare_b

    prepared = ozaki2_gemm(prepare_a(a), prepare_b(b), config=Ozaki2Config(parallelism=1))
    checks.append(
        ("prepared-operand result bit-identical", bool(np.array_equal(serial, prepared)), "")
    )

    unfused = ozaki2_gemm(a, b, config=Ozaki2Config(fused_kernels=False))
    checks.append(
        (
            "fused vs per-modulus loop bit-identical",
            bool(np.array_equal(serial, unfused)),
            "",
        )
    )

    from .core.gemv import prepared_gemv

    v = b[:, 0]
    prep = prepare_a(a)
    gemv_fast = prepared_gemv(prep, v, config=Ozaki2Config())
    gemv_gemm = ozaki2_gemm(prep, v[:, None], config=Ozaki2Config())
    checks.append(
        (
            "residue-GEMV fast path bit-identical to n=1 GEMM route",
            bool(np.array_equal(gemv_fast, gemv_gemm.ravel())),
            "",
        )
    )

    accurate_cfg = Ozaki2Config(mode="accurate", parallelism=1)
    accurate_fresh = ozaki2_gemm(a, b, config=accurate_cfg)
    accurate_prepared = ozaki2_gemm(
        prepare_a(a, config=accurate_cfg),
        prepare_b(b, config=accurate_cfg),
        config=accurate_cfg,
    )
    checks.append(
        (
            "accurate-mode prepared operands bit-identical to fresh prepare",
            bool(np.array_equal(accurate_fresh, accurate_prepared)),
            "",
        )
    )

    auto = ozaki2_gemm(a, b, config=Ozaki2Config(num_moduli="auto"), return_details=True)
    auto_fixed = ozaki2_gemm(a, b, config=Ozaki2Config(num_moduli=auto.config.num_moduli))
    checks.append(
        (
            f"auto moduli selection (N={auto.config.num_moduli}) bit-identical "
            "to fixed N",
            bool(np.array_equal(auto.c, auto_fixed)),
            "",
        )
    )

    rigorous = ozaki2_gemm(
        a,
        b,
        config=Ozaki2Config(num_moduli="auto", selection_model="rigorous"),
        return_details=True,
    )
    selection = auto.moduli_selection
    checks.append(
        (
            f"calibrated selection (N={auto.config.num_moduli}, decided by "
            f"{selection.decided_by}) never above rigorous "
            f"(N={rigorous.config.num_moduli}), bound met",
            auto.config.num_moduli <= rigorous.config.num_moduli
            and auto.bound_met
            and rigorous.bound_met,
            "",
        )
    )

    from . import faults

    # The site fires inside the worker processes (per-process counters), so
    # the parent-side evidence is the ledger's task_retry histogram.
    with faults.inject("worker.task_error:times=1", seed=7):
        injected = ozaki2_gemm(
            a, b, config=Ozaki2Config(parallelism=2, executor="process"),
            return_details=True,
        )
    checks.append(
        (
            "fault injection (worker task error) recovered bit-identically",
            bool(np.array_equal(serial, injected.c))
            and injected.fault_events.get("task_retry", 0) >= 1,
            "",
        )
    )

    with faults.inject("pool.spawn:times=99", seed=7):
        degraded = ozaki2_gemm(
            a, b, config=Ozaki2Config(
                parallelism=2, executor="process", max_pool_rebuilds=0
            ),
            return_details=True,
        )
    checks.append(
        (
            "fault injection (pool spawn) degraded to threads, bit-identical "
            "and on the ledger",
            bool(np.array_equal(serial, degraded.c))
            and degraded.degraded
            and degraded.fault_events.get("degraded_to_thread", 0) >= 1,
            "",
        )
    )

    from pathlib import Path

    from .analysis import run_lint

    package_root = Path(__file__).resolve().parent
    lint_findings, lint_files = run_lint([package_root])
    checks.append(
        (
            "repro lint clean on installed package",
            not lint_findings,
            f"{len(lint_findings)} findings in {lint_files} files",
        )
    )

    failed = 0
    for name, ok, detail in checks:
        status = "ok" if ok else "FAIL"
        suffix = f"  ({detail})" if detail else ""
        print(f"  [{status:>4}] {name}{suffix}")
        failed += 0 if ok else 1
    return 1 if failed else 0


def _cmd_figures(args) -> int:
    from .harness import (
        figure1,
        figure3_dgemm,
        figure3_sgemm,
        figure4,
        figure5,
        figure6,
        figure7,
        figure8,
        figure9,
        headline_claims,
    )

    quick = not args.full
    registry = {
        "1": lambda: figure1(),
        "3d": lambda: figure3_dgemm(quick=quick),
        "3s": lambda: figure3_sgemm(quick=quick),
        "4": lambda: figure4(quick=quick),
        "5": lambda: figure5(quick=quick),
        "6": lambda: figure6(quick=quick),
        "7": lambda: figure7(quick=quick),
        "8": lambda: figure8(quick=quick),
        "9": lambda: figure9(quick=quick),
        "headline": lambda: headline_claims(),
    }
    selected = list(registry) if args.only is None else _parse_list(args.only)
    for key in selected:
        if key not in registry:
            print(f"unknown figure id {key!r}; known: {sorted(registry)}", file=sys.stderr)
            return 2
        print(registry[key]().render())
        print()
    return 0


def _cmd_accuracy(args) -> int:
    from .harness import accuracy_sweep, format_table

    rows = accuracy_sweep(
        methods=_parse_list(args.methods),
        phis=[float(x) for x in _parse_list(args.phi)],
        ks=[int(x) for x in _parse_list(args.k)],
        m=args.m,
        n=args.n,
        precision=args.precision,
        seed=args.seed,
    )
    print(format_table(rows, float_format=".3e", title="accuracy sweep"))
    return 0


def _cmd_throughput(args) -> int:
    from .harness import format_table, throughput_sweep

    rows = throughput_sweep(
        methods=_parse_list(args.methods),
        gpus=_parse_list(args.gpus),
        sizes=[int(x) for x in _parse_list(args.sizes)],
        target=args.target,
    )
    print(format_table(rows, float_format=".4g", title="modelled throughput (TFLOPS)"))
    return 0


def _cmd_gemm(args) -> int:
    from .baselines.registry import get_method

    a = np.load(args.a)
    b = np.load(args.b)
    spec = get_method(args.method, target=args.precision)
    c = spec(a, b)
    if args.out:
        np.save(args.out, c)
        print(f"saved {c.shape} product to {args.out}")
    if args.check:
        from .accuracy import max_relative_error, reference_gemm

        err = max_relative_error(c, reference_gemm(a, b))
        print(f"max relative error vs reference: {err:.3e}")
    if not args.out and not args.check:
        print(f"product shape {c.shape}, dtype {c.dtype}")
    return 0


def _print_serve_stats(stats: dict) -> None:
    """Render the /v1/stats document the way the other subcommands print."""
    cache = stats.get("cache", {})
    ledger = stats.get("ledger", {})
    coalescer = stats.get("coalescer", {})
    print(
        f"repro serve {stats.get('version', '?')} — {stats.get('method', '?')}, "
        f"up {float(stats.get('server_uptime_seconds', 0.0)):.1f} s, "
        f"{stats.get('requests', 0)} session requests"
    )
    print(
        "cache:     "
        f"{cache.get('entries', 0)} entries, "
        f"{cache.get('current_bytes', 0) / 1e6:.1f}/"
        f"{cache.get('capacity_bytes', 0) / 1e6:.1f} MB, "
        f"hits {cache.get('hits', 0)}, misses {cache.get('misses', 0)}, "
        f"evictions {cache.get('evictions', 0)}, "
        f"hit rate {100.0 * float(cache.get('hit_rate', 0.0)):.1f}%"
    )
    print(
        "coalescer: "
        f"{coalescer.get('requests', 0)} requests in "
        f"{coalescer.get('batches', 0)} batches "
        f"(largest {coalescer.get('largest_batch', 0)}, "
        f"mean {float(coalescer.get('mean_batch', 0.0)):.2f})"
    )
    print(
        "ledger:    "
        f"{ledger.get('matmul_calls', 0)} INT8 GEMMs, "
        f"{ledger.get('mac_ops', 0):.3e} MACs, "
        f"emulated calls {ledger.get('emulated_calls', {})}"
    )
    endpoints = stats.get("endpoint_requests", {})
    if endpoints:
        listing = ", ".join(f"{name}={count}" for name, count in sorted(endpoints.items()))
        print(f"endpoints: {listing}")


def _cmd_serve(args) -> int:
    if args.stats:
        from .service import ServiceClient

        client = ServiceClient(host=args.host, port=args.port, timeout=10.0)
        _print_serve_stats(client.stats())
        return 0

    from .config import Ozaki2Config
    from .service import ReproServer

    config = Ozaki2Config(
        precision=args.precision,
        num_moduli=_default_moduli(args.precision, args.moduli),
        mode=args.mode,
        parallelism=_resolve_workers(args.parallel),
        executor=args.executor,
        target_accuracy=args.target_accuracy,
        selection_model=args.selection_model,
    )
    server = ReproServer(
        config=config,
        host=args.host,
        port=args.port,
        cache_bytes=int(args.cache_mb * 1024 * 1024),
        coalesce_window_seconds=args.coalesce_window_ms / 1000.0,
        max_batch=args.max_batch,
        max_queue=args.max_queue,
    )
    print(
        f"repro serve listening on {server.host}:{server.port} "
        f"({config.method_name}, cache {args.cache_mb:.0f} MB) — Ctrl-C to stop",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.close()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "solve": _cmd_solve,
        "figures": _cmd_figures,
        "accuracy": _cmd_accuracy,
        "throughput": _cmd_throughput,
        "gemm": _cmd_gemm,
        "serve": _cmd_serve,
        "lint": _cmd_lint,
        "selfcheck": _cmd_selfcheck,
    }
    try:
        return handlers[args.command](args)
    except Exception as exc:
        from .errors import ReproError

        if isinstance(exc, ReproError):
            print(f"error: {exc}", file=sys.stderr)
            return 2
        raise


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    raise SystemExit(main())
