"""Command-line interface: ``python -m repro`` or the ``repro-bench`` script.

Subcommands
-----------
``figures``
    Regenerate one or all of the paper's figures and print the tables
    (optionally at the paper's full problem sizes).
``accuracy``
    Run an accuracy sweep for arbitrary methods / phi values / sizes.
``throughput``
    Evaluate the modelled GPU throughput of arbitrary methods and sizes.
``gemm``
    Multiply two ``.npy`` matrices with a chosen method and store / check the
    result (handy for quick experiments on real data).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Ozaki scheme II GEMM-emulation reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figures = sub.add_parser("figures", help="regenerate the paper's figures")
    figures.add_argument(
        "--only",
        default=None,
        help="comma-separated figure ids: 1, 3d, 3s, 4, 5, 6, 7, 8, 9, headline",
    )
    figures.add_argument("--full", action="store_true", help="use the paper's problem sizes")

    accuracy = sub.add_parser("accuracy", help="run an accuracy sweep")
    accuracy.add_argument("--methods", default="DGEMM,OS II-fast-15", help="comma-separated names")
    accuracy.add_argument("--phi", default="0.5", help="comma-separated phi values")
    accuracy.add_argument("--k", default="512", help="comma-separated inner dimensions")
    accuracy.add_argument("--m", type=int, default=256)
    accuracy.add_argument("--n", type=int, default=256)
    accuracy.add_argument("--precision", default="fp64", choices=["fp64", "fp32"])
    accuracy.add_argument("--seed", type=int, default=0)

    throughput = sub.add_parser("throughput", help="modelled GPU throughput")
    throughput.add_argument("--methods", default="DGEMM,OS II-fast-15,ozIMMU_EF-9")
    throughput.add_argument("--gpus", default="A100,GH200,RTX5080")
    throughput.add_argument("--sizes", default="1024,4096,16384")
    throughput.add_argument("--target", default="fp64", choices=["fp64", "fp32"])

    gemm = sub.add_parser("gemm", help="multiply two .npy matrices with a chosen method")
    gemm.add_argument("a", help="path to A (.npy)")
    gemm.add_argument("b", help="path to B (.npy)")
    gemm.add_argument("--method", default="OS II-fast-15")
    gemm.add_argument("--precision", default="fp64", choices=["fp64", "fp32"])
    gemm.add_argument("--out", default=None, help="where to save the product (.npy)")
    gemm.add_argument(
        "--check", action="store_true", help="also report the error vs the high-precision reference"
    )
    return parser


def _parse_list(text: str) -> List[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def _cmd_figures(args) -> int:
    from .harness import (
        figure1,
        figure3_dgemm,
        figure3_sgemm,
        figure4,
        figure5,
        figure6,
        figure7,
        figure8,
        figure9,
        headline_claims,
    )

    quick = not args.full
    registry = {
        "1": lambda: figure1(),
        "3d": lambda: figure3_dgemm(quick=quick),
        "3s": lambda: figure3_sgemm(quick=quick),
        "4": lambda: figure4(quick=quick),
        "5": lambda: figure5(quick=quick),
        "6": lambda: figure6(quick=quick),
        "7": lambda: figure7(quick=quick),
        "8": lambda: figure8(quick=quick),
        "9": lambda: figure9(quick=quick),
        "headline": lambda: headline_claims(),
    }
    selected = list(registry) if args.only is None else _parse_list(args.only)
    for key in selected:
        if key not in registry:
            print(f"unknown figure id {key!r}; known: {sorted(registry)}", file=sys.stderr)
            return 2
        print(registry[key]().render())
        print()
    return 0


def _cmd_accuracy(args) -> int:
    from .harness import accuracy_sweep, format_table

    rows = accuracy_sweep(
        methods=_parse_list(args.methods),
        phis=[float(x) for x in _parse_list(args.phi)],
        ks=[int(x) for x in _parse_list(args.k)],
        m=args.m,
        n=args.n,
        precision=args.precision,
        seed=args.seed,
    )
    print(format_table(rows, float_format=".3e", title="accuracy sweep"))
    return 0


def _cmd_throughput(args) -> int:
    from .harness import format_table, throughput_sweep

    rows = throughput_sweep(
        methods=_parse_list(args.methods),
        gpus=_parse_list(args.gpus),
        sizes=[int(x) for x in _parse_list(args.sizes)],
        target=args.target,
    )
    print(format_table(rows, float_format=".4g", title="modelled throughput (TFLOPS)"))
    return 0


def _cmd_gemm(args) -> int:
    from .baselines.registry import get_method

    a = np.load(args.a)
    b = np.load(args.b)
    spec = get_method(args.method, target=args.precision)
    c = spec(a, b)
    if args.out:
        np.save(args.out, c)
        print(f"saved {c.shape} product to {args.out}")
    if args.check:
        from .accuracy import max_relative_error, reference_gemm

        err = max_relative_error(c, reference_gemm(a, b))
        print(f"max relative error vs reference: {err:.3e}")
    if not args.out and not args.check:
        print(f"product shape {c.shape}, dtype {c.dtype}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "figures": _cmd_figures,
        "accuracy": _cmd_accuracy,
        "throughput": _cmd_throughput,
        "gemm": _cmd_gemm,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    raise SystemExit(main())
