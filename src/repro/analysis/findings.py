"""Finding model of the ``repro lint`` static analyser.

A :class:`Finding` is one rule violation pinned to a file and line.  The
rendering helpers produce the two CLI output formats: the human ``text``
form (one ``path:line:col: CODE message`` line per finding, the shape
editors and CI log scrapers already understand) and the machine ``json``
form (a stable document with a per-rule summary, consumed by dashboards
and the fixture tests).
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Sequence

__all__ = ["Finding", "render_text", "render_json"]


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at ``path:line:col``.

    Ordering is lexicographic on ``(path, line, col, code)`` so reports are
    stable regardless of the order rules ran in — the analyser must itself
    honour the determinism discipline it enforces.
    """

    path: str
    line: int
    col: int
    code: str
    message: str

    def as_dict(self) -> Dict[str, object]:
        """The JSON-document form of this finding."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


def render_text(findings: Sequence[Finding]) -> str:
    """Render findings one per line, ending with a one-line summary."""
    lines: List[str] = [
        f"{f.path}:{f.line}:{f.col}: {f.code} {f.message}" for f in findings
    ]
    count = len(findings)
    noun = "finding" if count == 1 else "findings"
    lines.append(f"repro lint: {count} {noun}")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Render findings as a stable JSON document with a per-rule summary."""
    by_code: Dict[str, int] = {}
    for finding in findings:
        by_code[finding.code] = by_code.get(finding.code, 0) + 1
    doc = {
        "findings": [f.as_dict() for f in findings],
        "summary": {
            "total": len(findings),
            "by_code": {code: by_code[code] for code in sorted(by_code)},
        },
    }
    return json.dumps(doc, indent=2, sort_keys=False)
