"""Runtime lock-order tracking: the race detector of the concurrency stack.

The static lock rules (RPR030/031/032) see lexical structure; what they
cannot see is the *acquisition order* across objects at runtime — the
property that actually prevents deadlock when the serve/Session layer,
the scheduler and the deprecation shims nest their six locks.  This
module closes that gap:

* every lock in the library is created through :func:`named_lock`, a
  :class:`TrackedLock` wrapping a plain ``threading.Lock`` under a stable
  dotted name (``service.cache._lock``, ``runtime.scheduler._clones_lock``,
  ...).  Untracked cost is one module-global load per acquire — noise
  next to the work any of these locks guards.
* under :func:`track_lock_order`, every acquisition records the set of
  locks the acquiring thread already holds, adding *order edges*
  ``held -> acquired`` to a process-wide graph, and re-acquiring a lock
  the same thread holds raises :class:`LockOrderError` immediately
  (a plain ``threading.Lock`` would deadlock silently).
* :meth:`LockOrderTracker.cycles` searches that graph: an acyclic graph
  proves every *observed* nesting is consistent with one global order —
  no execution of the exercised paths can deadlock on these locks.  A
  cycle is a witnessed inversion: two code paths that acquire the same
  pair of locks in opposite orders.

This tracker is the gate for the process-parallel scheduler refactor
(ROADMAP item 2): any new nesting it introduces must keep the graph
acyclic under the service/session test suite.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Set, Tuple

__all__ = [
    "LockOrderError",
    "LockOrderTracker",
    "TrackedLock",
    "named_lock",
    "track_lock_order",
    "current_tracker",
]


class LockOrderError(RuntimeError):
    """A lock-order violation: re-entry on a held lock, or an order cycle."""


class LockOrderTracker:
    """Acquisition-order recorder shared by every :class:`TrackedLock`.

    Thread-safe: the graph and counters are guarded by one internal lock
    (a plain ``threading.Lock`` — the tracker must not track itself), and
    per-thread held stacks live in a ``threading.local``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._edges: Dict[Tuple[str, str], int] = {}
        self._acquired: Dict[str, int] = {}
        self._contended = 0

    # -- per-thread held stack ----------------------------------------------
    def _held(self) -> List[str]:
        stack = getattr(self._local, "held", None)
        if stack is None:
            stack = []
            self._local.held = stack
        return stack

    # -- TrackedLock hooks ---------------------------------------------------
    def before_acquire(self, name: str) -> None:
        """Record order edges; raise on same-thread re-entry (deadlock)."""
        held = self._held()
        if name in held:
            raise LockOrderError(
                f"thread {threading.current_thread().name!r} re-acquired "
                f"{name!r} while already holding it (held: {held}); "
                "threading.Lock is not reentrant — this deadlocks outside "
                "tracking mode"
            )
        if held:
            with self._lock:
                for prior in held:
                    edge = (prior, name)
                    self._edges[edge] = self._edges.get(edge, 0) + 1

    def acquired(self, name: str) -> None:
        self._held().append(name)
        with self._lock:
            self._acquired[name] = self._acquired.get(name, 0) + 1

    def released(self, name: str) -> None:
        held = self._held()
        if name in held:
            held.remove(name)

    # -- the order graph -----------------------------------------------------
    @property
    def observed_locks(self) -> Set[str]:
        """Names of every lock acquired at least once under tracking."""
        with self._lock:
            return set(self._acquired)

    @property
    def acquisition_counts(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._acquired)

    @property
    def edges(self) -> Dict[Tuple[str, str], int]:
        """Order edges ``(held, then_acquired) -> observation count``."""
        with self._lock:
            return dict(self._edges)

    def cycles(self) -> List[List[str]]:
        """Every elementary inversion cycle in the observed order graph.

        Iterative DFS over the directed edge set; a back edge to a node on
        the current path is a cycle.  Nodes and successors are visited in
        sorted order so the report is deterministic (the analyser honours
        the determinism discipline it enforces).
        """
        with self._lock:
            adjacency: Dict[str, List[str]] = {}
            for before, after in self._edges:
                adjacency.setdefault(before, []).append(after)
        for successors in adjacency.values():
            successors.sort()
        found: List[List[str]] = []
        seen_cycles: Set[Tuple[str, ...]] = set()
        for start in sorted(adjacency):
            stack: List[Tuple[str, List[str]]] = [(start, [start])]
            while stack:
                node, path = stack.pop()
                for successor in adjacency.get(node, ()):
                    if successor == start and len(path) > 0:
                        # Canonicalise rotation so each cycle reports once.
                        cycle = path + [start]
                        pivot = min(range(len(path)), key=path.__getitem__)
                        canon = tuple(path[pivot:] + path[:pivot])
                        if canon not in seen_cycles:
                            seen_cycles.add(canon)
                            found.append(cycle)
                    elif successor not in path and successor > start:
                        # Only explore nodes after `start` in sort order:
                        # every cycle is found from its smallest node.
                        stack.append((successor, path + [successor]))
        return found

    def assert_acyclic(self) -> None:
        """Raise :class:`LockOrderError` describing the first inversion."""
        cycles = self.cycles()
        if cycles:
            rendered = "; ".join(" -> ".join(cycle) for cycle in cycles)
            raise LockOrderError(
                f"lock acquisition order has {len(cycles)} cycle(s): {rendered} "
                "— two paths acquire these locks in opposite orders and can "
                "deadlock under concurrency"
            )

    def report(self) -> Dict[str, object]:
        """JSON-safe summary (test diagnostics and ``--stats`` style dumps)."""
        cycles = self.cycles()
        return {
            "locks": sorted(self.observed_locks),
            "acquisitions": self.acquisition_counts,
            "edges": {
                f"{before} -> {after}": count
                for (before, after), count in sorted(self.edges.items())
            },
            "acyclic": not cycles,
            "cycles": [" -> ".join(cycle) for cycle in cycles],
        }


#: The active tracker; None outside :func:`track_lock_order` (the common
#: case — every TrackedLock acquire then costs one global load and branch).
_ACTIVE: Optional[LockOrderTracker] = None
_ACTIVE_GUARD = threading.Lock()


def current_tracker() -> Optional[LockOrderTracker]:
    """The tracker installed by :func:`track_lock_order`, if any."""
    return _ACTIVE


class TrackedLock:
    """A ``threading.Lock`` with a stable name and tracking hooks.

    Mirrors the subset of the Lock API this codebase uses (``with``,
    ``acquire``/``release``, ``locked``).  Outside tracking mode the
    wrapper adds one global read per operation; inside, every transition
    is reported to the active :class:`LockOrderTracker`.
    """

    __slots__ = ("name", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        tracker = _ACTIVE
        if tracker is not None:
            tracker.before_acquire(self.name)
        ok = self._lock.acquire(blocking, timeout)
        if ok and tracker is not None:
            tracker.acquired(self.name)
        return ok

    def release(self) -> None:
        tracker = _ACTIVE
        self._lock.release()
        if tracker is not None:
            tracker.released(self.name)

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "locked" if self._lock.locked() else "unlocked"
        return f"<TrackedLock {self.name!r} {state}>"


def named_lock(name: str) -> TrackedLock:
    """Create the library's standard lock: tracked, under a stable name.

    Every ``threading.Lock`` site in the library routes through this
    factory so :func:`track_lock_order` observes the whole concurrency
    surface without monkeypatching.
    """
    return TrackedLock(name)


@contextmanager
def track_lock_order() -> Iterator[LockOrderTracker]:
    """Install a fresh process-wide tracker for the duration of the block.

    Nested installation is refused (two trackers would each see a partial
    graph); the service/session test suites therefore serialise on this.
    """
    global _ACTIVE
    tracker = LockOrderTracker()
    with _ACTIVE_GUARD:
        if _ACTIVE is not None:
            raise LockOrderError("lock-order tracking is already active")
        _ACTIVE = tracker
    try:
        yield tracker
    finally:
        with _ACTIVE_GUARD:
            _ACTIVE = None
