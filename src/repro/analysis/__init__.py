"""Domain-aware static analysis and concurrency instrumentation.

Two halves, one invariant surface:

* ``repro lint`` — AST rules (RPR0xx) enforcing the residue stack's
  dtype, determinism, ledger and lock disciplines (:func:`run_lint`).
* the runtime lock-order tracker — :func:`named_lock` /
  :func:`track_lock_order`, recording nested acquisitions across the
  library's lock sites and failing on order inversions.
"""

from __future__ import annotations

from .checker import run_lint
from .findings import Finding, render_json, render_text
from .lintconfig import LintConfig, find_pyproject, load_config
from .lockorder import (
    LockOrderError,
    LockOrderTracker,
    TrackedLock,
    current_tracker,
    named_lock,
    track_lock_order,
)
from .rules import RULE_DOCS

__all__ = [
    "Finding",
    "LintConfig",
    "LockOrderError",
    "LockOrderTracker",
    "RULE_DOCS",
    "TrackedLock",
    "current_tracker",
    "find_pyproject",
    "load_config",
    "named_lock",
    "render_json",
    "render_text",
    "run_lint",
    "track_lock_order",
]
